//! # distrust-tee
//!
//! Simulated heterogeneous secure hardware — the first of the paper's two
//! application-independent building blocks (§3.1): hardware that can
//! "attest to the code that is running", isolate memory, and seal state.
//!
//! Three vendor ecosystems are simulated ([`vendor::VendorKind`]), each
//! with its own root of trust and attestation evidence format, so the
//! framework can place trust domains on *heterogeneous* hardware (§3.2).
//! Compromise-injection APIs (`Vendor::leak_root_key`,
//! `Enclave::leak_attestation_key`) model the TEE exploits the paper
//! worries about, letting tests demonstrate which guarantees survive.
//!
//! * [`vendor`] — vendors, device certificates, pinned roots.
//! * [`attest`] — attestation documents, quotes, verification.
//! * [`enclave`] — launched enclaves: quoting, sealed storage.
//! * [`host`] — the two-socket proxy topology of the paper's prototype
//!   (client → host proxy → enclave interior), used verbatim by Table 3.
//!
//! See DESIGN.md for why simulation preserves the behaviours that matter.

pub mod attest;
pub mod enclave;
pub mod host;
pub mod vendor;

pub use attest::{AttestError, AttestationDocument, PlatformEvidence, Quote};
pub use enclave::{Enclave, SecureDevice};
pub use host::{EnclaveClient, EnclaveHost, EnclaveService};
pub use vendor::{DeviceCert, Vendor, VendorKind, VendorRoots};
