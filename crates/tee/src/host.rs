//! Enclave hosting with the socket topology of the paper's prototype.
//!
//! §5 attributes the TEE overhead of Table 3 to "two additional sockets:
//! one to forward request traffic from the client to our framework, and one
//! inside the TEE to communicate between our framework and the sandboxed
//! application." [`EnclaveHost`] reproduces that topology with real
//! loopback TCP sockets:
//!
//! ```text
//! client ──TCP──▶ host proxy ──TCP──▶ enclave service thread
//!                 (socket 1)          (socket 2, "vsock")
//! ```
//!
//! The proxy is dumb byte forwarding, exactly like the Nitro parent
//! instance's vsock proxy. For the bench baseline, services can also be
//! invoked in-process (no sockets) via [`EnclaveService::handle`] directly.

use distrust_wire::frame::{read_frame, write_frame};
use distrust_wire::rpc::accept_with_retry;
use distrust_wire::sync::HealthyMutex;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A request/response service running "inside" the enclave.
pub trait EnclaveService: Send + 'static {
    /// Handles one request message, producing one response message.
    fn handle(&mut self, request: Vec<u8>) -> Vec<u8>;
}

impl<F> EnclaveService for F
where
    F: FnMut(Vec<u8>) -> Vec<u8> + Send + 'static,
{
    fn handle(&mut self, request: Vec<u8>) -> Vec<u8> {
        self(request)
    }
}

/// A running enclave host: external proxy listener + internal service
/// listener, with threads reaped on shutdown.
pub struct EnclaveHost {
    external_addr: SocketAddr,
    internal_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    /// Handles to every *live* accepted socket, so shutdown can sever
    /// established connections — a per-connection thread parked in a
    /// blocking read would otherwise serve one more request after the
    /// stop flag flips. Keyed so each connection thread deregisters its
    /// own sockets on exit; the map stays bounded by the number of live
    /// connections, not by lifetime connection churn.
    conns: ConnRegistry,
}

/// Live sockets keyed by registration id.
type ConnRegistry = Arc<HealthyMutex<std::collections::HashMap<u64, TcpStream>>>;

/// Registration-id source for [`ConnRegistry`] entries.
static NEXT_CONN_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Registers a socket for severing at shutdown; the returned id must be
/// passed to [`untrack_conn`] when the connection's thread exits.
fn track_conn(conns: &ConnRegistry, stream: &TcpStream) -> Option<u64> {
    let clone = stream.try_clone().ok()?;
    let id = NEXT_CONN_ID.fetch_add(1, Ordering::Relaxed);
    conns.lock_healthy().insert(id, clone);
    Some(id)
}

/// Drops a socket from the shutdown registry (its thread is done).
fn untrack_conn(conns: &ConnRegistry, id: Option<u64>) {
    if let Some(id) = id {
        conns.lock_healthy().remove(&id);
    }
}

impl EnclaveHost {
    /// Spawns the service behind the two-socket proxy topology.
    pub fn spawn<S: EnclaveService>(service: S) -> std::io::Result<Self> {
        let stop = Arc::new(AtomicBool::new(false));
        let service = Arc::new(HealthyMutex::new(service));
        let conns: ConnRegistry = Arc::new(HealthyMutex::new(std::collections::HashMap::new()));

        // Socket 2: the "vsock" between host proxy and enclave interior.
        // Both accept loops retry through errors with exponential backoff
        // (`accept_with_retry`, the same hardening the wire crate's RPC
        // servers got): an EMFILE burst or a client racing RST must not
        // leave a zombie listener that looks alive but accepts nothing.
        let internal_listener = TcpListener::bind(("127.0.0.1", 0))?;
        let internal_addr = internal_listener.local_addr()?;
        let stop_i = Arc::clone(&stop);
        let service_i = Arc::clone(&service);
        let conns_i = Arc::clone(&conns);
        let internal_thread = std::thread::Builder::new()
            .name("enclave-interior".to_string())
            .spawn(move || {
                let label = format!("enclave-interior-{internal_addr}");
                let mut consecutive_errors = 0u32;
                loop {
                    let Some((mut conn, _)) =
                        accept_with_retry(&label, &stop_i, &mut consecutive_errors, || {
                            internal_listener.accept()
                        })
                    else {
                        break;
                    };
                    if stop_i.load(Ordering::SeqCst) {
                        break;
                    }
                    let _ = conn.set_nodelay(true);
                    let service = Arc::clone(&service_i);
                    let stop_c = Arc::clone(&stop_i);
                    let conns_c = Arc::clone(&conns_i);
                    let spawned = std::thread::Builder::new()
                        .name("enclave-conn".to_string())
                        .spawn(move || {
                            let id = track_conn(&conns_c, &conn);
                            loop {
                                if stop_c.load(Ordering::SeqCst) {
                                    break;
                                }
                                let Ok(request) = read_frame(&mut conn) else {
                                    break;
                                };
                                let response = service.lock_healthy().handle(request);
                                if write_frame(&mut conn, &response).is_err() {
                                    break;
                                }
                            }
                            untrack_conn(&conns_c, id);
                        });
                    if let Err(e) = spawned {
                        // Out of threads: refuse loudly instead of silently
                        // dropping the socket on the floor (matching
                        // RpcServer) — the proxy side sees the close and
                        // reports its own failure to the client.
                        eprintln!("{label}: failed to spawn connection thread: {e}");
                    }
                }
            })?;

        // Socket 1: the external proxy clients connect to.
        let external_listener = TcpListener::bind(("127.0.0.1", 0))?;
        let external_addr = external_listener.local_addr()?;
        let stop_e = Arc::clone(&stop);
        let conns_e = Arc::clone(&conns);
        let proxy_thread = std::thread::Builder::new()
            .name("enclave-proxy".to_string())
            .spawn(move || {
                let label = format!("enclave-proxy-{external_addr}");
                let mut consecutive_errors = 0u32;
                loop {
                    let Some((mut client, _)) =
                        accept_with_retry(&label, &stop_e, &mut consecutive_errors, || {
                            external_listener.accept()
                        })
                    else {
                        break;
                    };
                    if stop_e.load(Ordering::SeqCst) {
                        break;
                    }
                    let _ = client.set_nodelay(true);
                    let stop_c = Arc::clone(&stop_e);
                    let conns_c = Arc::clone(&conns_e);
                    let spawned = std::thread::Builder::new()
                        .name("enclave-proxy-conn".to_string())
                        .spawn(move || {
                            let client_id = track_conn(&conns_c, &client);
                            // One upstream connection per client connection.
                            let mut upstream = match TcpStream::connect(internal_addr) {
                                Ok(upstream) => upstream,
                                Err(e) => {
                                    eprintln!("enclave-proxy-conn: interior connect failed: {e}");
                                    untrack_conn(&conns_c, client_id);
                                    return;
                                }
                            };
                            let _ = upstream.set_nodelay(true);
                            let upstream_id = track_conn(&conns_c, &upstream);
                            loop {
                                if stop_c.load(Ordering::SeqCst) {
                                    break;
                                }
                                // Forward request bytes, then response bytes.
                                let Ok(request) = read_frame(&mut client) else {
                                    break;
                                };
                                if write_frame(&mut upstream, &request).is_err() {
                                    break;
                                }
                                let Ok(response) = read_frame(&mut upstream) else {
                                    break;
                                };
                                if write_frame(&mut client, &response).is_err() {
                                    break;
                                }
                            }
                            untrack_conn(&conns_c, client_id);
                            untrack_conn(&conns_c, upstream_id);
                        });
                    if let Err(e) = spawned {
                        // Same contract as the interior loop: report, close
                        // the client socket so the failure is visible at
                        // the far end, and keep accepting.
                        eprintln!("{label}: failed to spawn proxy connection thread: {e}");
                    }
                }
            })?;

        Ok(Self {
            external_addr,
            internal_addr,
            stop,
            threads: vec![internal_thread, proxy_thread],
            conns,
        })
    }

    /// Address clients connect to (through the proxy — the only way in).
    pub fn addr(&self) -> SocketAddr {
        self.external_addr
    }

    /// Stops accepting and joins the listener threads.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Sever every established connection: per-connection threads
        // parked in a blocking read exit immediately instead of serving
        // one last request.
        for (_, conn) in self.conns.lock_healthy().drain() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        // Poke both accept loops awake.
        for addr in [self.external_addr, self.internal_addr] {
            if let Ok(mut s) = TcpStream::connect(addr) {
                let _ = s.write_all(&[0]);
            }
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for EnclaveHost {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A blocking client for an [`EnclaveHost`] (frame-per-request).
pub struct EnclaveClient {
    stream: TcpStream,
}

impl EnclaveClient {
    /// Connects to a host's external address.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// One request/response exchange.
    pub fn exchange(&mut self, request: &[u8]) -> std::io::Result<Vec<u8>> {
        write_frame(&mut self.stream, request).map_err(|e| std::io::Error::other(e.to_string()))?;
        read_frame(&mut self.stream).map_err(|e| std::io::Error::other(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_both_sockets() {
        let mut host = EnclaveHost::spawn(|req: Vec<u8>| {
            let mut resp = req;
            resp.reverse();
            resp
        })
        .unwrap();
        let mut client = EnclaveClient::connect(host.addr()).unwrap();
        assert_eq!(client.exchange(b"abc").unwrap(), b"cba");
        assert_eq!(client.exchange(b"12345").unwrap(), b"54321");
        host.shutdown();
    }

    #[test]
    fn service_state_persists_across_requests() {
        let mut counter = 0u64;
        let mut host = EnclaveHost::spawn(move |_req: Vec<u8>| {
            counter += 1;
            counter.to_le_bytes().to_vec()
        })
        .unwrap();
        let mut client = EnclaveClient::connect(host.addr()).unwrap();
        assert_eq!(client.exchange(b"x").unwrap(), 1u64.to_le_bytes());
        assert_eq!(client.exchange(b"x").unwrap(), 2u64.to_le_bytes());
        host.shutdown();
    }

    #[test]
    fn multiple_clients() {
        let mut host = EnclaveHost::spawn(|req: Vec<u8>| req).unwrap();
        let addr = host.addr();
        let handles: Vec<_> = (0..4u8)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut c = EnclaveClient::connect(addr).unwrap();
                    let msg = vec![i; 8];
                    assert_eq!(c.exchange(&msg).unwrap(), msg);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        host.shutdown();
    }

    #[test]
    fn shutdown_severs_established_connections() {
        let mut host = EnclaveHost::spawn(|req: Vec<u8>| req).unwrap();
        let mut client = EnclaveClient::connect(host.addr()).unwrap();
        // Warm the connection so its per-connection threads exist and are
        // parked in blocking reads.
        assert_eq!(client.exchange(b"up").unwrap(), b"up");
        host.shutdown();
        // A request after shutdown must fail — the connection was severed,
        // not left idling until its thread's next stop-flag check.
        assert!(
            client.exchange(b"after").is_err(),
            "shutdown host served a request"
        );
    }

    #[test]
    fn listener_survives_connect_drop_churn() {
        // A storm of clients connecting and vanishing without a byte (the
        // accept-side view of RST races) must not degrade the listener: a
        // well-behaved client afterwards still gets full service.
        let mut host = EnclaveHost::spawn(|req: Vec<u8>| req).unwrap();
        let addr = host.addr();
        for _ in 0..64 {
            drop(TcpStream::connect(addr).unwrap());
        }
        let mut client = EnclaveClient::connect(addr).unwrap();
        assert_eq!(client.exchange(b"still alive").unwrap(), b"still alive");
        host.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent() {
        let mut host = EnclaveHost::spawn(|req: Vec<u8>| req).unwrap();
        host.shutdown();
        host.shutdown();
    }

    #[test]
    fn large_payload_through_proxy() {
        let mut host = EnclaveHost::spawn(|req: Vec<u8>| req).unwrap();
        let mut client = EnclaveClient::connect(host.addr()).unwrap();
        let big = vec![0x5au8; 500_000];
        assert_eq!(client.exchange(&big).unwrap(), big);
        host.shutdown();
    }
}
