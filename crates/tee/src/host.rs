//! Enclave hosting with the socket topology of the paper's prototype.
//!
//! §5 attributes the TEE overhead of Table 3 to "two additional sockets:
//! one to forward request traffic from the client to our framework, and one
//! inside the TEE to communicate between our framework and the sandboxed
//! application." [`EnclaveHost`] reproduces that topology with real
//! loopback TCP sockets:
//!
//! ```text
//! client ──TCP──▶ host proxy ──TCP──▶ enclave service thread
//!                 (socket 1)          (socket 2, "vsock")
//! ```
//!
//! The proxy is dumb byte forwarding, exactly like the Nitro parent
//! instance's vsock proxy. For the bench baseline, services can also be
//! invoked in-process (no sockets) via [`EnclaveService::handle`] directly.

use distrust_wire::frame::{read_frame, write_frame};
use parking_lot::Mutex;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A request/response service running "inside" the enclave.
pub trait EnclaveService: Send + 'static {
    /// Handles one request message, producing one response message.
    fn handle(&mut self, request: Vec<u8>) -> Vec<u8>;
}

impl<F> EnclaveService for F
where
    F: FnMut(Vec<u8>) -> Vec<u8> + Send + 'static,
{
    fn handle(&mut self, request: Vec<u8>) -> Vec<u8> {
        self(request)
    }
}

/// A running enclave host: external proxy listener + internal service
/// listener, with threads reaped on shutdown.
pub struct EnclaveHost {
    external_addr: SocketAddr,
    internal_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl EnclaveHost {
    /// Spawns the service behind the two-socket proxy topology.
    pub fn spawn<S: EnclaveService>(service: S) -> std::io::Result<Self> {
        let stop = Arc::new(AtomicBool::new(false));
        let service = Arc::new(Mutex::new(service));

        // Socket 2: the "vsock" between host proxy and enclave interior.
        let internal_listener = TcpListener::bind(("127.0.0.1", 0))?;
        let internal_addr = internal_listener.local_addr()?;
        let stop_i = Arc::clone(&stop);
        let service_i = Arc::clone(&service);
        let internal_thread = std::thread::Builder::new()
            .name("enclave-interior".to_string())
            .spawn(move || {
                for conn in internal_listener.incoming() {
                    if stop_i.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(mut conn) = conn else { break };
                    let _ = conn.set_nodelay(true);
                    let service = Arc::clone(&service_i);
                    let stop_c = Arc::clone(&stop_i);
                    let _ = std::thread::Builder::new()
                        .name("enclave-conn".to_string())
                        .spawn(move || loop {
                            if stop_c.load(Ordering::SeqCst) {
                                break;
                            }
                            let Ok(request) = read_frame(&mut conn) else {
                                break;
                            };
                            let response = service.lock().handle(request);
                            if write_frame(&mut conn, &response).is_err() {
                                break;
                            }
                        });
                }
            })?;

        // Socket 1: the external proxy clients connect to.
        let external_listener = TcpListener::bind(("127.0.0.1", 0))?;
        let external_addr = external_listener.local_addr()?;
        let stop_e = Arc::clone(&stop);
        let proxy_thread = std::thread::Builder::new()
            .name("enclave-proxy".to_string())
            .spawn(move || {
                for conn in external_listener.incoming() {
                    if stop_e.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(mut client) = conn else { break };
                    let _ = client.set_nodelay(true);
                    let stop_c = Arc::clone(&stop_e);
                    let _ = std::thread::Builder::new()
                        .name("enclave-proxy-conn".to_string())
                        .spawn(move || {
                            // One upstream connection per client connection.
                            let Ok(mut upstream) = TcpStream::connect(internal_addr) else {
                                return;
                            };
                            let _ = upstream.set_nodelay(true);
                            loop {
                                if stop_c.load(Ordering::SeqCst) {
                                    break;
                                }
                                // Forward request bytes, then response bytes.
                                let Ok(request) = read_frame(&mut client) else {
                                    break;
                                };
                                if write_frame(&mut upstream, &request).is_err() {
                                    break;
                                }
                                let Ok(response) = read_frame(&mut upstream) else {
                                    break;
                                };
                                if write_frame(&mut client, &response).is_err() {
                                    break;
                                }
                            }
                        });
                }
            })?;

        Ok(Self {
            external_addr,
            internal_addr,
            stop,
            threads: vec![internal_thread, proxy_thread],
        })
    }

    /// Address clients connect to (through the proxy — the only way in).
    pub fn addr(&self) -> SocketAddr {
        self.external_addr
    }

    /// Stops accepting and joins the listener threads.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Poke both accept loops awake.
        for addr in [self.external_addr, self.internal_addr] {
            if let Ok(mut s) = TcpStream::connect(addr) {
                let _ = s.write_all(&[0]);
            }
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for EnclaveHost {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A blocking client for an [`EnclaveHost`] (frame-per-request).
pub struct EnclaveClient {
    stream: TcpStream,
}

impl EnclaveClient {
    /// Connects to a host's external address.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// One request/response exchange.
    pub fn exchange(&mut self, request: &[u8]) -> std::io::Result<Vec<u8>> {
        write_frame(&mut self.stream, request).map_err(|e| std::io::Error::other(e.to_string()))?;
        read_frame(&mut self.stream).map_err(|e| std::io::Error::other(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_both_sockets() {
        let mut host = EnclaveHost::spawn(|req: Vec<u8>| {
            let mut resp = req;
            resp.reverse();
            resp
        })
        .unwrap();
        let mut client = EnclaveClient::connect(host.addr()).unwrap();
        assert_eq!(client.exchange(b"abc").unwrap(), b"cba");
        assert_eq!(client.exchange(b"12345").unwrap(), b"54321");
        host.shutdown();
    }

    #[test]
    fn service_state_persists_across_requests() {
        let mut counter = 0u64;
        let mut host = EnclaveHost::spawn(move |_req: Vec<u8>| {
            counter += 1;
            counter.to_le_bytes().to_vec()
        })
        .unwrap();
        let mut client = EnclaveClient::connect(host.addr()).unwrap();
        assert_eq!(client.exchange(b"x").unwrap(), 1u64.to_le_bytes());
        assert_eq!(client.exchange(b"x").unwrap(), 2u64.to_le_bytes());
        host.shutdown();
    }

    #[test]
    fn multiple_clients() {
        let mut host = EnclaveHost::spawn(|req: Vec<u8>| req).unwrap();
        let addr = host.addr();
        let handles: Vec<_> = (0..4u8)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut c = EnclaveClient::connect(addr).unwrap();
                    let msg = vec![i; 8];
                    assert_eq!(c.exchange(&msg).unwrap(), msg);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        host.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent() {
        let mut host = EnclaveHost::spawn(|req: Vec<u8>| req).unwrap();
        host.shutdown();
        host.shutdown();
    }

    #[test]
    fn large_payload_through_proxy() {
        let mut host = EnclaveHost::spawn(|req: Vec<u8>| req).unwrap();
        let mut client = EnclaveClient::connect(host.addr()).unwrap();
        let big = vec![0x5au8; 500_000];
        assert_eq!(client.exchange(&big).unwrap(), big);
        host.shutdown();
    }
}
