//! Attestation documents and quotes.
//!
//! §3.1: "the client should be able to verify that it is communicating with
//! a correctly provisioned piece of secure hardware running software that
//! hashes to a particular value." A [`Quote`] carries exactly that: the
//! code measurement, caller-chosen `user_data` (the framework binds its
//! log head and a client nonce here), platform-specific evidence, a device
//! signature, and the device certificate chaining to a vendor root.
//!
//! Each simulated vendor emits a different evidence shape — verification
//! genuinely takes different paths per platform, as it does across real
//! SGX/Nitro/Keystone deployments.

use crate::vendor::{DeviceCert, VendorKind, VendorRoots};
use distrust_crypto::schnorr::SchnorrSignature;
use distrust_crypto::sha256::Digest;
use distrust_wire::codec::{decode_seq, encode_seq, Decode, DecodeError, Encode};

/// Domain tag for quote signatures.
const QUOTE_DST: &[u8] = b"distrust/tee/quote/v1";

/// Platform-specific attestation evidence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlatformEvidence {
    /// SGX-like: enclave measurement and signer measurement.
    Sgx {
        /// Hash of the enclave contents (must equal the document measurement).
        mr_enclave: Digest,
        /// Hash of the enclave signing authority.
        mr_signer: Digest,
        /// Security version number.
        isv_svn: u16,
    },
    /// Nitro-like: platform configuration registers.
    Nitro {
        /// PCR bank; PCR0 must equal the document measurement.
        pcrs: Vec<Digest>,
        /// Enclave module identifier.
        module_id: String,
    },
    /// Keystone-like: security monitor + runtime measurements.
    Keystone {
        /// Security monitor hash.
        sm_hash: Digest,
        /// Runtime (eapp) hash (must equal the document measurement).
        runtime_hash: Digest,
    },
}

impl PlatformEvidence {
    /// The vendor this evidence shape belongs to.
    pub fn vendor(&self) -> VendorKind {
        match self {
            PlatformEvidence::Sgx { .. } => VendorKind::SgxSim,
            PlatformEvidence::Nitro { .. } => VendorKind::NitroSim,
            PlatformEvidence::Keystone { .. } => VendorKind::KeystoneSim,
        }
    }

    /// Platform-specific consistency check against the claimed measurement.
    pub fn binds_measurement(&self, measurement: &Digest) -> bool {
        match self {
            PlatformEvidence::Sgx { mr_enclave, .. } => mr_enclave == measurement,
            PlatformEvidence::Nitro { pcrs, .. } => pcrs.first() == Some(measurement),
            PlatformEvidence::Keystone { runtime_hash, .. } => runtime_hash == measurement,
        }
    }
}

impl Encode for PlatformEvidence {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            PlatformEvidence::Sgx {
                mr_enclave,
                mr_signer,
                isv_svn,
            } => {
                0u8.encode(out);
                mr_enclave.encode(out);
                mr_signer.encode(out);
                isv_svn.encode(out);
            }
            PlatformEvidence::Nitro { pcrs, module_id } => {
                1u8.encode(out);
                encode_seq(pcrs, out);
                module_id.encode(out);
            }
            PlatformEvidence::Keystone {
                sm_hash,
                runtime_hash,
            } => {
                2u8.encode(out);
                sm_hash.encode(out);
                runtime_hash.encode(out);
            }
        }
    }
}

impl Decode for PlatformEvidence {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(input)? {
            0 => Ok(PlatformEvidence::Sgx {
                mr_enclave: Decode::decode(input)?,
                mr_signer: Decode::decode(input)?,
                isv_svn: Decode::decode(input)?,
            }),
            1 => Ok(PlatformEvidence::Nitro {
                pcrs: decode_seq(input)?,
                module_id: Decode::decode(input)?,
            }),
            2 => Ok(PlatformEvidence::Keystone {
                sm_hash: Decode::decode(input)?,
                runtime_hash: Decode::decode(input)?,
            }),
            other => Err(DecodeError::InvalidTag(other)),
        }
    }
}

/// The signed body of an attestation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttestationDocument {
    /// Issuing ecosystem.
    pub vendor: VendorKind,
    /// Device identifier (must match the certificate).
    pub device_id: [u8; 16],
    /// Measurement of the code loaded in the enclave.
    pub measurement: Digest,
    /// Caller-chosen binding data (log head, client nonce, …).
    pub user_data: Vec<u8>,
    /// Device-local monotonic time.
    pub logical_time: u64,
    /// Platform-specific evidence.
    pub evidence: PlatformEvidence,
}

impl Encode for AttestationDocument {
    fn encode(&self, out: &mut Vec<u8>) {
        self.vendor.encode(out);
        self.device_id.encode(out);
        self.measurement.encode(out);
        self.user_data.encode(out);
        self.logical_time.encode(out);
        self.evidence.encode(out);
    }
}

impl Decode for AttestationDocument {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Self {
            vendor: Decode::decode(input)?,
            device_id: Decode::decode(input)?,
            measurement: Decode::decode(input)?,
            user_data: Decode::decode(input)?,
            logical_time: Decode::decode(input)?,
            evidence: Decode::decode(input)?,
        })
    }
}

impl AttestationDocument {
    /// Bytes covered by the device signature.
    pub fn signing_bytes(&self) -> Vec<u8> {
        let mut out = QUOTE_DST.to_vec();
        self.encode(&mut out);
        out
    }
}

/// A complete, self-contained quote.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Quote {
    /// The attested document.
    pub document: AttestationDocument,
    /// Device signature over the document.
    pub signature: SchnorrSignature,
    /// Device certificate chaining to a vendor root.
    pub cert: DeviceCert,
}

impl Encode for Quote {
    fn encode(&self, out: &mut Vec<u8>) {
        self.document.encode(out);
        self.signature.to_bytes().encode(out);
        self.cert.encode(out);
    }
}

impl Decode for Quote {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let document = AttestationDocument::decode(input)?;
        let sig = <[u8; 80]>::decode(input)?;
        let cert = DeviceCert::decode(input)?;
        Ok(Self {
            document,
            signature: SchnorrSignature::from_bytes(&sig)
                .ok_or(DecodeError::Invalid("quote signature"))?,
            cert,
        })
    }
}

/// Why a quote was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AttestError {
    /// No pinned root for the claimed vendor.
    UnknownVendor(VendorKind),
    /// Certificate does not chain to the pinned root.
    BadCertChain,
    /// Quote signature invalid under the certified device key.
    BadQuoteSignature,
    /// Document fields disagree with the certificate.
    CertMismatch,
    /// Platform evidence inconsistent with the claimed measurement.
    EvidenceMismatch,
    /// Measurement differs from what the verifier expected.
    WrongMeasurement {
        /// What the verifier expected.
        expected: Digest,
        /// What the quote claimed.
        actual: Digest,
    },
    /// `user_data` differs from what the verifier expected (stale or
    /// replayed quote).
    WrongUserData,
}

impl core::fmt::Display for AttestError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::UnknownVendor(k) => write!(f, "no pinned root for vendor {}", k.name()),
            Self::BadCertChain => write!(f, "device certificate does not chain to vendor root"),
            Self::BadQuoteSignature => write!(f, "quote signature invalid"),
            Self::CertMismatch => write!(f, "document/certificate mismatch"),
            Self::EvidenceMismatch => write!(f, "platform evidence inconsistent with measurement"),
            Self::WrongMeasurement { .. } => write!(f, "unexpected code measurement"),
            Self::WrongUserData => write!(f, "unexpected user data (stale or replayed quote)"),
        }
    }
}

impl std::error::Error for AttestError {}

impl Quote {
    /// Full verification: certificate chain, document/cert binding,
    /// signature, platform-evidence consistency, and optionally the
    /// expected measurement and user data.
    pub fn verify(
        &self,
        roots: &VendorRoots,
        expected_measurement: Option<&Digest>,
        expected_user_data: Option<&[u8]>,
    ) -> Result<(), AttestError> {
        let root = roots
            .root_for(self.document.vendor)
            .ok_or(AttestError::UnknownVendor(self.document.vendor))?;
        if !self.cert.verify(root) {
            return Err(AttestError::BadCertChain);
        }
        if self.cert.vendor != self.document.vendor
            || self.cert.device_id != self.document.device_id
        {
            return Err(AttestError::CertMismatch);
        }
        if self.document.evidence.vendor() != self.document.vendor {
            return Err(AttestError::EvidenceMismatch);
        }
        if !self
            .document
            .evidence
            .binds_measurement(&self.document.measurement)
        {
            return Err(AttestError::EvidenceMismatch);
        }
        if !self
            .cert
            .device_key
            .verify(&self.document.signing_bytes(), &self.signature)
        {
            return Err(AttestError::BadQuoteSignature);
        }
        if let Some(expected) = expected_measurement {
            if expected != &self.document.measurement {
                return Err(AttestError::WrongMeasurement {
                    expected: *expected,
                    actual: self.document.measurement,
                });
            }
        }
        if let Some(expected) = expected_user_data {
            if expected != self.document.user_data.as_slice() {
                return Err(AttestError::WrongUserData);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vendor::Vendor;
    use distrust_crypto::drbg::HmacDrbg;

    fn setup(kind: VendorKind) -> (Vendor, crate::enclave::Enclave, VendorRoots) {
        let vendor = Vendor::new(kind, b"attest tests");
        let mut rng = HmacDrbg::new(b"attest rng", kind.name().as_bytes());
        let device = vendor.provision_device(&mut rng);
        let enclave = device.launch([0x42; 32]);
        let roots = VendorRoots::new(vec![(kind, vendor.root_key())]);
        (vendor, enclave, roots)
    }

    #[test]
    fn quotes_verify_for_all_vendors() {
        for kind in VendorKind::ALL {
            let (_vendor, enclave, roots) = setup(kind);
            let quote = enclave.quote(b"nonce+loghead");
            quote
                .verify(&roots, Some(&[0x42; 32]), Some(b"nonce+loghead"))
                .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        }
    }

    #[test]
    fn wire_round_trip_all_vendors() {
        for kind in VendorKind::ALL {
            let (_v, enclave, roots) = setup(kind);
            let quote = enclave.quote(b"ud");
            let decoded = Quote::from_wire(&quote.to_wire()).unwrap();
            assert_eq!(decoded, quote);
            assert!(decoded.verify(&roots, None, None).is_ok());
        }
    }

    #[test]
    fn wrong_measurement_rejected() {
        let (_v, enclave, roots) = setup(VendorKind::SgxSim);
        let quote = enclave.quote(b"ud");
        assert!(matches!(
            quote.verify(&roots, Some(&[0x43; 32]), None),
            Err(AttestError::WrongMeasurement { .. })
        ));
    }

    #[test]
    fn wrong_user_data_rejected() {
        let (_v, enclave, roots) = setup(VendorKind::NitroSim);
        let quote = enclave.quote(b"fresh-nonce");
        assert_eq!(
            quote.verify(&roots, None, Some(b"other-nonce")),
            Err(AttestError::WrongUserData)
        );
    }

    #[test]
    fn unknown_vendor_rejected() {
        let (_v, enclave, _roots) = setup(VendorKind::KeystoneSim);
        let quote = enclave.quote(b"ud");
        let wrong_roots = VendorRoots::new(vec![]);
        assert_eq!(
            quote.verify(&wrong_roots, None, None),
            Err(AttestError::UnknownVendor(VendorKind::KeystoneSim))
        );
    }

    #[test]
    fn tampered_measurement_breaks_signature() {
        let (_v, enclave, roots) = setup(VendorKind::SgxSim);
        let mut quote = enclave.quote(b"ud");
        quote.document.measurement = [0x99; 32];
        // Evidence no longer matches the measurement, or the signature
        // fails — either way, rejected.
        assert!(quote.verify(&roots, None, None).is_err());
    }

    #[test]
    fn tampered_user_data_breaks_signature() {
        let (_v, enclave, roots) = setup(VendorKind::NitroSim);
        let mut quote = enclave.quote(b"honest");
        quote.document.user_data = b"tampered".to_vec();
        assert_eq!(
            quote.verify(&roots, None, None),
            Err(AttestError::BadQuoteSignature)
        );
    }

    #[test]
    fn evidence_vendor_mixup_rejected() {
        let (_v, enclave, roots) = setup(VendorKind::SgxSim);
        let mut quote = enclave.quote(b"ud");
        quote.document.evidence = PlatformEvidence::Keystone {
            sm_hash: [0; 32],
            runtime_hash: quote.document.measurement,
        };
        assert!(quote.verify(&roots, None, None).is_err());
    }

    #[test]
    fn cross_vendor_cert_rejected() {
        // A quote claiming Nitro but certified by the SGX root fails.
        let (sgx_vendor, enclave, _) = setup(VendorKind::SgxSim);
        let quote = enclave.quote(b"ud");
        let roots = VendorRoots::new(vec![(VendorKind::NitroSim, sgx_vendor.root_key())]);
        // The document says SgxSim, for which no root is pinned.
        assert!(matches!(
            quote.verify(&roots, None, None),
            Err(AttestError::UnknownVendor(_))
        ));
    }

    #[test]
    fn logical_time_increases() {
        let (_v, enclave, _roots) = setup(VendorKind::SgxSim);
        let q1 = enclave.quote(b"a");
        let q2 = enclave.quote(b"b");
        assert!(q2.document.logical_time > q1.document.logical_time);
    }
}
