//! Devices and launched enclaves: measurement, quoting, sealed storage.

use crate::attest::{AttestationDocument, PlatformEvidence, Quote};
use crate::vendor::{DeviceCert, VendorKind};
use distrust_crypto::drbg::HmacDrbg;
use distrust_crypto::hmac::{hkdf, hmac_sha256};
use distrust_crypto::schnorr::SigningKey;
use distrust_crypto::sha256::Digest;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A provisioned secure device (pre-launch): certified attestation key and
/// a device-unique sealing secret.
pub struct SecureDevice {
    attestation_key: SigningKey,
    cert: DeviceCert,
    sealing_secret: [u8; 32],
}

impl SecureDevice {
    pub(crate) fn new(
        attestation_key: SigningKey,
        cert: DeviceCert,
        sealing_secret: [u8; 32],
    ) -> Self {
        Self {
            attestation_key,
            cert,
            sealing_secret,
        }
    }

    /// The device certificate.
    pub fn cert(&self) -> &DeviceCert {
        &self.cert
    }

    /// The device's ecosystem.
    pub fn vendor(&self) -> VendorKind {
        self.cert.vendor
    }

    /// Launches an enclave with code measured as `measurement`. The
    /// measurement is fixed at launch — matching real TEEs, where changing
    /// the code means launching a new enclave (this is exactly why the
    /// paper needs the indirection of a framework + sandbox for updates).
    pub fn launch(self, measurement: Digest) -> Enclave {
        Enclave {
            inner: Arc::new(EnclaveInner {
                device: self,
                measurement,
                clock: AtomicU64::new(1),
            }),
        }
    }
}

struct EnclaveInner {
    device: SecureDevice,
    measurement: Digest,
    clock: AtomicU64,
}

/// A launched enclave. Cheap to clone (shared handle) so the framework and
/// its proxy threads can quote concurrently.
#[derive(Clone)]
pub struct Enclave {
    inner: Arc<EnclaveInner>,
}

/// Sealed-blob framing: nonce (32) || ciphertext || tag (32).
const SEAL_NONCE_LEN: usize = 32;
const SEAL_TAG_LEN: usize = 32;

impl Enclave {
    /// The code measurement this enclave was launched with.
    pub fn measurement(&self) -> Digest {
        self.inner.measurement
    }

    /// The device certificate.
    pub fn cert(&self) -> &DeviceCert {
        &self.inner.device.cert
    }

    /// The ecosystem this enclave runs on.
    pub fn vendor(&self) -> VendorKind {
        self.inner.device.cert.vendor
    }

    /// Current logical time (monotonic per enclave).
    pub fn logical_time(&self) -> u64 {
        self.inner.clock.load(Ordering::SeqCst)
    }

    /// Produces a signed quote binding `user_data` (log head, nonce, …) to
    /// the launch measurement, with vendor-shaped platform evidence.
    pub fn quote(&self, user_data: &[u8]) -> Quote {
        let t = self.inner.clock.fetch_add(1, Ordering::SeqCst);
        let measurement = self.inner.measurement;
        let evidence = match self.vendor() {
            VendorKind::SgxSim => PlatformEvidence::Sgx {
                mr_enclave: measurement,
                mr_signer: distrust_crypto::sha256_many(&[
                    b"mr-signer",
                    &self.inner.device.cert.device_id,
                ]),
                isv_svn: 1,
            },
            VendorKind::NitroSim => PlatformEvidence::Nitro {
                pcrs: vec![
                    measurement,
                    distrust_crypto::sha256_many(&[b"pcr1-kernel"]),
                    distrust_crypto::sha256_many(&[b"pcr2-app"]),
                ],
                module_id: format!(
                    "i-sim-{:02x}{:02x}",
                    self.inner.device.cert.device_id[0], self.inner.device.cert.device_id[1]
                ),
            },
            VendorKind::KeystoneSim => PlatformEvidence::Keystone {
                sm_hash: distrust_crypto::sha256_many(&[b"keystone-sm-v1"]),
                runtime_hash: measurement,
            },
        };
        let document = AttestationDocument {
            vendor: self.vendor(),
            device_id: self.inner.device.cert.device_id,
            measurement,
            user_data: user_data.to_vec(),
            logical_time: t,
            evidence,
        };
        let signature = self
            .inner
            .device
            .attestation_key
            .sign(&document.signing_bytes());
        Quote {
            document,
            signature,
            cert: self.inner.device.cert.clone(),
        }
    }

    /// Derives the sealing keys (encryption, MAC) bound to this device
    /// *and* this measurement — a different code version cannot unseal.
    fn sealing_keys(&self) -> ([u8; 32], [u8; 32]) {
        let okm = hkdf(
            b"distrust/tee/seal/v1",
            &self.inner.device.sealing_secret,
            &self.inner.measurement,
            64,
        );
        let mut enc = [0u8; 32];
        let mut mac = [0u8; 32];
        enc.copy_from_slice(&okm[..32]);
        mac.copy_from_slice(&okm[32..]);
        (enc, mac)
    }

    /// Seals `plaintext` to this device + measurement: stream encryption
    /// (HMAC-DRBG keystream) with encrypt-then-MAC integrity.
    pub fn seal<R: rand::RngCore + ?Sized>(&self, plaintext: &[u8], rng: &mut R) -> Vec<u8> {
        let (enc_key, mac_key) = self.sealing_keys();
        let mut nonce = [0u8; SEAL_NONCE_LEN];
        rng.fill_bytes(&mut nonce);
        let mut stream = HmacDrbg::new(&enc_key, &nonce);
        let mut keystream = vec![0u8; plaintext.len()];
        stream.generate(&mut keystream);
        let mut out = Vec::with_capacity(SEAL_NONCE_LEN + plaintext.len() + SEAL_TAG_LEN);
        out.extend_from_slice(&nonce);
        out.extend(plaintext.iter().zip(keystream.iter()).map(|(p, k)| p ^ k));
        let tag = {
            let mut mac = distrust_crypto::hmac::HmacSha256::new(&mac_key);
            mac.update(&out);
            mac.finalize()
        };
        out.extend_from_slice(&tag);
        out
    }

    /// Unseals a blob; `None` if the MAC fails (tampered, or sealed by a
    /// different device/measurement).
    pub fn unseal(&self, sealed: &[u8]) -> Option<Vec<u8>> {
        if sealed.len() < SEAL_NONCE_LEN + SEAL_TAG_LEN {
            return None;
        }
        let (body, tag) = sealed.split_at(sealed.len() - SEAL_TAG_LEN);
        let (enc_key, mac_key) = self.sealing_keys();
        let expect = {
            let mut mac = distrust_crypto::hmac::HmacSha256::new(&mac_key);
            mac.update(body);
            mac.finalize()
        };
        // Non-secret-dependent comparison is fine here (tags are public),
        // but compare exactly.
        if expect != tag {
            return None;
        }
        let (nonce, ciphertext) = body.split_at(SEAL_NONCE_LEN);
        let mut stream = HmacDrbg::new(&enc_key, nonce);
        let mut keystream = vec![0u8; ciphertext.len()];
        stream.generate(&mut keystream);
        Some(
            ciphertext
                .iter()
                .zip(keystream.iter())
                .map(|(c, k)| c ^ k)
                .collect(),
        )
    }

    /// Derives a signing key *inside the enclave*, bound to this device
    /// and this measurement — standard TEE key-derivation practice. The
    /// framework uses it for log-checkpoint signatures; a different code
    /// version (different measurement) derives a different key.
    pub fn derive_signing_key(&self, context: &[u8]) -> SigningKey {
        let mut info = self.inner.measurement.to_vec();
        info.extend_from_slice(context);
        let seed = hkdf(
            b"distrust/tee/derived-key/v1",
            &self.inner.device.sealing_secret,
            &info,
            32,
        );
        SigningKey::derive(&seed, b"enclave-derived")
    }

    /// **Exploit-injection API** (simulation only): hands the enclave's
    /// attestation key to an "attacker", modelling a device-level TEE
    /// break. See the compromise-matrix integration tests.
    pub fn leak_attestation_key(&self) -> SigningKey {
        self.inner.device.attestation_key
    }
}

/// Derives a per-deployment MAC over arbitrary state, used by trust-domain
/// hosts without secure hardware (trust domain 0) to provide *integrity
/// only* storage — making the asymmetry between attested and unattested
/// domains concrete in the type system.
pub fn unattested_state_mac(key: &[u8; 32], state: &[u8]) -> Digest {
    hmac_sha256(key, state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vendor::Vendor;

    fn enclave(kind: VendorKind, measurement: Digest) -> Enclave {
        let vendor = Vendor::new(kind, b"enclave tests");
        let mut rng = HmacDrbg::new(b"enclave rng", kind.name().as_bytes());
        vendor.provision_device(&mut rng).launch(measurement)
    }

    #[test]
    fn seal_unseal_round_trip() {
        let e = enclave(VendorKind::SgxSim, [1; 32]);
        let mut rng = HmacDrbg::new(b"seal rng", b"");
        let secret = b"threshold key share #3";
        let sealed = e.seal(secret, &mut rng);
        assert_eq!(e.unseal(&sealed), Some(secret.to_vec()));
        // Ciphertext is not the plaintext.
        assert!(!sealed.windows(secret.len()).any(|w| w == secret));
    }

    #[test]
    fn tampered_blob_rejected() {
        let e = enclave(VendorKind::NitroSim, [2; 32]);
        let mut rng = HmacDrbg::new(b"seal rng", b"");
        let mut sealed = e.seal(b"data", &mut rng);
        let mid = sealed.len() / 2;
        sealed[mid] ^= 1;
        assert_eq!(e.unseal(&sealed), None);
        assert_eq!(e.unseal(&[0u8; 10]), None);
    }

    #[test]
    fn sealing_bound_to_measurement() {
        // Same device, different measurement → unseal fails. This is the
        // property that makes "seal the framework, not the app" matter:
        // an updated (different) framework could not steal sealed state.
        let vendor = Vendor::new(VendorKind::KeystoneSim, b"bind test");
        let mut rng = HmacDrbg::new(b"rng", b"");
        let device_a = vendor.provision_device(&mut rng);
        let cert_a = device_a.cert().clone();
        let e1 = device_a.launch([1; 32]);
        let mut rng2 = HmacDrbg::new(b"rng", b""); // same stream → same device secrets? No:
        let device_b = vendor.provision_device(&mut rng2);
        let e2 = device_b.launch([9; 32]);
        let sealed = e1.seal(b"secret", &mut rng);
        assert_eq!(e2.unseal(&sealed), None);
        // Also differs across devices even at the same measurement.
        let mut rng3 = HmacDrbg::new(b"rng3", b"");
        let device_c = vendor.provision_device(&mut rng3);
        let e3 = device_c.launch([1; 32]);
        assert_eq!(e3.unseal(&sealed), None);
        let _ = cert_a;
    }

    #[test]
    fn quotes_carry_measurement_and_user_data() {
        let e = enclave(VendorKind::SgxSim, [7; 32]);
        let q = e.quote(b"bound-data");
        assert_eq!(q.document.measurement, [7; 32]);
        assert_eq!(q.document.user_data, b"bound-data");
    }

    #[test]
    fn seal_is_randomized() {
        let e = enclave(VendorKind::SgxSim, [3; 32]);
        let mut rng = HmacDrbg::new(b"seal rng", b"");
        let a = e.seal(b"same plaintext", &mut rng);
        let b = e.seal(b"same plaintext", &mut rng);
        assert_ne!(a, b, "fresh nonce per seal");
        assert_eq!(e.unseal(&a), e.unseal(&b));
    }

    #[test]
    fn empty_plaintext_seals() {
        let e = enclave(VendorKind::NitroSim, [4; 32]);
        let mut rng = HmacDrbg::new(b"seal rng", b"");
        let sealed = e.seal(b"", &mut rng);
        assert_eq!(e.unseal(&sealed), Some(vec![]));
    }

    #[test]
    fn unattested_mac_detects_changes() {
        let key = [9u8; 32];
        let m1 = unattested_state_mac(&key, b"state-v1");
        let m2 = unattested_state_mac(&key, b"state-v2");
        assert_ne!(m1, m2);
        assert_eq!(m1, unattested_state_mac(&key, b"state-v1"));
    }
}
