//! Simulated secure-hardware vendors and device provisioning.
//!
//! The paper (§3.2) wants trust domains on *heterogeneous* secure hardware
//! "to minimize the chance that an exploit in one type of secure hardware
//! compromises the entire system". We simulate three vendor ecosystems —
//! SGX-like, Nitro-like, and Keystone-like — each with its own root of
//! trust and its own attestation evidence format (see [`crate::attest`]).
//!
//! Real hardware cannot be exploited on demand; a simulator can. The
//! [`Vendor::leak_root_key`] API deliberately models a vendor-wide TEE
//! exploit so integration tests can demonstrate exactly which guarantees
//! survive a compromised vendor (the motivation for heterogeneity).

use distrust_crypto::schnorr::{SchnorrSignature, SigningKey, VerifyingKey};
use distrust_wire::codec::{Decode, DecodeError, Encode};

/// The three simulated secure-hardware ecosystems.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VendorKind {
    /// Process-scoped enclave à la Intel SGX.
    SgxSim,
    /// VM-scoped enclave à la AWS Nitro.
    NitroSim,
    /// Open-hardware enclave à la RISC-V Keystone.
    KeystoneSim,
}

impl VendorKind {
    /// All simulated vendors, in the round-robin order deployments use.
    pub const ALL: [VendorKind; 3] = [
        VendorKind::SgxSim,
        VendorKind::NitroSim,
        VendorKind::KeystoneSim,
    ];

    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            VendorKind::SgxSim => "sgx-sim",
            VendorKind::NitroSim => "nitro-sim",
            VendorKind::KeystoneSim => "keystone-sim",
        }
    }
}

impl Encode for VendorKind {
    fn encode(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            VendorKind::SgxSim => 0,
            VendorKind::NitroSim => 1,
            VendorKind::KeystoneSim => 2,
        };
        tag.encode(out);
    }
}

impl Decode for VendorKind {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(input)? {
            0 => Ok(VendorKind::SgxSim),
            1 => Ok(VendorKind::NitroSim),
            2 => Ok(VendorKind::KeystoneSim),
            other => Err(DecodeError::InvalidTag(other)),
        }
    }
}

/// Domain tag for device certificate signatures.
const CERT_DST: &[u8] = b"distrust/tee/device-cert/v1";

/// A certificate binding a device key to a vendor root.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeviceCert {
    /// Issuing vendor.
    pub vendor: VendorKind,
    /// Unique device identifier.
    pub device_id: [u8; 16],
    /// The device's attestation public key.
    pub device_key: VerifyingKey,
    /// Vendor root signature over the above.
    pub signature: SchnorrSignature,
}

impl DeviceCert {
    fn signing_bytes(
        vendor: VendorKind,
        device_id: &[u8; 16],
        device_key: &VerifyingKey,
    ) -> Vec<u8> {
        let mut out = CERT_DST.to_vec();
        vendor.encode(&mut out);
        device_id.encode(&mut out);
        out.extend_from_slice(&device_key.to_bytes());
        out
    }

    /// Verifies the certificate chain link against a vendor root key.
    pub fn verify(&self, root: &VerifyingKey) -> bool {
        let msg = Self::signing_bytes(self.vendor, &self.device_id, &self.device_key);
        root.verify(&msg, &self.signature)
    }
}

impl Encode for DeviceCert {
    fn encode(&self, out: &mut Vec<u8>) {
        self.vendor.encode(out);
        self.device_id.encode(out);
        self.device_key.to_bytes().encode(out);
        self.signature.to_bytes().encode(out);
    }
}

impl Decode for DeviceCert {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let vendor = VendorKind::decode(input)?;
        let device_id = <[u8; 16]>::decode(input)?;
        let key_bytes = <[u8; 48]>::decode(input)?;
        let sig_bytes = <[u8; 80]>::decode(input)?;
        Ok(Self {
            vendor,
            device_id,
            device_key: VerifyingKey::from_bytes(&key_bytes)
                .ok_or(DecodeError::Invalid("device key"))?,
            signature: SchnorrSignature::from_bytes(&sig_bytes)
                .ok_or(DecodeError::Invalid("cert signature"))?,
        })
    }
}

/// A simulated vendor: the root of trust for one hardware ecosystem.
pub struct Vendor {
    kind: VendorKind,
    root: SigningKey,
    /// Monotonic device counter (device ids must be unique per vendor).
    next_device: std::sync::atomic::AtomicU64,
}

impl Vendor {
    /// Creates a vendor with a deterministic root derived from `seed`
    /// (tests and reproducible deployments) — use distinct seeds per
    /// deployment in production-shaped code.
    pub fn new(kind: VendorKind, seed: &[u8]) -> Self {
        Self {
            kind,
            root: SigningKey::derive(seed, kind.name().as_bytes()),
            next_device: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The vendor's ecosystem.
    pub fn kind(&self) -> VendorKind {
        self.kind
    }

    /// The public root key clients pin.
    pub fn root_key(&self) -> VerifyingKey {
        self.root.verifying_key()
    }

    /// Manufactures a new device: fresh device key, certified by the root,
    /// with a device-unique sealing secret.
    pub fn provision_device<R: rand::RngCore + ?Sized>(
        &self,
        rng: &mut R,
    ) -> crate::enclave::SecureDevice {
        let seq = self
            .next_device
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        let mut device_id = [0u8; 16];
        rng.fill_bytes(&mut device_id[..8]);
        device_id[8..].copy_from_slice(&seq.to_le_bytes());
        let device_key = SigningKey::generate(rng);
        let mut sealing_secret = [0u8; 32];
        rng.fill_bytes(&mut sealing_secret);
        let msg = DeviceCert::signing_bytes(self.kind, &device_id, &device_key.verifying_key());
        let cert = DeviceCert {
            vendor: self.kind,
            device_id,
            device_key: device_key.verifying_key(),
            signature: self.root.sign(&msg),
        };
        crate::enclave::SecureDevice::new(device_key, cert, sealing_secret)
    }

    /// **Exploit-injection API** (simulation only): models a vendor-wide
    /// compromise by handing out the root signing key, with which an
    /// attacker can mint fake devices and forge attestation for this
    /// vendor's entire ecosystem. Used by security tests to demonstrate
    /// the value of heterogeneous hardware (§3.2).
    pub fn leak_root_key(&self) -> SigningKey {
        self.root
    }
}

/// The set of vendor root keys a verifier pins.
#[derive(Clone, Debug)]
pub struct VendorRoots {
    entries: Vec<(VendorKind, VerifyingKey)>,
}

impl VendorRoots {
    /// Builds from explicit entries.
    pub fn new(entries: Vec<(VendorKind, VerifyingKey)>) -> Self {
        Self { entries }
    }

    /// Collects the public roots of a set of vendors.
    pub fn from_vendors(vendors: &[Vendor]) -> Self {
        Self {
            entries: vendors.iter().map(|v| (v.kind(), v.root_key())).collect(),
        }
    }

    /// The pinned root for `kind`, if any.
    pub fn root_for(&self, kind: VendorKind) -> Option<&VerifyingKey> {
        self.entries
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, key)| key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distrust_crypto::drbg::HmacDrbg;

    #[test]
    fn vendor_kind_wire_round_trip() {
        for kind in VendorKind::ALL {
            assert_eq!(VendorKind::from_wire(&kind.to_wire()), Ok(kind));
        }
        assert!(VendorKind::from_wire(&[9]).is_err());
    }

    #[test]
    fn provisioned_device_cert_verifies() {
        let vendor = Vendor::new(VendorKind::SgxSim, b"seed-1");
        let mut rng = HmacDrbg::new(b"device rng", b"");
        let device = vendor.provision_device(&mut rng);
        assert!(device.cert().verify(&vendor.root_key()));
    }

    #[test]
    fn cert_rejected_by_wrong_root() {
        let vendor_a = Vendor::new(VendorKind::SgxSim, b"seed-a");
        let vendor_b = Vendor::new(VendorKind::SgxSim, b"seed-b");
        let mut rng = HmacDrbg::new(b"device rng", b"");
        let device = vendor_a.provision_device(&mut rng);
        assert!(!device.cert().verify(&vendor_b.root_key()));
    }

    #[test]
    fn cert_tamper_detected() {
        let vendor = Vendor::new(VendorKind::NitroSim, b"seed");
        let mut rng = HmacDrbg::new(b"device rng", b"");
        let device = vendor.provision_device(&mut rng);
        let mut cert = device.cert().clone();
        cert.device_id[0] ^= 1;
        assert!(!cert.verify(&vendor.root_key()));
        let mut cert = device.cert().clone();
        cert.vendor = VendorKind::KeystoneSim;
        assert!(!cert.verify(&vendor.root_key()));
    }

    #[test]
    fn cert_wire_round_trip() {
        let vendor = Vendor::new(VendorKind::KeystoneSim, b"seed");
        let mut rng = HmacDrbg::new(b"device rng", b"");
        let device = vendor.provision_device(&mut rng);
        let cert = device.cert();
        let decoded = DeviceCert::from_wire(&cert.to_wire()).unwrap();
        assert_eq!(&decoded, cert);
        assert!(decoded.verify(&vendor.root_key()));
    }

    #[test]
    fn device_ids_unique() {
        let vendor = Vendor::new(VendorKind::SgxSim, b"seed");
        let mut rng = HmacDrbg::new(b"device rng", b"");
        let a = vendor.provision_device(&mut rng);
        let b = vendor.provision_device(&mut rng);
        assert_ne!(a.cert().device_id, b.cert().device_id);
    }

    #[test]
    fn leaked_root_forges_certs() {
        // The exploit-injection API really does enable forgery — this is
        // the negative control the heterogeneity tests rely on.
        let vendor = Vendor::new(VendorKind::SgxSim, b"seed");
        let stolen = vendor.leak_root_key();
        let mut rng = HmacDrbg::new(b"attacker rng", b"");
        let fake_key = SigningKey::generate(&mut rng);
        let device_id = [0xee; 16];
        let msg =
            DeviceCert::signing_bytes(VendorKind::SgxSim, &device_id, &fake_key.verifying_key());
        let forged = DeviceCert {
            vendor: VendorKind::SgxSim,
            device_id,
            device_key: fake_key.verifying_key(),
            signature: stolen.sign(&msg),
        };
        assert!(forged.verify(&vendor.root_key()));
    }

    #[test]
    fn roots_lookup() {
        let vendors: Vec<Vendor> = VendorKind::ALL
            .iter()
            .map(|k| Vendor::new(*k, b"seed"))
            .collect();
        let roots = VendorRoots::from_vendors(&vendors);
        for v in &vendors {
            assert_eq!(roots.root_for(v.kind()), Some(&v.root_key()));
        }
        let partial = VendorRoots::new(vec![(VendorKind::SgxSim, vendors[0].root_key())]);
        assert!(partial.root_for(VendorKind::NitroSim).is_none());
    }
}
