//! Minimal request/response RPC over a [`Transport`].
//!
//! One in-flight request per connection (the deployment's clients are
//! sequential auditors and signers, not high-fanout proxies) and explicit
//! status codes. Two server shapes share the same [`RpcHandler`] trait and
//! wire protocol:
//!
//! * [`RpcServer`] — the original thread-per-connection blocking loop.
//!   Simple, fine for tens of clients, one OS thread per socket.
//! * [`EventLoopRpcServer`] — multiplexes thousands of connections onto a
//!   small fixed pool of [`Reactor`] threads with non-blocking sockets and
//!   resumable framing (see [`crate::reactor`] / [`crate::frame_nb`]).

use crate::codec::{Decode, DecodeError, Encode};
use crate::reactor::{FrameService, Reactor};
use crate::sync::HealthyMutex;
use crate::transport::{TcpAcceptor, TcpTransport, Transport, TransportError};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// RPC-level errors.
#[derive(Debug)]
pub enum RpcError {
    /// Transport failure.
    Transport(TransportError),
    /// Response failed to decode.
    Decode(DecodeError),
    /// Server answered with an application error string.
    Remote(String),
}

impl core::fmt::Display for RpcError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Transport(e) => write!(f, "rpc transport error: {e}"),
            Self::Decode(e) => write!(f, "rpc decode error: {e}"),
            Self::Remote(msg) => write!(f, "remote error: {msg}"),
        }
    }
}

impl std::error::Error for RpcError {}

impl From<TransportError> for RpcError {
    fn from(e: TransportError) -> Self {
        Self::Transport(e)
    }
}

impl From<DecodeError> for RpcError {
    fn from(e: DecodeError) -> Self {
        Self::Decode(e)
    }
}

/// Wire envelope: `0x00` = ok + payload, `0x01` = error + utf-8 message.
fn encode_ok(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 1);
    out.push(0x00);
    out.extend_from_slice(payload);
    out
}

fn encode_err(message: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(message.len() + 1);
    out.push(0x01);
    out.extend_from_slice(message.as_bytes());
    out
}

fn decode_envelope(frame: Vec<u8>) -> Result<Vec<u8>, RpcError> {
    match frame.split_first() {
        Some((0x00, payload)) => Ok(payload.to_vec()),
        Some((0x01, msg)) => Err(RpcError::Remote(String::from_utf8_lossy(msg).into_owned())),
        _ => Err(RpcError::Decode(DecodeError::UnexpectedEnd)),
    }
}

/// Client endpoint: typed call over any transport.
pub struct RpcClient<T: Transport> {
    transport: T,
}

impl<T: Transport> RpcClient<T> {
    /// Wraps a connected transport.
    pub fn new(transport: T) -> Self {
        Self { transport }
    }

    /// Sends `request`, blocks for the response, decodes it.
    pub fn call<Req: Encode, Resp: Decode>(&mut self, request: &Req) -> Result<Resp, RpcError> {
        self.transport.send(&request.to_wire())?;
        let frame = self.transport.recv()?;
        let payload = decode_envelope(frame)?;
        Ok(Resp::from_wire(&payload)?)
    }
}

impl RpcClient<TcpTransport> {
    /// Connects over TCP.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        Ok(Self::new(TcpTransport::connect(addr)?))
    }
}

/// Server handler: decodes a request, produces a response or error string.
pub trait RpcHandler<Req: Decode, Resp: Encode>: Send + Sync + 'static {
    /// Handles one request.
    fn handle(&self, request: Req) -> Result<Resp, String>;
}

impl<Req: Decode, Resp: Encode, F> RpcHandler<Req, Resp> for F
where
    F: Fn(Req) -> Result<Resp, String> + Send + Sync + 'static,
{
    fn handle(&self, request: Req) -> Result<Resp, String> {
        self.handle_impl(request)
    }
}

trait HandlerImpl<Req, Resp> {
    fn handle_impl(&self, request: Req) -> Result<Resp, String>;
}

impl<Req, Resp, F> HandlerImpl<Req, Resp> for F
where
    F: Fn(Req) -> Result<Resp, String>,
{
    fn handle_impl(&self, request: Req) -> Result<Resp, String> {
        self(request)
    }
}

/// Accepts one connection, retrying through errors (EMFILE spikes, clients
/// racing RST) — they must not kill the listener. There is no give-up
/// threshold: an accept loop that quit after a burst of errors would leave
/// a zombie server object that looks alive but accepts nothing, with no way
/// for the host to notice. Instead retries back off exponentially (10 ms
/// doubling to a 500 ms ceiling) so a sustained storm, like fd exhaustion,
/// costs almost no CPU, yet the listener recovers within half a second of
/// the condition clearing. Returns `None` only once the stop flag is set.
///
/// Public because every accept loop in the workspace shares this
/// contract — [`RpcServer`], the event-loop server, and the TEE enclave
/// proxy all retry through the same helper instead of each growing its
/// own subtly different zombie-listener bug.
pub fn accept_with_retry<T>(
    label: &str,
    stop: &AtomicBool,
    consecutive_errors: &mut u32,
    mut accept: impl FnMut() -> std::io::Result<T>,
) -> Option<T> {
    loop {
        if stop.load(Ordering::SeqCst) {
            return None;
        }
        match accept() {
            Ok(t) => {
                *consecutive_errors = 0;
                return Some(t);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => {
                if stop.load(Ordering::SeqCst) {
                    return None;
                }
                *consecutive_errors = consecutive_errors.saturating_add(1);
                // Log the onset of a storm and a heartbeat thereafter, not
                // every retry.
                if *consecutive_errors <= 3 || consecutive_errors.is_multiple_of(100) {
                    eprintln!("{label}: accept error (retry #{consecutive_errors}): {e}");
                }
                let backoff_ms = (10u64 << (*consecutive_errors - 1).min(6)).min(500);
                std::thread::sleep(std::time::Duration::from_millis(backoff_ms));
            }
        }
    }
}

/// A connection thread plus a cloned socket handle the supervisor can shut
/// down to unblock it.
struct ConnSlot {
    socket: TcpStream,
    thread: JoinHandle<()>,
}

/// A running TCP RPC server. Threads are reaped on [`RpcServer::shutdown`]:
/// the accept loop *and* every connection thread, whose sockets are shut
/// down first so readers parked in `recv` unblock.
pub struct RpcServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    conns: Arc<HealthyMutex<Vec<ConnSlot>>>,
}

impl RpcServer {
    /// Binds a loopback listener and serves `handler` on a thread per
    /// connection until shutdown.
    pub fn spawn<Req, Resp, H>(handler: Arc<H>) -> std::io::Result<Self>
    where
        Req: Decode + Send + 'static,
        Resp: Encode + Send + 'static,
        H: RpcHandler<Req, Resp>,
    {
        let acceptor = TcpAcceptor::bind_loopback()?;
        let addr = acceptor.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<HealthyMutex<Vec<ConnSlot>>> = Arc::new(HealthyMutex::new(Vec::new()));
        let stop_accept = Arc::clone(&stop);
        let conns_accept = Arc::clone(&conns);
        let accept_thread = std::thread::Builder::new()
            .name(format!("rpc-accept-{addr}"))
            .spawn(move || {
                let label = format!("rpc-accept-{addr}");
                let mut consecutive_errors = 0u32;
                loop {
                    let Some(transport) =
                        accept_with_retry(&label, &stop_accept, &mut consecutive_errors, || {
                            acceptor.accept()
                        })
                    else {
                        break;
                    };
                    if stop_accept.load(Ordering::SeqCst) {
                        break;
                    }
                    let socket = match transport.try_clone_stream() {
                        Ok(s) => s,
                        Err(e) => {
                            // Without the clone the supervisor cannot unblock
                            // the connection at shutdown; refuse it loudly
                            // rather than dropping the socket without a trace.
                            eprintln!("{label}: failed to clone accepted socket: {e}");
                            continue;
                        }
                    };
                    let handler = Arc::clone(&handler);
                    let stop_conn = Arc::clone(&stop_accept);
                    match std::thread::Builder::new()
                        .name("rpc-conn".to_string())
                        .spawn(move || serve_connection(transport, handler, stop_conn))
                    {
                        Ok(thread) => {
                            // Opportunistically reap finished threads so the
                            // registry tracks live connections, not history.
                            // Even a finished thread's `join` is a blocking
                            // call, so joins run only after the registry
                            // guard is dropped.
                            let mut finished = Vec::new();
                            {
                                let mut slots = conns_accept.lock_healthy();
                                let mut i = 0;
                                while i < slots.len() {
                                    if slots[i].thread.is_finished() {
                                        finished.push(slots.swap_remove(i));
                                    } else {
                                        i += 1;
                                    }
                                }
                                slots.push(ConnSlot { socket, thread });
                            }
                            for slot in finished {
                                let _ = slot.thread.join();
                            }
                        }
                        Err(e) => {
                            // Out of threads: refuse loudly instead of silently
                            // dropping the socket on the floor.
                            eprintln!("{label}: failed to spawn connection thread: {e}");
                            let _ = socket.shutdown(Shutdown::Both);
                        }
                    }
                }
            })?;
        Ok(Self {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            conns,
        })
    }

    /// The address clients should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, unblocks every connection thread by shutting down
    /// its socket, and joins them all. No thread outlives this call.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the accept loop awake with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // With the accept loop gone, no new slots can appear; drain and
        // reap. Shutting the socket forces a blocked `recv` to error out.
        let slots = std::mem::take(&mut *self.conns.lock_healthy());
        for slot in &slots {
            let _ = slot.socket.shutdown(Shutdown::Both);
        }
        for slot in slots {
            let _ = slot.thread.join();
        }
    }
}

impl Drop for RpcServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection<Req, Resp, H>(
    mut transport: TcpTransport,
    handler: Arc<H>,
    stop: Arc<AtomicBool>,
) where
    Req: Decode,
    Resp: Encode,
    H: RpcHandler<Req, Resp>,
{
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let frame = match transport.recv() {
            Ok(f) => f,
            Err(_) => break,
        };
        let reply = match Req::from_wire(&frame) {
            Ok(request) => match handler.handle(request) {
                Ok(resp) => encode_ok(&resp.to_wire()),
                Err(msg) => encode_err(&msg),
            },
            Err(e) => encode_err(&format!("malformed request: {e}")),
        };
        if transport.send(&reply).is_err() {
            break;
        }
    }
}

/// Builds the envelope-speaking [`FrameService`] shared by every reactor
/// thread: decode request → dispatch handler → encode ok/err envelope.
fn envelope_service<Req, Resp, H>(handler: Arc<H>) -> FrameService
where
    Req: Decode + Send + 'static,
    Resp: Encode + Send + 'static,
    H: RpcHandler<Req, Resp>,
{
    Arc::new(move |frame: &[u8]| match Req::from_wire(frame) {
        Ok(request) => match handler.handle(request) {
            Ok(resp) => encode_ok(&resp.to_wire()),
            Err(msg) => encode_err(&msg),
        },
        Err(e) => encode_err(&format!("malformed request: {e}")),
    })
}

/// A readiness-based RPC server: one accept thread plus a small fixed pool
/// of reactor threads multiplexing every connection with non-blocking
/// sockets. Speaks the exact wire protocol of [`RpcServer`], so
/// [`RpcClient`] works against either unchanged.
pub struct EventLoopRpcServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    reactor: Reactor,
}

impl EventLoopRpcServer {
    /// Reactor threads used by [`EventLoopRpcServer::spawn`]. With the
    /// accept thread this keeps the whole server within a handful of OS
    /// threads regardless of connection count.
    pub const DEFAULT_REACTOR_THREADS: usize = 4;

    /// Binds a loopback listener and serves `handler` on the default pool.
    pub fn spawn<Req, Resp, H>(handler: Arc<H>) -> std::io::Result<Self>
    where
        Req: Decode + Send + 'static,
        Resp: Encode + Send + 'static,
        H: RpcHandler<Req, Resp>,
    {
        Self::spawn_with_threads(handler, Self::DEFAULT_REACTOR_THREADS)
    }

    /// As [`EventLoopRpcServer::spawn`] with an explicit pool size.
    pub fn spawn_with_threads<Req, Resp, H>(
        handler: Arc<H>,
        reactor_threads: usize,
    ) -> std::io::Result<Self>
    where
        Req: Decode + Send + 'static,
        Resp: Encode + Send + 'static,
        H: RpcHandler<Req, Resp>,
    {
        Self::spawn_frames(envelope_service(handler), reactor_threads)
    }

    /// Serves raw frames (no ok/err envelope) through the reactor. This is
    /// the layer the trust-domain hosts use: their protocol encodes errors
    /// inside the response message itself, and their existing clients speak
    /// plain frames.
    pub fn spawn_frames(service: FrameService, reactor_threads: usize) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let reactor = Reactor::spawn(service, reactor_threads)?;
        let handle = reactor.handle();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_accept = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name(format!("rpc-evl-accept-{addr}"))
            .spawn(move || {
                let label = format!("rpc-evl-accept-{addr}");
                let mut consecutive_errors = 0u32;
                loop {
                    let Some(stream) =
                        accept_with_retry(&label, &stop_accept, &mut consecutive_errors, || {
                            listener.accept().map(|(s, _)| s)
                        })
                    else {
                        break;
                    };
                    if stop_accept.load(Ordering::SeqCst) {
                        break;
                    }
                    if handle.register(stream).is_err() {
                        break;
                    }
                }
            })?;
        Ok(Self {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            reactor,
        })
    }

    /// The address clients should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, closes every multiplexed connection, and joins the
    /// accept thread and the reactor pool. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the accept loop awake with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.reactor.shutdown();
    }
}

impl Drop for EventLoopRpcServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_server() {
        let handler = Arc::new(|req: Vec<u8>| -> Result<Vec<u8>, String> { Ok(req) });
        let mut server = RpcServer::spawn::<Vec<u8>, Vec<u8>, _>(handler).unwrap();
        let mut client = RpcClient::connect(server.local_addr()).unwrap();
        let resp: Vec<u8> = client.call(&b"hello rpc".to_vec()).unwrap();
        assert_eq!(resp, b"hello rpc");
        server.shutdown();
    }

    #[test]
    fn remote_errors_propagate() {
        let handler = Arc::new(|_req: u64| -> Result<u64, String> { Err("nope".to_string()) });
        let mut server = RpcServer::spawn::<u64, u64, _>(handler).unwrap();
        let mut client = RpcClient::connect(server.local_addr()).unwrap();
        match client.call::<u64, u64>(&7) {
            Err(RpcError::Remote(msg)) => assert_eq!(msg, "nope"),
            other => panic!("expected remote error, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn malformed_request_reported() {
        // Handler expects u64 (8 bytes); send 3 bytes.
        let handler = Arc::new(|req: u64| -> Result<u64, String> { Ok(req + 1) });
        let mut server = RpcServer::spawn::<u64, u64, _>(handler).unwrap();
        let mut t = TcpTransport::connect(server.local_addr()).unwrap();
        t.send(&[1, 2, 3]).unwrap();
        let frame = t.recv().unwrap();
        assert_eq!(frame[0], 0x01, "error envelope");
        server.shutdown();
    }

    #[test]
    fn multiple_sequential_calls() {
        let handler = Arc::new(|req: u64| -> Result<u64, String> { Ok(req * 2) });
        let mut server = RpcServer::spawn::<u64, u64, _>(handler).unwrap();
        let mut client = RpcClient::connect(server.local_addr()).unwrap();
        for i in 0..20u64 {
            let doubled: u64 = client.call(&i).unwrap();
            assert_eq!(doubled, i * 2);
        }
        server.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let handler = Arc::new(|req: u64| -> Result<u64, String> { Ok(req + 100) });
        let server = Arc::new(HealthyMutex::new(
            RpcServer::spawn::<u64, u64, _>(handler).unwrap(),
        ));
        let addr = server.lock_healthy().local_addr();
        let mut joins = Vec::new();
        for i in 0..8u64 {
            joins.push(std::thread::spawn(move || {
                let mut client = RpcClient::connect(addr).unwrap();
                let resp: u64 = client.call(&i).unwrap();
                assert_eq!(resp, i + 100);
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        server.lock_healthy().shutdown();
    }

    /// Regression (ISSUE 2): a connection thread parked in `recv` used to
    /// outlive `shutdown`, which only joined the accept thread. Every
    /// connection thread holds a clone of the handler `Arc` for its whole
    /// lifetime, so the strong count observes the leak directly.
    #[test]
    fn shutdown_reaps_connection_blocked_in_recv() {
        let handler = Arc::new(|req: u64| -> Result<u64, String> { Ok(req) });
        let mut server = RpcServer::spawn::<u64, u64, _>(Arc::clone(&handler)).unwrap();
        let mut client = RpcClient::connect(server.local_addr()).unwrap();
        // One call guarantees the connection thread is up and serving...
        let _: u64 = client.call(&1u64).unwrap();
        // ...and now it is parked in `recv` with no request in flight.
        server.shutdown();
        drop(server);
        assert_eq!(
            Arc::strong_count(&handler),
            1,
            "a leaked connection thread still holds the handler"
        );
        // The server closed the socket underneath the idle client.
        assert!(client.call::<u64, u64>(&2).is_err());
    }

    #[test]
    fn event_loop_echo_and_sequential_calls() {
        let handler = Arc::new(|req: u64| -> Result<u64, String> { Ok(req * 3) });
        let mut server = EventLoopRpcServer::spawn::<u64, u64, _>(handler).unwrap();
        let mut client = RpcClient::connect(server.local_addr()).unwrap();
        for i in 0..50u64 {
            let tripled: u64 = client.call(&i).unwrap();
            assert_eq!(tripled, i * 3);
        }
        server.shutdown();
    }

    #[test]
    fn event_loop_remote_errors_propagate() {
        let handler = Arc::new(|req: u64| -> Result<u64, String> {
            if req.is_multiple_of(2) {
                Ok(req)
            } else {
                Err(format!("odd: {req}"))
            }
        });
        let mut server = EventLoopRpcServer::spawn::<u64, u64, _>(handler).unwrap();
        let mut client = RpcClient::connect(server.local_addr()).unwrap();
        assert_eq!(client.call::<u64, u64>(&4).unwrap(), 4);
        match client.call::<u64, u64>(&5) {
            Err(RpcError::Remote(msg)) => assert_eq!(msg, "odd: 5"),
            other => panic!("expected remote error, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn event_loop_malformed_request_reported() {
        let handler = Arc::new(|req: u64| -> Result<u64, String> { Ok(req) });
        let mut server = EventLoopRpcServer::spawn::<u64, u64, _>(handler).unwrap();
        let mut t = TcpTransport::connect(server.local_addr()).unwrap();
        t.send(&[9, 9]).unwrap();
        let frame = t.recv().unwrap();
        assert_eq!(frame[0], 0x01, "error envelope");
        server.shutdown();
    }

    #[test]
    fn event_loop_many_concurrent_clients() {
        let handler = Arc::new(|req: u64| -> Result<u64, String> { Ok(req + 7) });
        let mut server = EventLoopRpcServer::spawn_with_threads::<u64, u64, _>(handler, 2).unwrap();
        let addr = server.local_addr();
        // Far more connections than reactor threads, all open at once.
        let mut clients: Vec<RpcClient<TcpTransport>> = (0..100)
            .map(|_| RpcClient::connect(addr).unwrap())
            .collect();
        for round in 0..3u64 {
            for (i, c) in clients.iter_mut().enumerate() {
                let req = round * 1000 + i as u64;
                assert_eq!(c.call::<u64, u64>(&req).unwrap(), req + 7);
            }
        }
        server.shutdown();
    }

    #[test]
    fn event_loop_shutdown_closes_idle_clients() {
        let handler = Arc::new(|req: u64| -> Result<u64, String> { Ok(req) });
        let mut server = EventLoopRpcServer::spawn::<u64, u64, _>(handler).unwrap();
        let mut client = RpcClient::connect(server.local_addr()).unwrap();
        let _: u64 = client.call(&1u64).unwrap();
        server.shutdown();
        assert!(client.call::<u64, u64>(&2).is_err());
    }

    #[test]
    fn event_loop_large_payload_round_trip() {
        let handler = Arc::new(|req: Vec<u8>| -> Result<Vec<u8>, String> { Ok(req) });
        let mut server = EventLoopRpcServer::spawn::<Vec<u8>, Vec<u8>, _>(handler).unwrap();
        let mut client = RpcClient::connect(server.local_addr()).unwrap();
        let big: Vec<u8> = (0..700_000u32).map(|i| (i * 31) as u8).collect();
        let echoed: Vec<u8> = client.call(&big).unwrap();
        assert_eq!(echoed, big);
        server.shutdown();
    }
}
