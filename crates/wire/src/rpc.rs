//! Minimal request/response RPC over a [`Transport`].
//!
//! One in-flight request per connection (the deployment's clients are
//! sequential auditors and signers, not high-fanout proxies), explicit
//! status codes, and a thread-per-connection server loop in the std-net
//! blocking style the workspace uses throughout.

use crate::codec::{Decode, DecodeError, Encode};
use crate::transport::{TcpAcceptor, TcpTransport, Transport, TransportError};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// RPC-level errors.
#[derive(Debug)]
pub enum RpcError {
    /// Transport failure.
    Transport(TransportError),
    /// Response failed to decode.
    Decode(DecodeError),
    /// Server answered with an application error string.
    Remote(String),
}

impl core::fmt::Display for RpcError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Transport(e) => write!(f, "rpc transport error: {e}"),
            Self::Decode(e) => write!(f, "rpc decode error: {e}"),
            Self::Remote(msg) => write!(f, "remote error: {msg}"),
        }
    }
}

impl std::error::Error for RpcError {}

impl From<TransportError> for RpcError {
    fn from(e: TransportError) -> Self {
        Self::Transport(e)
    }
}

impl From<DecodeError> for RpcError {
    fn from(e: DecodeError) -> Self {
        Self::Decode(e)
    }
}

/// Wire envelope: `0x00` = ok + payload, `0x01` = error + utf-8 message.
fn encode_ok(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 1);
    out.push(0x00);
    out.extend_from_slice(payload);
    out
}

fn encode_err(message: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(message.len() + 1);
    out.push(0x01);
    out.extend_from_slice(message.as_bytes());
    out
}

fn decode_envelope(frame: Vec<u8>) -> Result<Vec<u8>, RpcError> {
    match frame.split_first() {
        Some((0x00, payload)) => Ok(payload.to_vec()),
        Some((0x01, msg)) => Err(RpcError::Remote(String::from_utf8_lossy(msg).into_owned())),
        _ => Err(RpcError::Decode(DecodeError::UnexpectedEnd)),
    }
}

/// Client endpoint: typed call over any transport.
pub struct RpcClient<T: Transport> {
    transport: T,
}

impl<T: Transport> RpcClient<T> {
    /// Wraps a connected transport.
    pub fn new(transport: T) -> Self {
        Self { transport }
    }

    /// Sends `request`, blocks for the response, decodes it.
    pub fn call<Req: Encode, Resp: Decode>(&mut self, request: &Req) -> Result<Resp, RpcError> {
        self.transport.send(&request.to_wire())?;
        let frame = self.transport.recv()?;
        let payload = decode_envelope(frame)?;
        Ok(Resp::from_wire(&payload)?)
    }
}

impl RpcClient<TcpTransport> {
    /// Connects over TCP.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        Ok(Self::new(TcpTransport::connect(addr)?))
    }
}

/// Server handler: decodes a request, produces a response or error string.
pub trait RpcHandler<Req: Decode, Resp: Encode>: Send + Sync + 'static {
    /// Handles one request.
    fn handle(&self, request: Req) -> Result<Resp, String>;
}

impl<Req: Decode, Resp: Encode, F> RpcHandler<Req, Resp> for F
where
    F: Fn(Req) -> Result<Resp, String> + Send + Sync + 'static,
{
    fn handle(&self, request: Req) -> Result<Resp, String> {
        self.handle_impl(request)
    }
}

trait HandlerImpl<Req, Resp> {
    fn handle_impl(&self, request: Req) -> Result<Resp, String>;
}

impl<Req, Resp, F> HandlerImpl<Req, Resp> for F
where
    F: Fn(Req) -> Result<Resp, String>,
{
    fn handle_impl(&self, request: Req) -> Result<Resp, String> {
        self(request)
    }
}

/// A running TCP RPC server. Threads are reaped on [`RpcServer::shutdown`].
pub struct RpcServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl RpcServer {
    /// Binds a loopback listener and serves `handler` on a thread per
    /// connection until shutdown.
    pub fn spawn<Req, Resp, H>(handler: Arc<H>) -> std::io::Result<Self>
    where
        Req: Decode + Send + 'static,
        Resp: Encode + Send + 'static,
        H: RpcHandler<Req, Resp>,
    {
        let acceptor = TcpAcceptor::bind_loopback()?;
        let addr = acceptor.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_accept = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name(format!("rpc-accept-{addr}"))
            .spawn(move || loop {
                if stop_accept.load(Ordering::SeqCst) {
                    break;
                }
                let transport = match acceptor.accept() {
                    Ok(t) => t,
                    Err(_) => break,
                };
                if stop_accept.load(Ordering::SeqCst) {
                    break;
                }
                let handler = Arc::clone(&handler);
                let stop_conn = Arc::clone(&stop_accept);
                let _ = std::thread::Builder::new()
                    .name("rpc-conn".to_string())
                    .spawn(move || serve_connection(transport, handler, stop_conn));
            })?;
        Ok(Self {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and unblocks the accept loop.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the accept loop awake with a throwaway connection.
        let _ = std::net::TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for RpcServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection<Req, Resp, H>(
    mut transport: TcpTransport,
    handler: Arc<H>,
    stop: Arc<AtomicBool>,
) where
    Req: Decode,
    Resp: Encode,
    H: RpcHandler<Req, Resp>,
{
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let frame = match transport.recv() {
            Ok(f) => f,
            Err(_) => break,
        };
        let reply = match Req::from_wire(&frame) {
            Ok(request) => match handler.handle(request) {
                Ok(resp) => encode_ok(&resp.to_wire()),
                Err(msg) => encode_err(&msg),
            },
            Err(e) => encode_err(&format!("malformed request: {e}")),
        };
        if transport.send(&reply).is_err() {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_server() {
        let handler = Arc::new(|req: Vec<u8>| -> Result<Vec<u8>, String> { Ok(req) });
        let mut server = RpcServer::spawn::<Vec<u8>, Vec<u8>, _>(handler).unwrap();
        let mut client = RpcClient::connect(server.local_addr()).unwrap();
        let resp: Vec<u8> = client.call(&b"hello rpc".to_vec()).unwrap();
        assert_eq!(resp, b"hello rpc");
        server.shutdown();
    }

    #[test]
    fn remote_errors_propagate() {
        let handler = Arc::new(|_req: u64| -> Result<u64, String> { Err("nope".to_string()) });
        let mut server = RpcServer::spawn::<u64, u64, _>(handler).unwrap();
        let mut client = RpcClient::connect(server.local_addr()).unwrap();
        match client.call::<u64, u64>(&7) {
            Err(RpcError::Remote(msg)) => assert_eq!(msg, "nope"),
            other => panic!("expected remote error, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn malformed_request_reported() {
        // Handler expects u64 (8 bytes); send 3 bytes.
        let handler = Arc::new(|req: u64| -> Result<u64, String> { Ok(req + 1) });
        let mut server = RpcServer::spawn::<u64, u64, _>(handler).unwrap();
        let mut t = TcpTransport::connect(server.local_addr()).unwrap();
        t.send(&[1, 2, 3]).unwrap();
        let frame = t.recv().unwrap();
        assert_eq!(frame[0], 0x01, "error envelope");
        server.shutdown();
    }

    #[test]
    fn multiple_sequential_calls() {
        let handler = Arc::new(|req: u64| -> Result<u64, String> { Ok(req * 2) });
        let mut server = RpcServer::spawn::<u64, u64, _>(handler).unwrap();
        let mut client = RpcClient::connect(server.local_addr()).unwrap();
        for i in 0..20u64 {
            let doubled: u64 = client.call(&i).unwrap();
            assert_eq!(doubled, i * 2);
        }
        server.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let handler = Arc::new(|req: u64| -> Result<u64, String> { Ok(req + 100) });
        let server = Arc::new(parking_lot::Mutex::new(
            RpcServer::spawn::<u64, u64, _>(handler).unwrap(),
        ));
        let addr = server.lock().local_addr();
        let mut joins = Vec::new();
        for i in 0..8u64 {
            joins.push(std::thread::spawn(move || {
                let mut client = RpcClient::connect(addr).unwrap();
                let resp: u64 = client.call(&i).unwrap();
                assert_eq!(resp, i + 100);
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        server.lock().shutdown();
    }
}
