//! Non-blocking frame state machines for the readiness event loop.
//!
//! [`read_frame`](crate::frame::read_frame) and
//! [`write_frame`](crate::frame::write_frame) assume blocking I/O: they loop
//! until a whole frame has crossed the socket. A readiness loop cannot do
//! that — a connection may be readable for only part of a header, and a
//! write may accept only part of a frame before `WouldBlock`. These types
//! carry the partial state across readiness events:
//!
//! * [`FrameReader`] is fed whatever bytes the socket produced and emits
//!   zero or more complete frames per feed, buffering the rest.
//! * [`WriteBuf`] queues encoded frames and flushes as much as the socket
//!   will take, remembering its position for the next writable event.
//!
//! Both enforce [`MAX_FRAME_LEN`] and grow payload buffers incrementally
//! (never allocating more than [`READ_CHUNK`] ahead of the bytes actually
//! received), matching the blocking path's memory-amplification defence.

use crate::frame::{FrameError, MAX_FRAME_LEN, READ_CHUNK};
use std::io::Write;

/// Incremental decoder: bytes in, complete frames out.
pub struct FrameReader {
    header: [u8; 4],
    header_filled: usize,
    /// Announced payload length; valid only once the header is complete.
    payload_len: usize,
    payload: Vec<u8>,
    in_payload: bool,
}

impl Default for FrameReader {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameReader {
    /// An empty reader, positioned at a frame boundary.
    pub fn new() -> Self {
        Self {
            header: [0u8; 4],
            header_filled: 0,
            payload_len: 0,
            payload: Vec::new(),
            in_payload: false,
        }
    }

    /// True when no partial frame is buffered (a clean close here is a
    /// clean close at a frame boundary).
    pub fn at_boundary(&self) -> bool {
        !self.in_payload && self.header_filled == 0
    }

    /// Consumes `data` (all of it), appending every frame completed by it
    /// to `out`. Returns an error if a header announces more than
    /// [`MAX_FRAME_LEN`]; the reader must be discarded afterwards.
    pub fn feed(&mut self, mut data: &[u8], out: &mut Vec<Vec<u8>>) -> Result<(), FrameError> {
        while !data.is_empty() {
            if !self.in_payload {
                let take = (4 - self.header_filled).min(data.len());
                let (head, rest) = data.split_at(take);
                for (dst, &src) in self.header.iter_mut().skip(self.header_filled).zip(head) {
                    *dst = src;
                }
                self.header_filled += take;
                data = rest;
                if self.header_filled < 4 {
                    return Ok(());
                }
                let len = u32::from_le_bytes(self.header) as usize;
                if len > MAX_FRAME_LEN {
                    return Err(FrameError::Oversized(len));
                }
                self.payload_len = len;
                self.payload = Vec::with_capacity(len.min(READ_CHUNK));
                self.in_payload = true;
            }
            let take = (self.payload_len - self.payload.len()).min(data.len());
            // Cap speculative growth: reserve for the received bytes only.
            let (chunk, rest) = data.split_at(take);
            self.payload.extend_from_slice(chunk);
            data = rest;
            if self.payload.len() == self.payload_len {
                out.push(std::mem::take(&mut self.payload));
                self.header_filled = 0;
                self.in_payload = false;
            }
        }
        Ok(())
    }
}

/// Outbound byte queue with a flush cursor that survives `WouldBlock`.
#[derive(Default)]
pub struct WriteBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl WriteBuf {
    /// An empty write buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes queued but not yet accepted by the socket.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when everything queued has been flushed.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Encodes one frame (length prefix + payload) onto the queue.
    pub fn push_frame(&mut self, payload: &[u8]) -> Result<(), FrameError> {
        if payload.len() > MAX_FRAME_LEN {
            return Err(FrameError::Oversized(payload.len()));
        }
        // Reclaim the flushed prefix before growing.
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.reserve(4 + payload.len());
        self.buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(payload);
        Ok(())
    }

    /// Writes as much queued data as the writer accepts. Returns `Ok(true)`
    /// once the queue is empty, `Ok(false)` on `WouldBlock` (call again on
    /// the next writable event), and any other I/O error verbatim.
    pub fn flush<W: Write>(&mut self, writer: &mut W) -> std::io::Result<bool> {
        while self.pos < self.buf.len() {
            match writer.write(&self.buf[self.pos..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => self.pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.pos = 0;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::write_frame;

    fn encode(payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::new();
        write_frame(&mut buf, payload).unwrap();
        buf
    }

    #[test]
    fn byte_at_a_time_reassembly() {
        let wire = encode(b"trickled");
        let mut reader = FrameReader::new();
        let mut out = Vec::new();
        for b in &wire {
            reader.feed(std::slice::from_ref(b), &mut out).unwrap();
        }
        assert_eq!(out, vec![b"trickled".to_vec()]);
        assert!(reader.at_boundary());
    }

    #[test]
    fn many_frames_in_one_feed() {
        let mut wire = encode(b"one");
        wire.extend_from_slice(&encode(b""));
        wire.extend_from_slice(&encode(&[7u8; 300]));
        let mut reader = FrameReader::new();
        let mut out = Vec::new();
        reader.feed(&wire, &mut out).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], b"one");
        assert_eq!(out[1], b"");
        assert_eq!(out[2], vec![7u8; 300]);
    }

    #[test]
    fn split_across_feeds_mid_header_and_mid_payload() {
        let wire = encode(&[0xaa; 100]);
        let mut reader = FrameReader::new();
        let mut out = Vec::new();
        reader.feed(&wire[..2], &mut out).unwrap(); // half a header
        assert!(out.is_empty());
        assert!(!reader.at_boundary());
        reader.feed(&wire[2..50], &mut out).unwrap(); // header + part payload
        assert!(out.is_empty());
        reader.feed(&wire[50..], &mut out).unwrap();
        assert_eq!(out, vec![vec![0xaa; 100]]);
    }

    #[test]
    fn oversized_header_rejected_before_payload() {
        let mut reader = FrameReader::new();
        let mut out = Vec::new();
        let bad = (u32::MAX).to_le_bytes();
        assert!(matches!(
            reader.feed(&bad, &mut out),
            Err(FrameError::Oversized(_))
        ));
    }

    #[test]
    fn announced_large_frame_allocates_lazily() {
        let mut header = (MAX_FRAME_LEN as u32).to_le_bytes().to_vec();
        header.extend_from_slice(&[1, 2, 3]); // only 3 bytes ever arrive
        let mut reader = FrameReader::new();
        let mut out = Vec::new();
        reader.feed(&header, &mut out).unwrap();
        assert!(out.is_empty());
        assert!(
            reader.payload.capacity() <= 2 * READ_CHUNK,
            "capacity {} for 3 delivered bytes",
            reader.payload.capacity()
        );
    }

    /// A writer that accepts a fixed number of bytes per call, then blocks.
    struct Throttled {
        accepted: Vec<u8>,
        per_call: usize,
        calls_until_block: usize,
    }

    impl Write for Throttled {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.calls_until_block == 0 {
                self.calls_until_block = 1;
                return Err(std::io::ErrorKind::WouldBlock.into());
            }
            self.calls_until_block -= 1;
            let n = buf.len().min(self.per_call);
            self.accepted.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_buf_resumes_after_would_block() {
        let mut wb = WriteBuf::new();
        wb.push_frame(b"hello world").unwrap();
        wb.push_frame(&[3u8; 50]).unwrap();
        let mut sink = Throttled {
            accepted: Vec::new(),
            per_call: 7,
            calls_until_block: 1,
        };
        let mut done = wb.flush(&mut sink).unwrap();
        while !done {
            done = wb.flush(&mut sink).unwrap();
        }
        assert!(wb.is_empty());
        let mut expected = encode(b"hello world");
        expected.extend_from_slice(&encode(&[3u8; 50]));
        assert_eq!(sink.accepted, expected);
    }

    #[test]
    fn write_buf_rejects_oversized() {
        let mut wb = WriteBuf::new();
        let huge = vec![0u8; MAX_FRAME_LEN + 1];
        assert!(matches!(
            wb.push_frame(&huge),
            Err(FrameError::Oversized(_))
        ));
        assert!(wb.is_empty());
    }

    #[test]
    fn round_trip_through_both_state_machines() {
        let payloads: Vec<Vec<u8>> = (0..20).map(|i| vec![i as u8; i * 37]).collect();
        let mut wb = WriteBuf::new();
        for p in &payloads {
            wb.push_frame(p).unwrap();
        }
        let mut wire = Vec::new();
        assert!(wb.flush(&mut wire).unwrap());
        let mut reader = FrameReader::new();
        let mut out = Vec::new();
        // Feed in ragged 13-byte slices.
        for chunk in wire.chunks(13) {
            reader.feed(chunk, &mut out).unwrap();
        }
        assert_eq!(out, payloads);
    }
}
