//! Length-prefixed message framing over byte streams.
//!
//! The protocol the paper's evaluation measures is socket-based: the client
//! talks to the framework over one socket and the framework talks to the
//! sandboxed application over another (§5 attributes the TEE overhead to
//! exactly these two hops). Frames here are the unit travelling over each
//! hop: `u32` little-endian length, then that many payload bytes.
//!
//! Framing is deliberately dumb — no compression, no multiplexing — in the
//! smoltcp spirit of simplicity and robustness.

use std::io::{Read, Write};

/// Maximum frame size accepted (16 MiB), matching the codec's collection cap.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Payload bytes are read and buffered in chunks of at most this size, so a
/// peer announcing a huge frame cannot force a large allocation before it
/// has actually delivered the bytes.
pub const READ_CHUNK: usize = 64 * 1024;

/// Errors from frame I/O.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying I/O failed.
    Io(std::io::Error),
    /// Peer announced a frame larger than [`MAX_FRAME_LEN`].
    Oversized(usize),
    /// Stream closed cleanly between frames.
    Closed,
}

impl core::fmt::Display for FrameError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "frame i/o error: {e}"),
            Self::Oversized(n) => write!(f, "frame of {n} bytes exceeds limit"),
            Self::Closed => write!(f, "stream closed"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame (length prefix + payload) and flushes.
pub fn write_frame<W: Write>(writer: &mut W, payload: &[u8]) -> Result<(), FrameError> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(FrameError::Oversized(payload.len()));
    }
    let len = payload.len() as u32;
    writer.write_all(&len.to_le_bytes())?;
    writer.write_all(payload)?;
    writer.flush()?;
    Ok(())
}

/// Reads one frame. Returns [`FrameError::Closed`] on clean EOF at a frame
/// boundary; mid-frame EOF is an I/O error.
pub fn read_frame<R: Read>(reader: &mut R) -> Result<Vec<u8>, FrameError> {
    let mut len_bytes = [0u8; 4];
    // Distinguish clean close (0 bytes read) from torn frame.
    let mut filled = 0;
    while filled < 4 {
        let (_, unfilled) = len_bytes.split_at_mut(filled);
        match reader.read(unfilled) {
            Ok(0) => {
                if filled == 0 {
                    return Err(FrameError::Closed);
                }
                return Err(FrameError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof inside frame header",
                )));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized(len));
    }
    // Grow the buffer by at most READ_CHUNK at a time: the announced length
    // is attacker-controlled, the delivered bytes are what we pay for.
    let mut payload = Vec::with_capacity(len.min(READ_CHUNK));
    while payload.len() < len {
        let take = (len - payload.len()).min(READ_CHUNK);
        let start = payload.len();
        payload.resize(start + take, 0);
        let (_, fresh) = payload.split_at_mut(start);
        reader.read_exact(fresh)?;
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[9u8; 1000]).unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(read_frame(&mut cur).unwrap(), b"hello");
        assert_eq!(read_frame(&mut cur).unwrap(), b"");
        assert_eq!(read_frame(&mut cur).unwrap(), vec![9u8; 1000]);
        assert!(matches!(read_frame(&mut cur), Err(FrameError::Closed)));
    }

    #[test]
    fn oversized_write_rejected() {
        let huge = vec![0u8; MAX_FRAME_LEN + 1];
        let mut buf = Vec::new();
        assert!(matches!(
            write_frame(&mut buf, &huge),
            Err(FrameError::Oversized(_))
        ));
        assert!(buf.is_empty(), "nothing written for rejected frame");
    }

    #[test]
    fn oversized_read_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cur = Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cur),
            Err(FrameError::Oversized(_))
        ));
    }

    #[test]
    fn torn_header_is_io_error() {
        let mut cur = Cursor::new(vec![1u8, 0]);
        assert!(matches!(read_frame(&mut cur), Err(FrameError::Io(_))));
    }

    /// A reader that serves from a small buffer and records the largest
    /// destination buffer it was ever handed — a stand-in for "how much did
    /// `read_frame` allocate up front".
    struct TrackingReader {
        data: Vec<u8>,
        pos: usize,
        max_buf: usize,
    }

    impl Read for TrackingReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.max_buf = self.max_buf.max(buf.len());
            let n = buf.len().min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn announced_16mib_with_3_bytes_fails_without_big_allocation() {
        // Header promises MAX_FRAME_LEN; only 3 payload bytes ever arrive.
        let mut data = (MAX_FRAME_LEN as u32).to_le_bytes().to_vec();
        data.extend_from_slice(&[1, 2, 3]);
        let mut reader = TrackingReader {
            data,
            pos: 0,
            max_buf: 0,
        };
        assert!(matches!(read_frame(&mut reader), Err(FrameError::Io(_))));
        assert!(
            reader.max_buf <= READ_CHUNK,
            "read buffer of {} bytes exceeds the {} byte chunk cap",
            reader.max_buf,
            READ_CHUNK
        );
    }

    #[test]
    fn chunked_read_reassembles_multi_chunk_frame() {
        let payload: Vec<u8> = (0..READ_CHUNK * 2 + 17).map(|i| i as u8).collect();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut reader = TrackingReader {
            data: buf,
            pos: 0,
            max_buf: 0,
        };
        assert_eq!(read_frame(&mut reader).unwrap(), payload);
        assert!(reader.max_buf <= READ_CHUNK);
    }

    #[test]
    fn torn_payload_is_io_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&10u32.to_le_bytes());
        buf.extend_from_slice(&[1, 2, 3]); // only 3 of 10 payload bytes
        let mut cur = Cursor::new(buf);
        assert!(matches!(read_frame(&mut cur), Err(FrameError::Io(_))));
    }
}
