//! Hand-rolled readiness event loop over `std`-only non-blocking sockets.
//!
//! The paper's evaluation (§5, Table 3) pins most deployment overhead on
//! the socket hops between client, framework, and sandboxed app, and the
//! blocking wire layer burns one OS thread per connection on top of that.
//! This module multiplexes thousands of connections onto a small fixed pool
//! of reactor threads instead.
//!
//! No external event-loop crate is available offline, and `std` exposes no
//! `poll(2)`, so readiness is level-triggered the portable way: every
//! connection is switched to non-blocking mode, and each reactor thread
//! sweeps its ready-set — draining reads until `WouldBlock`, flushing
//! pending writes until `WouldBlock` — then sleeps with a small adaptive
//! backoff when a full sweep makes no progress. Sweeping is O(connections),
//! but each sweep harvests every ready connection, so cost amortises
//! exactly when it matters (many active clients) and the backoff caps idle
//! burn when it does not.
//!
//! Per-connection state lives in [`frame_nb`](crate::frame_nb): partial
//! frame reads and writes survive across sweeps, which the blocking
//! [`read_frame`](crate::frame::read_frame)/[`write_frame`](crate::frame::write_frame)
//! pair cannot do.

use crate::frame_nb::{FrameReader, WriteBuf};
use std::io::Read;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A request-frame handler: one frame in, one response frame out. Shared by
/// every reactor thread, so interior mutability (and locking, if the
/// service is stateful) is the implementor's business.
pub type FrameService = Arc<dyn Fn(&[u8]) -> Vec<u8> + Send + Sync>;

/// Sleep floor after an idle sweep.
const IDLE_BACKOFF_MIN: Duration = Duration::from_micros(20);
/// Sleep ceiling: bounds added latency for the first request after a quiet
/// period. Any progress resets the backoff to the floor, so a busy or
/// steadily-trickling connection never waits anywhere near this long — the
/// cap is only reached after ~11 consecutive idle sweeps (tens of
/// milliseconds of silence). It is set high enough that a thread parked on
/// thousands of idle connections costs ~20 sweeps/sec (one `read` syscall
/// per connection per sweep), not hundreds.
const IDLE_BACKOFF_MAX: Duration = Duration::from_millis(50);
/// How long an empty reactor thread blocks on its intake queue per wait.
const EMPTY_WAIT: Duration = Duration::from_millis(5);
/// Stop reading from a connection whose un-flushed responses exceed this.
const WRITE_HIGH_WATER: usize = 1 << 20;
/// Read buffer size per reactor thread (reused across connections).
const SCRATCH_LEN: usize = 16 * 1024;
/// Cap on bytes read from one connection per sweep: a peer that never
/// stops being readable must not starve its thread's other connections.
const READ_BUDGET_PER_SWEEP: usize = 256 * 1024;

/// One multiplexed connection: socket plus resumable frame state.
struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    writer: WriteBuf,
    /// Peer sent FIN: stop reading, but drain queued responses before
    /// closing — a client may legitimately half-close after its last
    /// request and still expect the reply.
    eof: bool,
}

/// Outcome of one sweep over one connection.
enum Pump {
    /// Bytes moved or frames completed this sweep.
    Progress,
    /// Nothing ready; keep the connection.
    Idle,
    /// EOF, I/O error, or protocol violation; drop the connection.
    Closed,
}

impl Conn {
    fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            reader: FrameReader::new(),
            writer: WriteBuf::new(),
            eof: false,
        })
    }

    /// Flushes pending writes; partial writes still count as progress.
    /// Returns `None` when the connection should close.
    fn try_flush(&mut self, progress: &mut bool) -> Option<()> {
        if self.writer.is_empty() {
            return Some(());
        }
        let before = self.writer.pending();
        match self.writer.flush(&mut self.stream) {
            Ok(_) => {
                if self.writer.pending() < before {
                    *progress = true;
                }
                Some(())
            }
            Err(_) => None,
        }
    }

    /// Flushes pending writes, then drains readable bytes into complete
    /// frames, dispatching each through `service`.
    fn pump(
        &mut self,
        service: &FrameService,
        scratch: &mut [u8],
        frames: &mut Vec<Vec<u8>>,
    ) -> Pump {
        let mut progress = false;
        if self.try_flush(&mut progress).is_none() {
            return Pump::Closed;
        }
        let mut budget = READ_BUDGET_PER_SWEEP;
        while !self.eof && budget > 0 {
            if self.writer.pending() > WRITE_HIGH_WATER {
                // Backpressure: let the peer drain before reading more.
                break;
            }
            match self.stream.read(scratch) {
                Ok(0) => {
                    self.eof = true;
                    progress = true;
                }
                Ok(n) => {
                    progress = true;
                    budget = budget.saturating_sub(n);
                    // `frames` is thread-shared scratch: any frame left in it
                    // when we bail would be drained by the *next* connection
                    // this thread pumps, sending one client's response to
                    // another. `feed` can legitimately complete frames and
                    // then fail (valid frame followed by an oversized header
                    // in the same read), so every error exit below must clear
                    // the scratch first.
                    if self.reader.feed(&scratch[..n], frames).is_err() {
                        frames.clear();
                        return Pump::Closed;
                    }
                    // (An early return mid-drain is fine: dropping the
                    // `Drain` iterator removes the remaining elements, so
                    // the scratch is empty either way.)
                    for frame in frames.drain(..) {
                        let response = service(&frame);
                        if self.writer.push_frame(&response).is_err() {
                            return Pump::Closed;
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Pump::Closed,
            }
        }
        if self.try_flush(&mut progress).is_none() {
            return Pump::Closed;
        }
        if self.eof && self.writer.is_empty() {
            // Everything owed has been delivered; now the FIN is final.
            return Pump::Closed;
        }
        if progress {
            Pump::Progress
        } else {
            Pump::Idle
        }
    }
}

/// Shared half of the reactor: intake queues and the stop flag.
struct ReactorShared {
    queues: Vec<Sender<TcpStream>>,
    next: AtomicUsize,
    stop: AtomicBool,
}

/// A cloneable registration handle (what accept loops hold).
#[derive(Clone)]
pub struct ReactorHandle {
    shared: Arc<ReactorShared>,
}

impl ReactorHandle {
    /// Hands a connected stream to the next reactor thread, round-robin.
    /// Fails once the reactor has shut down.
    pub fn register(&self, stream: TcpStream) -> std::io::Result<()> {
        if self.shared.stop.load(Ordering::SeqCst) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "reactor is shut down",
            ));
        }
        let i = self.shared.next.fetch_add(1, Ordering::Relaxed) % self.shared.queues.len();
        self.shared.queues[i].send(stream).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::NotConnected, "reactor thread exited")
        })
    }
}

/// A running pool of reactor threads serving one [`FrameService`].
pub struct Reactor {
    shared: Arc<ReactorShared>,
    threads: Vec<JoinHandle<()>>,
}

impl Reactor {
    /// Spawns `threads` reactor threads (clamped to at least 1), all
    /// dispatching complete request frames to `service`.
    pub fn spawn(service: FrameService, threads: usize) -> std::io::Result<Self> {
        let threads = threads.max(1);
        let mut queues = Vec::with_capacity(threads);
        let mut receivers = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (tx, rx) = std::sync::mpsc::channel();
            queues.push(tx);
            receivers.push(rx);
        }
        let shared = Arc::new(ReactorShared {
            queues,
            next: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
        });
        let mut handles = Vec::with_capacity(threads);
        for (i, rx) in receivers.into_iter().enumerate() {
            let shared_t = Arc::clone(&shared);
            let service_t = Arc::clone(&service);
            match std::thread::Builder::new()
                .name(format!("wire-reactor-{i}"))
                .spawn(move || reactor_loop(rx, service_t, shared_t))
            {
                Ok(h) => handles.push(h),
                Err(e) => {
                    // Don't leak the threads already spawned: stop and join
                    // them before reporting the failure.
                    shared.stop.store(true, Ordering::SeqCst);
                    for h in handles {
                        let _ = h.join();
                    }
                    return Err(e);
                }
            }
        }
        Ok(Self {
            shared,
            threads: handles,
        })
    }

    /// A cloneable handle for registering connections.
    pub fn handle(&self) -> ReactorHandle {
        ReactorHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Stops every reactor thread, shutting down all multiplexed sockets,
    /// and joins the pool. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Switches a freshly accepted stream to non-blocking mode and adds it to
/// the sweep set. Failure means the client sees a closed socket; say why on
/// stderr instead of dropping it without a trace.
fn adopt(stream: TcpStream, conns: &mut Vec<Conn>) {
    match Conn::new(stream) {
        Ok(conn) => conns.push(conn),
        Err(e) => eprintln!("wire-reactor: dropping accepted connection: {e}"),
    }
}

fn reactor_loop(intake: Receiver<TcpStream>, service: FrameService, shared: Arc<ReactorShared>) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut scratch = vec![0u8; SCRATCH_LEN];
    let mut frames: Vec<Vec<u8>> = Vec::new();
    let mut backoff = IDLE_BACKOFF_MIN;
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        // With no connections, block on the intake queue instead of
        // spinning; the timeout keeps the stop flag responsive.
        if conns.is_empty() {
            match intake.recv_timeout(EMPTY_WAIT) {
                Ok(stream) => adopt(stream, &mut conns),
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        loop {
            match intake.try_recv() {
                Ok(stream) => adopt(stream, &mut conns),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => break,
            }
        }
        let mut progress = false;
        conns.retain_mut(
            |conn| match conn.pump(&service, &mut scratch, &mut frames) {
                Pump::Progress => {
                    progress = true;
                    true
                }
                Pump::Idle => true,
                Pump::Closed => {
                    let _ = conn.stream.shutdown(Shutdown::Both);
                    false
                }
            },
        );
        if progress {
            backoff = IDLE_BACKOFF_MIN;
        } else {
            // Park on the intake queue rather than in a blind sleep: the
            // idle-CPU profile is identical, but a newly registered
            // connection wakes the thread immediately instead of waiting
            // out the rest of the backoff.
            match intake.recv_timeout(backoff) {
                Ok(stream) => {
                    adopt(stream, &mut conns);
                    backoff = IDLE_BACKOFF_MIN;
                }
                Err(RecvTimeoutError::Timeout) => {
                    backoff = (backoff * 2).min(IDLE_BACKOFF_MAX);
                }
                // Unreachable while `shared` (which owns the senders) is
                // alive, but never turn it into a busy spin.
                Err(RecvTimeoutError::Disconnected) => {
                    // lint:allow(blocking): bounded idle backoff in a terminal state — the intake channel is gone, no lock is held, and sleeping beats a busy spin
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(IDLE_BACKOFF_MAX);
                }
            }
        }
    }
    // Unblock any peer still waiting on us before the sockets drop.
    for conn in &conns {
        let _ = conn.stream.shutdown(Shutdown::Both);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{read_frame, write_frame};
    use std::net::{TcpListener, TcpStream};

    fn echo_service() -> FrameService {
        Arc::new(|frame: &[u8]| {
            let mut out = frame.to_vec();
            out.reverse();
            out
        })
    }

    fn connect_pair(listener: &TcpListener, handle: &ReactorHandle) -> TcpStream {
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        client.set_nodelay(true).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        handle.register(server_side).unwrap();
        client
    }

    #[test]
    fn single_connection_round_trip() {
        let mut reactor = Reactor::spawn(echo_service(), 2).unwrap();
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let mut client = connect_pair(&listener, &reactor.handle());
        write_frame(&mut client, b"abc").unwrap();
        assert_eq!(read_frame(&mut client).unwrap(), b"cba");
        write_frame(&mut client, b"12345").unwrap();
        assert_eq!(read_frame(&mut client).unwrap(), b"54321");
        reactor.shutdown();
    }

    #[test]
    fn many_connections_multiplexed_on_two_threads() {
        let mut reactor = Reactor::spawn(echo_service(), 2).unwrap();
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let handle = reactor.handle();
        let mut clients: Vec<TcpStream> =
            (0..64).map(|_| connect_pair(&listener, &handle)).collect();
        // Pipelined: all sends first, then all receives.
        for (i, c) in clients.iter_mut().enumerate() {
            write_frame(c, format!("msg {i}").as_bytes()).unwrap();
        }
        for (i, c) in clients.iter_mut().enumerate() {
            let expected: Vec<u8> = format!("msg {i}").bytes().rev().collect();
            assert_eq!(read_frame(c).unwrap(), expected);
        }
        reactor.shutdown();
    }

    #[test]
    fn large_frame_crosses_partial_reads() {
        let mut reactor = Reactor::spawn(echo_service(), 1).unwrap();
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let mut client = connect_pair(&listener, &reactor.handle());
        let big: Vec<u8> = (0..500_000u32).map(|i| i as u8).collect();
        write_frame(&mut client, &big).unwrap();
        let mut expected = big;
        expected.reverse();
        assert_eq!(read_frame(&mut client).unwrap(), expected);
        reactor.shutdown();
    }

    #[test]
    fn shutdown_closes_registered_connections() {
        let mut reactor = Reactor::spawn(echo_service(), 1).unwrap();
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let mut client = connect_pair(&listener, &reactor.handle());
        reactor.shutdown();
        // The reactor shut the socket: the blocking read unblocks.
        assert!(read_frame(&mut client).is_err());
        // Registration after shutdown is refused.
        let orphan = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        assert!(reactor.handle().register(orphan).is_err());
    }

    #[test]
    fn half_close_still_gets_the_response() {
        // Request-then-FIN: the reply owed for the last request must be
        // delivered before the reactor drops the connection.
        let mut reactor = Reactor::spawn(echo_service(), 1).unwrap();
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let mut client = connect_pair(&listener, &reactor.handle());
        write_frame(&mut client, b"last words").unwrap();
        client.shutdown(Shutdown::Write).unwrap();
        assert_eq!(read_frame(&mut client).unwrap(), b"sdrow tsal");
        assert!(matches!(
            read_frame(&mut client),
            Err(crate::frame::FrameError::Closed)
        ));
        reactor.shutdown();
    }

    #[test]
    fn oversized_frame_drops_connection_only() {
        let mut reactor = Reactor::spawn(echo_service(), 1).unwrap();
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let handle = reactor.handle();
        let mut bad = connect_pair(&listener, &handle);
        let mut good = connect_pair(&listener, &handle);
        use std::io::Write;
        bad.write_all(&u32::MAX.to_le_bytes()).unwrap();
        assert!(read_frame(&mut bad).is_err(), "violator disconnected");
        write_frame(&mut good, b"still here").unwrap();
        assert_eq!(read_frame(&mut good).unwrap(), b"ereh llits");
        reactor.shutdown();
    }

    /// Regression: `feed` can complete a frame into the thread-shared
    /// scratch Vec and *then* fail on an oversized header in the same read.
    /// The completed frame used to survive the `Pump::Closed` return and be
    /// drained by the next connection this thread pumped — connection A's
    /// response delivered to connection B.
    #[test]
    fn frames_completed_before_protocol_error_do_not_leak_across_conns() {
        let mut reactor = Reactor::spawn(echo_service(), 1).unwrap();
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let handle = reactor.handle();
        let mut bad = connect_pair(&listener, &handle);
        let mut good = connect_pair(&listener, &handle);
        use std::io::Write;
        // One write, so both arrive in the same read chunk: a complete
        // valid frame immediately followed by an oversized header.
        let mut wire = Vec::new();
        write_frame(&mut wire, b"poison").unwrap();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        bad.write_all(&wire).unwrap();
        // The violator is disconnected either way, but if the kernel split
        // the write across two reads the reactor legitimately answers the
        // valid frame before hitting the bad header — tolerate that one
        // response rather than flake.
        while let Ok(resp) = read_frame(&mut bad) {
            assert_eq!(resp, b"nosiop", "only the echo may precede the close");
        }
        // The single reactor thread now serves `good`; the first response
        // it reads must answer its own request, not the stale "poison".
        write_frame(&mut good, b"clean").unwrap();
        assert_eq!(read_frame(&mut good).unwrap(), b"naelc");
        write_frame(&mut good, b"again").unwrap();
        assert_eq!(read_frame(&mut good).unwrap(), b"niaga");
        reactor.shutdown();
    }
}
