//! Client-side request pipelining over one connection.
//!
//! The audit hot path used to pay one round-trip per protocol step per
//! domain, serially. [`PipelinedClient`] keeps several requests in flight
//! on a single persistent connection: the caller tags each request with an
//! id the server echoes back, sends them all, then collects responses in
//! any order — [`PipelinedClient::recv_matching`] parks frames that answer
//! a different id until they are asked for.
//!
//! The id lives inside the application payload (the wire framing stays
//! plain length-prefixed frames), so a pipelined client remains
//! wire-compatible with servers that answer strictly in order — including
//! every server in this workspace and, crucially, *old* servers that
//! reject the new request type with an id-less error frame, which
//! `recv_matching` surfaces immediately so callers can fall back to the
//! sequential path.

use crate::transport::{Transport, TransportError};
use std::collections::HashMap;
use std::time::Duration;

/// Cap on parked out-of-order responses; beyond this the peer is not
/// pipelining, it is flooding.
const MAX_PARKED: usize = 1024;

/// A connection with multiple in-flight requests, responses matched back
/// by an id the server echoes inside the payload.
pub struct PipelinedClient<T: Transport> {
    transport: T,
    next_id: u64,
    parked: HashMap<u64, Vec<u8>>,
    /// Responses the caller gave up waiting for (a quorum was satisfied
    /// without them). Responses arrive in request order per connection, so
    /// the next `skip` incoming frames answer abandoned requests and are
    /// discarded before anything is handed to the caller.
    skip: u64,
}

impl<T: Transport> PipelinedClient<T> {
    /// Wraps a connected transport.
    pub fn new(transport: T) -> Self {
        Self {
            transport,
            next_id: 1,
            parked: HashMap::new(),
            skip: 0,
        }
    }

    /// Declares that the response to the oldest unanswered request will
    /// never be collected; the next incoming frame that would have
    /// answered it is silently discarded. Call once per abandoned request,
    /// in request order, before reusing the connection.
    pub fn abandon_next_response(&mut self) {
        self.skip += 1;
    }

    /// Number of abandoned responses not yet drained off the wire.
    pub fn abandoned_pending(&self) -> u64 {
        self.skip
    }

    /// Hands out the next request id (monotonic, never zero).
    pub fn next_request_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Sends one frame without waiting for a response.
    pub fn send(&mut self, frame: &[u8]) -> Result<(), TransportError> {
        self.transport.send(frame)
    }

    /// Plain one-request/one-response exchange for the sequential paths.
    pub fn call(&mut self, frame: &[u8]) -> Result<Vec<u8>, TransportError> {
        self.transport.send(frame)?;
        self.recv_next()
    }

    /// Receives the next frame addressed to the caller, draining any
    /// abandoned responses first.
    pub fn recv_next(&mut self) -> Result<Vec<u8>, TransportError> {
        loop {
            let frame = self.transport.recv()?;
            if self.skip > 0 {
                self.skip -= 1;
                continue;
            }
            return Ok(frame);
        }
    }

    /// Like [`Self::recv_next`], but gives up after `timeout` with
    /// `Ok(None)`. Abandoned responses drained while waiting count against
    /// the same timeout budget (the deadline is fixed up front, not
    /// restarted per drained frame). Requires a transport that implements
    /// [`Transport::recv_timeout`] non-blockingly (TCP does); others fall
    /// back to a blocking receive.
    pub fn recv_next_timeout(
        &mut self,
        timeout: Duration,
    ) -> Result<Option<Vec<u8>>, TransportError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut remaining = timeout;
        loop {
            let Some(frame) = self.transport.recv_timeout(remaining)? else {
                return Ok(None);
            };
            if self.skip > 0 {
                self.skip -= 1;
                remaining = deadline.saturating_duration_since(std::time::Instant::now());
                if remaining.is_zero() {
                    return Ok(None);
                }
                continue;
            }
            return Ok(Some(frame));
        }
    }

    /// Receives until the frame whose id (per `id_of`) equals `want`.
    ///
    /// Frames carrying a *different* id are parked and handed out when
    /// their turn comes. A frame `id_of` cannot classify (no id — e.g. an
    /// error from a server that does not speak the pipelined request) is
    /// returned immediately: per-connection responses arrive in request
    /// order, so it is the answer to the oldest unanswered request.
    pub fn recv_matching(
        &mut self,
        want: u64,
        id_of: impl Fn(&[u8]) -> Option<u64>,
    ) -> Result<Vec<u8>, TransportError> {
        if let Some(frame) = self.parked.remove(&want) {
            return Ok(frame);
        }
        loop {
            let frame = self.transport.recv()?;
            // Frames answering abandoned requests arrive before anything
            // newer on this connection; drop them before classifying.
            if self.skip > 0 {
                self.skip -= 1;
                continue;
            }
            match id_of(&frame) {
                Some(id) if id == want => return Ok(frame),
                Some(id) => {
                    if self.parked.len() >= MAX_PARKED {
                        return Err(TransportError::Frame(crate::frame::FrameError::Io(
                            std::io::Error::other("pipelined response parking cap exceeded"),
                        )));
                    }
                    self.parked.insert(id, frame);
                }
                None => return Ok(frame),
            }
        }
    }

    /// Number of responses parked for later matching.
    pub fn parked_len(&self) -> usize {
        self.parked.len()
    }

    /// The wrapped transport.
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::ChannelTransport;

    /// Toy protocol for tests: 8-byte LE id, then payload; an empty frame
    /// has no id (the "old server error" shape).
    fn frame(id: u64, payload: &[u8]) -> Vec<u8> {
        let mut f = id.to_le_bytes().to_vec();
        f.extend_from_slice(payload);
        f
    }

    fn id_of(frame: &[u8]) -> Option<u64> {
        let head: [u8; 8] = frame.get(..8)?.try_into().ok()?;
        Some(u64::from_le_bytes(head))
    }

    #[test]
    fn in_order_responses_match() {
        let (a, mut b) = ChannelTransport::pair();
        let mut client = PipelinedClient::new(a);
        let id1 = client.next_request_id();
        let id2 = client.next_request_id();
        client.send(&frame(id1, b"q1")).unwrap();
        client.send(&frame(id2, b"q2")).unwrap();
        // Server answers in order.
        for _ in 0..2 {
            let req = b.recv().unwrap();
            let mut resp = req.clone();
            resp.extend_from_slice(b"-ack");
            b.send(&resp).unwrap();
        }
        assert_eq!(
            client.recv_matching(id1, id_of).unwrap(),
            frame(id1, b"q1-ack")
        );
        assert_eq!(
            client.recv_matching(id2, id_of).unwrap(),
            frame(id2, b"q2-ack")
        );
        assert_eq!(client.parked_len(), 0);
    }

    #[test]
    fn out_of_order_responses_are_parked_and_matched() {
        let (a, mut b) = ChannelTransport::pair();
        let mut client = PipelinedClient::new(a);
        let ids: Vec<u64> = (0..4).map(|_| client.next_request_id()).collect();
        for id in &ids {
            client.send(&frame(*id, b"req")).unwrap();
        }
        // Server answers in reverse order.
        let reqs: Vec<Vec<u8>> = (0..4).map(|_| b.recv().unwrap()).collect();
        for req in reqs.iter().rev() {
            b.send(req).unwrap();
        }
        // Client collects in send order anyway.
        for id in &ids {
            let resp = client.recv_matching(*id, id_of).unwrap();
            assert_eq!(id_of(&resp), Some(*id));
        }
        assert_eq!(client.parked_len(), 0);
    }

    #[test]
    fn idless_frame_surfaces_immediately() {
        let (a, mut b) = ChannelTransport::pair();
        let mut client = PipelinedClient::new(a);
        let id = client.next_request_id();
        client.send(&frame(id, b"new-style request")).unwrap();
        let _ = b.recv().unwrap();
        // An old server answers with a short error frame carrying no id.
        b.send(b"err").unwrap();
        let resp = client.recv_matching(id, id_of).unwrap();
        assert_eq!(resp, b"err");
    }

    #[test]
    fn disconnect_propagates() {
        let (a, b) = ChannelTransport::pair();
        let mut client = PipelinedClient::new(a);
        drop(b);
        assert!(matches!(
            client.recv_matching(1, id_of),
            Err(TransportError::Disconnected)
        ));
    }

    #[test]
    fn abandoned_responses_are_drained_before_fresh_ones() {
        let (a, mut b) = ChannelTransport::pair();
        let mut client = PipelinedClient::new(a);
        // Two requests in flight; the caller gives up on the first.
        client.send(&frame(1, b"abandoned")).unwrap();
        client.send(&frame(2, b"wanted")).unwrap();
        client.abandon_next_response();
        assert_eq!(client.abandoned_pending(), 1);
        // The server answers both, in order.
        for _ in 0..2 {
            let req = b.recv().unwrap();
            b.send(&req).unwrap();
        }
        // recv_next skips the stale response and yields the fresh one.
        assert_eq!(client.recv_next().unwrap(), frame(2, b"wanted"));
        assert_eq!(client.abandoned_pending(), 0);
    }

    #[test]
    fn recv_matching_skips_abandoned_frames() {
        let (a, mut b) = ChannelTransport::pair();
        let mut client = PipelinedClient::new(a);
        client.send(&frame(7, b"old")).unwrap();
        client.abandon_next_response();
        client.send(&frame(8, b"new")).unwrap();
        for _ in 0..2 {
            let req = b.recv().unwrap();
            b.send(&req).unwrap();
        }
        // Without the skip, the id-7 frame would be parked forever (or
        // mis-surfaced for an id-less protocol); with it, id 8 matches.
        assert_eq!(client.recv_matching(8, id_of).unwrap(), frame(8, b"new"));
        assert_eq!(client.parked_len(), 0);
    }

    #[test]
    fn recv_next_timeout_times_out_then_delivers() {
        let (a, mut b) = ChannelTransport::pair();
        let mut client = PipelinedClient::new(a);
        assert!(client
            .recv_next_timeout(std::time::Duration::from_millis(5))
            .unwrap()
            .is_none());
        b.send(b"late").unwrap();
        assert_eq!(
            client
                .recv_next_timeout(std::time::Duration::from_millis(100))
                .unwrap(),
            Some(b"late".to_vec())
        );
    }
}
