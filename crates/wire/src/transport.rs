//! Message transports: real TCP loopback and an in-process channel pair.
//!
//! Every hop in the deployment — client ↔ trust domain, enclave host ↔
//! framework, framework ↔ sandboxed app — speaks "send a byte message /
//! receive a byte message" through the [`Transport`] trait. Production-shaped
//! traffic uses [`TcpTransport`] (real sockets, real syscalls — what Table 3
//! measures); unit tests that don't care about socket cost use
//! [`ChannelTransport`].

use crate::frame::{write_frame, FrameError, READ_CHUNK};
use crate::frame_nb::FrameReader;
use crate::sync::HealthyMutex;
use crossbeam::channel::{Receiver, Sender};
use std::collections::VecDeque;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Transport-level errors.
#[derive(Debug)]
pub enum TransportError {
    /// Framing or socket failure.
    Frame(FrameError),
    /// The peer disconnected.
    Disconnected,
}

impl core::fmt::Display for TransportError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Frame(e) => write!(f, "transport frame error: {e}"),
            Self::Disconnected => write!(f, "peer disconnected"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<FrameError> for TransportError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Closed => TransportError::Disconnected,
            other => TransportError::Frame(other),
        }
    }
}

/// A bidirectional, message-oriented byte transport.
pub trait Transport: Send {
    /// Sends one message.
    fn send(&mut self, payload: &[u8]) -> Result<(), TransportError>;
    /// Blocks until one message arrives.
    fn recv(&mut self) -> Result<Vec<u8>, TransportError>;
    /// Waits at most `timeout` for one message. `Ok(None)` means the
    /// timeout elapsed with no complete message; any partially received
    /// bytes are retained, so a later `recv`/`recv_timeout` resumes where
    /// this one left off (quorum fan-out polls several transports in
    /// rounds without losing frame synchronisation).
    ///
    /// The default implementation ignores the timeout and blocks — correct
    /// for transports whose `recv` cannot park mid-message, but real
    /// socket transports should override it.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, TransportError> {
        let _ = timeout;
        self.recv().map(Some)
    }
}

/// A [`Transport`] over a connected TCP stream.
///
/// Reads go through a resumable [`FrameReader`], so a timed-out
/// [`Transport::recv_timeout`] can leave half a frame buffered and the next
/// receive picks it up — the stream never desynchronises.
pub struct TcpTransport {
    stream: TcpStream,
    reader: FrameReader,
    /// Complete frames decoded ahead of the caller (one `read` can
    /// complete several small frames).
    ready: VecDeque<Vec<u8>>,
    scratch: Vec<u8>,
    /// What the socket's read timeout is currently set to, so switching
    /// between blocking and timed receives costs a syscall only when the
    /// mode actually changes.
    timeout_set: bool,
}

impl TcpTransport {
    /// Wraps a connected stream. Disables Nagle so small request/response
    /// frames are not delayed — the workload is RPC-shaped.
    pub fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            reader: FrameReader::new(),
            ready: VecDeque::new(),
            scratch: vec![0u8; READ_CHUNK],
            timeout_set: false,
        })
    }

    /// Connects to a listener.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        Self::new(TcpStream::connect(addr)?)
    }

    /// The peer address.
    pub fn peer_addr(&self) -> std::io::Result<SocketAddr> {
        self.stream.peer_addr()
    }

    /// Clones the underlying socket handle. A supervisor can call
    /// [`TcpStream::shutdown`] on the clone to unblock a thread parked in
    /// [`Transport::recv`] on the original.
    pub fn try_clone_stream(&self) -> std::io::Result<TcpStream> {
        self.stream.try_clone()
    }

    fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), TransportError> {
        if timeout.is_some() != self.timeout_set {
            self.stream
                .set_read_timeout(timeout)
                .map_err(|e| TransportError::Frame(FrameError::Io(e)))?;
            self.timeout_set = timeout.is_some();
        } else if timeout.is_some() {
            // Timed mode stays on but the duration may differ per call.
            self.stream
                .set_read_timeout(timeout)
                .map_err(|e| TransportError::Frame(FrameError::Io(e)))?;
        }
        Ok(())
    }

    /// Reads until a complete frame is available. `timed` controls whether
    /// a `WouldBlock`/`TimedOut` read surfaces as `Ok(None)` (the socket
    /// read timeout expired) or is treated as an error.
    fn fill_one(&mut self, timed: bool) -> Result<Option<Vec<u8>>, TransportError> {
        loop {
            if let Some(frame) = self.ready.pop_front() {
                return Ok(Some(frame));
            }
            match self.stream.read(&mut self.scratch) {
                Ok(0) => {
                    return Err(if self.reader.at_boundary() {
                        TransportError::Disconnected
                    } else {
                        TransportError::Frame(FrameError::Io(std::io::Error::new(
                            std::io::ErrorKind::UnexpectedEof,
                            "eof inside frame",
                        )))
                    });
                }
                Ok(n) => {
                    let mut out = Vec::new();
                    let fed = self.reader.feed(&self.scratch[..n], &mut out);
                    self.ready.extend(out);
                    if let Err(e) = fed {
                        return Err(match e {
                            FrameError::Closed => TransportError::Disconnected,
                            other => TransportError::Frame(other),
                        });
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e)
                    if timed
                        && (e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut) =>
                {
                    return Ok(None)
                }
                Err(e) => return Err(TransportError::Frame(FrameError::Io(e))),
            }
        }
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        write_frame(&mut self.stream, payload)?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Vec<u8>, TransportError> {
        self.set_timeout(None)?;
        // An untimed `fill_one` only returns `Ok(None)` if the socket
        // still had a stale read timeout configured; looping (rather than
        // unwrapping) keeps this path panic-free either way.
        loop {
            if let Some(frame) = self.fill_one(false)? {
                return Ok(frame);
            }
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, TransportError> {
        if let Some(frame) = self.ready.pop_front() {
            return Ok(Some(frame));
        }
        // A zero timeout would mean "blocking" to the OS; clamp up.
        self.set_timeout(Some(timeout.max(Duration::from_millis(1))))?;
        self.fill_one(true)
    }
}

/// A TCP listener that hands out [`TcpTransport`]s.
pub struct TcpAcceptor {
    listener: TcpListener,
}

impl TcpAcceptor {
    /// Binds to an ephemeral loopback port.
    pub fn bind_loopback() -> std::io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(("127.0.0.1", 0))?,
        })
    }

    /// The bound address (share with clients).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Blocks until a client connects.
    pub fn accept(&self) -> std::io::Result<TcpTransport> {
        let (stream, _) = self.listener.accept()?;
        TcpTransport::new(stream)
    }
}

/// In-process transport half backed by crossbeam channels.
pub struct ChannelTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

impl ChannelTransport {
    /// Creates a connected pair of endpoints.
    pub fn pair() -> (ChannelTransport, ChannelTransport) {
        let (tx_a, rx_a) = crossbeam::channel::unbounded();
        let (tx_b, rx_b) = crossbeam::channel::unbounded();
        (
            ChannelTransport { tx: tx_a, rx: rx_b },
            ChannelTransport { tx: tx_b, rx: rx_a },
        )
    }
}

impl Transport for ChannelTransport {
    fn send(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        self.tx
            .send(payload.to_vec())
            .map_err(|_| TransportError::Disconnected)
    }

    fn recv(&mut self) -> Result<Vec<u8>, TransportError> {
        self.rx.recv().map_err(|_| TransportError::Disconnected)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, TransportError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.rx.try_recv() {
                Ok(msg) => return Ok(Some(msg)),
                // The shim's try_recv does not distinguish "empty" from
                // "disconnected"; a blocking recv would. Poll until the
                // deadline, then report the timeout — a genuinely dead
                // channel is caught by the next blocking receive or send.
                Err(_) if Instant::now() >= deadline => return Ok(None),
                Err(_) => std::thread::sleep(Duration::from_micros(100)),
            }
        }
    }
}

/// A thread-safe wrapper allowing a transport to be shared by reference
/// (one request/response at a time).
pub struct SharedTransport<T: Transport> {
    inner: HealthyMutex<T>,
}

impl<T: Transport> SharedTransport<T> {
    /// Wraps a transport.
    pub fn new(inner: T) -> Self {
        Self {
            inner: HealthyMutex::new(inner),
        }
    }

    /// Performs a blocking request/response exchange atomically.
    pub fn exchange(&self, payload: &[u8]) -> Result<Vec<u8>, TransportError> {
        let mut guard = self.inner.lock_healthy();
        // lint:allow(lock-order): serialising one full request/response under the lock is this type's purpose — releasing between send and recv would interleave responses across callers
        guard.send(payload)?;
        // lint:allow(lock-order): the paired receive must stay under the same guard or another caller could steal this response
        guard.recv()
    }
}

/// Soft open-file limit of this process, if discoverable (Linux
/// `/proc/self/limits`). Load tests and benches use it to size loopback
/// connection counts: each in-process client costs two descriptors, the
/// client socket and the accepted socket.
pub fn max_open_files() -> Option<usize> {
    let limits = std::fs::read_to_string("/proc/self/limits").ok()?;
    let line = limits.lines().find(|l| l.starts_with("Max open files"))?;
    line.split_whitespace().nth(3)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn channel_pair_round_trip() {
        let (mut a, mut b) = ChannelTransport::pair();
        a.send(b"ping").unwrap();
        assert_eq!(b.recv().unwrap(), b"ping");
        b.send(b"pong").unwrap();
        assert_eq!(a.recv().unwrap(), b"pong");
    }

    #[test]
    fn channel_disconnect_detected() {
        let (mut a, b) = ChannelTransport::pair();
        drop(b);
        assert!(matches!(a.recv(), Err(TransportError::Disconnected)));
        assert!(matches!(
            a.send(b"into the void"),
            Err(TransportError::Disconnected)
        ));
    }

    #[test]
    fn tcp_round_trip() {
        let acceptor = TcpAcceptor::bind_loopback().unwrap();
        let addr = acceptor.local_addr().unwrap();
        let server = thread::spawn(move || {
            let mut t = acceptor.accept().unwrap();
            let msg = t.recv().unwrap();
            t.send(&msg).unwrap(); // echo
        });
        let mut client = TcpTransport::connect(addr).unwrap();
        client.send(b"echo me").unwrap();
        assert_eq!(client.recv().unwrap(), b"echo me");
        server.join().unwrap();
    }

    #[test]
    fn tcp_close_detected() {
        let acceptor = TcpAcceptor::bind_loopback().unwrap();
        let addr = acceptor.local_addr().unwrap();
        let server = thread::spawn(move || {
            let _t = acceptor.accept().unwrap();
            // Drop immediately.
        });
        let mut client = TcpTransport::connect(addr).unwrap();
        server.join().unwrap();
        assert!(matches!(client.recv(), Err(TransportError::Disconnected)));
    }

    #[test]
    fn shared_transport_exchanges() {
        let (a, mut b) = ChannelTransport::pair();
        let shared = SharedTransport::new(a);
        let server = thread::spawn(move || {
            for _ in 0..3 {
                let req = b.recv().unwrap();
                let mut resp = req.clone();
                resp.push(b'!');
                b.send(&resp).unwrap();
            }
        });
        for msg in [b"one".as_slice(), b"two", b"three"] {
            let resp = shared.exchange(msg).unwrap();
            assert_eq!(&resp[..resp.len() - 1], msg);
            assert_eq!(*resp.last().unwrap(), b'!');
        }
        server.join().unwrap();
    }

    #[test]
    fn tcp_recv_timeout_preserves_partial_frames() {
        let acceptor = TcpAcceptor::bind_loopback().unwrap();
        let addr = acceptor.local_addr().unwrap();
        let (started_tx, started_rx) = crossbeam::channel::unbounded();
        let (go_tx, go_rx) = crossbeam::channel::unbounded::<()>();
        let server = thread::spawn(move || {
            let t = acceptor.accept().unwrap();
            // Send half a frame (header + partial payload), then stall
            // until the client has observed a timeout, then finish it.
            let payload = vec![0x5au8; 100];
            let mut wire = (payload.len() as u32).to_le_bytes().to_vec();
            wire.extend_from_slice(&payload);
            use std::io::Write;
            let stream = t.try_clone_stream().unwrap();
            let mut raw = stream;
            raw.write_all(&wire[..40]).unwrap();
            raw.flush().unwrap();
            started_tx.send(()).unwrap();
            go_rx.recv().unwrap();
            raw.write_all(&wire[40..]).unwrap();
            raw.flush().unwrap();
            // Keep the transport alive until the client is done.
            go_rx.recv().ok();
            drop(t);
        });
        let mut client = TcpTransport::connect(addr).unwrap();
        started_rx.recv().unwrap();
        // Times out mid-frame without losing the buffered half.
        assert!(client
            .recv_timeout(Duration::from_millis(20))
            .unwrap()
            .is_none());
        go_tx.send(()).unwrap();
        // The completed frame arrives intact — no desynchronisation.
        assert_eq!(client.recv().unwrap(), vec![0x5au8; 100]);
        drop(go_tx);
        server.join().unwrap();
    }

    #[test]
    fn tcp_recv_timeout_returns_buffered_frames_immediately() {
        let acceptor = TcpAcceptor::bind_loopback().unwrap();
        let addr = acceptor.local_addr().unwrap();
        let server = thread::spawn(move || {
            let mut t = acceptor.accept().unwrap();
            // Two frames in one burst: one read may complete both.
            t.send(b"first").unwrap();
            t.send(b"second").unwrap();
            let _ = t.recv(); // park until the client closes
        });
        let mut client = TcpTransport::connect(addr).unwrap();
        assert_eq!(
            client.recv_timeout(Duration::from_secs(5)).unwrap(),
            Some(b"first".to_vec())
        );
        assert_eq!(
            client.recv_timeout(Duration::from_secs(5)).unwrap(),
            Some(b"second".to_vec())
        );
        drop(client);
        server.join().unwrap();
    }

    #[test]
    fn channel_recv_timeout() {
        let (mut a, mut b) = ChannelTransport::pair();
        assert!(a.recv_timeout(Duration::from_millis(5)).unwrap().is_none());
        b.send(b"hello").unwrap();
        assert_eq!(
            a.recv_timeout(Duration::from_secs(1)).unwrap(),
            Some(b"hello".to_vec())
        );
    }

    #[test]
    fn large_message_over_tcp() {
        let acceptor = TcpAcceptor::bind_loopback().unwrap();
        let addr = acceptor.local_addr().unwrap();
        let payload = vec![0xabu8; 1_000_000];
        let expected = payload.clone();
        let server = thread::spawn(move || {
            let mut t = acceptor.accept().unwrap();
            let got = t.recv().unwrap();
            assert_eq!(got.len(), 1_000_000);
            t.send(&got[..10]).unwrap();
        });
        let mut client = TcpTransport::connect(addr).unwrap();
        client.send(&payload).unwrap();
        assert_eq!(client.recv().unwrap(), &expected[..10]);
        server.join().unwrap();
    }
}
