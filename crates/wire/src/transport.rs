//! Message transports: real TCP loopback and an in-process channel pair.
//!
//! Every hop in the deployment — client ↔ trust domain, enclave host ↔
//! framework, framework ↔ sandboxed app — speaks "send a byte message /
//! receive a byte message" through the [`Transport`] trait. Production-shaped
//! traffic uses [`TcpTransport`] (real sockets, real syscalls — what Table 3
//! measures); unit tests that don't care about socket cost use
//! [`ChannelTransport`].

use crate::frame::{read_frame, write_frame, FrameError};
use crossbeam::channel::{Receiver, Sender};
use parking_lot::Mutex;
use std::net::{SocketAddr, TcpListener, TcpStream};

/// Transport-level errors.
#[derive(Debug)]
pub enum TransportError {
    /// Framing or socket failure.
    Frame(FrameError),
    /// The peer disconnected.
    Disconnected,
}

impl core::fmt::Display for TransportError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Frame(e) => write!(f, "transport frame error: {e}"),
            Self::Disconnected => write!(f, "peer disconnected"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<FrameError> for TransportError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Closed => TransportError::Disconnected,
            other => TransportError::Frame(other),
        }
    }
}

/// A bidirectional, message-oriented byte transport.
pub trait Transport: Send {
    /// Sends one message.
    fn send(&mut self, payload: &[u8]) -> Result<(), TransportError>;
    /// Blocks until one message arrives.
    fn recv(&mut self) -> Result<Vec<u8>, TransportError>;
}

/// A [`Transport`] over a connected TCP stream.
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Wraps a connected stream. Disables Nagle so small request/response
    /// frames are not delayed — the workload is RPC-shaped.
    pub fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Connects to a listener.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        Self::new(TcpStream::connect(addr)?)
    }

    /// The peer address.
    pub fn peer_addr(&self) -> std::io::Result<SocketAddr> {
        self.stream.peer_addr()
    }

    /// Clones the underlying socket handle. A supervisor can call
    /// [`TcpStream::shutdown`] on the clone to unblock a thread parked in
    /// [`Transport::recv`] on the original.
    pub fn try_clone_stream(&self) -> std::io::Result<TcpStream> {
        self.stream.try_clone()
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        write_frame(&mut self.stream, payload)?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Vec<u8>, TransportError> {
        Ok(read_frame(&mut self.stream)?)
    }
}

/// A TCP listener that hands out [`TcpTransport`]s.
pub struct TcpAcceptor {
    listener: TcpListener,
}

impl TcpAcceptor {
    /// Binds to an ephemeral loopback port.
    pub fn bind_loopback() -> std::io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(("127.0.0.1", 0))?,
        })
    }

    /// The bound address (share with clients).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Blocks until a client connects.
    pub fn accept(&self) -> std::io::Result<TcpTransport> {
        let (stream, _) = self.listener.accept()?;
        TcpTransport::new(stream)
    }
}

/// In-process transport half backed by crossbeam channels.
pub struct ChannelTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

impl ChannelTransport {
    /// Creates a connected pair of endpoints.
    pub fn pair() -> (ChannelTransport, ChannelTransport) {
        let (tx_a, rx_a) = crossbeam::channel::unbounded();
        let (tx_b, rx_b) = crossbeam::channel::unbounded();
        (
            ChannelTransport { tx: tx_a, rx: rx_b },
            ChannelTransport { tx: tx_b, rx: rx_a },
        )
    }
}

impl Transport for ChannelTransport {
    fn send(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        self.tx
            .send(payload.to_vec())
            .map_err(|_| TransportError::Disconnected)
    }

    fn recv(&mut self) -> Result<Vec<u8>, TransportError> {
        self.rx.recv().map_err(|_| TransportError::Disconnected)
    }
}

/// A thread-safe wrapper allowing a transport to be shared by reference
/// (one request/response at a time).
pub struct SharedTransport<T: Transport> {
    inner: Mutex<T>,
}

impl<T: Transport> SharedTransport<T> {
    /// Wraps a transport.
    pub fn new(inner: T) -> Self {
        Self {
            inner: Mutex::new(inner),
        }
    }

    /// Performs a blocking request/response exchange atomically.
    pub fn exchange(&self, payload: &[u8]) -> Result<Vec<u8>, TransportError> {
        let mut guard = self.inner.lock();
        guard.send(payload)?;
        guard.recv()
    }
}

/// Soft open-file limit of this process, if discoverable (Linux
/// `/proc/self/limits`). Load tests and benches use it to size loopback
/// connection counts: each in-process client costs two descriptors, the
/// client socket and the accepted socket.
pub fn max_open_files() -> Option<usize> {
    let limits = std::fs::read_to_string("/proc/self/limits").ok()?;
    let line = limits.lines().find(|l| l.starts_with("Max open files"))?;
    line.split_whitespace().nth(3)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn channel_pair_round_trip() {
        let (mut a, mut b) = ChannelTransport::pair();
        a.send(b"ping").unwrap();
        assert_eq!(b.recv().unwrap(), b"ping");
        b.send(b"pong").unwrap();
        assert_eq!(a.recv().unwrap(), b"pong");
    }

    #[test]
    fn channel_disconnect_detected() {
        let (mut a, b) = ChannelTransport::pair();
        drop(b);
        assert!(matches!(a.recv(), Err(TransportError::Disconnected)));
        assert!(matches!(
            a.send(b"into the void"),
            Err(TransportError::Disconnected)
        ));
    }

    #[test]
    fn tcp_round_trip() {
        let acceptor = TcpAcceptor::bind_loopback().unwrap();
        let addr = acceptor.local_addr().unwrap();
        let server = thread::spawn(move || {
            let mut t = acceptor.accept().unwrap();
            let msg = t.recv().unwrap();
            t.send(&msg).unwrap(); // echo
        });
        let mut client = TcpTransport::connect(addr).unwrap();
        client.send(b"echo me").unwrap();
        assert_eq!(client.recv().unwrap(), b"echo me");
        server.join().unwrap();
    }

    #[test]
    fn tcp_close_detected() {
        let acceptor = TcpAcceptor::bind_loopback().unwrap();
        let addr = acceptor.local_addr().unwrap();
        let server = thread::spawn(move || {
            let _t = acceptor.accept().unwrap();
            // Drop immediately.
        });
        let mut client = TcpTransport::connect(addr).unwrap();
        server.join().unwrap();
        assert!(matches!(client.recv(), Err(TransportError::Disconnected)));
    }

    #[test]
    fn shared_transport_exchanges() {
        let (a, mut b) = ChannelTransport::pair();
        let shared = SharedTransport::new(a);
        let server = thread::spawn(move || {
            for _ in 0..3 {
                let req = b.recv().unwrap();
                let mut resp = req.clone();
                resp.push(b'!');
                b.send(&resp).unwrap();
            }
        });
        for msg in [b"one".as_slice(), b"two", b"three"] {
            let resp = shared.exchange(msg).unwrap();
            assert_eq!(&resp[..resp.len() - 1], msg);
            assert_eq!(*resp.last().unwrap(), b'!');
        }
        server.join().unwrap();
    }

    #[test]
    fn large_message_over_tcp() {
        let acceptor = TcpAcceptor::bind_loopback().unwrap();
        let addr = acceptor.local_addr().unwrap();
        let payload = vec![0xabu8; 1_000_000];
        let expected = payload.clone();
        let server = thread::spawn(move || {
            let mut t = acceptor.accept().unwrap();
            let got = t.recv().unwrap();
            assert_eq!(got.len(), 1_000_000);
            t.send(&got[..10]).unwrap();
        });
        let mut client = TcpTransport::connect(addr).unwrap();
        client.send(&payload).unwrap();
        assert_eq!(client.recv().unwrap(), &expected[..10]);
        server.join().unwrap();
    }
}
