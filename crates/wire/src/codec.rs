//! Deterministic binary codec.
//!
//! Everything in the workspace that is hashed, signed, or appended to a log
//! implements [`Encode`]/[`Decode`] so that byte representations are
//! canonical across processes and platforms: a digest computed by a trust
//! domain must equal the digest recomputed by an auditing client. We do not
//! use serde for these structures because serde formats make no canonicality
//! promises.
//!
//! Format rules (little-endian throughout):
//! * fixed-width integers: raw little-endian bytes;
//! * `bool`: one byte, `0` or `1` (decoding rejects other values);
//! * byte strings / vectors: `u32` length prefix then elements;
//! * `Option<T>`: one tag byte then the payload;
//! * structs: fields in declaration order, no padding, no field tags;
//! * enums: `u8` discriminant then the variant payload.

use bytes::{Buf, BufMut};

/// Maximum length accepted for any length-prefixed collection (16 MiB).
/// Prevents a malicious peer from triggering huge allocations.
pub const MAX_COLLECTION_LEN: usize = 16 * 1024 * 1024;

/// Decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the value was complete.
    UnexpectedEnd,
    /// A length prefix exceeded [`MAX_COLLECTION_LEN`].
    LengthOverflow(usize),
    /// An enum discriminant or bool byte was out of range.
    InvalidTag(u8),
    /// A semantic validity check failed (e.g. non-canonical point).
    Invalid(&'static str),
    /// Trailing bytes remained after a complete top-level decode.
    TrailingBytes(usize),
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::UnexpectedEnd => write!(f, "input ended mid-value"),
            Self::LengthOverflow(n) => write!(f, "length prefix {n} exceeds limit"),
            Self::InvalidTag(t) => write!(f, "invalid tag byte {t}"),
            Self::Invalid(what) => write!(f, "invalid value: {what}"),
            Self::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serializes a value into canonical bytes.
pub trait Encode {
    /// Appends the canonical encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Convenience: encodes into a fresh buffer.
    fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }
}

/// Deserializes a value from canonical bytes.
pub trait Decode: Sized {
    /// Reads a value from the front of `input`, advancing it.
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError>;

    /// Convenience: decodes a complete buffer, rejecting trailing bytes.
    fn from_wire(mut input: &[u8]) -> Result<Self, DecodeError> {
        let value = Self::decode(&mut input)?;
        if !input.is_empty() {
            return Err(DecodeError::TrailingBytes(input.len()));
        }
        Ok(value)
    }
}

/// Reads exactly `n` bytes from the front of the input.
pub fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], DecodeError> {
    if input.len() < n {
        return Err(DecodeError::UnexpectedEnd);
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Ok(head)
}

macro_rules! impl_int {
    ($($t:ty),*) => {
        $(
            impl Encode for $t {
                fn encode(&self, out: &mut Vec<u8>) {
                    out.put_slice(&self.to_le_bytes());
                }
            }
            impl Decode for $t {
                fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
                    let bytes = take(input, core::mem::size_of::<$t>())?;
                    let arr = bytes.try_into().map_err(|_| DecodeError::UnexpectedEnd)?;
                    Ok(<$t>::from_le_bytes(arr))
                }
            }
        )*
    };
}

impl_int!(u8, u16, u32, u64, i64);

impl Encode for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.put_u8(*self as u8);
    }
}

impl Decode for bool {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(input)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(DecodeError::InvalidTag(other)),
        }
    }
}

/// Encodes a `usize` length as `u32`, panicking above `u32::MAX` (lengths
/// that large are already rejected by [`MAX_COLLECTION_LEN`]).
pub fn encode_len(len: usize, out: &mut Vec<u8>) {
    // lint:allow(panic): encoder-local invariant — every collection is capped at MAX_COLLECTION_LEN (far below u32::MAX) before it reaches an encoder, and a silent truncation here would corrupt signed bytes
    let len32 = u32::try_from(len).expect("collection length fits in u32");
    len32.encode(out);
}

/// Decodes and bounds-checks a length prefix.
pub fn decode_len(input: &mut &[u8]) -> Result<usize, DecodeError> {
    let len = u32::decode(input)? as usize;
    if len > MAX_COLLECTION_LEN {
        return Err(DecodeError::LengthOverflow(len));
    }
    Ok(len)
}

impl Encode for Vec<u8> {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_len(self.len(), out);
        out.put_slice(self);
    }
}

impl Decode for Vec<u8> {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let len = decode_len(input)?;
        Ok(take(input, len)?.to_vec())
    }
}

impl Encode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_len(self.len(), out);
        out.put_slice(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let len = decode_len(input)?;
        let bytes = take(input, len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::Invalid("utf-8"))
    }
}

impl<const N: usize> Encode for [u8; N] {
    fn encode(&self, out: &mut Vec<u8>) {
        out.put_slice(self);
    }
}

impl<const N: usize> Decode for [u8; N] {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let bytes = take(input, N)?;
        bytes.try_into().map_err(|_| DecodeError::UnexpectedEnd)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.put_u8(0),
            Some(v) => {
                out.put_u8(1);
                v.encode(out);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(input)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(input)?)),
            other => Err(DecodeError::InvalidTag(other)),
        }
    }
}

// Generic Vec<T> for non-u8 element types would conflict with the Vec<u8>
// impl, so collections of structs use this explicit pair of helpers.

/// Encodes a slice of encodable values with a length prefix.
pub fn encode_seq<T: Encode>(items: &[T], out: &mut Vec<u8>) {
    encode_len(items.len(), out);
    for item in items {
        item.encode(out);
    }
}

/// Pre-parse reservation cap for length-prefixed sequences, in elements.
/// A hostile length prefix reserves at most this many slots before any
/// element has actually been parsed (the vector grows normally past it) —
/// without the cap, a 4-byte prefix inside a 16 MiB frame could demand
/// `len * size_of::<T>()` up front, ~512 MiB for 32-byte elements. 4096
/// elements keeps the worst pre-parse reservation around 64 KiB.
pub const SEQ_PREALLOC_LEN: usize = 4096;

/// Decodes a length-prefixed sequence.
pub fn decode_seq<T: Decode>(input: &mut &[u8]) -> Result<Vec<T>, DecodeError> {
    let len = decode_len(input)?;
    // Guard the loop: each element consumes at least one input byte in
    // every type this codec defines, so a length beyond the remaining
    // input can never be satisfied.
    if len > input.len() {
        return Err(DecodeError::LengthOverflow(len));
    }
    let mut items = Vec::with_capacity(len.min(SEQ_PREALLOC_LEN));
    for _ in 0..len {
        items.push(T::decode(input)?);
    }
    Ok(items)
}

/// Implements `Encode`/`Decode` for a struct field-by-field.
///
/// ```ignore
/// wire_struct!(MyMsg { seq: u64, payload: Vec<u8> });
/// ```
#[macro_export]
macro_rules! wire_struct {
    ($name:ident { $($field:ident: $ty:ty),* $(,)? }) => {
        impl $crate::codec::Encode for $name {
            fn encode(&self, out: &mut Vec<u8>) {
                $( self.$field.encode(out); )*
            }
        }
        impl $crate::codec::Decode for $name {
            fn decode(input: &mut &[u8]) -> Result<Self, $crate::codec::DecodeError> {
                Ok(Self {
                    $( $field: <$ty as $crate::codec::Decode>::decode(input)?, )*
                })
            }
        }
    };
}

/// Unused-import shim so `bytes` stays a real dependency of the framing
/// layer even when only the codec module is in play.
#[allow(dead_code)]
fn _buf_used(b: &mut dyn Buf) {
    let _ = b.remaining();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_round_trips() {
        let mut out = Vec::new();
        42u8.encode(&mut out);
        7u16.encode(&mut out);
        0xdead_beefu32.encode(&mut out);
        u64::MAX.encode(&mut out);
        (-5i64).encode(&mut out);
        let mut input = out.as_slice();
        assert_eq!(u8::decode(&mut input).unwrap(), 42);
        assert_eq!(u16::decode(&mut input).unwrap(), 7);
        assert_eq!(u32::decode(&mut input).unwrap(), 0xdead_beef);
        assert_eq!(u64::decode(&mut input).unwrap(), u64::MAX);
        assert_eq!(i64::decode(&mut input).unwrap(), -5);
        assert!(input.is_empty());
    }

    #[test]
    fn bool_strictness() {
        assert_eq!(bool::from_wire(&[1]), Ok(true));
        assert_eq!(bool::from_wire(&[0]), Ok(false));
        assert_eq!(bool::from_wire(&[2]), Err(DecodeError::InvalidTag(2)));
    }

    #[test]
    fn bytes_and_strings() {
        let v = b"hello world".to_vec();
        assert_eq!(Vec::<u8>::from_wire(&v.to_wire()), Ok(v));
        let s = "κόσμε".to_string();
        assert_eq!(String::from_wire(&s.to_wire()), Ok(s));
        // Invalid UTF-8 rejected.
        let mut bad = Vec::new();
        encode_len(2, &mut bad);
        bad.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(String::from_wire(&bad), Err(DecodeError::Invalid("utf-8")));
    }

    #[test]
    fn option_round_trip() {
        let some: Option<u64> = Some(9);
        let none: Option<u64> = None;
        assert_eq!(Option::<u64>::from_wire(&some.to_wire()), Ok(some));
        assert_eq!(Option::<u64>::from_wire(&none.to_wire()), Ok(none));
        assert_eq!(
            Option::<u64>::from_wire(&[7]),
            Err(DecodeError::InvalidTag(7))
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = 5u32.to_wire();
        buf.push(0);
        assert_eq!(u32::from_wire(&buf), Err(DecodeError::TrailingBytes(1)));
    }

    #[test]
    fn truncation_rejected() {
        let buf = u64::MAX.to_wire();
        assert_eq!(u64::from_wire(&buf[..7]), Err(DecodeError::UnexpectedEnd));
    }

    #[test]
    fn length_bomb_rejected() {
        // Claim a 4 GiB vector with a 4-byte body.
        let mut buf = Vec::new();
        (u32::MAX).encode(&mut buf);
        buf.extend_from_slice(&[0; 4]);
        assert!(matches!(
            Vec::<u8>::from_wire(&buf),
            Err(DecodeError::LengthOverflow(_))
        ));
    }

    #[test]
    fn seq_helpers() {
        let items: Vec<u64> = vec![1, 2, 3];
        let mut out = Vec::new();
        encode_seq(&items, &mut out);
        let mut input = out.as_slice();
        assert_eq!(decode_seq::<u64>(&mut input).unwrap(), items);
        assert!(input.is_empty());
        // Sequence claiming more elements than bytes remain is rejected
        // before allocating.
        let mut bomb = Vec::new();
        encode_len(1_000_000, &mut bomb);
        let mut input = bomb.as_slice();
        assert!(decode_seq::<u64>(&mut input).is_err());
    }

    #[test]
    fn seq_prealloc_cap_round_trips() {
        // Regression for the element-size amplification bomb: a 4-byte
        // length prefix used to translate into an up-front
        // `len * size_of::<T>()` reservation (hundreds of MiB from a
        // 16 MiB frame). The pre-parse reservation is now capped at
        // SEQ_PREALLOC_LEN elements — taint-alloc in distrust-lint flags
        // any revert — and sequences far larger than the cap must still
        // decode byte-for-byte.
        let items: Vec<u64> = (0..4 * SEQ_PREALLOC_LEN as u64).collect();
        let mut out = Vec::new();
        encode_seq(&items, &mut out);
        let mut input = out.as_slice();
        assert_eq!(decode_seq::<u64>(&mut input).unwrap(), items);
        assert!(input.is_empty());
        // A hostile prefix claiming more elements than remaining input
        // bytes is still rejected before the decode loop runs.
        let mut bomb = Vec::new();
        encode_len(1_000_000, &mut bomb);
        bomb.extend_from_slice(&[0; 64]);
        assert!(matches!(
            decode_seq::<u64>(&mut bomb.as_slice()),
            Err(DecodeError::LengthOverflow(_))
        ));
    }

    #[derive(Debug, PartialEq)]
    struct Sample {
        seq: u64,
        name: String,
        payload: Vec<u8>,
        flag: bool,
    }
    wire_struct!(Sample {
        seq: u64,
        name: String,
        payload: Vec<u8>,
        flag: bool,
    });

    #[test]
    fn derived_struct_round_trip() {
        let s = Sample {
            seq: 77,
            name: "domain-0".into(),
            payload: vec![1, 2, 3],
            flag: true,
        };
        let wire = s.to_wire();
        assert_eq!(Sample::from_wire(&wire), Ok(s));
    }

    #[test]
    fn encoding_is_deterministic() {
        let s1 = Sample {
            seq: 1,
            name: "x".into(),
            payload: vec![9; 10],
            flag: false,
        };
        let s2 = Sample {
            seq: 1,
            name: "x".into(),
            payload: vec![9; 10],
            flag: false,
        };
        assert_eq!(s1.to_wire(), s2.to_wire());
    }

    #[test]
    fn fixed_arrays() {
        let digest = [7u8; 32];
        assert_eq!(<[u8; 32]>::from_wire(&digest.to_wire()), Ok(digest));
    }
}
