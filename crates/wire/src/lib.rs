//! # distrust-wire
//!
//! Deterministic serialization, framing, transports, and RPC for the
//! `distrust` workspace.
//!
//! Design notes (see DESIGN.md §5): blocking I/O with a thread per
//! connection; explicit message types with a canonical binary codec so that
//! hashed/signed structures have one byte representation everywhere; real
//! TCP loopback sockets wherever the paper's evaluation attributes cost to
//! socket hops.

pub mod codec;
pub mod frame;
pub mod rpc;
pub mod transport;

pub use codec::{Decode, DecodeError, Encode};
pub use frame::{read_frame, write_frame, FrameError, MAX_FRAME_LEN};
pub use rpc::{RpcClient, RpcError, RpcHandler, RpcServer};
pub use transport::{
    ChannelTransport, SharedTransport, TcpAcceptor, TcpTransport, Transport, TransportError,
};
