//! # distrust-wire
//!
//! Deterministic serialization, framing, transports, and RPC for the
//! `distrust` workspace.
//!
//! Design notes (see DESIGN.md §5): explicit message types with a canonical
//! binary codec so that hashed/signed structures have one byte
//! representation everywhere; real TCP loopback sockets wherever the
//! paper's evaluation attributes cost to socket hops. Serving comes in two
//! shapes: the original blocking thread-per-connection loop
//! ([`rpc::RpcServer`]) and a readiness-based event loop ([`reactor`],
//! [`frame_nb`], [`rpc::EventLoopRpcServer`]) that multiplexes thousands of
//! connections onto a small fixed thread pool.

pub mod codec;
pub mod frame;
pub mod frame_nb;
pub mod pipeline;
pub mod reactor;
pub mod rpc;
pub mod sync;
pub mod transport;

pub use codec::{Decode, DecodeError, Encode};
pub use frame::{read_frame, write_frame, FrameError, MAX_FRAME_LEN, READ_CHUNK};
pub use frame_nb::{FrameReader, WriteBuf};
pub use pipeline::PipelinedClient;
pub use reactor::{FrameService, Reactor, ReactorHandle};
pub use rpc::{EventLoopRpcServer, RpcClient, RpcError, RpcHandler, RpcServer};
pub use sync::HealthyMutex;
pub use transport::{
    ChannelTransport, SharedTransport, TcpAcceptor, TcpTransport, Transport, TransportError,
};
