//! Workspace-standard mutex with uniform poisoning policy.
//!
//! Every server-side shared structure (connection registries, shared
//! transports, shard logs, wrapped services) locks through
//! [`HealthyMutex::lock_healthy`]: if a previous holder panicked, the
//! poison is shed and the guard is handed out anyway. The protected
//! structures are all either append-only or idempotently rebuilt, so a
//! half-finished mutation from a panicked writer is strictly less harmful
//! than wedging every subsequent client with opaque `PoisonError`s — a
//! denial-of-service the trust story can't afford (one panicking request
//! must not take the whole domain's serving path down with it).
//!
//! Using one named helper (rather than `parking_lot`-style silent
//! recovery scattered per call site) keeps the policy greppable and lets
//! `distrust-lint` treat `.lock_healthy()` as a lock acquisition in its
//! lock-order pass.

use std::sync::{Mutex, MutexGuard};

/// A mutex whose guard is always obtainable: poison from a panicked
/// holder is recovered instead of propagated.
#[derive(Debug, Default)]
pub struct HealthyMutex<T: ?Sized> {
    inner: Mutex<T>,
}

impl<T> HealthyMutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Self {
            inner: Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value (poison shed).
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> HealthyMutex<T> {
    /// Acquires the lock, recovering from a panicked previous holder
    /// instead of returning a poison error.
    pub fn lock_healthy(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = HealthyMutex::new(1);
        *m.lock_healthy() += 41;
        assert_eq!(*m.lock_healthy(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn panicked_holder_does_not_wedge_later_clients() {
        let m = Arc::new(HealthyMutex::new(vec![1u8]));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock_healthy();
            panic!("holder dies mid-critical-section");
        })
        .join();
        // The next client still gets a guard and sees consistent state.
        assert_eq!(m.lock_healthy().len(), 1);
    }
}
