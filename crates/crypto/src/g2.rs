//! `G2` — the order-`r` subgroup of `E'(Fp2): y² = x³ + 4(u + 1)`.
//!
//! Same Jacobian representation and variable-time conventions as
//! [`crate::g1`].

use crate::fp::Fp;
use crate::fp2::Fp2;
use crate::fr::Fr;

/// The G2 cofactor `h2` (508 bits), little-endian limbs.
pub const COFACTOR: [u64; 8] = [
    0xcf1c_38e3_1c72_38e5,
    0x1616_ec6e_786f_0c70,
    0x2153_7e29_3a66_91ae,
    0xa628_f1cb_4d9e_82ef,
    0xa68a_205b_2e5a_7ddf,
    0xcd91_de45_4708_5aba,
    0x091d_5079_2876_a202,
    0x05d5_43a9_5414_e7f1,
];

/// `b' = 4(u + 1)`, the G2 curve constant.
fn b2() -> Fp2 {
    Fp2::new(Fp::from_u64(4), Fp::from_u64(4))
}

/// Affine G2 point (or the point at infinity).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct G2Affine {
    pub x: Fp2,
    pub y: Fp2,
    pub infinity: bool,
}

/// Jacobian-projective G2 point.
#[derive(Clone, Copy, Debug)]
pub struct G2Projective {
    pub x: Fp2,
    pub y: Fp2,
    pub z: Fp2,
}

impl G2Affine {
    /// The point at infinity.
    pub const fn identity() -> Self {
        Self {
            x: Fp2::ZERO,
            y: Fp2::ZERO,
            infinity: true,
        }
    }

    /// The standard generator of G2.
    pub fn generator() -> Self {
        Self {
            x: Fp2::new(
                Fp::from_raw_unchecked([
                    0xd480_56c8_c121_bdb8,
                    0x0bac_0326_a805_bbef,
                    0xb451_0b64_7ae3_d177,
                    0xc6e4_7ad4_fa40_3b02,
                    0x2608_0527_2dc5_1051,
                    0x024a_a2b2_f08f_0a91,
                ]),
                Fp::from_raw_unchecked([
                    0xe5ac_7d05_5d04_2b7e,
                    0x334c_f112_1394_5d57,
                    0xb5da_61bb_dc7f_5049,
                    0x596b_d0d0_9920_b61a,
                    0x7dac_d3a0_8827_4f65,
                    0x13e0_2b60_5271_9f60,
                ]),
            ),
            y: Fp2::new(
                Fp::from_raw_unchecked([
                    0xe193_5486_08b8_2801,
                    0x923a_c9cc_3bac_a289,
                    0x6d42_9a69_5160_d12c,
                    0xadfd_9baa_8cbd_d3a7,
                    0x8cc9_cdc6_da2e_351a,
                    0x0ce5_d527_727d_6e11,
                ]),
                Fp::from_raw_unchecked([
                    0xaaa9_075f_f05f_79be,
                    0x3f37_0d27_5cec_1da1,
                    0x2674_92ab_572e_99ab,
                    0xcb3e_287e_85a7_63af,
                    0x32ac_d2b0_2bc2_8b99,
                    0x0606_c4a0_2ea7_34cc,
                ]),
            ),
            infinity: false,
        }
    }

    /// Curve membership: `y² == x³ + 4(u+1)` (or infinity).
    pub fn is_on_curve(&self) -> bool {
        if self.infinity {
            return true;
        }
        let y2 = self.y.square();
        let rhs = self.x.square().mul(&self.x).add(&b2());
        y2 == rhs
    }

    /// Subgroup membership: `[r]P == O`. Variable time.
    pub fn is_torsion_free(&self) -> bool {
        G2Projective::from(*self)
            .mul_limbs(&Fr::MODULUS)
            .is_identity()
    }

    /// Negation.
    pub fn neg(&self) -> Self {
        Self {
            x: self.x,
            y: self.y.neg(),
            infinity: self.infinity,
        }
    }

    /// Compressed encoding: 96 bytes — big-endian `x.c1 || x.c0` with flag
    /// bits in the top three bits of the first byte (`0x80` compressed,
    /// `0x40` infinity, `0x20` sign of `y`).
    pub fn to_compressed(&self) -> [u8; 96] {
        let mut out = [0u8; 96];
        if self.infinity {
            out[0] = 0x80 | 0x40;
            return out;
        }
        out[..48].copy_from_slice(&self.x.c1.to_bytes_be());
        out[48..].copy_from_slice(&self.x.c0.to_bytes_be());
        debug_assert_eq!(out[0] & 0xe0, 0);
        out[0] |= 0x80;
        if self.y.is_odd() {
            out[0] |= 0x20;
        }
        out
    }

    /// Decodes a compressed point, enforcing canonical encoding, curve
    /// membership, and r-torsion membership.
    pub fn from_compressed(bytes: &[u8; 96]) -> Option<Self> {
        let flags = bytes[0] & 0xe0;
        if flags & 0x80 == 0 {
            return None;
        }
        if flags & 0x40 != 0 {
            let mut body = *bytes;
            body[0] &= 0x1f;
            if body.iter().any(|&b| b != 0) {
                return None;
            }
            return Some(Self::identity());
        }
        let mut c1b = [0u8; 48];
        c1b.copy_from_slice(&bytes[..48]);
        c1b[0] &= 0x1f;
        let mut c0b = [0u8; 48];
        c0b.copy_from_slice(&bytes[48..]);
        let x = Fp2::new(Fp::from_bytes_be(&c0b)?, Fp::from_bytes_be(&c1b)?);
        let y2 = x.square().mul(&x).add(&b2());
        let mut y = y2.sqrt()?;
        if y.is_odd() != (flags & 0x20 != 0) {
            y = y.neg();
        }
        let point = Self {
            x,
            y,
            infinity: false,
        };
        if point.is_torsion_free() {
            Some(point)
        } else {
            None
        }
    }
}

impl From<G2Affine> for G2Projective {
    fn from(p: G2Affine) -> Self {
        if p.infinity {
            G2Projective::identity()
        } else {
            G2Projective {
                x: p.x,
                y: p.y,
                z: Fp2::ONE,
            }
        }
    }
}

impl From<G2Projective> for G2Affine {
    fn from(p: G2Projective) -> Self {
        p.to_affine()
    }
}

impl PartialEq for G2Projective {
    fn eq(&self, other: &Self) -> bool {
        let self_inf = self.is_identity();
        let other_inf = other.is_identity();
        if self_inf || other_inf {
            return self_inf == other_inf;
        }
        let z1z1 = self.z.square();
        let z2z2 = other.z.square();
        self.x.mul(&z2z2) == other.x.mul(&z1z1)
            && self.y.mul(&z2z2.mul(&other.z)) == other.y.mul(&z1z1.mul(&self.z))
    }
}
impl Eq for G2Projective {}

impl G2Projective {
    /// The point at infinity.
    pub const fn identity() -> Self {
        Self {
            x: Fp2::ZERO,
            y: Fp2::ZERO,
            z: Fp2::ZERO,
        }
    }

    /// The standard generator.
    pub fn generator() -> Self {
        G2Affine::generator().into()
    }

    /// True for the point at infinity.
    pub fn is_identity(&self) -> bool {
        self.z.is_zero()
    }

    /// Converts to affine coordinates.
    pub fn to_affine(&self) -> G2Affine {
        if self.is_identity() {
            return G2Affine::identity();
        }
        let z_inv = self.z.invert().expect("nonzero z");
        let z_inv2 = z_inv.square();
        G2Affine {
            x: self.x.mul(&z_inv2),
            y: self.y.mul(&z_inv2.mul(&z_inv)),
            infinity: false,
        }
    }

    /// Point doubling (Jacobian, a = 0).
    pub fn double(&self) -> Self {
        if self.is_identity() {
            return *self;
        }
        let a = self.x.square();
        let b = self.y.square();
        let c = b.square();
        let d = self.x.add(&b).square().sub(&a).sub(&c).double();
        let e = a.double().add(&a);
        let f = e.square();
        let x3 = f.sub(&d.double());
        let c8 = c.double().double().double();
        let y3 = e.mul(&d.sub(&x3)).sub(&c8);
        let z3 = self.y.mul(&self.z).double();
        Self {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Point addition (Jacobian).
    pub fn add(&self, rhs: &Self) -> Self {
        if self.is_identity() {
            return *rhs;
        }
        if rhs.is_identity() {
            return *self;
        }
        let z1z1 = self.z.square();
        let z2z2 = rhs.z.square();
        let u1 = self.x.mul(&z2z2);
        let u2 = rhs.x.mul(&z1z1);
        let s1 = self.y.mul(&z2z2).mul(&rhs.z);
        let s2 = rhs.y.mul(&z1z1).mul(&self.z);
        if u1 == u2 {
            if s1 == s2 {
                return self.double();
            }
            return Self::identity();
        }
        let h = u2.sub(&u1);
        let i = h.double().square();
        let j = h.mul(&i);
        let r = s2.sub(&s1).double();
        let v = u1.mul(&i);
        let x3 = r.square().sub(&j).sub(&v.double());
        let y3 = r.mul(&v.sub(&x3)).sub(&s1.mul(&j).double());
        let z3 = self.z.add(&rhs.z).square().sub(&z1z1).sub(&z2z2).mul(&h);
        Self {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Negation.
    pub fn neg(&self) -> Self {
        Self {
            x: self.x,
            y: self.y.neg(),
            z: self.z,
        }
    }

    /// Scalar multiplication by a field scalar.
    pub fn mul_scalar(&self, k: &Fr) -> Self {
        self.mul_limbs(&k.to_canonical_limbs())
    }

    /// Scalar multiplication by an arbitrary little-endian limb integer.
    pub fn mul_limbs(&self, k: &[u64]) -> Self {
        let mut acc = Self::identity();
        let nbits = k.len() * 64;
        for i in (0..nbits).rev() {
            acc = acc.double();
            if (k[i / 64] >> (i % 64)) & 1 == 1 {
                acc = acc.add(self);
            }
        }
        acc
    }

    /// Multiplies by the G2 cofactor.
    pub fn clear_cofactor(&self) -> Self {
        self.mul_limbs(&COFACTOR)
    }

    /// Samples a random subgroup element.
    pub fn random<R: rand::RngCore + ?Sized>(rng: &mut R) -> Self {
        Self::generator().mul_scalar(&Fr::random(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drbg::HmacDrbg;

    #[test]
    fn generator_on_curve_and_torsion_free() {
        let g = G2Affine::generator();
        assert!(g.is_on_curve());
        assert!(g.is_torsion_free());
    }

    #[test]
    fn group_laws() {
        let g = G2Projective::generator();
        let id = G2Projective::identity();
        assert_eq!(g.add(&id), g);
        assert_eq!(g.double(), g.add(&g));
        assert!(g.add(&g.neg()).is_identity());
    }

    #[test]
    fn scalar_mul_matches_additions() {
        let g = G2Projective::generator();
        assert_eq!(g.mul_scalar(&Fr::from_u64(3)), g.add(&g).add(&g));
        assert!(g.mul_scalar(&Fr::ZERO).is_identity());
    }

    #[test]
    fn order_annihilates_generator() {
        let g = G2Projective::generator();
        assert!(g.mul_limbs(&Fr::MODULUS).is_identity());
    }

    #[test]
    fn scalar_mul_homomorphism() {
        let mut rng = HmacDrbg::new(b"g2", b"hom");
        let g = G2Projective::generator();
        let a = Fr::random(&mut rng);
        let b = Fr::random(&mut rng);
        assert_eq!(g.mul_scalar(&a).mul_scalar(&b), g.mul_scalar(&a.mul(&b)));
    }

    #[test]
    fn compressed_round_trip() {
        let mut rng = HmacDrbg::new(b"g2", b"compress");
        for _ in 0..4 {
            let p = G2Projective::random(&mut rng).to_affine();
            let bytes = p.to_compressed();
            assert_eq!(G2Affine::from_compressed(&bytes), Some(p));
        }
        let id = G2Affine::identity();
        assert_eq!(G2Affine::from_compressed(&id.to_compressed()), Some(id));
    }

    #[test]
    fn compressed_rejects_garbage() {
        assert!(G2Affine::from_compressed(&[0u8; 96]).is_none());
        let mut bad = [0u8; 96];
        bad[0] = 0xc0;
        bad[95] = 7;
        assert!(G2Affine::from_compressed(&bad).is_none());
    }

    #[test]
    fn cofactor_clearing_lands_in_subgroup() {
        // Build an arbitrary point of E'(Fp2) (not necessarily in G2) by
        // sampling x until x³ + b is square, then clear the cofactor.
        let mut rng = HmacDrbg::new(b"g2", b"cofactor");
        let point = loop {
            let x = Fp2::random(&mut rng);
            let y2 = x.square().mul(&x).add(&b2());
            if let Some(y) = y2.sqrt() {
                break G2Projective { x, y, z: Fp2::ONE };
            }
        };
        let cleared = point.clear_cofactor();
        assert!(cleared.to_affine().is_on_curve());
        assert!(cleared.mul_limbs(&Fr::MODULUS).is_identity());
    }
}
