//! `Fp2 = Fp[u] / (u² + 1)` — the quadratic extension underlying G2 and the
//! pairing tower.

use crate::fp::Fp;

/// An element `c0 + c1·u` of Fp2.
#[derive(Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Fp2 {
    pub c0: Fp,
    pub c1: Fp,
}

impl Fp2 {
    /// The additive identity.
    pub const ZERO: Self = Self {
        c0: Fp::ZERO,
        c1: Fp::ZERO,
    };
    /// The multiplicative identity.
    pub const ONE: Self = Self {
        c0: Fp::ONE,
        c1: Fp::ZERO,
    };

    /// Constructs from components.
    pub fn new(c0: Fp, c1: Fp) -> Self {
        Self { c0, c1 }
    }

    /// True for zero.
    pub fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }

    /// Addition.
    pub fn add(&self, rhs: &Self) -> Self {
        Self {
            c0: self.c0.add(&rhs.c0),
            c1: self.c1.add(&rhs.c1),
        }
    }

    /// Subtraction.
    pub fn sub(&self, rhs: &Self) -> Self {
        Self {
            c0: self.c0.sub(&rhs.c0),
            c1: self.c1.sub(&rhs.c1),
        }
    }

    /// Negation.
    pub fn neg(&self) -> Self {
        Self {
            c0: self.c0.neg(),
            c1: self.c1.neg(),
        }
    }

    /// Doubling.
    pub fn double(&self) -> Self {
        self.add(self)
    }

    /// Multiplication. With `u² = -1`:
    /// `(a0 + a1 u)(b0 + b1 u) = (a0b0 - a1b1) + (a0b1 + a1b0) u`.
    pub fn mul(&self, rhs: &Self) -> Self {
        let a0b0 = self.c0.mul(&rhs.c0);
        let a1b1 = self.c1.mul(&rhs.c1);
        // Karatsuba for the cross term.
        let cross = self
            .c0
            .add(&self.c1)
            .mul(&rhs.c0.add(&rhs.c1))
            .sub(&a0b0)
            .sub(&a1b1);
        Self {
            c0: a0b0.sub(&a1b1),
            c1: cross,
        }
    }

    /// Squaring: `(a0 + a1 u)² = (a0+a1)(a0-a1) + 2 a0 a1 u`.
    pub fn square(&self) -> Self {
        let sum = self.c0.add(&self.c1);
        let diff = self.c0.sub(&self.c1);
        let prod = self.c0.mul(&self.c1);
        Self {
            c0: sum.mul(&diff),
            c1: prod.double(),
        }
    }

    /// Multiplies by the sextic non-residue `ξ = u + 1` used to define Fp6:
    /// `(c0 + c1 u)(1 + u) = (c0 - c1) + (c0 + c1) u`.
    pub fn mul_by_nonresidue(&self) -> Self {
        Self {
            c0: self.c0.sub(&self.c1),
            c1: self.c0.add(&self.c1),
        }
    }

    /// Scales both components by an Fp element.
    pub fn mul_by_fp(&self, k: &Fp) -> Self {
        Self {
            c0: self.c0.mul(k),
            c1: self.c1.mul(k),
        }
    }

    /// Frobenius endomorphism `x ↦ x^p`. Since `p ≡ 3 (mod 4)`, this is
    /// complex conjugation: `c1 ↦ -c1`.
    pub fn frobenius(&self) -> Self {
        self.conjugate()
    }

    /// Conjugation `c0 + c1 u ↦ c0 - c1 u`.
    pub fn conjugate(&self) -> Self {
        Self {
            c0: self.c0,
            c1: self.c1.neg(),
        }
    }

    /// Multiplicative inverse: `1/(c0 + c1 u) = (c0 - c1 u)/(c0² + c1²)`.
    pub fn invert(&self) -> Option<Self> {
        let norm = self.c0.square().add(&self.c1.square());
        norm.invert().map(|n| Self {
            c0: self.c0.mul(&n),
            c1: self.c1.neg().mul(&n),
        })
    }

    /// Variable-time exponentiation by little-endian limbs.
    pub fn pow_vartime(&self, exp: &[u64]) -> Self {
        let mut res = Self::ONE;
        for &limb in exp.iter().rev() {
            for i in (0..64).rev() {
                res = res.square();
                if (limb >> i) & 1 == 1 {
                    res = res.mul(self);
                }
            }
        }
        res
    }

    /// Square root in Fp2 (used when decompressing G2 points).
    ///
    /// Uses the generic algorithm for `p ≡ 3 (mod 4)`: compute
    /// `a1 = x^{(p-3)/4}`, then check the two candidate branches.
    pub fn sqrt(&self) -> Option<Self> {
        if self.is_zero() {
            return Some(*self);
        }
        // x^((p^2 + 7) / 16) does not apply here; use the simple approach:
        // candidate = x^((p^2+7)/16)... Instead, exploit the norm map:
        // write x = c0 + c1 u; a square root exists iff norm(x) is a QR in Fp.
        // alpha = sqrt(norm) ; then solve delta^2 = (c0 + alpha)/2.
        let norm = self.c0.square().add(&self.c1.square());
        let alpha = norm.sqrt()?;
        let two_inv = Fp::from_u64(2).invert().expect("2 != 0");
        // Try both ±alpha.
        for a in [alpha, alpha.neg()] {
            let delta2 = self.c0.add(&a).mul(&two_inv);
            if let Some(delta) = delta2.sqrt() {
                if delta.is_zero() {
                    continue;
                }
                // c1 = 2 * delta * d1 → d1 = c1 / (2 delta)
                let d1 = self.c1.mul(&two_inv).mul(&delta.invert()?);
                let cand = Self { c0: delta, c1: d1 };
                if cand.square() == *self {
                    return Some(cand);
                }
            }
        }
        // Handle c1 == 0 with c0 a non-residue: sqrt is purely imaginary.
        if self.c1.is_zero() {
            if let Some(root) = self.c0.neg().sqrt() {
                let cand = Self {
                    c0: Fp::ZERO,
                    c1: root,
                };
                if cand.square() == *self {
                    return Some(cand);
                }
            }
        }
        None
    }

    /// Lexicographic "sign" of the element, for compressed-point sign bits:
    /// the parity of `c1` if nonzero, else the parity of `c0`.
    pub fn is_odd(&self) -> bool {
        if self.c1.is_zero() {
            self.c0.is_odd()
        } else {
            self.c1.is_odd()
        }
    }

    /// Samples a random element.
    pub fn random<R: rand::RngCore + ?Sized>(rng: &mut R) -> Self {
        Self {
            c0: Fp::random(rng),
            c1: Fp::random(rng),
        }
    }
}

impl core::fmt::Debug for Fp2 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Fp2({:?} + {:?}·u)", self.c0, self.c1)
    }
}

impl core::ops::Add for Fp2 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Fp2::add(&self, &rhs)
    }
}
impl core::ops::Sub for Fp2 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Fp2::sub(&self, &rhs)
    }
}
impl core::ops::Mul for Fp2 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Fp2::mul(&self, &rhs)
    }
}
impl core::ops::Neg for Fp2 {
    type Output = Self;
    fn neg(self) -> Self {
        Fp2::neg(&self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_fp2() -> impl Strategy<Value = Fp2> {
        (any::<[u8; 96]>(), any::<[u8; 96]>()).prop_map(|(a, b)| Fp2 {
            c0: Fp::from_bytes_wide(&a),
            c1: Fp::from_bytes_wide(&b),
        })
    }

    #[test]
    fn u_squared_is_minus_one() {
        let u = Fp2::new(Fp::ZERO, Fp::ONE);
        assert_eq!(u.square(), Fp2::new(Fp::ONE.neg(), Fp::ZERO));
    }

    #[test]
    fn nonresidue_matches_mul() {
        let xi = Fp2::new(Fp::ONE, Fp::ONE); // 1 + u
        let mut rng = crate::drbg::HmacDrbg::new(b"fp2 test", b"");
        for _ in 0..8 {
            let a = Fp2::random(&mut rng);
            assert_eq!(a.mul_by_nonresidue(), a.mul(&xi));
        }
    }

    #[test]
    fn frobenius_is_p_power() {
        let mut rng = crate::drbg::HmacDrbg::new(b"fp2 frob", b"");
        let a = Fp2::random(&mut rng);
        assert_eq!(a.frobenius(), a.pow_vartime(&Fp::MODULUS));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ring_axioms(a in arb_fp2(), b in arb_fp2(), c in arb_fp2()) {
            prop_assert_eq!(a.add(&b), b.add(&a));
            prop_assert_eq!(a.mul(&b), b.mul(&a));
            prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
            prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
        }

        #[test]
        fn square_matches_mul(a in arb_fp2()) {
            prop_assert_eq!(a.square(), a.mul(&a));
        }

        #[test]
        fn invert_round_trip(a in arb_fp2()) {
            prop_assume!(!a.is_zero());
            prop_assert_eq!(a.mul(&a.invert().unwrap()), Fp2::ONE);
        }

        #[test]
        fn sqrt_round_trip(a in arb_fp2()) {
            let sq = a.square();
            let root = sq.sqrt().expect("squares have roots");
            prop_assert_eq!(root.square(), sq);
        }

        #[test]
        fn conjugate_norm_in_fp(a in arb_fp2()) {
            let n = a.mul(&a.conjugate());
            prop_assert!(n.c1.is_zero());
        }
    }
}
