//! `G1` — the order-`r` subgroup of `E(Fp): y² = x³ + 4`.
//!
//! Points use Jacobian projective coordinates internally
//! (`x = X/Z²`, `y = Y/Z³`, infinity encoded as `Z = 0`). Scalar
//! multiplication is variable-time double-and-add; see the side-channel note
//! in [`crate::limbs`].

use crate::fp::Fp;
use crate::fr::Fr;
use crate::sha256::sha256_many;

/// The G1 cofactor `h1 = 0x396c8c005555e1568c00aaab0000aaab`.
pub const COFACTOR: [u64; 2] = [0x8c00_aaab_0000_aaab, 0x396c_8c00_5555_e156];

/// Affine G1 point (or the point at infinity).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct G1Affine {
    pub x: Fp,
    pub y: Fp,
    pub infinity: bool,
}

/// Jacobian-projective G1 point.
#[derive(Clone, Copy, Debug)]
pub struct G1Projective {
    pub x: Fp,
    pub y: Fp,
    pub z: Fp,
}

impl G1Affine {
    /// The point at infinity.
    pub const fn identity() -> Self {
        Self {
            x: Fp::ZERO,
            y: Fp::ZERO,
            infinity: true,
        }
    }

    /// The standard generator of G1.
    pub fn generator() -> Self {
        Self {
            x: Fp::from_raw_unchecked([
                0xfb3a_f00a_db22_c6bb,
                0x6c55_e83f_f97a_1aef,
                0xa14e_3a3f_171b_ac58,
                0xc368_8c4f_9774_b905,
                0x2695_638c_4fa9_ac0f,
                0x17f1_d3a7_3197_d794,
            ]),
            y: Fp::from_raw_unchecked([
                0x0caa_2329_46c5_e7e1,
                0xd03c_c744_a288_8ae4,
                0x00db_18cb_2c04_b3ed,
                0xfcf5_e095_d5d0_0af6,
                0xa09e_30ed_741d_8ae4,
                0x08b3_f481_e3aa_a0f1,
            ]),
            infinity: false,
        }
    }

    /// Curve membership: `y² == x³ + 4` (or infinity).
    pub fn is_on_curve(&self) -> bool {
        if self.infinity {
            return true;
        }
        let y2 = self.y.square();
        let x3_plus_b = self.x.square().mul(&self.x).add(&Fp::from_u64(4));
        y2 == x3_plus_b
    }

    /// Subgroup membership: `[r]P == O`. Variable time.
    pub fn is_torsion_free(&self) -> bool {
        G1Projective::from(*self)
            .mul_limbs(&Fr::MODULUS)
            .is_identity()
    }

    /// Negation.
    pub fn neg(&self) -> Self {
        Self {
            x: self.x,
            y: self.y.neg(),
            infinity: self.infinity,
        }
    }

    /// Compressed encoding: 48 bytes, big-endian `x` with flag bits in the
    /// top three bits of the first byte (`0x80` = compressed, `0x40` =
    /// infinity, `0x20` = `y` odd). Self-consistent within this workspace.
    pub fn to_compressed(&self) -> [u8; 48] {
        if self.infinity {
            let mut out = [0u8; 48];
            out[0] = 0x80 | 0x40;
            return out;
        }
        let mut out = self.x.to_bytes_be();
        debug_assert_eq!(out[0] & 0xe0, 0, "x fits in 381 bits");
        out[0] |= 0x80;
        if self.y.is_odd() {
            out[0] |= 0x20;
        }
        out
    }

    /// Decodes a compressed point, enforcing canonical field encoding,
    /// curve membership, and r-torsion membership.
    pub fn from_compressed(bytes: &[u8; 48]) -> Option<Self> {
        let flags = bytes[0] & 0xe0;
        if flags & 0x80 == 0 {
            return None; // not marked compressed
        }
        if flags & 0x40 != 0 {
            // Infinity must have an all-zero body.
            let mut body = *bytes;
            body[0] &= 0x1f;
            if body.iter().any(|&b| b != 0) {
                return None;
            }
            return Some(Self::identity());
        }
        let mut xb = *bytes;
        xb[0] &= 0x1f;
        let x = Fp::from_bytes_be(&xb)?;
        let y2 = x.square().mul(&x).add(&Fp::from_u64(4));
        let mut y = y2.sqrt()?;
        if y.is_odd() != (flags & 0x20 != 0) {
            y = y.neg();
        }
        let point = Self {
            x,
            y,
            infinity: false,
        };
        if point.is_torsion_free() {
            Some(point)
        } else {
            None
        }
    }
}

impl From<G1Affine> for G1Projective {
    fn from(p: G1Affine) -> Self {
        if p.infinity {
            G1Projective::identity()
        } else {
            G1Projective {
                x: p.x,
                y: p.y,
                z: Fp::ONE,
            }
        }
    }
}

impl From<G1Projective> for G1Affine {
    fn from(p: G1Projective) -> Self {
        p.to_affine()
    }
}

impl PartialEq for G1Projective {
    fn eq(&self, other: &Self) -> bool {
        // (X1, Y1, Z1) ~ (X2, Y2, Z2) iff X1 Z2² == X2 Z1² and Y1 Z2³ == Y2 Z1³.
        let self_inf = self.is_identity();
        let other_inf = other.is_identity();
        if self_inf || other_inf {
            return self_inf == other_inf;
        }
        let z1z1 = self.z.square();
        let z2z2 = other.z.square();
        self.x.mul(&z2z2) == other.x.mul(&z1z1)
            && self.y.mul(&z2z2.mul(&other.z)) == other.y.mul(&z1z1.mul(&self.z))
    }
}
impl Eq for G1Projective {}

impl G1Projective {
    /// The point at infinity.
    pub const fn identity() -> Self {
        Self {
            x: Fp::ZERO,
            y: Fp::ZERO,
            z: Fp::ZERO,
        }
    }

    /// The standard generator.
    pub fn generator() -> Self {
        G1Affine::generator().into()
    }

    /// True for the point at infinity.
    pub fn is_identity(&self) -> bool {
        self.z.is_zero()
    }

    /// Converts to affine coordinates (one field inversion).
    pub fn to_affine(&self) -> G1Affine {
        if self.is_identity() {
            return G1Affine::identity();
        }
        let z_inv = self.z.invert().expect("nonzero z");
        let z_inv2 = z_inv.square();
        G1Affine {
            x: self.x.mul(&z_inv2),
            y: self.y.mul(&z_inv2.mul(&z_inv)),
            infinity: false,
        }
    }

    /// Point doubling (Jacobian, a = 0).
    pub fn double(&self) -> Self {
        if self.is_identity() {
            return *self;
        }
        let a = self.x.square();
        let b = self.y.square();
        let c = b.square();
        let d = self.x.add(&b).square().sub(&a).sub(&c).double();
        let e = a.double().add(&a);
        let f = e.square();
        let x3 = f.sub(&d.double());
        let c8 = c.double().double().double();
        let y3 = e.mul(&d.sub(&x3)).sub(&c8);
        let z3 = self.y.mul(&self.z).double();
        Self {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Point addition (Jacobian).
    pub fn add(&self, rhs: &Self) -> Self {
        if self.is_identity() {
            return *rhs;
        }
        if rhs.is_identity() {
            return *self;
        }
        let z1z1 = self.z.square();
        let z2z2 = rhs.z.square();
        let u1 = self.x.mul(&z2z2);
        let u2 = rhs.x.mul(&z1z1);
        let s1 = self.y.mul(&z2z2).mul(&rhs.z);
        let s2 = rhs.y.mul(&z1z1).mul(&self.z);
        if u1 == u2 {
            if s1 == s2 {
                return self.double();
            }
            return Self::identity();
        }
        let h = u2.sub(&u1);
        let i = h.double().square();
        let j = h.mul(&i);
        let r = s2.sub(&s1).double();
        let v = u1.mul(&i);
        let x3 = r.square().sub(&j).sub(&v.double());
        let y3 = r.mul(&v.sub(&x3)).sub(&s1.mul(&j).double());
        let z3 = self.z.add(&rhs.z).square().sub(&z1z1).sub(&z2z2).mul(&h);
        Self {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Mixed addition with an affine point.
    pub fn add_affine(&self, rhs: &G1Affine) -> Self {
        self.add(&G1Projective::from(*rhs))
    }

    /// Negation.
    pub fn neg(&self) -> Self {
        Self {
            x: self.x,
            y: self.y.neg(),
            z: self.z,
        }
    }

    /// Scalar multiplication by a field scalar.
    pub fn mul_scalar(&self, k: &Fr) -> Self {
        self.mul_limbs(&k.to_canonical_limbs())
    }

    /// Scalar multiplication by an arbitrary little-endian limb integer
    /// (used for cofactor clearing and torsion checks).
    pub fn mul_limbs(&self, k: &[u64]) -> Self {
        let mut acc = Self::identity();
        let nbits = k.len() * 64;
        for i in (0..nbits).rev() {
            acc = acc.double();
            if (k[i / 64] >> (i % 64)) & 1 == 1 {
                acc = acc.add(self);
            }
        }
        acc
    }

    /// Multiplies by the G1 cofactor, mapping any curve point into the
    /// order-`r` subgroup.
    pub fn clear_cofactor(&self) -> Self {
        self.mul_limbs(&COFACTOR)
    }

    /// Samples a random subgroup element (generator times random scalar).
    pub fn random<R: rand::RngCore + ?Sized>(rng: &mut R) -> Self {
        Self::generator().mul_scalar(&Fr::random(rng))
    }
}

/// Hashes an arbitrary message to G1 with domain separation, using
/// try-and-increment followed by cofactor clearing.
///
/// **Not constant time**: the iteration count leaks information about the
/// (public) message. Do not use for secret inputs. Standards-track
/// deployments should use SSWU; this repository documents the substitution
/// in DESIGN.md.
pub fn hash_to_g1(msg: &[u8], dst: &[u8]) -> G1Projective {
    for ctr in 0u16..=1024 {
        let ctr_bytes = ctr.to_be_bytes();
        let h1 = sha256_many(&[b"distrust/htc/1/", dst, &ctr_bytes, msg]);
        let h2 = sha256_many(&[b"distrust/htc/2/", dst, &ctr_bytes, msg]);
        let mut xb = [0u8; 48];
        xb[..32].copy_from_slice(&h1);
        xb[32..].copy_from_slice(&h2[..16]);
        xb[0] &= 0x1f; // < 2^381
        let Some(x) = Fp::from_bytes_be(&xb) else {
            continue;
        };
        let y2 = x.square().mul(&x).add(&Fp::from_u64(4));
        let Some(mut y) = y2.sqrt() else {
            continue;
        };
        if (h2[16] & 1 == 1) != y.is_odd() {
            y = y.neg();
        }
        let point = G1Projective { x, y, z: Fp::ONE };
        debug_assert!(point.to_affine().is_on_curve());
        let cleared = point.clear_cofactor();
        if !cleared.is_identity() {
            return cleared;
        }
    }
    unreachable!("hash_to_g1 failed 1024 consecutive times (p ≈ 2^-1024)");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drbg::HmacDrbg;

    #[test]
    fn generator_on_curve_and_torsion_free() {
        let g = G1Affine::generator();
        assert!(g.is_on_curve());
        assert!(g.is_torsion_free());
    }

    #[test]
    fn identity_laws() {
        let g = G1Projective::generator();
        let id = G1Projective::identity();
        assert_eq!(g.add(&id), g);
        assert_eq!(id.add(&g), g);
        assert_eq!(id.double(), id);
        assert!(g.add(&g.neg()).is_identity());
    }

    #[test]
    fn double_matches_add() {
        let g = G1Projective::generator();
        assert_eq!(g.double(), g.add(&g));
        let g4 = g.double().double();
        assert_eq!(g4, g.add(&g).add(&g).add(&g));
    }

    #[test]
    fn scalar_mul_small() {
        let g = G1Projective::generator();
        assert_eq!(g.mul_scalar(&Fr::from_u64(1)), g);
        assert_eq!(g.mul_scalar(&Fr::from_u64(2)), g.double());
        assert_eq!(g.mul_scalar(&Fr::from_u64(5)), g.double().double().add(&g));
        assert!(g.mul_scalar(&Fr::ZERO).is_identity());
    }

    #[test]
    fn scalar_mul_distributes() {
        let mut rng = HmacDrbg::new(b"g1", b"distribute");
        let g = G1Projective::generator();
        let a = Fr::random(&mut rng);
        let b = Fr::random(&mut rng);
        let lhs = g.mul_scalar(&a.add(&b));
        let rhs = g.mul_scalar(&a).add(&g.mul_scalar(&b));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn order_annihilates_generator() {
        let g = G1Projective::generator();
        assert!(g.mul_limbs(&Fr::MODULUS).is_identity());
    }

    #[test]
    fn compressed_round_trip() {
        let mut rng = HmacDrbg::new(b"g1", b"compress");
        for _ in 0..8 {
            let p = G1Projective::random(&mut rng).to_affine();
            let bytes = p.to_compressed();
            let q = G1Affine::from_compressed(&bytes).expect("valid encoding");
            assert_eq!(p, q);
        }
        // Identity round trip.
        let id = G1Affine::identity();
        assert_eq!(G1Affine::from_compressed(&id.to_compressed()), Some(id));
    }

    #[test]
    fn compressed_rejects_garbage() {
        // No compression flag.
        assert!(G1Affine::from_compressed(&[0u8; 48]).is_none());
        // Infinity flag with nonzero body.
        let mut bad = [0u8; 48];
        bad[0] = 0xc0;
        bad[47] = 1;
        assert!(G1Affine::from_compressed(&bad).is_none());
        // x not on curve: flip bits until decode fails at the sqrt stage.
        let mut tampered = G1Affine::generator().to_compressed();
        tampered[47] ^= 1;
        // Either decodes to a different valid point or fails; must not
        // return the generator.
        if let Some(p) = G1Affine::from_compressed(&tampered) {
            assert_ne!(p, G1Affine::generator());
        }
    }

    #[test]
    fn hash_to_g1_properties() {
        let p = hash_to_g1(b"message one", b"test-dst");
        let q = hash_to_g1(b"message two", b"test-dst");
        let r = hash_to_g1(b"message one", b"other-dst");
        assert!(p.to_affine().is_on_curve());
        assert!(p.to_affine().is_torsion_free());
        assert_ne!(p, q, "different messages map to different points");
        assert_ne!(p, r, "different DSTs map to different points");
        // Determinism.
        assert_eq!(p, hash_to_g1(b"message one", b"test-dst"));
    }

    #[test]
    fn mixed_add_matches_projective() {
        let mut rng = HmacDrbg::new(b"g1", b"mixed");
        let p = G1Projective::random(&mut rng);
        let q = G1Projective::random(&mut rng);
        assert_eq!(p.add_affine(&q.to_affine()), p.add(&q));
    }
}
