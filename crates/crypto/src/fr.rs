//! `Fr` — the BLS12-381 scalar field (the prime order of G1/G2/GT),
//! `r = 0x73eda753299d7d483339d80809a1d80553bda402fffe5bfeffffffff00000001`
//! (255 bits).

use crate::field::prime_field;

prime_field!(
    /// An element of the BLS12-381 scalar field `Fr` in Montgomery form.
    Fr,
    4,
    32,
    [
        0xffff_ffff_0000_0001,
        0x53bd_a402_fffe_5bfe,
        0x3339_d808_09a1_d805,
        0x73ed_a753_299d_7d48,
    ],
    0xffff_fffe_ffff_ffff,
    [
        0x0000_0001_ffff_fffe,
        0x5884_b7fa_0003_4802,
        0x998c_4fef_ecbc_4ff5,
        0x1824_b159_acc5_056f,
    ],
    [
        0xc999_e990_f3f2_9c6d,
        0x2b6c_edcb_8792_5c23,
        0x05d3_1496_7254_398f,
        0x0748_d9d9_9f59_ff11,
    ]
);

impl Fr {
    /// Derives a scalar from 64 uniformly random / pseudorandom bytes.
    /// This is the standard "hash to scalar" used for Fiat–Shamir challenges.
    pub fn from_hash_wide(bytes: &[u8; 64]) -> Self {
        Self::from_bytes_wide(bytes)
    }

    /// Samples a *non-zero* scalar (secret keys, polynomial coefficients).
    pub fn random_nonzero<R: rand::RngCore + ?Sized>(rng: &mut R) -> Self {
        loop {
            let s = Self::random(rng);
            if !s.is_zero() {
                return s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn arb_fr() -> impl Strategy<Value = Fr> {
        any::<[u8; 64]>().prop_map(|bytes| Fr::from_bytes_wide(&bytes))
    }

    #[test]
    fn identities() {
        assert!(Fr::ZERO.is_zero());
        assert_eq!(Fr::ONE.mul(&Fr::ONE), Fr::ONE);
    }

    #[test]
    fn small_values_round_trip() {
        for v in [0u64, 1, 2, 12345, u64::MAX] {
            assert_eq!(Fr::from_u64(v).to_canonical_limbs()[0], v);
        }
    }

    #[test]
    fn order_wraps() {
        let r_minus_1 = Fr::from_raw_unchecked(crate::limbs::sub_small(&Fr::MODULUS, 1));
        assert!(r_minus_1.add(&Fr::ONE).is_zero());
    }

    #[test]
    fn rejects_modulus_bytes() {
        let mut bytes = [0u8; 32];
        crate::limbs::limbs_to_be_bytes(&Fr::MODULUS, &mut bytes);
        assert!(Fr::from_bytes_be(&bytes).is_none());
    }

    #[test]
    fn random_nonzero_is_nonzero() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..16 {
            assert!(!Fr::random_nonzero(&mut rng).is_zero());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn field_axioms(a in arb_fr(), b in arb_fr(), c in arb_fr()) {
            prop_assert_eq!(a.add(&b), b.add(&a));
            prop_assert_eq!(a.mul(&b), b.mul(&a));
            prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
            prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
        }

        #[test]
        fn invert_round_trip(a in arb_fr()) {
            prop_assume!(!a.is_zero());
            prop_assert_eq!(a.mul(&a.invert().unwrap()), Fr::ONE);
        }

        #[test]
        fn bytes_round_trip(a in arb_fr()) {
            prop_assert_eq!(Fr::from_bytes_be(&a.to_bytes_be()), Some(a));
        }

        #[test]
        fn pow_matches_repeated_mul(a in arb_fr(), e in 0u64..32) {
            let mut expect = Fr::ONE;
            for _ in 0..e {
                expect = expect.mul(&a);
            }
            prop_assert_eq!(a.pow_vartime(&[e]), expect);
        }
    }
}
