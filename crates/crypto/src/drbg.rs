//! HMAC-DRBG (NIST SP 800-90A) over SHA-256.
//!
//! Provides deterministic randomness for reproducible tests, deterministic
//! Schnorr nonces (RFC 6979 style), and the simulated TEE's internal entropy
//! source. Implements [`rand::RngCore`] so it can be plugged into any API in
//! the workspace that takes an RNG.

use crate::hmac::HmacSha256;
use rand::{CryptoRng, RngCore};

/// Deterministic random bit generator seeded from arbitrary entropy.
pub struct HmacDrbg {
    key: [u8; 32],
    value: [u8; 32],
    /// Number of `generate` calls since instantiation/reseed.
    reseed_counter: u64,
}

impl HmacDrbg {
    /// Instantiates the DRBG from seed material and an optional
    /// personalization string (domain separation between consumers).
    pub fn new(entropy: &[u8], personalization: &[u8]) -> Self {
        let mut drbg = Self {
            key: [0u8; 32],
            value: [1u8; 32],
            reseed_counter: 1,
        };
        drbg.update(Some(&[entropy, personalization]));
        drbg
    }

    /// Mixes additional entropy into the state.
    pub fn reseed(&mut self, entropy: &[u8]) {
        self.update(Some(&[entropy]));
        self.reseed_counter = 1;
    }

    /// Fills `out` with pseudorandom bytes.
    pub fn generate(&mut self, out: &mut [u8]) {
        let mut filled = 0;
        while filled < out.len() {
            let mut mac = HmacSha256::new(&self.key);
            mac.update(&self.value);
            self.value = mac.finalize();
            let take = (out.len() - filled).min(32);
            out[filled..filled + take].copy_from_slice(&self.value[..take]);
            filled += take;
        }
        self.update(None);
        self.reseed_counter += 1;
    }

    /// The HMAC-DRBG update function.
    fn update(&mut self, provided: Option<&[&[u8]]>) {
        let mut mac = HmacSha256::new(&self.key);
        mac.update(&self.value);
        mac.update(&[0x00]);
        if let Some(parts) = provided {
            for p in parts {
                mac.update(p);
            }
        }
        self.key = mac.finalize();
        let mut mac = HmacSha256::new(&self.key);
        mac.update(&self.value);
        self.value = mac.finalize();

        if let Some(parts) = provided {
            let mut mac = HmacSha256::new(&self.key);
            mac.update(&self.value);
            mac.update(&[0x01]);
            for p in parts {
                mac.update(p);
            }
            self.key = mac.finalize();
            let mut mac = HmacSha256::new(&self.key);
            mac.update(&self.value);
            self.value = mac.finalize();
        }
    }
}

impl RngCore for HmacDrbg {
    fn next_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.generate(&mut b);
        u32::from_le_bytes(b)
    }

    fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.generate(&mut b);
        u64::from_le_bytes(b)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.generate(dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.generate(dest);
        Ok(())
    }
}

// The DRBG is a cryptographically secure PRG given a high-entropy seed.
impl CryptoRng for HmacDrbg {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = HmacDrbg::new(b"seed material", b"test");
        let mut b = HmacDrbg::new(b"seed material", b"test");
        let mut out_a = [0u8; 100];
        let mut out_b = [0u8; 100];
        a.generate(&mut out_a);
        b.generate(&mut out_b);
        assert_eq!(out_a, out_b);
    }

    #[test]
    fn personalization_separates_streams() {
        let mut a = HmacDrbg::new(b"seed", b"domain-a");
        let mut b = HmacDrbg::new(b"seed", b"domain-b");
        let mut out_a = [0u8; 32];
        let mut out_b = [0u8; 32];
        a.generate(&mut out_a);
        b.generate(&mut out_b);
        assert_ne!(out_a, out_b);
    }

    #[test]
    fn successive_outputs_differ() {
        let mut drbg = HmacDrbg::new(b"seed", b"");
        let mut first = [0u8; 32];
        let mut second = [0u8; 32];
        drbg.generate(&mut first);
        drbg.generate(&mut second);
        assert_ne!(first, second);
    }

    #[test]
    fn reseed_changes_stream() {
        let mut a = HmacDrbg::new(b"seed", b"");
        let mut b = HmacDrbg::new(b"seed", b"");
        b.reseed(b"extra entropy");
        let mut out_a = [0u8; 32];
        let mut out_b = [0u8; 32];
        a.generate(&mut out_a);
        b.generate(&mut out_b);
        assert_ne!(out_a, out_b);
    }

    #[test]
    fn rng_core_interface() {
        let mut drbg = HmacDrbg::new(b"seed", b"rngcore");
        let x = drbg.next_u64();
        let y = drbg.next_u64();
        assert_ne!(x, y, "consecutive u64 draws should differ");
        let mut buf = [0u8; 7];
        drbg.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 7]);
    }

    #[test]
    fn odd_length_requests() {
        let mut drbg = HmacDrbg::new(b"seed", b"");
        let mut buf = vec![0u8; 33];
        drbg.generate(&mut buf);
        // 33 bytes spans two HMAC blocks; both halves must be filled.
        assert!(buf[..32].iter().any(|&b| b != 0));
        // The last byte comes from the second block — statistically nonzero,
        // but assert only on structure: request length honoured.
        assert_eq!(buf.len(), 33);
    }
}
