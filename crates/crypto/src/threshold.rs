//! Threshold BLS signatures: Shamir secret sharing over `Fr`, Feldman
//! verifiable secret sharing, partial signatures, and Lagrange aggregation.
//!
//! This is the cryptographic core of the paper's prototype: "each trust
//! domain stores a secret key share, and the trust domains can jointly sign
//! a message" (§5). We implement a trusted-dealer setup hardened with
//! Feldman commitments so each trust domain can verify its share — strictly
//! stronger than the prototype's plain dealer (documented in DESIGN.md).

use crate::bls::{PublicKey, Signature};
use crate::fr::Fr;
use crate::g1::{hash_to_g1, G1Projective};
use crate::g2::{G2Affine, G2Projective};
use crate::pairing::pairing_equality;

/// Errors from threshold operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThresholdError {
    /// Threshold must satisfy `1 <= t <= n` and `n <= 255`.
    InvalidParameters { t: usize, n: usize },
    /// Fewer than `t` (or duplicate-indexed) shares supplied.
    InsufficientShares { have: usize, need: usize },
    /// A share failed Feldman verification.
    ShareVerificationFailed { index: u8 },
    /// Duplicate share indices in an aggregation set.
    DuplicateIndex(u8),
}

impl core::fmt::Display for ThresholdError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::InvalidParameters { t, n } => {
                write!(f, "invalid threshold parameters t={t}, n={n}")
            }
            Self::InsufficientShares { have, need } => {
                write!(f, "insufficient shares: have {have}, need {need}")
            }
            Self::ShareVerificationFailed { index } => {
                write!(f, "share {index} failed Feldman verification")
            }
            Self::DuplicateIndex(i) => write!(f, "duplicate share index {i}"),
        }
    }
}

impl std::error::Error for ThresholdError {}

/// A secret share: the dealer polynomial evaluated at `x = index`.
#[derive(Clone, Copy)]
pub struct KeyShare {
    /// Share index in `1..=n` (never 0 — that would leak the secret).
    pub index: u8,
    /// `f(index)` — the share scalar.
    pub value: Fr,
}

impl core::fmt::Debug for KeyShare {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "KeyShare {{ index: {}, value: <redacted> }}", self.index)
    }
}

/// Feldman commitments to the dealer polynomial: `C_j = coeff_j · g₂`.
/// Public; lets anyone verify a share and derive per-share public keys.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FeldmanCommitments {
    /// `t` commitments, one per polynomial coefficient (degree `t-1`).
    pub coefficients: Vec<G2Affine>,
}

/// A partial BLS signature from one trust domain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartialSignature {
    /// Index of the share that produced this fragment.
    pub index: u8,
    /// `share · H(m)`.
    pub value: Signature,
}

/// Output of dealer-based key generation.
pub struct ThresholdKeys {
    /// The group public key `f(0)·g₂`.
    pub public_key: PublicKey,
    /// One share per trust domain.
    pub shares: Vec<KeyShare>,
    /// Feldman commitments for share verification.
    pub commitments: FeldmanCommitments,
}

impl FeldmanCommitments {
    /// The group public key, `C_0`.
    pub fn public_key(&self) -> PublicKey {
        PublicKey(self.coefficients[0])
    }

    /// Evaluates the commitment polynomial at `x = index` in the exponent,
    /// yielding the public key of that share: `pk_i = Σ_j C_j · index^j`.
    pub fn share_public_key(&self, index: u8) -> PublicKey {
        let x = Fr::from_u64(index as u64);
        let mut acc = G2Projective::identity();
        let mut x_pow = Fr::ONE;
        for c in &self.coefficients {
            acc = acc.add(&G2Projective::from(*c).mul_scalar(&x_pow));
            x_pow = x_pow.mul(&x);
        }
        PublicKey(acc.to_affine())
    }

    /// Verifies a share against the commitments: `share·g₂ == pk_index`.
    pub fn verify_share(&self, share: &KeyShare) -> bool {
        if share.index == 0 {
            return false;
        }
        let expect = self.share_public_key(share.index);
        let actual = G2Projective::generator()
            .mul_scalar(&share.value)
            .to_affine();
        expect.0 == actual
    }

    /// The threshold `t` (number of coefficients).
    pub fn threshold(&self) -> usize {
        self.coefficients.len()
    }
}

/// Dealer-based threshold key generation: samples a random degree-`t-1`
/// polynomial `f`, sets the group secret to `f(0)`, and hands share `f(i)`
/// to domain `i ∈ 1..=n`.
pub fn generate<R: rand::RngCore + ?Sized>(
    t: usize,
    n: usize,
    rng: &mut R,
) -> Result<ThresholdKeys, ThresholdError> {
    if t == 0 || t > n || n > 255 {
        return Err(ThresholdError::InvalidParameters { t, n });
    }
    let coeffs: Vec<Fr> = (0..t).map(|_| Fr::random_nonzero(rng)).collect();
    let commitments = FeldmanCommitments {
        coefficients: coeffs
            .iter()
            .map(|c| G2Projective::generator().mul_scalar(c).to_affine())
            .collect(),
    };
    let shares = (1..=n as u8)
        .map(|i| KeyShare {
            index: i,
            value: eval_poly(&coeffs, &Fr::from_u64(i as u64)),
        })
        .collect();
    Ok(ThresholdKeys {
        public_key: commitments.public_key(),
        shares,
        commitments,
    })
}

/// Horner evaluation of `f(x)` with coefficients in ascending order.
fn eval_poly(coeffs: &[Fr], x: &Fr) -> Fr {
    let mut acc = Fr::ZERO;
    for c in coeffs.iter().rev() {
        acc = acc.mul(x).add(c);
    }
    acc
}

/// Produces a partial signature with one share.
pub fn partial_sign(share: &KeyShare, message: &[u8]) -> PartialSignature {
    let h = hash_to_g1(message, crate::bls::MSG_DST);
    PartialSignature {
        index: share.index,
        value: Signature(h.mul_scalar(&share.value).to_affine()),
    }
}

/// Verifies a partial signature against the Feldman commitments:
/// `e(σ_i, g₂) == e(H(m), pk_i)`.
pub fn verify_partial(
    commitments: &FeldmanCommitments,
    message: &[u8],
    partial: &PartialSignature,
) -> bool {
    if partial.value.0.infinity {
        return false;
    }
    let pk_i = commitments.share_public_key(partial.index);
    let h = hash_to_g1(message, crate::bls::MSG_DST).to_affine();
    pairing_equality(&partial.value.0, &G2Affine::generator(), &h, &pk_i.0)
}

/// Lagrange coefficient `λ_i = Π_{j≠i} x_j / (x_j − x_i)` evaluated at 0.
fn lagrange_at_zero(indices: &[u8], i: usize) -> Fr {
    let xi = Fr::from_u64(indices[i] as u64);
    let mut num = Fr::ONE;
    let mut den = Fr::ONE;
    for (j, &idx) in indices.iter().enumerate() {
        if j == i {
            continue;
        }
        let xj = Fr::from_u64(idx as u64);
        num = num.mul(&xj);
        den = den.mul(&xj.sub(&xi));
    }
    num.mul(&den.invert().expect("distinct nonzero indices"))
}

/// Combines `t` (or more) partial signatures into the group signature via
/// Lagrange interpolation in the exponent. The result verifies under the
/// group public key exactly as an ordinary BLS signature.
pub fn aggregate(t: usize, partials: &[PartialSignature]) -> Result<Signature, ThresholdError> {
    if partials.len() < t {
        return Err(ThresholdError::InsufficientShares {
            have: partials.len(),
            need: t,
        });
    }
    let selected = &partials[..t];
    let mut seen = [false; 256];
    for p in selected {
        if p.index == 0 || seen[p.index as usize] {
            return Err(ThresholdError::DuplicateIndex(p.index));
        }
        seen[p.index as usize] = true;
    }
    let indices: Vec<u8> = selected.iter().map(|p| p.index).collect();
    let mut acc = G1Projective::identity();
    for (i, p) in selected.iter().enumerate() {
        let lambda = lagrange_at_zero(&indices, i);
        acc = acc.add(&G1Projective::from(p.value.0).mul_scalar(&lambda));
    }
    Ok(Signature(acc.to_affine()))
}

/// Reconstructs a shared secret scalar from `t` shares (used by tests and by
/// the key-backup recovery flow, *never* by the signing path — signing keeps
/// shares distributed).
pub fn reconstruct_secret(t: usize, shares: &[KeyShare]) -> Result<Fr, ThresholdError> {
    if shares.len() < t {
        return Err(ThresholdError::InsufficientShares {
            have: shares.len(),
            need: t,
        });
    }
    let selected = &shares[..t];
    let mut seen = [false; 256];
    for s in selected {
        if s.index == 0 || seen[s.index as usize] {
            return Err(ThresholdError::DuplicateIndex(s.index));
        }
        seen[s.index as usize] = true;
    }
    let indices: Vec<u8> = selected.iter().map(|s| s.index).collect();
    let mut acc = Fr::ZERO;
    for (i, s) in selected.iter().enumerate() {
        acc = acc.add(&lagrange_at_zero(&indices, i).mul(&s.value));
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drbg::HmacDrbg;

    fn setup(t: usize, n: usize, tag: &[u8]) -> ThresholdKeys {
        let mut rng = HmacDrbg::new(b"threshold tests", tag);
        generate(t, n, &mut rng).expect("valid parameters")
    }

    #[test]
    fn rejects_bad_parameters() {
        let mut rng = HmacDrbg::new(b"params", b"");
        assert!(matches!(
            generate(0, 5, &mut rng),
            Err(ThresholdError::InvalidParameters { .. })
        ));
        assert!(matches!(
            generate(6, 5, &mut rng),
            Err(ThresholdError::InvalidParameters { .. })
        ));
        assert!(matches!(
            generate(2, 300, &mut rng),
            Err(ThresholdError::InvalidParameters { .. })
        ));
    }

    #[test]
    fn shares_verify_against_commitments() {
        let keys = setup(3, 5, b"feldman");
        for share in &keys.shares {
            assert!(keys.commitments.verify_share(share));
        }
        // A corrupted share fails.
        let mut bad = keys.shares[0];
        bad.value = bad.value.add(&Fr::ONE);
        assert!(!keys.commitments.verify_share(&bad));
        // Index 0 is always rejected.
        let zero = KeyShare {
            index: 0,
            value: Fr::ONE,
        };
        assert!(!keys.commitments.verify_share(&zero));
    }

    #[test]
    fn threshold_signature_verifies_as_plain_bls() {
        let keys = setup(3, 5, b"sign");
        let msg = b"the treaty is signed";
        let partials: Vec<PartialSignature> = keys.shares[..3]
            .iter()
            .map(|s| partial_sign(s, msg))
            .collect();
        let sig = aggregate(3, &partials).unwrap();
        assert!(keys.public_key.verify(msg, &sig));
    }

    #[test]
    fn any_t_subset_produces_same_signature() {
        let keys = setup(3, 5, b"subset");
        let msg = b"deterministic";
        let all: Vec<PartialSignature> = keys.shares.iter().map(|s| partial_sign(s, msg)).collect();
        let sig_a = aggregate(3, &[all[0], all[1], all[2]]).unwrap();
        let sig_b = aggregate(3, &[all[2], all[3], all[4]]).unwrap();
        let sig_c = aggregate(3, &[all[4], all[0], all[2]]).unwrap();
        assert_eq!(sig_a, sig_b);
        assert_eq!(sig_b, sig_c);
        assert!(keys.public_key.verify(msg, &sig_a));
    }

    #[test]
    fn fewer_than_t_shares_fail() {
        let keys = setup(3, 5, b"fewer");
        let msg = b"msg";
        let partials: Vec<PartialSignature> = keys.shares[..2]
            .iter()
            .map(|s| partial_sign(s, msg))
            .collect();
        assert!(matches!(
            aggregate(3, &partials),
            Err(ThresholdError::InsufficientShares { have: 2, need: 3 })
        ));
    }

    #[test]
    fn t_minus_1_shares_give_wrong_signature() {
        // Interpolating with t-1 points (padded by reusing one) cannot
        // recover the polynomial — verify the resulting signature is invalid.
        let keys = setup(3, 5, b"undershoot");
        let msg = b"msg";
        let p0 = partial_sign(&keys.shares[0], msg);
        let p1 = partial_sign(&keys.shares[1], msg);
        // Aggregate with t=2 (attacker pretends threshold is lower).
        let forged = aggregate(2, &[p0, p1]).unwrap();
        assert!(!keys.public_key.verify(msg, &forged));
    }

    #[test]
    fn duplicate_indices_rejected() {
        let keys = setup(2, 3, b"dup");
        let msg = b"msg";
        let p = partial_sign(&keys.shares[0], msg);
        assert!(matches!(
            aggregate(2, &[p, p]),
            Err(ThresholdError::DuplicateIndex(1))
        ));
    }

    #[test]
    fn partial_verification() {
        let keys = setup(2, 4, b"partial");
        let msg = b"audit me";
        let good = partial_sign(&keys.shares[1], msg);
        assert!(verify_partial(&keys.commitments, msg, &good));
        // Wrong message.
        assert!(!verify_partial(&keys.commitments, b"other", &good));
        // A partial claiming the wrong index fails.
        let mislabeled = PartialSignature {
            index: 3,
            value: good.value,
        };
        assert!(!verify_partial(&keys.commitments, msg, &mislabeled));
    }

    #[test]
    fn secret_reconstruction_round_trip() {
        let mut rng = HmacDrbg::new(b"reconstruct", b"");
        let keys = generate(3, 5, &mut rng).unwrap();
        let secret = reconstruct_secret(3, &keys.shares[1..4]).unwrap();
        // The reconstructed secret must produce the group public key.
        let pk = crate::bls::SecretKey(secret).public_key();
        assert_eq!(pk, keys.public_key);
    }

    #[test]
    fn reconstruction_with_wrong_share_differs() {
        let keys = setup(2, 3, b"tamper");
        let mut shares: Vec<KeyShare> = keys.shares[..2].to_vec();
        shares[0].value = shares[0].value.add(&Fr::ONE);
        let secret = reconstruct_secret(2, &shares).unwrap();
        let pk = crate::bls::SecretKey(secret).public_key();
        assert_ne!(pk, keys.public_key);
    }

    #[test]
    fn one_of_one_threshold() {
        let keys = setup(1, 1, b"solo");
        let msg = b"single domain";
        let p = partial_sign(&keys.shares[0], msg);
        let sig = aggregate(1, &[p]).unwrap();
        assert!(keys.public_key.verify(msg, &sig));
    }

    #[test]
    fn large_committee() {
        let keys = setup(7, 10, b"large");
        let msg = b"ten domains";
        let partials: Vec<PartialSignature> = keys.shares[2..9]
            .iter()
            .map(|s| partial_sign(s, msg))
            .collect();
        let sig = aggregate(7, &partials).unwrap();
        assert!(keys.public_key.verify(msg, &sig));
    }
}
