//! `Fp` — the BLS12-381 base field,
//! `p = 0x1a0111ea397fe69a4b1ba7b6434bacd764774b84f38512bf6730d2a0f6b0f624`
//! `1eabfffeb153ffffb9feffffffffaaab` (381 bits).

use crate::field::prime_field;
use crate::limbs;

prime_field!(
    /// An element of the BLS12-381 base field `Fp` in Montgomery form.
    Fp,
    6,
    48,
    [
        0xb9fe_ffff_ffff_aaab,
        0x1eab_fffe_b153_ffff,
        0x6730_d2a0_f6b0_f624,
        0x6477_4b84_f385_12bf,
        0x4b1b_a7b6_434b_acd7,
        0x1a01_11ea_397f_e69a,
    ],
    0x89f3_fffc_fffc_fffd,
    [
        0x7609_0000_0002_fffd,
        0xebf4_000b_c40c_0002,
        0x5f48_9857_53c7_58ba,
        0x77ce_5853_7052_5745,
        0x5c07_1a97_a256_ec6d,
        0x15f6_5ec3_fa80_e493,
    ],
    [
        0xf4df_1f34_1c34_1746,
        0x0a76_e6a6_09d1_04f1,
        0x8de5_476c_4c95_b6d5,
        0x67eb_88a9_939d_83c0,
        0x9a79_3e85_b519_952d,
        0x1198_8fe5_92ca_e3aa,
    ]
);

impl Fp {
    /// Square root for `p ≡ 3 (mod 4)`: `x^{(p+1)/4}`, validated by squaring.
    pub fn sqrt(&self) -> Option<Self> {
        // (p + 1) / 4 == (p - 3) / 4 + 1; compute from the modulus to avoid
        // hardcoding another constant.
        let p_plus_1_over_4 = {
            let minus3 = limbs::sub_small(&Self::MODULUS, 3);
            let q = limbs::div_by_u64(&minus3, 4);
            let mut one = [0u64; 6];
            one[0] = 1;
            let (sum, _) = limbs::add(&q, &one);
            sum
        };
        let candidate = self.pow_vartime(&p_plus_1_over_4);
        if candidate.square() == *self {
            Some(candidate)
        } else {
            None
        }
    }

    /// Multiplies by the small constant `k` (used by curve formulas).
    pub fn mul_small(&self, k: u64) -> Self {
        self.mul(&Self::from_u64(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn arb_fp() -> impl Strategy<Value = Fp> {
        any::<[u8; 96]>().prop_map(|bytes| Fp::from_bytes_wide(&bytes))
    }

    #[test]
    fn identities() {
        assert!(Fp::ZERO.is_zero());
        assert_eq!(Fp::ONE.mul(&Fp::ONE), Fp::ONE);
        assert_eq!(Fp::from_u64(7).add(&Fp::ZERO), Fp::from_u64(7));
    }

    #[test]
    fn small_arithmetic() {
        let a = Fp::from_u64(1_000_003);
        let b = Fp::from_u64(999_999_999);
        assert_eq!(
            a.mul(&b).to_canonical_limbs()[0],
            1_000_003u64 * 999_999_999
        );
        assert_eq!(a.add(&b).to_canonical_limbs()[0], 1_000_003 + 999_999_999);
        assert_eq!(b.sub(&a).to_canonical_limbs()[0], 999_999_999 - 1_000_003);
    }

    #[test]
    fn modulus_wraps_to_zero() {
        // p - 1 + 1 == 0
        let p_minus_1 = Fp::from_raw_unchecked(crate::limbs::sub_small(&Fp::MODULUS, 1));
        assert!(p_minus_1.add(&Fp::ONE).is_zero());
        assert_eq!(Fp::ZERO.sub(&Fp::ONE), p_minus_1);
        assert_eq!(Fp::ONE.neg(), p_minus_1);
    }

    #[test]
    fn rejects_unreduced_bytes() {
        let mut bytes = [0xffu8; 48];
        assert!(Fp::from_bytes_be(&bytes).is_none());
        bytes = [0u8; 48];
        bytes[47] = 1;
        assert_eq!(Fp::from_bytes_be(&bytes), Some(Fp::ONE));
    }

    #[test]
    fn bytes_round_trip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..32 {
            let a = Fp::random(&mut rng);
            assert_eq!(Fp::from_bytes_be(&a.to_bytes_be()), Some(a));
        }
    }

    #[test]
    fn invert_special_cases() {
        assert!(Fp::ZERO.invert().is_none());
        assert_eq!(Fp::ONE.invert(), Some(Fp::ONE));
    }

    #[test]
    fn sqrt_of_squares() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for _ in 0..8 {
            let a = Fp::random(&mut rng);
            let sq = a.square();
            let root = sq.sqrt().expect("square must have a root");
            assert!(root == a || root == a.neg());
        }
    }

    #[test]
    fn sqrt_rejects_non_residue() {
        // Find some non-residue deterministically.
        let mut found = false;
        for k in 2u64..50 {
            let x = Fp::from_u64(k);
            if x.sqrt().is_none() {
                found = true;
                break;
            }
        }
        assert!(found, "expected a quadratic non-residue below 50");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn addition_commutes(a in arb_fp(), b in arb_fp()) {
            prop_assert_eq!(a.add(&b), b.add(&a));
        }

        #[test]
        fn multiplication_commutes(a in arb_fp(), b in arb_fp()) {
            prop_assert_eq!(a.mul(&b), b.mul(&a));
        }

        #[test]
        fn mul_associates(a in arb_fp(), b in arb_fp(), c in arb_fp()) {
            prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
        }

        #[test]
        fn distributive(a in arb_fp(), b in arb_fp(), c in arb_fp()) {
            prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
        }

        #[test]
        fn add_neg_is_zero(a in arb_fp()) {
            prop_assert!(a.add(&a.neg()).is_zero());
        }

        #[test]
        fn invert_round_trip(a in arb_fp()) {
            prop_assume!(!a.is_zero());
            let inv = a.invert().unwrap();
            prop_assert_eq!(a.mul(&inv), Fp::ONE);
        }

        #[test]
        fn square_matches_mul(a in arb_fp()) {
            prop_assert_eq!(a.square(), a.mul(&a));
        }

        #[test]
        fn wide_reduction_is_canonical(bytes in any::<[u8; 96]>()) {
            let a = Fp::from_bytes_wide(&bytes);
            // Round-tripping through canonical bytes must succeed, i.e. the
            // element is fully reduced.
            prop_assert_eq!(Fp::from_bytes_be(&a.to_bytes_be()), Some(a));
        }
    }
}
