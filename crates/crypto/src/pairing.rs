//! The optimal ate pairing `e : G1 × G2 → GT` on BLS12-381.
//!
//! Implementation follows the standard line-function formulation
//! (Aranha et al., "Faster explicit formulas...", eprint 2010/354) as used by
//! production BLS12-381 libraries: a Miller loop over the (negative) BLS
//! parameter `x = -0xd201000000010000`, then the easy + hard parts of the
//! final exponentiation, with cyclotomic squarings in the hard part.
//!
//! Correctness is established by property tests: bilinearity in both
//! arguments, non-degeneracy, and compatibility with scalar multiplication.

use crate::fp12::Fp12;
use crate::fp2::Fp2;
use crate::fr::Fr;
use crate::g1::G1Affine;
use crate::g2::{G2Affine, G2Projective};

/// |x| for the BLS parameter `x = -0xd201000000010000`.
const BLS_X: u64 = 0xd201_0000_0001_0000;

/// An element of the target group `GT ⊂ Fp12*` (the image of the pairing).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Gt(pub Fp12);

impl Gt {
    /// The identity element of GT.
    pub const IDENTITY: Self = Gt(Fp12::ONE);

    /// Group operation (multiplication in Fp12).
    pub fn mul(&self, rhs: &Self) -> Self {
        Gt(self.0.mul(&rhs.0))
    }

    /// Inversion. GT elements lie in the cyclotomic subgroup, where
    /// inversion is conjugation.
    pub fn invert(&self) -> Self {
        Gt(self.0.conjugate())
    }

    /// Exponentiation by a scalar.
    pub fn pow(&self, k: &Fr) -> Self {
        Gt(self.0.pow_vartime(&k.to_canonical_limbs()))
    }

    /// True for the identity.
    pub fn is_identity(&self) -> bool {
        self.0.is_one()
    }
}

/// Doubling step of the Miller loop; mutates `r ← 2r` and returns the line
/// coefficients. Adapted from Algorithm 26 of eprint 2010/354.
fn doubling_step(r: &mut G2Projective) -> (Fp2, Fp2, Fp2) {
    let tmp0 = r.x.square();
    let tmp1 = r.y.square();
    let tmp2 = tmp1.square();
    let tmp3 = tmp1.add(&r.x).square().sub(&tmp0).sub(&tmp2).double();
    let tmp4 = tmp0.double().add(&tmp0);
    let tmp6 = r.x.add(&tmp4);
    let tmp5 = tmp4.square();
    let zsquared = r.z.square();
    r.x = tmp5.sub(&tmp3).sub(&tmp3);
    r.z = r.z.add(&r.y).square().sub(&tmp1).sub(&zsquared);
    r.y = tmp3.sub(&r.x).mul(&tmp4);
    let tmp2_8 = tmp2.double().double().double();
    r.y = r.y.sub(&tmp2_8);
    let tmp3 = tmp4.mul(&zsquared).double().neg();
    let tmp6 = tmp6.square().sub(&tmp0).sub(&tmp5);
    let tmp1_4 = tmp1.double().double();
    let tmp6 = tmp6.sub(&tmp1_4);
    let tmp0 = r.z.mul(&zsquared).double();
    (tmp0, tmp3, tmp6)
}

/// Addition step of the Miller loop; mutates `r ← r + q` and returns the
/// line coefficients. Adapted from Algorithm 27 of eprint 2010/354.
fn addition_step(r: &mut G2Projective, q: &G2Affine) -> (Fp2, Fp2, Fp2) {
    let zsquared = r.z.square();
    let ysquared = q.y.square();
    let t0 = zsquared.mul(&q.x);
    let t1 =
        q.y.add(&r.z)
            .square()
            .sub(&ysquared)
            .sub(&zsquared)
            .mul(&zsquared);
    let t2 = t0.sub(&r.x);
    let t3 = t2.square();
    let t4 = t3.double().double();
    let t5 = t4.mul(&t2);
    let t6 = t1.sub(&r.y).sub(&r.y);
    let t9 = t6.mul(&q.x);
    let t7 = t4.mul(&r.x);
    r.x = t6.square().sub(&t5).sub(&t7).sub(&t7);
    r.z = r.z.add(&t2).square().sub(&zsquared).sub(&t3);
    let t10 = q.y.add(&r.z);
    let t8 = t7.sub(&r.x).mul(&t6);
    let t0 = r.y.mul(&t5).double();
    r.y = t8.sub(&t0);
    let t10 = t10.square().sub(&ysquared);
    let ztsquared = r.z.square();
    let t10 = t10.sub(&ztsquared);
    let t9 = t9.double().sub(&t10);
    let t10 = r.z.double();
    let t6 = t6.neg();
    let t1 = t6.double();
    (t10, t1, t9)
}

/// Evaluates a line (coefficient triple) at `p` and multiplies it into `f`.
fn ell(f: &Fp12, coeffs: &(Fp2, Fp2, Fp2), p: &G1Affine) -> Fp12 {
    let c0 = coeffs.0.mul_by_fp(&p.y);
    let c1 = coeffs.1.mul_by_fp(&p.x);
    f.mul_by_014(&coeffs.2, &c1, &c0)
}

/// The Miller loop, producing the unreduced pairing value.
fn miller_loop(p: &G1Affine, q: &G2Affine) -> Fp12 {
    if p.infinity || q.infinity {
        return Fp12::ONE;
    }
    let mut r = G2Projective::from(*q);
    let mut f = Fp12::ONE;
    // Iterate over the bits of |BLS_X| below the most significant one.
    let top = 63 - BLS_X.leading_zeros() as usize;
    for i in (0..top).rev() {
        f = f.square();
        let coeffs = doubling_step(&mut r);
        f = ell(&f, &coeffs, p);
        if (BLS_X >> i) & 1 == 1 {
            let coeffs = addition_step(&mut r, q);
            f = ell(&f, &coeffs, p);
        }
    }
    // x < 0: conjugate.
    f.conjugate()
}

/// Squaring in the quartic extension used by cyclotomic squaring.
fn fp4_square(a: &Fp2, b: &Fp2) -> (Fp2, Fp2) {
    let t0 = a.square();
    let t1 = b.square();
    let c0 = t1.mul_by_nonresidue().add(&t0);
    let c1 = a.add(b).square().sub(&t0).sub(&t1);
    (c0, c1)
}

/// Granger–Scott squaring for elements of the cyclotomic subgroup.
fn cyclotomic_square(f: &Fp12) -> Fp12 {
    let mut z0 = f.c0.c0;
    let mut z4 = f.c0.c1;
    let mut z3 = f.c0.c2;
    let mut z2 = f.c1.c0;
    let mut z1 = f.c1.c1;
    let mut z5 = f.c1.c2;

    let (t0, t1) = fp4_square(&z0, &z1);
    z0 = t0.sub(&z0);
    z0 = z0.double().add(&t0);
    z1 = t1.add(&z1);
    z1 = z1.double().add(&t1);

    let (t0, t1) = fp4_square(&z2, &z3);
    let (t2, t3) = fp4_square(&z4, &z5);

    z4 = t0.sub(&z4);
    z4 = z4.double().add(&t0);
    z5 = t1.add(&z5);
    z5 = z5.double().add(&t1);

    let t0 = t3.mul_by_nonresidue();
    z2 = t0.add(&z2);
    z2 = z2.double().add(&t0);
    z3 = t2.sub(&z3);
    z3 = z3.double().add(&t2);

    Fp12 {
        c0: crate::fp6::Fp6::new(z0, z4, z3),
        c1: crate::fp6::Fp6::new(z2, z1, z5),
    }
}

/// `f^|x|` with cyclotomic squarings, then conjugated because `x < 0`.
fn cyclotomic_exp(f: &Fp12) -> Fp12 {
    let mut tmp = Fp12::ONE;
    let mut found_one = false;
    for i in (0..64).rev() {
        if found_one {
            tmp = cyclotomic_square(&tmp);
        }
        if (BLS_X >> i) & 1 == 1 {
            found_one = true;
            tmp = tmp.mul(f);
        }
    }
    tmp.conjugate()
}

/// The final exponentiation `f^{(p^12 - 1)/r}`.
fn final_exponentiation(f: &Fp12) -> Gt {
    let mut f = *f;
    // Easy part: f^{(p^6 - 1)(p^2 + 1)}.
    let mut t0 = f;
    for _ in 0..6 {
        t0 = t0.frobenius();
    }
    let t1 = f.invert().expect("Miller loop output is nonzero");
    let mut t2 = t0.mul(&t1);
    let t1 = t2;
    t2 = t2.frobenius().frobenius();
    t2 = t2.mul(&t1);
    // Hard part (addition-chain form used by BLS12-381 implementations).
    let t1 = cyclotomic_square(&t2).conjugate();
    let mut t3 = cyclotomic_exp(&t2);
    let mut t4 = cyclotomic_square(&t3);
    let mut t5 = t1.mul(&t3);
    let t1 = cyclotomic_exp(&t5);
    let t0 = cyclotomic_exp(&t1);
    let mut t6 = cyclotomic_exp(&t0);
    t6 = t6.mul(&t4);
    t4 = cyclotomic_exp(&t6);
    t5 = t5.conjugate();
    t4 = t4.mul(&t5).mul(&t2);
    t5 = t2.conjugate();
    let mut t1 = t1.mul(&t2);
    t1 = t1.frobenius().frobenius().frobenius();
    t6 = t6.mul(&t5);
    t6 = t6.frobenius();
    t3 = t3.mul(&t0);
    t3 = t3.frobenius().frobenius();
    t3 = t3.mul(&t1);
    t3 = t3.mul(&t6);
    f = t3.mul(&t4);
    Gt(f)
}

/// Computes the pairing `e(p, q)`.
pub fn pairing(p: &G1Affine, q: &G2Affine) -> Gt {
    final_exponentiation(&miller_loop(p, q))
}

/// Computes `∏ e(p_i, q_i)` with a shared final exponentiation — the shape
/// used by batched signature verification.
pub fn multi_pairing(pairs: &[(G1Affine, G2Affine)]) -> Gt {
    let mut f = Fp12::ONE;
    for (p, q) in pairs {
        f = f.mul(&miller_loop(p, q));
    }
    final_exponentiation(&f)
}

/// Checks `e(a1, a2) == e(b1, b2)` using the product trick:
/// `e(a1, a2)·e(-b1, b2) == 1`. One final exponentiation total.
pub fn pairing_equality(a1: &G1Affine, a2: &G2Affine, b1: &G1Affine, b2: &G2Affine) -> bool {
    let f1 = miller_loop(a1, a2);
    let f2 = miller_loop(&b1.neg(), b2);
    final_exponentiation(&f1.mul(&f2)).is_identity()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drbg::HmacDrbg;
    use crate::g1::G1Projective;

    #[test]
    fn non_degenerate() {
        let e = pairing(&G1Affine::generator(), &G2Affine::generator());
        assert!(!e.is_identity());
        assert!(!e.0.is_zero());
    }

    #[test]
    fn identity_inputs_map_to_identity() {
        let e = pairing(&G1Affine::identity(), &G2Affine::generator());
        assert!(e.is_identity());
        let e = pairing(&G1Affine::generator(), &G2Affine::identity());
        assert!(e.is_identity());
    }

    #[test]
    fn bilinear_in_g1() {
        let g1 = G1Projective::generator();
        let g2 = G2Affine::generator();
        let e1 = pairing(&g1.double().to_affine(), &g2);
        let e2 = pairing(&g1.to_affine(), &g2);
        assert_eq!(e1, e2.mul(&e2), "e(2P, Q) == e(P, Q)^2");
    }

    #[test]
    fn bilinear_in_g2() {
        let g1 = G1Affine::generator();
        let g2 = G2Projective::generator();
        let e1 = pairing(&g1, &g2.double().to_affine());
        let e2 = pairing(&g1, &g2.to_affine());
        assert_eq!(e1, e2.mul(&e2), "e(P, 2Q) == e(P, Q)^2");
    }

    #[test]
    fn bilinear_random_scalars() {
        let mut rng = HmacDrbg::new(b"pairing", b"bilinear");
        let a = Fr::random(&mut rng);
        let b = Fr::random(&mut rng);
        let pa = G1Projective::generator().mul_scalar(&a).to_affine();
        let qb = crate::g2::G2Projective::generator()
            .mul_scalar(&b)
            .to_affine();
        let lhs = pairing(&pa, &qb);
        let base = pairing(&G1Affine::generator(), &G2Affine::generator());
        let rhs = base.pow(&a.mul(&b));
        assert_eq!(lhs, rhs, "e(aP, bQ) == e(P, Q)^{{ab}}");
    }

    #[test]
    fn multiplicative_in_first_argument() {
        let mut rng = HmacDrbg::new(b"pairing", b"additive");
        let p1 = G1Projective::random(&mut rng);
        let p2 = G1Projective::random(&mut rng);
        let q = G2Affine::generator();
        let lhs = pairing(&p1.add(&p2).to_affine(), &q);
        let rhs = pairing(&p1.to_affine(), &q).mul(&pairing(&p2.to_affine(), &q));
        assert_eq!(lhs, rhs, "e(P1 + P2, Q) == e(P1, Q)·e(P2, Q)");
    }

    #[test]
    fn gt_has_order_r() {
        let e = pairing(&G1Affine::generator(), &G2Affine::generator());
        let e_r = Gt(e.0.pow_vartime(&Fr::MODULUS));
        assert!(e_r.is_identity(), "GT elements have order dividing r");
    }

    #[test]
    fn multi_pairing_matches_product() {
        let mut rng = HmacDrbg::new(b"pairing", b"multi");
        let p1 = G1Projective::random(&mut rng).to_affine();
        let p2 = G1Projective::random(&mut rng).to_affine();
        let q = G2Affine::generator();
        let combined = multi_pairing(&[(p1, q), (p2, q)]);
        let separate = pairing(&p1, &q).mul(&pairing(&p2, &q));
        assert_eq!(combined, separate);
    }

    #[test]
    fn pairing_equality_check() {
        let mut rng = HmacDrbg::new(b"pairing", b"equality");
        let a = Fr::random(&mut rng);
        // e(aP, Q) == e(P, aQ)
        let pa = G1Projective::generator().mul_scalar(&a).to_affine();
        let qa = crate::g2::G2Projective::generator()
            .mul_scalar(&a)
            .to_affine();
        assert!(pairing_equality(
            &pa,
            &G2Affine::generator(),
            &G1Affine::generator(),
            &qa
        ));
        // Negative case.
        let b = a.add(&Fr::ONE);
        let qb = crate::g2::G2Projective::generator()
            .mul_scalar(&b)
            .to_affine();
        assert!(!pairing_equality(
            &pa,
            &G2Affine::generator(),
            &G1Affine::generator(),
            &qb
        ));
    }

    #[test]
    fn gt_pow_homomorphism() {
        let mut rng = HmacDrbg::new(b"pairing", b"gtpow");
        let e = pairing(&G1Affine::generator(), &G2Affine::generator());
        let a = Fr::random(&mut rng);
        let b = Fr::random(&mut rng);
        assert_eq!(e.pow(&a).pow(&b), e.pow(&a.mul(&b)));
        assert_eq!(e.pow(&a).mul(&e.pow(&b)), e.pow(&a.add(&b)));
    }
}
