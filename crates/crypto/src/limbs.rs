//! Multi-precision limb arithmetic shared by the field implementations.
//!
//! All values are little-endian arrays of `u64` limbs. The routines here are
//! deliberately simple loop-based implementations (CIOS Montgomery
//! multiplication, schoolbook carries); they favour auditability over raw
//! speed, in keeping with the rest of this research codebase.
//!
//! **Side channels.** These routines are *not* constant time: comparisons and
//! conditional reductions branch on secret data. The paper this repository
//! reproduces explicitly scopes out TEE/host side channels (§3.1), so we make
//! the same trade and document it here once for the whole crypto crate.

/// Add with carry: returns `(sum, carry_out)` where `carry_out ∈ {0, 1}`.
#[inline(always)]
pub const fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = (a as u128) + (b as u128) + (carry as u128);
    (t as u64, (t >> 64) as u64)
}

/// Subtract with borrow: returns `(diff, borrow_out)` where `borrow_out ∈ {0, u64::MAX}`.
#[inline(always)]
pub const fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let t = (a as u128).wrapping_sub((b as u128) + ((borrow >> 63) as u128));
    (t as u64, (t >> 64) as u64)
}

/// Multiply-accumulate: computes `a + b * c + carry`, returning `(lo, hi)`.
#[inline(always)]
pub const fn mac(a: u64, b: u64, c: u64, carry: u64) -> (u64, u64) {
    let t = (a as u128) + (b as u128) * (c as u128) + (carry as u128);
    (t as u64, (t >> 64) as u64)
}

/// Returns `true` if `a < b` when both are interpreted as little-endian integers.
#[inline]
pub fn lt<const N: usize>(a: &[u64; N], b: &[u64; N]) -> bool {
    for i in (0..N).rev() {
        if a[i] != b[i] {
            return a[i] < b[i];
        }
    }
    false
}

/// Returns `true` if every limb is zero.
#[inline]
pub fn is_zero<const N: usize>(a: &[u64; N]) -> bool {
    a.iter().all(|&l| l == 0)
}

/// Limb-wise addition; returns `(sum, carry)`.
#[inline]
pub fn add<const N: usize>(a: &[u64; N], b: &[u64; N]) -> ([u64; N], u64) {
    let mut out = [0u64; N];
    let mut carry = 0;
    for i in 0..N {
        let (s, c) = adc(a[i], b[i], carry);
        out[i] = s;
        carry = c;
    }
    (out, carry)
}

/// Limb-wise subtraction; returns `(difference, borrow)`.
#[inline]
pub fn sub<const N: usize>(a: &[u64; N], b: &[u64; N]) -> ([u64; N], u64) {
    let mut out = [0u64; N];
    let mut borrow = 0;
    for i in 0..N {
        let (d, bo) = sbb(a[i], b[i], borrow);
        out[i] = d;
        borrow = bo;
    }
    (out, borrow)
}

/// Modular addition of values already reduced below `m`.
///
/// Handles the (possible for 384-bit-wide moduli) carry out of the top limb.
#[inline]
pub fn add_mod<const N: usize>(a: &[u64; N], b: &[u64; N], m: &[u64; N]) -> [u64; N] {
    let (sum, carry) = add(a, b);
    reduce_once(&sum, carry, m)
}

/// Modular subtraction of values already reduced below `m`.
#[inline]
pub fn sub_mod<const N: usize>(a: &[u64; N], b: &[u64; N], m: &[u64; N]) -> [u64; N] {
    let (diff, borrow) = sub(a, b);
    if borrow == 0 {
        diff
    } else {
        let (fixed, _) = add(&diff, m);
        fixed
    }
}

/// Conditionally subtracts `m` from the `N+1`-limb value `(hi, lo)` so the
/// result is below `m`. Requires the input to be below `2m`.
#[inline]
pub fn reduce_once<const N: usize>(lo: &[u64; N], hi: u64, m: &[u64; N]) -> [u64; N] {
    let (candidate, borrow) = sub(lo, m);
    // The subtraction underflowed only if `hi` cannot absorb the borrow.
    let (_, final_borrow) = sbb(hi, 0, borrow);
    if final_borrow == 0 {
        candidate
    } else {
        *lo
    }
}

/// CIOS Montgomery multiplication: computes `a * b * R^{-1} mod m` where
/// `R = 2^{64N}` and `inv = -m^{-1} mod 2^64`.
///
/// Inputs must be fully reduced (`< m`); the output is fully reduced.
pub fn mont_mul<const N: usize>(a: &[u64; N], b: &[u64; N], m: &[u64; N], inv: u64) -> [u64; N] {
    debug_assert!(
        N + 2 <= 16,
        "scratch buffer sized for fields up to 896 bits"
    );
    let mut t = [0u64; 16];
    for &ai in a.iter() {
        // t += ai * b
        let mut carry = 0;
        for j in 0..N {
            let (lo, hi) = mac(t[j], ai, b[j], carry);
            t[j] = lo;
            carry = hi;
        }
        let (s, c) = adc(t[N], carry, 0);
        t[N] = s;
        t[N + 1] = c;

        // Reduce: fold in mu * m so the low limb cancels.
        let mu = t[0].wrapping_mul(inv);
        let (_, mut carry) = mac(t[0], mu, m[0], 0);
        for j in 1..N {
            let (lo, hi) = mac(t[j], mu, m[j], carry);
            t[j - 1] = lo;
            carry = hi;
        }
        let (s, c) = adc(t[N], carry, 0);
        t[N - 1] = s;
        t[N] = t[N + 1] + c;
    }
    let mut lo = [0u64; N];
    lo.copy_from_slice(&t[..N]);
    reduce_once(&lo, t[N], m)
}

/// Divides the little-endian integer `a` by the single-limb divisor `d`,
/// returning the quotient. Used to derive pairing exponents such as
/// `(p - 1) / 6` from the stored modulus at start-up instead of hardcoding
/// more magic constants.
pub fn div_by_u64<const N: usize>(a: &[u64; N], d: u64) -> [u64; N] {
    assert!(d != 0, "division by zero");
    let mut out = [0u64; N];
    let mut rem: u128 = 0;
    for i in (0..N).rev() {
        let cur = (rem << 64) | a[i] as u128;
        out[i] = (cur / d as u128) as u64;
        rem = cur % d as u128;
    }
    out
}

/// Subtracts the small constant `c` from `a`, asserting no underflow.
pub fn sub_small<const N: usize>(a: &[u64; N], c: u64) -> [u64; N] {
    let mut b = [0u64; N];
    b[0] = c;
    let (out, borrow) = sub(a, &b);
    assert_eq!(borrow, 0, "underflow subtracting small constant");
    out
}

/// Interprets 8-byte chunks of a big-endian byte slice as little-endian limbs.
///
/// `bytes.len()` must equal `8 * N`.
pub fn limbs_from_be_bytes<const N: usize>(bytes: &[u8]) -> [u64; N] {
    assert_eq!(bytes.len(), 8 * N);
    let mut out = [0u64; N];
    for (i, chunk) in bytes.chunks_exact(8).enumerate() {
        out[N - 1 - i] = u64::from_be_bytes(chunk.try_into().expect("chunk is 8 bytes"));
    }
    out
}

/// Serializes little-endian limbs as big-endian bytes.
pub fn limbs_to_be_bytes<const N: usize>(limbs: &[u64; N], out: &mut [u8]) {
    assert_eq!(out.len(), 8 * N);
    for (chunk, limb) in out.chunks_exact_mut(8).zip(limbs.iter().rev()) {
        chunk.copy_from_slice(&limb.to_be_bytes());
    }
}

/// Returns bit `i` (counting from the least-significant bit of limb 0).
#[inline]
pub fn bit<const N: usize>(a: &[u64; N], i: usize) -> bool {
    if i >= 64 * N {
        return false;
    }
    (a[i / 64] >> (i % 64)) & 1 == 1
}

/// Number of significant bits.
pub fn bit_length<const N: usize>(a: &[u64; N]) -> usize {
    for i in (0..N).rev() {
        if a[i] != 0 {
            return i * 64 + (64 - a[i].leading_zeros() as usize);
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adc_carries() {
        assert_eq!(adc(u64::MAX, 1, 0), (0, 1));
        assert_eq!(adc(u64::MAX, u64::MAX, 1), (u64::MAX, 1));
        assert_eq!(adc(1, 2, 0), (3, 0));
    }

    #[test]
    fn sbb_borrows() {
        let (d, b) = sbb(0, 1, 0);
        assert_eq!(d, u64::MAX);
        assert_eq!(b, u64::MAX);
        let (d, b) = sbb(5, 3, 0);
        assert_eq!(d, 2);
        assert_eq!(b, 0);
    }

    #[test]
    fn mac_full_width() {
        // u64::MAX * u64::MAX + u64::MAX + u64::MAX does not overflow 128 bits.
        let (lo, hi) = mac(u64::MAX, u64::MAX, u64::MAX, u64::MAX);
        let expect = (u64::MAX as u128) * (u64::MAX as u128) + 2 * (u64::MAX as u128);
        assert_eq!(lo, expect as u64);
        assert_eq!(hi, (expect >> 64) as u64);
    }

    #[test]
    fn comparison_and_zero() {
        assert!(lt(&[1, 0], &[2, 0]));
        assert!(lt(&[u64::MAX, 1], &[0, 2]));
        assert!(!lt(&[0, 2], &[u64::MAX, 1]));
        assert!(is_zero(&[0u64; 4]));
        assert!(!is_zero(&[0, 1, 0, 0]));
    }

    #[test]
    fn div_by_small_matches_u128() {
        let a = [0xdead_beef_0123_4567u64, 0x0000_0000_ffff_ffff];
        let q = div_by_u64(&a, 6);
        let full = ((a[1] as u128) << 64) | a[0] as u128;
        let expect = full / 6;
        assert_eq!(q[0], expect as u64);
        assert_eq!(q[1], (expect >> 64) as u64);
    }

    #[test]
    fn byte_round_trip() {
        let limbs: [u64; 4] = [1, 2, 3, 0x8000_0000_0000_0000];
        let mut bytes = [0u8; 32];
        limbs_to_be_bytes(&limbs, &mut bytes);
        let back: [u64; 4] = limbs_from_be_bytes(&bytes);
        assert_eq!(limbs, back);
    }

    #[test]
    fn bits() {
        let a = [0b1010u64, 1];
        assert!(!bit(&a, 0));
        assert!(bit(&a, 1));
        assert!(bit(&a, 64));
        assert!(!bit(&a, 65));
        assert_eq!(bit_length(&a), 65);
        assert_eq!(bit_length(&[0u64; 2]), 0);
    }
}
