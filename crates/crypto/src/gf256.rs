//! Shamir secret sharing over GF(2⁸) for arbitrary byte strings.
//!
//! This is the sharing scheme the paper's Figure 1 application (secret-key
//! backup) needs: a user splits a 32-byte key across `n` trust domains such
//! that any `t` recover it and any `t-1` learn nothing. Each byte of the
//! secret is shared independently with a fresh random polynomial, exactly as
//! in classic SSS implementations (e.g. HashiCorp Vault's shamir package).
//!
//! Field: GF(2⁸) with the AES reduction polynomial `x⁸+x⁴+x³+x+1` (0x11b),
//! arithmetic via log/antilog tables with generator 3.

/// Errors from splitting/combining.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Gf256Error {
    /// `1 <= t <= n <= 255` violated.
    InvalidParameters { t: usize, n: usize },
    /// Shares of unequal length or empty input.
    MalformedShares,
    /// Duplicate or zero x-coordinates.
    DuplicateShare(u8),
    /// Fewer shares than the declared threshold.
    InsufficientShares { have: usize, need: usize },
}

impl core::fmt::Display for Gf256Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::InvalidParameters { t, n } => write!(f, "invalid parameters t={t} n={n}"),
            Self::MalformedShares => write!(f, "malformed shares"),
            Self::DuplicateShare(x) => write!(f, "duplicate share x={x}"),
            Self::InsufficientShares { have, need } => {
                write!(f, "insufficient shares: have {have}, need {need}")
            }
        }
    }
}

impl std::error::Error for Gf256Error {}

/// One share of a byte-string secret.
#[derive(Clone, PartialEq, Eq)]
pub struct ByteShare {
    /// Nonzero x-coordinate (1..=255).
    pub x: u8,
    /// Polynomial evaluations, one byte per secret byte.
    pub data: Vec<u8>,
}

impl core::fmt::Debug for ByteShare {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "ByteShare {{ x: {}, data: <{} bytes> }}",
            self.x,
            self.data.len()
        )
    }
}

/// Log/antilog tables, built once.
struct Tables {
    log: [u8; 256],
    exp: [u8; 512],
}

fn tables() -> &'static Tables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut log = [0u8; 256];
        let mut exp = [0u8; 512];
        let mut x: u16 = 1;
        for i in 0..255u16 {
            exp[i as usize] = x as u8;
            log[x as usize] = i as u8;
            // multiply x by the generator 3 = x + 1
            x = (x << 1) ^ x;
            if x & 0x100 != 0 {
                x ^= 0x11b;
            }
        }
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { log, exp }
    })
}

/// GF(2⁸) multiplication.
#[inline]
pub fn gf_mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
}

/// GF(2⁸) division (`b != 0`).
#[inline]
pub fn gf_div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "division by zero in GF(256)");
    if a == 0 {
        return 0;
    }
    let t = tables();
    let diff = t.log[a as usize] as usize + 255 - t.log[b as usize] as usize;
    t.exp[diff]
}

/// Evaluates a polynomial (coefficients ascending, constant term first) at x.
fn eval(coeffs: &[u8], x: u8) -> u8 {
    let mut acc = 0u8;
    for &c in coeffs.iter().rev() {
        acc = gf_mul(acc, x) ^ c;
    }
    acc
}

/// Splits `secret` into `n` shares with threshold `t`.
pub fn split<R: rand::RngCore + ?Sized>(
    secret: &[u8],
    t: usize,
    n: usize,
    rng: &mut R,
) -> Result<Vec<ByteShare>, Gf256Error> {
    if t == 0 || t > n || n > 255 {
        return Err(Gf256Error::InvalidParameters { t, n });
    }
    if secret.is_empty() {
        return Err(Gf256Error::MalformedShares);
    }
    let mut shares: Vec<ByteShare> = (1..=n as u8)
        .map(|x| ByteShare {
            x,
            data: Vec::with_capacity(secret.len()),
        })
        .collect();
    let mut coeffs = vec![0u8; t];
    for &byte in secret {
        coeffs[0] = byte;
        if t > 1 {
            rng.fill_bytes(&mut coeffs[1..]);
            // The top coefficient must be nonzero for a true degree-(t-1)
            // polynomial; zero would silently lower the threshold.
            while coeffs[t - 1] == 0 {
                let mut b = [0u8; 1];
                rng.fill_bytes(&mut b);
                coeffs[t - 1] = b[0];
            }
        }
        for share in shares.iter_mut() {
            let y = eval(&coeffs, share.x);
            share.data.push(y);
        }
    }
    Ok(shares)
}

/// Recombines shares via Lagrange interpolation at `x = 0`.
///
/// Callers must pass at least `t` *distinct* shares; passing fewer yields an
/// error, passing wrong shares yields garbage (information-theoretic schemes
/// cannot detect tampering — pair with a MAC or digest when integrity
/// matters, as the key-backup application does).
pub fn combine(shares: &[ByteShare], t: usize) -> Result<Vec<u8>, Gf256Error> {
    if shares.len() < t || t == 0 {
        return Err(Gf256Error::InsufficientShares {
            have: shares.len(),
            need: t,
        });
    }
    let selected = &shares[..t];
    let len = selected[0].data.len();
    if len == 0 || selected.iter().any(|s| s.data.len() != len) {
        return Err(Gf256Error::MalformedShares);
    }
    let mut seen = [false; 256];
    for s in selected {
        if s.x == 0 || seen[s.x as usize] {
            return Err(Gf256Error::DuplicateShare(s.x));
        }
        seen[s.x as usize] = true;
    }
    let mut secret = vec![0u8; len];
    // Lagrange basis at 0: λ_i = Π_{j≠i} x_j / (x_j ⊕ x_i)  (subtraction is XOR).
    let mut lambda = vec![0u8; t];
    for i in 0..t {
        let mut num = 1u8;
        let mut den = 1u8;
        for j in 0..t {
            if i == j {
                continue;
            }
            num = gf_mul(num, selected[j].x);
            den = gf_mul(den, selected[j].x ^ selected[i].x);
        }
        lambda[i] = gf_div(num, den);
    }
    for (byte_idx, out) in secret.iter_mut().enumerate() {
        let mut acc = 0u8;
        for i in 0..t {
            acc ^= gf_mul(lambda[i], selected[i].data[byte_idx]);
        }
        *out = acc;
    }
    Ok(secret)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drbg::HmacDrbg;
    use proptest::prelude::*;

    #[test]
    fn field_basics() {
        // 1 is the multiplicative identity.
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, 1), a);
            assert_eq!(gf_div(a, a), 1);
            assert_eq!(gf_mul(a, 0), 0);
        }
        // Known AES value: 0x57 * 0x83 = 0xc1.
        assert_eq!(gf_mul(0x57, 0x83), 0xc1);
    }

    #[test]
    fn mul_commutes_and_associates() {
        for a in [1u8, 3, 7, 0x53, 0xca, 0xff] {
            for b in [2u8, 5, 0x11, 0x80, 0xfe] {
                assert_eq!(gf_mul(a, b), gf_mul(b, a));
                for c in [3u8, 0x1b, 0xaa] {
                    assert_eq!(gf_mul(gf_mul(a, b), c), gf_mul(a, gf_mul(b, c)));
                }
            }
        }
    }

    #[test]
    fn split_combine_round_trip() {
        let mut rng = HmacDrbg::new(b"gf256", b"roundtrip");
        let secret = b"thirty-two byte secret key......";
        let shares = split(secret, 3, 5, &mut rng).unwrap();
        assert_eq!(shares.len(), 5);
        let recovered = combine(&shares[..3], 3).unwrap();
        assert_eq!(recovered, secret);
        // Different subset.
        let subset = vec![shares[4].clone(), shares[1].clone(), shares[3].clone()];
        assert_eq!(combine(&subset, 3).unwrap(), secret);
    }

    #[test]
    fn below_threshold_reveals_nothing_statistically() {
        // With t-1 shares, every candidate secret byte is equally likely;
        // we check the weaker but testable property that combining t-1
        // shares with a forged extra share yields a different secret than
        // the real one (with overwhelming probability).
        let mut rng = HmacDrbg::new(b"gf256", b"hiding");
        let secret = [0u8; 16];
        let shares = split(&secret, 3, 4, &mut rng).unwrap();
        let forged = ByteShare {
            x: 99,
            data: vec![0xaa; 16],
        };
        let wrong = combine(&[shares[0].clone(), shares[1].clone(), forged], 3).unwrap();
        assert_ne!(wrong, secret.to_vec());
    }

    #[test]
    fn error_cases() {
        let mut rng = HmacDrbg::new(b"gf256", b"errors");
        assert!(matches!(
            split(b"s", 0, 3, &mut rng),
            Err(Gf256Error::InvalidParameters { .. })
        ));
        assert!(matches!(
            split(b"s", 4, 3, &mut rng),
            Err(Gf256Error::InvalidParameters { .. })
        ));
        assert!(matches!(
            split(b"", 2, 3, &mut rng),
            Err(Gf256Error::MalformedShares)
        ));
        let shares = split(b"secret", 2, 3, &mut rng).unwrap();
        assert!(matches!(
            combine(&shares[..1], 2),
            Err(Gf256Error::InsufficientShares { .. })
        ));
        let dup = vec![shares[0].clone(), shares[0].clone()];
        assert!(matches!(
            combine(&dup, 2),
            Err(Gf256Error::DuplicateShare(1))
        ));
    }

    #[test]
    fn one_of_n_is_plaintext_copies() {
        let mut rng = HmacDrbg::new(b"gf256", b"1ofn");
        let shares = split(b"public", 1, 3, &mut rng).unwrap();
        for s in &shares {
            assert_eq!(s.data, b"public".to_vec());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn random_round_trips(
            secret in proptest::collection::vec(any::<u8>(), 1..64),
            t in 1usize..6,
            extra in 0usize..4,
            seed in any::<u64>(),
        ) {
            let n = t + extra;
            let mut rng = HmacDrbg::new(&seed.to_le_bytes(), b"prop");
            let shares = split(&secret, t, n, &mut rng).unwrap();
            let recovered = combine(&shares[..t], t).unwrap();
            prop_assert_eq!(recovered, secret);
        }

        #[test]
        fn gf_inverse_property(a in 1u8..=255) {
            let inv = gf_div(1, a);
            prop_assert_eq!(gf_mul(a, inv), 1);
        }

        #[test]
        fn distributivity(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
            prop_assert_eq!(gf_mul(a, b ^ c), gf_mul(a, b) ^ gf_mul(a, c));
        }
    }
}
