//! `Fp6 = Fp2[v] / (v³ − ξ)` with `ξ = u + 1` — the cubic extension layer of
//! the pairing tower.

use crate::fp2::Fp2;
use crate::limbs;
use std::sync::OnceLock;

/// An element `c0 + c1·v + c2·v²` of Fp6.
#[derive(Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Fp6 {
    pub c0: Fp2,
    pub c1: Fp2,
    pub c2: Fp2,
}

/// Frobenius coefficients `ξ^{(p-1)/3}` and `ξ^{2(p-1)/3}`, computed once at
/// first use from the modulus rather than transcribed as constants.
fn frobenius_coeffs() -> &'static (Fp2, Fp2) {
    static COEFFS: OnceLock<(Fp2, Fp2)> = OnceLock::new();
    COEFFS.get_or_init(|| {
        let p_minus_1 = limbs::sub_small(&crate::fp::Fp::MODULUS, 1);
        let exp = limbs::div_by_u64(&p_minus_1, 3);
        let xi = Fp2::new(crate::fp::Fp::ONE, crate::fp::Fp::ONE);
        let c1 = xi.pow_vartime(&exp);
        let c2 = c1.square();
        (c1, c2)
    })
}

impl Fp6 {
    /// The additive identity.
    pub const ZERO: Self = Self {
        c0: Fp2::ZERO,
        c1: Fp2::ZERO,
        c2: Fp2::ZERO,
    };
    /// The multiplicative identity.
    pub const ONE: Self = Self {
        c0: Fp2::ONE,
        c1: Fp2::ZERO,
        c2: Fp2::ZERO,
    };

    /// Constructs from components.
    pub fn new(c0: Fp2, c1: Fp2, c2: Fp2) -> Self {
        Self { c0, c1, c2 }
    }

    /// True for zero.
    pub fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero() && self.c2.is_zero()
    }

    /// Addition.
    pub fn add(&self, rhs: &Self) -> Self {
        Self {
            c0: self.c0.add(&rhs.c0),
            c1: self.c1.add(&rhs.c1),
            c2: self.c2.add(&rhs.c2),
        }
    }

    /// Subtraction.
    pub fn sub(&self, rhs: &Self) -> Self {
        Self {
            c0: self.c0.sub(&rhs.c0),
            c1: self.c1.sub(&rhs.c1),
            c2: self.c2.sub(&rhs.c2),
        }
    }

    /// Negation.
    pub fn neg(&self) -> Self {
        Self {
            c0: self.c0.neg(),
            c1: self.c1.neg(),
            c2: self.c2.neg(),
        }
    }

    /// Doubling.
    pub fn double(&self) -> Self {
        self.add(self)
    }

    /// Full multiplication. With `v³ = ξ`:
    /// r0 = a0b0 + ξ(a1b2 + a2b1)
    /// r1 = a0b1 + a1b0 + ξ(a2b2)
    /// r2 = a0b2 + a1b1 + a2b0
    pub fn mul(&self, rhs: &Self) -> Self {
        let a0b0 = self.c0.mul(&rhs.c0);
        let a1b1 = self.c1.mul(&rhs.c1);
        let a2b2 = self.c2.mul(&rhs.c2);

        let r0 = self
            .c1
            .mul(&rhs.c2)
            .add(&self.c2.mul(&rhs.c1))
            .mul_by_nonresidue()
            .add(&a0b0);
        let r1 = self
            .c0
            .mul(&rhs.c1)
            .add(&self.c1.mul(&rhs.c0))
            .add(&a2b2.mul_by_nonresidue());
        let r2 = self.c0.mul(&rhs.c2).add(&self.c2.mul(&rhs.c0)).add(&a1b1);
        Self {
            c0: r0,
            c1: r1,
            c2: r2,
        }
    }

    /// Squaring (delegates to `mul`; clarity over micro-optimisation).
    pub fn square(&self) -> Self {
        self.mul(self)
    }

    /// Sparse multiplication by an element with only the `c1` coefficient set.
    pub fn mul_by_1(&self, c1: &Fp2) -> Self {
        Self {
            c0: self.c2.mul(c1).mul_by_nonresidue(),
            c1: self.c0.mul(c1),
            c2: self.c1.mul(c1),
        }
    }

    /// Sparse multiplication by `c0 + c1·v`.
    pub fn mul_by_01(&self, c0: &Fp2, c1: &Fp2) -> Self {
        let a_a = self.c0.mul(c0);
        let b_b = self.c1.mul(c1);
        let t1 = self.c2.mul(c1).mul_by_nonresidue().add(&a_a);
        let t2 = c0.add(c1).mul(&self.c0.add(&self.c1)).sub(&a_a).sub(&b_b);
        let t3 = self.c2.mul(c0).add(&b_b);
        Self {
            c0: t1,
            c1: t2,
            c2: t3,
        }
    }

    /// Multiplies by `v`: `(c0 + c1 v + c2 v²)·v = ξ·c2 + c0 v + c1 v²`.
    pub fn mul_by_v(&self) -> Self {
        Self {
            c0: self.c2.mul_by_nonresidue(),
            c1: self.c0,
            c2: self.c1,
        }
    }

    /// Frobenius endomorphism `x ↦ x^p`.
    pub fn frobenius(&self) -> Self {
        let (f1, f2) = frobenius_coeffs();
        Self {
            c0: self.c0.frobenius(),
            c1: self.c1.frobenius().mul(f1),
            c2: self.c2.frobenius().mul(f2),
        }
    }

    /// Multiplicative inverse via the standard cubic-tower formula.
    pub fn invert(&self) -> Option<Self> {
        let c0 = self
            .c0
            .square()
            .sub(&self.c1.mul(&self.c2).mul_by_nonresidue());
        let c1 = self
            .c2
            .square()
            .mul_by_nonresidue()
            .sub(&self.c0.mul(&self.c1));
        let c2 = self.c1.square().sub(&self.c0.mul(&self.c2));
        let t = self
            .c1
            .mul(&c2)
            .add(&self.c2.mul(&c1))
            .mul_by_nonresidue()
            .add(&self.c0.mul(&c0));
        t.invert().map(|t_inv| Self {
            c0: c0.mul(&t_inv),
            c1: c1.mul(&t_inv),
            c2: c2.mul(&t_inv),
        })
    }

    /// Samples a random element.
    pub fn random<R: rand::RngCore + ?Sized>(rng: &mut R) -> Self {
        Self {
            c0: Fp2::random(rng),
            c1: Fp2::random(rng),
            c2: Fp2::random(rng),
        }
    }
}

impl core::fmt::Debug for Fp6 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Fp6({:?}, {:?}, {:?})", self.c0, self.c1, self.c2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drbg::HmacDrbg;

    fn sample(rng: &mut HmacDrbg) -> Fp6 {
        Fp6::random(rng)
    }

    #[test]
    fn v_cubed_is_nonresidue() {
        let v = Fp6::new(Fp2::ZERO, Fp2::ONE, Fp2::ZERO);
        let v3 = v.mul(&v).mul(&v);
        let xi = Fp6::new(Fp2::ONE.mul_by_nonresidue(), Fp2::ZERO, Fp2::ZERO);
        assert_eq!(v3, xi);
    }

    #[test]
    fn ring_axioms() {
        let mut rng = HmacDrbg::new(b"fp6", b"axioms");
        for _ in 0..8 {
            let a = sample(&mut rng);
            let b = sample(&mut rng);
            let c = sample(&mut rng);
            assert_eq!(a.mul(&b), b.mul(&a));
            assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
            assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
        }
    }

    #[test]
    fn invert_round_trip() {
        let mut rng = HmacDrbg::new(b"fp6", b"inv");
        for _ in 0..8 {
            let a = sample(&mut rng);
            if a.is_zero() {
                continue;
            }
            assert_eq!(a.mul(&a.invert().unwrap()), Fp6::ONE);
        }
        assert!(Fp6::ZERO.invert().is_none());
    }

    #[test]
    fn sparse_muls_match_full() {
        let mut rng = HmacDrbg::new(b"fp6", b"sparse");
        for _ in 0..8 {
            let a = sample(&mut rng);
            let x = Fp2::random(&mut rng);
            let y = Fp2::random(&mut rng);
            assert_eq!(a.mul_by_1(&x), a.mul(&Fp6::new(Fp2::ZERO, x, Fp2::ZERO)));
            assert_eq!(a.mul_by_01(&x, &y), a.mul(&Fp6::new(x, y, Fp2::ZERO)));
            assert_eq!(
                a.mul_by_v(),
                a.mul(&Fp6::new(Fp2::ZERO, Fp2::ONE, Fp2::ZERO))
            );
        }
    }

    #[test]
    fn frobenius_is_p_power() {
        let mut rng = HmacDrbg::new(b"fp6", b"frob");
        let a = sample(&mut rng);
        // x^p computed by explicit exponentiation is expensive but definitive.
        let mut expect = Fp6::ONE;
        for &limb in crate::fp::Fp::MODULUS.iter().rev() {
            for i in (0..64).rev() {
                expect = expect.square();
                if (limb >> i) & 1 == 1 {
                    expect = expect.mul(&a);
                }
            }
        }
        assert_eq!(a.frobenius(), expect);
    }
}
