//! # distrust-crypto
//!
//! From-scratch cryptography for the `distrust` workspace, the Rust
//! reproduction of *Reflections on trusting distributed trust* (HotNets '22).
//!
//! The paper's prototype signs with BLS threshold signatures (via libBLS) and
//! relies on hashes, signatures, and secret sharing throughout its framework.
//! This crate supplies all of that with no third-party crypto dependencies:
//!
//! * [`mod@sha256`] — FIPS 180-4 SHA-256 (code measurements, log entries).
//! * [`hmac`] — HMAC-SHA256 + HKDF (sealing keys, nonce derivation).
//! * [`drbg`] — HMAC-DRBG (deterministic randomness, RFC 6979-style nonces).
//! * [`fp`]/[`fr`]/[`fp2`]/[`fp6`]/[`fp12`] — the BLS12-381 field tower.
//! * [`g1`]/[`g2`] — curve groups with compressed encodings and hash-to-curve.
//! * [`mod@pairing`] — the optimal ate pairing.
//! * [`bls`] — BLS signatures (sign/verify/aggregate, proofs of possession).
//! * [`threshold`] — Shamir sharing over `Fr`, Feldman VSS, threshold BLS.
//! * [`gf256`] — byte-oriented Shamir secret sharing (key backup payloads).
//! * [`schnorr`] — Schnorr signatures over G1 (developer update keys, vendor
//!   attestation roots, log checkpoint signatures).
//!
//! ## Security model
//!
//! This is a research artifact accompanying a systems paper reproduction:
//! algorithms are implemented faithfully and tested heavily (known-answer
//! vectors, algebraic property tests), but the code is **variable time** and
//! has never been audited. Do not reuse for production secrets.

pub mod bls;
pub mod drbg;
pub(crate) mod field;
pub mod fp;
pub mod fp12;
pub mod fp2;
pub mod fp6;
pub mod fr;
pub mod g1;
pub mod g2;
pub mod gf256;
pub mod hmac;
pub mod limbs;
pub mod pairing;
pub mod schnorr;
pub mod sha256;
pub mod threshold;

pub use fp::Fp;
pub use fr::Fr;
pub use g1::{hash_to_g1, G1Affine, G1Projective};
pub use g2::{G2Affine, G2Projective};
pub use pairing::{multi_pairing, pairing, pairing_equality, Gt};
pub use sha256::{sha256, sha256_many, Digest};
