//! Macro generating a prime-field type in Montgomery representation.
//!
//! Both BLS12-381 fields (`Fp`, 381 bits, 6 limbs; `Fr`, 255 bits, 4 limbs)
//! are instances of this macro, mirroring how the `ff`-style ecosystems
//! derive their field backends. Elements are stored in Montgomery form
//! (`a·R mod m` with `R = 2^{64·N}`) and always fully reduced, so limb
//! equality is element equality.

/// Generates a Montgomery-form prime field type.
///
/// Parameters:
/// * `$name` — the type name to define.
/// * `$n` — number of 64-bit limbs.
/// * `$bytes` — canonical big-endian encoding width in bytes (`8 * $n`).
/// * `$modulus` — little-endian limbs of the prime modulus.
/// * `$inv` — `-modulus^{-1} mod 2^64`.
/// * `$r` — `2^{64n} mod modulus` (i.e. `1` in Montgomery form).
/// * `$r2` — `2^{128n} mod modulus`, used to enter Montgomery form.
macro_rules! prime_field {
    (
        $(#[$doc:meta])*
        $name:ident, $n:expr, $bytes:expr, $modulus:expr, $inv:expr, $r:expr, $r2:expr
    ) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash)]
        pub struct $name(pub(crate) [u64; $n]);

        impl $name {
            /// Number of 64-bit limbs in the representation.
            pub const LIMBS: usize = $n;
            /// Width of the canonical big-endian byte encoding.
            pub const BYTES: usize = $bytes;
            /// The prime modulus, little-endian limbs.
            pub const MODULUS: [u64; $n] = $modulus;
            pub(crate) const INV: u64 = $inv;
            pub(crate) const R: [u64; $n] = $r;
            pub(crate) const R2: [u64; $n] = $r2;

            /// The additive identity.
            pub const ZERO: Self = Self([0u64; $n]);
            /// The multiplicative identity (Montgomery form of 1).
            pub const ONE: Self = Self(Self::R);

            /// Builds an element from canonical (non-Montgomery) limbs.
            /// Returns `None` if the value is not fully reduced.
            pub fn from_canonical_limbs(limbs: [u64; $n]) -> Option<Self> {
                if $crate::limbs::lt(&limbs, &Self::MODULUS) {
                    Some(Self($crate::limbs::mont_mul(
                        &limbs,
                        &Self::R2,
                        &Self::MODULUS,
                        Self::INV,
                    )))
                } else {
                    None
                }
            }

            /// Builds an element from canonical limbs, panicking when out of range.
            /// Intended for compile-time constants whose reduction is known.
            pub fn from_raw_unchecked(limbs: [u64; $n]) -> Self {
                Self::from_canonical_limbs(limbs).expect("constant out of field range")
            }

            /// Converts a small integer into the field.
            pub fn from_u64(v: u64) -> Self {
                let mut limbs = [0u64; $n];
                limbs[0] = v;
                Self::from_canonical_limbs(limbs).expect("u64 is below any >64-bit modulus")
            }

            /// Returns the canonical (non-Montgomery) little-endian limbs.
            pub fn to_canonical_limbs(&self) -> [u64; $n] {
                let one = {
                    let mut l = [0u64; $n];
                    l[0] = 1;
                    l
                };
                $crate::limbs::mont_mul(&self.0, &one, &Self::MODULUS, Self::INV)
            }

            /// Canonical big-endian byte encoding.
            pub fn to_bytes_be(&self) -> [u8; $bytes] {
                let limbs = self.to_canonical_limbs();
                let mut out = [0u8; $bytes];
                $crate::limbs::limbs_to_be_bytes(&limbs, &mut out);
                out
            }

            /// Parses a canonical big-endian encoding; `None` if not reduced.
            pub fn from_bytes_be(bytes: &[u8; $bytes]) -> Option<Self> {
                let limbs = $crate::limbs::limbs_from_be_bytes(bytes);
                Self::from_canonical_limbs(limbs)
            }

            /// True for the additive identity.
            #[inline]
            pub fn is_zero(&self) -> bool {
                $crate::limbs::is_zero(&self.0)
            }

            /// Field addition.
            #[inline]
            pub fn add(&self, rhs: &Self) -> Self {
                Self($crate::limbs::add_mod(&self.0, &rhs.0, &Self::MODULUS))
            }

            /// Field subtraction.
            #[inline]
            pub fn sub(&self, rhs: &Self) -> Self {
                Self($crate::limbs::sub_mod(&self.0, &rhs.0, &Self::MODULUS))
            }

            /// Additive inverse.
            #[inline]
            pub fn neg(&self) -> Self {
                if self.is_zero() {
                    *self
                } else {
                    let (out, _) = $crate::limbs::sub(&Self::MODULUS, &self.0);
                    Self(out)
                }
            }

            /// Field multiplication (Montgomery).
            #[inline]
            pub fn mul(&self, rhs: &Self) -> Self {
                Self($crate::limbs::mont_mul(
                    &self.0,
                    &rhs.0,
                    &Self::MODULUS,
                    Self::INV,
                ))
            }

            /// Squaring.
            #[inline]
            pub fn square(&self) -> Self {
                self.mul(self)
            }

            /// Doubling.
            #[inline]
            pub fn double(&self) -> Self {
                self.add(self)
            }

            /// Variable-time exponentiation by a little-endian limb exponent.
            pub fn pow_vartime(&self, exp: &[u64]) -> Self {
                let mut res = Self::ONE;
                for &limb in exp.iter().rev() {
                    for i in (0..64).rev() {
                        res = res.square();
                        if (limb >> i) & 1 == 1 {
                            res = res.mul(self);
                        }
                    }
                }
                res
            }

            /// Multiplicative inverse via Fermat's little theorem;
            /// `None` for zero.
            pub fn invert(&self) -> Option<Self> {
                if self.is_zero() {
                    return None;
                }
                let exp = $crate::limbs::sub_small(&Self::MODULUS, 2);
                Some(self.pow_vartime(&exp))
            }

            /// Samples a uniformly random element by wide reduction of
            /// `2 × $bytes` random bytes (bias < 2^-192).
            pub fn random<R: rand::RngCore + ?Sized>(rng: &mut R) -> Self {
                let mut wide = [0u8; 2 * $bytes];
                rng.fill_bytes(&mut wide);
                Self::from_bytes_wide(&wide)
            }

            /// Reduces a `2 × $bytes` big-endian integer into the field.
            ///
            /// Splits the value as `hi·2^{64n} + lo` and maps each half into
            /// Montgomery form with one multiplication: `lo·R2·R^{-1} = lo·R`
            /// and `hi·R3·R^{-1} = hi·2^{64n}·R`, where `R3 = R2·R2·R^{-1}`.
            pub fn from_bytes_wide(bytes: &[u8; 2 * $bytes]) -> Self {
                let hi: [u64; $n] = $crate::limbs::limbs_from_be_bytes(&bytes[..$bytes]);
                let lo: [u64; $n] = $crate::limbs::limbs_from_be_bytes(&bytes[$bytes..]);
                let r3 = $crate::limbs::mont_mul(&Self::R2, &Self::R2, &Self::MODULUS, Self::INV);
                let lo_m = $crate::limbs::mont_mul(&lo, &Self::R2, &Self::MODULUS, Self::INV);
                let hi_m = $crate::limbs::mont_mul(&hi, &r3, &Self::MODULUS, Self::INV);
                Self($crate::limbs::add_mod(&lo_m, &hi_m, &Self::MODULUS))
            }

            /// Interprets the canonical form as an odd/even parity bit,
            /// used to pick a deterministic square root sign.
            pub fn is_odd(&self) -> bool {
                self.to_canonical_limbs()[0] & 1 == 1
            }
        }

        impl core::fmt::Debug for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, "0x")?;
                for b in self.to_bytes_be() {
                    write!(f, "{:02x}", b)?;
                }
                Ok(())
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::ZERO
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                $name::add(&self, &rhs)
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                $name::sub(&self, &rhs)
            }
        }

        impl core::ops::Mul for $name {
            type Output = Self;
            fn mul(self, rhs: Self) -> Self {
                $name::mul(&self, &rhs)
            }
        }

        impl core::ops::Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                $name::neg(&self)
            }
        }

        impl core::ops::AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                *self = $name::add(self, &rhs);
            }
        }

        impl core::ops::SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                *self = $name::sub(self, &rhs);
            }
        }

        impl core::ops::MulAssign for $name {
            fn mul_assign(&mut self, rhs: Self) {
                *self = $name::mul(self, &rhs);
            }
        }
    };
}

pub(crate) use prime_field;
