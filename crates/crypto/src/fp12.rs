//! `Fp12 = Fp6[w] / (w² − v)` — the top of the pairing tower. Pairing values
//! live in the cyclotomic subgroup of `Fp12*`.

use crate::fp2::Fp2;
use crate::fp6::Fp6;
use crate::limbs;
use std::sync::OnceLock;

/// An element `c0 + c1·w` of Fp12.
#[derive(Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Fp12 {
    pub c0: Fp6,
    pub c1: Fp6,
}

/// Frobenius coefficient `ξ^{(p-1)/6}` for the quadratic layer.
fn frobenius_coeff() -> &'static Fp2 {
    static COEFF: OnceLock<Fp2> = OnceLock::new();
    COEFF.get_or_init(|| {
        let p_minus_1 = limbs::sub_small(&crate::fp::Fp::MODULUS, 1);
        let exp = limbs::div_by_u64(&p_minus_1, 6);
        let xi = Fp2::new(crate::fp::Fp::ONE, crate::fp::Fp::ONE);
        xi.pow_vartime(&exp)
    })
}

impl Fp12 {
    /// The multiplicative identity.
    pub const ONE: Self = Self {
        c0: Fp6::ONE,
        c1: Fp6::ZERO,
    };
    /// The additive identity.
    pub const ZERO: Self = Self {
        c0: Fp6::ZERO,
        c1: Fp6::ZERO,
    };

    /// Constructs from components.
    pub fn new(c0: Fp6, c1: Fp6) -> Self {
        Self { c0, c1 }
    }

    /// True for zero.
    pub fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }

    /// True for one.
    pub fn is_one(&self) -> bool {
        *self == Self::ONE
    }

    /// Addition.
    pub fn add(&self, rhs: &Self) -> Self {
        Self {
            c0: self.c0.add(&rhs.c0),
            c1: self.c1.add(&rhs.c1),
        }
    }

    /// Subtraction.
    pub fn sub(&self, rhs: &Self) -> Self {
        Self {
            c0: self.c0.sub(&rhs.c0),
            c1: self.c1.sub(&rhs.c1),
        }
    }

    /// Multiplication. With `w² = v`:
    /// `(a0 + a1 w)(b0 + b1 w) = (a0b0 + v·a1b1) + (a0b1 + a1b0) w`.
    pub fn mul(&self, rhs: &Self) -> Self {
        let a0b0 = self.c0.mul(&rhs.c0);
        let a1b1 = self.c1.mul(&rhs.c1);
        let cross = self
            .c0
            .add(&self.c1)
            .mul(&rhs.c0.add(&rhs.c1))
            .sub(&a0b0)
            .sub(&a1b1);
        Self {
            c0: a0b0.add(&a1b1.mul_by_v()),
            c1: cross,
        }
    }

    /// Squaring.
    pub fn square(&self) -> Self {
        self.mul(self)
    }

    /// Conjugation over Fp6: `c1 ↦ -c1`. For elements in the cyclotomic
    /// subgroup this equals inversion, which the final exponentiation
    /// exploits heavily.
    pub fn conjugate(&self) -> Self {
        Self {
            c0: self.c0,
            c1: self.c1.neg(),
        }
    }

    /// Frobenius endomorphism `x ↦ x^p`.
    pub fn frobenius(&self) -> Self {
        let c0 = self.c0.frobenius();
        let c1 = self.c1.frobenius();
        // Multiply c1 by ξ^{(p-1)/6} across all three Fp2 coefficients.
        let coeff = frobenius_coeff();
        Self {
            c0,
            c1: Fp6::new(c1.c0.mul(coeff), c1.c1.mul(coeff), c1.c2.mul(coeff)),
        }
    }

    /// Multiplicative inverse via the quadratic-tower formula.
    pub fn invert(&self) -> Option<Self> {
        // norm = c0² - v·c1²  ∈ Fp6
        let norm = self.c0.square().sub(&self.c1.square().mul_by_v());
        norm.invert().map(|n| Self {
            c0: self.c0.mul(&n),
            c1: self.c1.neg().mul(&n),
        })
    }

    /// Sparse multiplication by an element with coefficients only at
    /// positions 0, 1, 4 of the Fp2 basis — the shape produced by pairing
    /// line evaluations.
    pub fn mul_by_014(&self, c0: &Fp2, c1: &Fp2, c4: &Fp2) -> Self {
        let aa = self.c0.mul_by_01(c0, c1);
        let bb = self.c1.mul_by_1(c4);
        let o = c1.add(c4);
        let new_c1 = self.c1.add(&self.c0).mul_by_01(c0, &o).sub(&aa).sub(&bb);
        let new_c0 = bb.mul_by_v().add(&aa);
        Self {
            c0: new_c0,
            c1: new_c1,
        }
    }

    /// Variable-time exponentiation by little-endian limbs.
    pub fn pow_vartime(&self, exp: &[u64]) -> Self {
        let mut res = Self::ONE;
        for &limb in exp.iter().rev() {
            for i in (0..64).rev() {
                res = res.square();
                if (limb >> i) & 1 == 1 {
                    res = res.mul(self);
                }
            }
        }
        res
    }

    /// Samples a random element (for tests).
    pub fn random<R: rand::RngCore + ?Sized>(rng: &mut R) -> Self {
        Self {
            c0: Fp6::random(rng),
            c1: Fp6::random(rng),
        }
    }
}

impl core::fmt::Debug for Fp12 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Fp12({:?} + {:?}·w)", self.c0, self.c1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drbg::HmacDrbg;

    #[test]
    fn w_squared_is_v() {
        let w = Fp12::new(Fp6::ZERO, Fp6::ONE);
        let v = Fp12::new(Fp6::new(Fp2::ZERO, Fp2::ONE, Fp2::ZERO), Fp6::ZERO);
        assert_eq!(w.square(), v);
    }

    #[test]
    fn ring_axioms() {
        let mut rng = HmacDrbg::new(b"fp12", b"axioms");
        for _ in 0..4 {
            let a = Fp12::random(&mut rng);
            let b = Fp12::random(&mut rng);
            let c = Fp12::random(&mut rng);
            assert_eq!(a.mul(&b), b.mul(&a));
            assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
            assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
        }
    }

    #[test]
    fn invert_round_trip() {
        let mut rng = HmacDrbg::new(b"fp12", b"inv");
        for _ in 0..4 {
            let a = Fp12::random(&mut rng);
            if a.is_zero() {
                continue;
            }
            assert_eq!(a.mul(&a.invert().unwrap()), Fp12::ONE);
        }
    }

    #[test]
    fn mul_by_014_matches_full() {
        let mut rng = HmacDrbg::new(b"fp12", b"sparse");
        for _ in 0..4 {
            let a = Fp12::random(&mut rng);
            let c0 = Fp2::random(&mut rng);
            let c1 = Fp2::random(&mut rng);
            let c4 = Fp2::random(&mut rng);
            let sparse = Fp12::new(
                Fp6::new(c0, c1, Fp2::ZERO),
                Fp6::new(Fp2::ZERO, c4, Fp2::ZERO),
            );
            assert_eq!(a.mul_by_014(&c0, &c1, &c4), a.mul(&sparse));
        }
    }

    #[test]
    fn frobenius_composes_to_identity() {
        let mut rng = HmacDrbg::new(b"fp12", b"frob");
        let a = Fp12::random(&mut rng);
        // Applying Frobenius 12 times must return to the start (Gal(Fp12/Fp) has order 12).
        let mut x = a;
        for _ in 0..12 {
            x = x.frobenius();
        }
        assert_eq!(x, a);
    }

    #[test]
    fn frobenius_is_homomorphism() {
        let mut rng = HmacDrbg::new(b"fp12", b"frobhom");
        let a = Fp12::random(&mut rng);
        let b = Fp12::random(&mut rng);
        assert_eq!(a.mul(&b).frobenius(), a.frobenius().mul(&b.frobenius()));
    }
}
