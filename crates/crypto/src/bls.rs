//! BLS signatures over BLS12-381 (Boneh–Lynn–Shacham, ASIACRYPT '01) —
//! the signature scheme of the paper's prototype application.
//!
//! Convention: signatures in G1 (48-byte compressed), public keys in G2
//! (96-byte compressed). Verification checks `e(σ, g₂) == e(H(m), pk)`.

use crate::fr::Fr;
use crate::g1::{hash_to_g1, G1Affine, G1Projective};
use crate::g2::{G2Affine, G2Projective};
use crate::pairing::pairing_equality;

/// Domain separation tag for message hashing.
pub const MSG_DST: &[u8] = b"distrust/bls/msg/v1";
/// Domain separation tag for proofs of possession.
pub const POP_DST: &[u8] = b"distrust/bls/pop/v1";

/// A BLS secret key (a nonzero scalar).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SecretKey(pub Fr);

/// A BLS public key (a point in G2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PublicKey(pub G2Affine);

/// A BLS signature (a point in G1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Signature(pub G1Affine);

impl core::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("SecretKey(<redacted>)")
    }
}

impl SecretKey {
    /// Generates a fresh key.
    pub fn generate<R: rand::RngCore + ?Sized>(rng: &mut R) -> Self {
        Self(Fr::random_nonzero(rng))
    }

    /// Deterministically derives a key from seed material (for tests and the
    /// simulated TEE's sealed identities).
    pub fn derive(seed: &[u8], context: &[u8]) -> Self {
        let mut drbg = crate::drbg::HmacDrbg::new(seed, context);
        Self(Fr::random_nonzero(&mut drbg))
    }

    /// The corresponding public key `pk = sk·g₂`.
    pub fn public_key(&self) -> PublicKey {
        PublicKey(G2Projective::generator().mul_scalar(&self.0).to_affine())
    }

    /// Signs a message: `σ = sk·H(m)`.
    pub fn sign(&self, message: &[u8]) -> Signature {
        let h = hash_to_g1(message, MSG_DST);
        Signature(h.mul_scalar(&self.0).to_affine())
    }

    /// Produces a proof of possession (a signature over the public key
    /// under a separate domain), defeating rogue-key attacks in aggregate
    /// settings.
    pub fn prove_possession(&self) -> Signature {
        let pk_bytes = self.public_key().to_bytes();
        let h = hash_to_g1(&pk_bytes, POP_DST);
        Signature(h.mul_scalar(&self.0).to_affine())
    }
}

impl PublicKey {
    /// Verifies `σ` over `message`: `e(σ, g₂) == e(H(m), pk)`.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> bool {
        if signature.0.infinity || self.0.infinity {
            return false;
        }
        if !signature.0.is_on_curve() || !signature.0.is_torsion_free() {
            return false;
        }
        let h = hash_to_g1(message, MSG_DST).to_affine();
        pairing_equality(&signature.0, &G2Affine::generator(), &h, &self.0)
    }

    /// Verifies a proof of possession for this key.
    pub fn verify_possession(&self, pop: &Signature) -> bool {
        if pop.0.infinity || self.0.infinity {
            return false;
        }
        let h = hash_to_g1(&self.to_bytes(), POP_DST).to_affine();
        pairing_equality(&pop.0, &G2Affine::generator(), &h, &self.0)
    }

    /// Compressed encoding.
    pub fn to_bytes(&self) -> [u8; 96] {
        self.0.to_compressed()
    }

    /// Decoding with full validation.
    pub fn from_bytes(bytes: &[u8; 96]) -> Option<Self> {
        G2Affine::from_compressed(bytes).map(PublicKey)
    }

    /// Aggregates public keys (for verifying an aggregate signature over a
    /// common message). Callers must have checked proofs of possession.
    pub fn aggregate(keys: &[PublicKey]) -> Option<PublicKey> {
        if keys.is_empty() {
            return None;
        }
        let mut acc = G2Projective::identity();
        for k in keys {
            acc = acc.add(&G2Projective::from(k.0));
        }
        Some(PublicKey(acc.to_affine()))
    }
}

impl Signature {
    /// Compressed encoding.
    pub fn to_bytes(&self) -> [u8; 48] {
        self.0.to_compressed()
    }

    /// Decoding with full validation.
    pub fn from_bytes(bytes: &[u8; 48]) -> Option<Self> {
        G1Affine::from_compressed(bytes).map(Signature)
    }

    /// Aggregates signatures by group addition.
    pub fn aggregate(sigs: &[Signature]) -> Option<Signature> {
        if sigs.is_empty() {
            return None;
        }
        let mut acc = G1Projective::identity();
        for s in sigs {
            acc = acc.add(&G1Projective::from(s.0));
        }
        Some(Signature(acc.to_affine()))
    }
}

/// Verifies an aggregate signature where **all signers signed the same
/// message** (the multi-signature case used for cross-domain checkpoint
/// co-signing). Requires proofs of possession for all keys.
pub fn verify_same_message(keys: &[PublicKey], message: &[u8], signature: &Signature) -> bool {
    match PublicKey::aggregate(keys) {
        Some(apk) => apk.verify(message, signature),
        None => false,
    }
}

/// Verifies an aggregate signature over **distinct messages**:
/// `e(σ, g₂) == ∏ e(H(mᵢ), pkᵢ)`, with one shared final exponentiation.
/// Messages must be pairwise distinct (callers enforce; identical messages
/// would enable the standard aggregation pitfall without PoPs).
pub fn verify_aggregate_distinct(pairs: &[(PublicKey, &[u8])], signature: &Signature) -> bool {
    if pairs.is_empty() || signature.0.infinity {
        return false;
    }
    for (i, (_, m)) in pairs.iter().enumerate() {
        for (_, m2) in pairs.iter().skip(i + 1) {
            if m == m2 {
                return false;
            }
        }
    }
    if !signature.0.is_on_curve() || !signature.0.is_torsion_free() {
        return false;
    }
    // e(-σ, g₂) · ∏ e(H(mᵢ), pkᵢ) == 1
    let mut terms: Vec<(crate::g1::G1Affine, G2Affine)> = Vec::with_capacity(pairs.len() + 1);
    terms.push((signature.0.neg(), G2Affine::generator()));
    for (pk, msg) in pairs {
        terms.push((hash_to_g1(msg, MSG_DST).to_affine(), pk.0));
    }
    crate::pairing::multi_pairing(&terms).is_identity()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drbg::HmacDrbg;

    fn keypair(tag: &[u8]) -> (SecretKey, PublicKey) {
        let sk = SecretKey::derive(b"bls test seed", tag);
        let pk = sk.public_key();
        (sk, pk)
    }

    #[test]
    fn sign_verify_round_trip() {
        let (sk, pk) = keypair(b"k1");
        let sig = sk.sign(b"attack at dawn");
        assert!(pk.verify(b"attack at dawn", &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let (sk, pk) = keypair(b"k1");
        let sig = sk.sign(b"attack at dawn");
        assert!(!pk.verify(b"attack at dusk", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let (sk, _) = keypair(b"k1");
        let (_, pk2) = keypair(b"k2");
        let sig = sk.sign(b"msg");
        assert!(!pk2.verify(b"msg", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let (sk, pk) = keypair(b"k1");
        let sig = sk.sign(b"msg");
        let mut bytes = sig.to_bytes();
        bytes[20] ^= 0xff;
        // Either fails to decode or verifies false.
        if let Some(bad) = Signature::from_bytes(&bytes) {
            assert!(!pk.verify(b"msg", &bad));
        }
    }

    #[test]
    fn identity_signature_rejected() {
        let (_, pk) = keypair(b"k1");
        let id_sig = Signature(G1Affine::identity());
        assert!(!pk.verify(b"msg", &id_sig));
    }

    #[test]
    fn serialization_round_trip() {
        let (sk, pk) = keypair(b"ser");
        let sig = sk.sign(b"serialize me");
        assert_eq!(PublicKey::from_bytes(&pk.to_bytes()), Some(pk));
        assert_eq!(Signature::from_bytes(&sig.to_bytes()), Some(sig));
    }

    #[test]
    fn proof_of_possession() {
        let (sk, pk) = keypair(b"pop");
        let pop = sk.prove_possession();
        assert!(pk.verify_possession(&pop));
        let (_, pk2) = keypair(b"pop2");
        assert!(!pk2.verify_possession(&pop));
        // A PoP is not a valid message signature (domain separation).
        assert!(!pk.verify(&pk.to_bytes(), &pop));
    }

    #[test]
    fn aggregate_same_message() {
        let mut rng = HmacDrbg::new(b"agg", b"");
        let keys: Vec<SecretKey> = (0..4).map(|_| SecretKey::generate(&mut rng)).collect();
        let pks: Vec<PublicKey> = keys.iter().map(|k| k.public_key()).collect();
        let msg = b"checkpoint at height 7";
        let sigs: Vec<Signature> = keys.iter().map(|k| k.sign(msg)).collect();
        let agg = Signature::aggregate(&sigs).unwrap();
        assert!(verify_same_message(&pks, msg, &agg));
        // Dropping one signature breaks verification.
        let partial = Signature::aggregate(&sigs[..3]).unwrap();
        assert!(!verify_same_message(&pks, msg, &partial));
    }

    #[test]
    fn empty_aggregation_is_none() {
        assert!(Signature::aggregate(&[]).is_none());
        assert!(PublicKey::aggregate(&[]).is_none());
    }

    #[test]
    fn aggregate_distinct_messages() {
        let mut rng = HmacDrbg::new(b"agg distinct", b"");
        let keys: Vec<SecretKey> = (0..3).map(|_| SecretKey::generate(&mut rng)).collect();
        let messages: [&[u8]; 3] = [b"alpha", b"beta", b"gamma"];
        let sigs: Vec<Signature> = keys.iter().zip(&messages).map(|(k, m)| k.sign(m)).collect();
        let agg = Signature::aggregate(&sigs).unwrap();
        let pairs: Vec<(PublicKey, &[u8])> = keys
            .iter()
            .zip(&messages)
            .map(|(k, m)| (k.public_key(), *m))
            .collect();
        assert!(verify_aggregate_distinct(&pairs, &agg));
        // Swapping two messages breaks it.
        let swapped: Vec<(PublicKey, &[u8])> = vec![
            (keys[0].public_key(), messages[1]),
            (keys[1].public_key(), messages[0]),
            (keys[2].public_key(), messages[2]),
        ];
        assert!(!verify_aggregate_distinct(&swapped, &agg));
        // Dropping a signer breaks it.
        assert!(!verify_aggregate_distinct(&pairs[..2], &agg));
        // Duplicate messages rejected outright.
        let dup: Vec<(PublicKey, &[u8])> = vec![
            (keys[0].public_key(), b"same".as_slice()),
            (keys[1].public_key(), b"same".as_slice()),
        ];
        assert!(!verify_aggregate_distinct(&dup, &agg));
        // Empty set rejected.
        assert!(!verify_aggregate_distinct(&[], &agg));
    }

    #[test]
    fn derive_is_deterministic() {
        let a = SecretKey::derive(b"seed", b"ctx");
        let b = SecretKey::derive(b"seed", b"ctx");
        let c = SecretKey::derive(b"seed", b"other");
        assert_eq!(a.0, b.0);
        assert_ne!(a.0, c.0);
    }
}
