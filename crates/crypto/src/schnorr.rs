//! Schnorr signatures over BLS12-381 G1.
//!
//! These are the workhorse signatures of the framework substrate — cheaper
//! than BLS (no pairing at verification) and used wherever the paper needs a
//! plain signature rather than a threshold one:
//!
//! * the **developer update key** sealed into each TEE (§4.1: "each
//!   subsequent update needs to be accompanied by a signature that verifies
//!   under the original public key"),
//! * **vendor attestation roots** and device certificates in the simulated
//!   secure hardware,
//! * **signed log checkpoints** from each trust domain.
//!
//! Nonces are deterministic (RFC 6979 flavour, via HMAC-DRBG keyed on the
//! secret key and message), so signing never consumes ambient randomness.

use crate::drbg::HmacDrbg;
use crate::fr::Fr;
use crate::g1::{G1Affine, G1Projective};
use crate::sha256::Sha256;

/// Domain tag bound into every challenge hash.
const CHALLENGE_DST: &[u8] = b"distrust/schnorr/v1";

/// A Schnorr secret key.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SigningKey(Fr);

/// A Schnorr public key (`sk·g₁`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VerifyingKey(pub G1Affine);

/// A Schnorr signature `(R, s)` with `s = k + e·sk`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SchnorrSignature {
    /// Commitment point `R = k·g₁`.
    pub r: G1Affine,
    /// Response scalar.
    pub s: Fr,
}

impl core::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("SigningKey(<redacted>)")
    }
}

impl SigningKey {
    /// Generates a fresh key.
    pub fn generate<R: rand::RngCore + ?Sized>(rng: &mut R) -> Self {
        Self(Fr::random_nonzero(rng))
    }

    /// Deterministically derives a key from seed material.
    pub fn derive(seed: &[u8], context: &[u8]) -> Self {
        let mut drbg = HmacDrbg::new(seed, context);
        Self(Fr::random_nonzero(&mut drbg))
    }

    /// Builds a key from a raw scalar (share-based identities).
    pub fn from_scalar(s: Fr) -> Option<Self> {
        if s.is_zero() {
            None
        } else {
            Some(Self(s))
        }
    }

    /// The corresponding public key.
    pub fn verifying_key(&self) -> VerifyingKey {
        VerifyingKey(G1Projective::generator().mul_scalar(&self.0).to_affine())
    }

    /// Signs `message` deterministically.
    pub fn sign(&self, message: &[u8]) -> SchnorrSignature {
        // Deterministic nonce: DRBG keyed on (sk, message).
        let sk_bytes = self.0.to_bytes_be();
        let mut drbg = HmacDrbg::new(&sk_bytes, b"distrust/schnorr/nonce");
        drbg.reseed(message);
        let k = Fr::random_nonzero(&mut drbg);
        let r = G1Projective::generator().mul_scalar(&k).to_affine();
        let e = challenge(&r, &self.verifying_key(), message);
        let s = k.add(&e.mul(&self.0));
        SchnorrSignature { r, s }
    }
}

impl VerifyingKey {
    /// Verifies `sig` over `message`: `s·g₁ == R + e·pk`.
    pub fn verify(&self, message: &[u8], sig: &SchnorrSignature) -> bool {
        if self.0.infinity || sig.r.infinity {
            return false;
        }
        if !sig.r.is_on_curve() || !self.0.is_on_curve() {
            return false;
        }
        let e = challenge(&sig.r, self, message);
        let lhs = G1Projective::generator().mul_scalar(&sig.s);
        let rhs = G1Projective::from(sig.r).add(&G1Projective::from(self.0).mul_scalar(&e));
        lhs == rhs
    }

    /// Compressed encoding (48 bytes).
    pub fn to_bytes(&self) -> [u8; 48] {
        self.0.to_compressed()
    }

    /// Decoding with validation.
    pub fn from_bytes(bytes: &[u8; 48]) -> Option<Self> {
        G1Affine::from_compressed(bytes).map(VerifyingKey)
    }
}

impl SchnorrSignature {
    /// Wire encoding: compressed `R` (48 bytes) || `s` (32 bytes).
    pub fn to_bytes(&self) -> [u8; 80] {
        let mut out = [0u8; 80];
        out[..48].copy_from_slice(&self.r.to_compressed());
        out[48..].copy_from_slice(&self.s.to_bytes_be());
        out
    }

    /// Decoding with validation.
    pub fn from_bytes(bytes: &[u8; 80]) -> Option<Self> {
        let mut rb = [0u8; 48];
        rb.copy_from_slice(&bytes[..48]);
        let mut sb = [0u8; 32];
        sb.copy_from_slice(&bytes[48..]);
        Some(Self {
            r: G1Affine::from_compressed(&rb)?,
            s: Fr::from_bytes_be(&sb)?,
        })
    }
}

/// Fiat–Shamir challenge `e = H(dst || R || pk || m)` mapped into Fr.
fn challenge(r: &G1Affine, pk: &VerifyingKey, message: &[u8]) -> Fr {
    let mut h1 = Sha256::new();
    h1.update(CHALLENGE_DST);
    h1.update(&[0x01]);
    h1.update(&r.to_compressed());
    h1.update(&pk.to_bytes());
    h1.update(message);
    let d1 = h1.finalize();
    let mut h2 = Sha256::new();
    h2.update(CHALLENGE_DST);
    h2.update(&[0x02]);
    h2.update(&r.to_compressed());
    h2.update(&pk.to_bytes());
    h2.update(message);
    let d2 = h2.finalize();
    let mut wide = [0u8; 64];
    wide[..32].copy_from_slice(&d1);
    wide[32..].copy_from_slice(&d2);
    Fr::from_hash_wide(&wide)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keypair(tag: &[u8]) -> (SigningKey, VerifyingKey) {
        let sk = SigningKey::derive(b"schnorr test seed", tag);
        let vk = sk.verifying_key();
        (sk, vk)
    }

    #[test]
    fn sign_verify_round_trip() {
        let (sk, vk) = keypair(b"a");
        let sig = sk.sign(b"update manifest v2");
        assert!(vk.verify(b"update manifest v2", &sig));
    }

    #[test]
    fn deterministic_signing() {
        let (sk, _) = keypair(b"det");
        assert_eq!(sk.sign(b"same message"), sk.sign(b"same message"));
        assert_ne!(sk.sign(b"message a"), sk.sign(b"message b"));
    }

    #[test]
    fn wrong_message_or_key_rejected() {
        let (sk, vk) = keypair(b"a");
        let (_, vk2) = keypair(b"b");
        let sig = sk.sign(b"genuine");
        assert!(!vk.verify(b"forged", &sig));
        assert!(!vk2.verify(b"genuine", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let (sk, vk) = keypair(b"t");
        let mut sig = sk.sign(b"msg");
        sig.s = sig.s.add(&Fr::ONE);
        assert!(!vk.verify(b"msg", &sig));
    }

    #[test]
    fn signature_bytes_round_trip() {
        let (sk, vk) = keypair(b"ser");
        let sig = sk.sign(b"wire format");
        let bytes = sig.to_bytes();
        let back = SchnorrSignature::from_bytes(&bytes).unwrap();
        assert_eq!(back, sig);
        assert!(vk.verify(b"wire format", &back));
    }

    #[test]
    fn key_bytes_round_trip() {
        let (_, vk) = keypair(b"kb");
        assert_eq!(VerifyingKey::from_bytes(&vk.to_bytes()), Some(vk));
    }

    #[test]
    fn malformed_signature_bytes_rejected() {
        assert!(SchnorrSignature::from_bytes(&[0u8; 80]).is_none());
        let (sk, _) = keypair(b"mal");
        let mut bytes = sk.sign(b"x").to_bytes();
        bytes[79] = 0xff; // push s out of canonical range likelihood
        bytes[48] = 0xff;
        assert!(SchnorrSignature::from_bytes(&bytes).is_none());
    }

    #[test]
    fn signature_does_not_transfer_between_messages() {
        // Replaying (R, s) for a different message fails because the
        // challenge binds the message.
        let (sk, vk) = keypair(b"bind");
        let sig = sk.sign(b"pay alice 1 token");
        assert!(!vk.verify(b"pay mallory 1000 tokens", &sig));
    }

    #[test]
    fn from_scalar_rejects_zero() {
        assert!(SigningKey::from_scalar(Fr::ZERO).is_none());
        assert!(SigningKey::from_scalar(Fr::ONE).is_some());
    }
}
