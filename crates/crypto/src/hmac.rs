//! HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869), built on our SHA-256.
//!
//! Used for sealed-storage key derivation in the TEE substrate and for the
//! deterministic nonce generation inside Schnorr signing.

use crate::sha256::{Digest, Sha256, DIGEST_LEN};

const BLOCK_LEN: usize = 64;

/// Computes `HMAC-SHA256(key, message)`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    let mut mac = HmacSha256::new(key);
    mac.update(message);
    mac.finalize()
}

/// Incremental HMAC-SHA256.
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Initializes the MAC with an arbitrary-length key.
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = crate::sha256::sha256(key);
            key_block[..DIGEST_LEN].copy_from_slice(&digest);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = key_block[i] ^ 0x36;
            opad[i] = key_block[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        Self {
            inner,
            opad_key: opad,
        }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        self.inner.update(data);
        self
    }

    /// Produces the tag.
    pub fn finalize(self) -> Digest {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// HKDF-Extract: derives a pseudorandom key from input keying material.
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> Digest {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand: expands `prk` into `len` output bytes bound to `info`.
///
/// Panics if `len > 255 * 32` per RFC 5869.
pub fn hkdf_expand(prk: &Digest, info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= 255 * DIGEST_LEN, "HKDF output too long");
    let mut out = Vec::with_capacity(len);
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while out.len() < len {
        let mut mac = HmacSha256::new(prk);
        mac.update(&t);
        mac.update(info);
        mac.update(&[counter]);
        let block = mac.finalize();
        t = block.to_vec();
        let take = (len - out.len()).min(DIGEST_LEN);
        out.extend_from_slice(&block[..take]);
        counter = counter.checked_add(1).expect("HKDF counter overflow");
    }
    out
}

/// Convenience: extract-then-expand in one call.
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    hkdf_expand(&hkdf_extract(salt, ikm), info, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{:02x}", b)).collect()
    }

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    // RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 3: 0xaa * 20 key, 0xdd * 50 data.
    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    // RFC 4231 test case 6: key longer than the block size.
    #[test]
    fn rfc4231_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    // RFC 5869 test case 1.
    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0bu8; 22];
        let salt: Vec<u8> = (0u8..=0x0c).collect();
        let info: Vec<u8> = (0xf0u8..=0xf9).collect();
        let prk = hkdf_extract(&salt, &ikm);
        assert_eq!(
            hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = hkdf_expand(&prk, &info, 42);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    #[test]
    fn hkdf_lengths() {
        let prk = hkdf_extract(b"salt", b"ikm");
        for len in [0usize, 1, 31, 32, 33, 64, 100] {
            assert_eq!(hkdf_expand(&prk, b"info", len).len(), len);
        }
    }

    #[test]
    fn hkdf_info_separates() {
        let a = hkdf(b"s", b"k", b"context-a", 32);
        let b = hkdf(b"s", b"k", b"context-b", 32);
        assert_ne!(a, b);
    }

    #[test]
    fn incremental_hmac_matches() {
        let mut mac = HmacSha256::new(b"key");
        mac.update(b"hello ");
        mac.update(b"world");
        assert_eq!(mac.finalize(), hmac_sha256(b"key", b"hello world"));
    }
}
