//! Fan-out latency benchmark (ISSUE 4 acceptance): the legacy sequential
//! per-domain call loop vs. the session's pipelined fan-out, at n = 3 / 8
//! / 16 trust domains with one artificially slow domain.
//!
//! Every app in `crates/apps` used to hand-roll `for d in 0..n {
//! client.call(d, ...) }`, so one slow domain was paid *in series with*
//! every other domain's round-trip, and total latency grew as
//! `Σ latency(d)`. The session's fan-out puts all n requests in flight
//! before reading any response (`max latency(d)`), and a `Threshold(t)`
//! quorum returns without waiting for stragglers at all.
//!
//! The deployment is real — domain 0 behind the event-loop `DirectHost`,
//! domains 1..n behind TEE enclave proxies — and the app's guest calls a
//! `bench.delay` host import on every request: the host for one domain
//! (index 1) sleeps [`SLOW_DELAY`]; every other domain sleeps
//! [`BASE_DELAY`], modelling ordinary per-request work. Custom harness
//! (`harness = false`), same shape as `audit_throughput`; results are
//! printed as a table and written to `bench_results/fanout_call.json`.

use distrust_core::abi::AppHost;
use distrust_core::deploy::AppSpec;
use distrust_core::session::{FanoutCall, QuorumPolicy, TrustPolicy};
use distrust_core::Deployment;
use distrust_sandbox::vm::Memory;
use distrust_sandbox::{FuncBuilder, Limits, Module, ModuleBuilder};
use std::time::{Duration, Instant};

/// Per-request "work" on ordinary domains.
const BASE_DELAY: Duration = Duration::from_millis(2);
/// Per-request latency of the one slow domain (index 1): an overloaded
/// replica, a cross-region hop, a TEE under contention.
const SLOW_DELAY: Duration = Duration::from_millis(20);
/// Deployment sizes measured.
const DOMAIN_COUNTS: &[usize] = &[3, 8, 16];
const WARMUP_ROUNDS: usize = 2;
const MEASURED_ROUNDS: usize = 25;
/// Method id of the only guest method (delay, then answer one byte).
const METHOD_PING: u64 = 1;

/// Guest: every request crosses into the host's `bench.delay` once, then
/// answers a single status byte — the cheapest possible app whose
/// latency is all service time.
fn delay_module() -> Module {
    let mut mb = ModuleBuilder::new(1, 1);
    let delay = mb.import("bench.delay", 0, 0);
    let mut f = FuncBuilder::new(3, 0, 1);
    f.host(delay);
    f.constant(distrust_core::abi::OUTBOX_ADDR)
        .constant(0)
        .store8(0);
    f.constant(1).ret();
    let idx = mb.function(f.build().expect("delay guest builds"));
    mb.export(distrust_core::abi::HANDLE_EXPORT, idx);
    mb.build()
}

/// Host side of `bench.delay`: sleeps this domain's configured delay.
struct DelayHost {
    delay: Duration,
}

impl AppHost for DelayHost {
    fn call(
        &mut self,
        name: &str,
        _args: &[u64],
        _memory: &mut Memory,
    ) -> Result<Vec<u64>, String> {
        match name {
            "bench.delay" => {
                std::thread::sleep(self.delay);
                Ok(vec![])
            }
            other => Err(format!("unknown import {other:?}")),
        }
    }
}

fn launch(n: usize) -> Deployment {
    let hosts: Vec<Box<dyn AppHost>> = (0..n)
        .map(|d| {
            let delay = if d == 1 { SLOW_DELAY } else { BASE_DELAY };
            Box::new(DelayHost { delay }) as Box<dyn AppHost>
        })
        .collect();
    let spec = AppSpec {
        name: "fanout-bench".to_string(),
        module: delay_module(),
        notes: "v1: delay echo for fan-out benchmarking".to_string(),
        hosts,
        limits: Limits::default(),
    };
    Deployment::launch(spec, b"fanout bench seed").expect("launch")
}

#[derive(Clone, Copy)]
enum Mode {
    /// The pre-session idiom: one blocking round-trip per domain, in
    /// series.
    SequentialLoop,
    /// Pipelined fan-out, all domains required.
    FanoutAll,
    /// Pipelined fan-out returning at n-1 successes: the slow domain is
    /// never waited for.
    FanoutThreshold,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::SequentialLoop => "sequential legacy loop",
            Mode::FanoutAll => "session fanout (All)",
            Mode::FanoutThreshold => "session fanout (Threshold n-1)",
        }
    }
}

struct Row {
    mode: &'static str,
    domains: usize,
    p50: Duration,
    p99: Duration,
    mean: Duration,
}

fn percentile(sorted: &[u64], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    Duration::from_nanos(sorted[idx])
}

fn run(deployment: &Deployment, n: usize, mode: Mode) -> Row {
    let mut client = deployment.client(format!("bench {}", mode.label()).as_bytes());
    let mut session = client.session(TrustPolicy::audited());
    let mut latencies = Vec::with_capacity(MEASURED_ROUNDS);
    for round in 0..WARMUP_ROUNDS + MEASURED_ROUNDS {
        let started = Instant::now();
        match mode {
            Mode::SequentialLoop => {
                // What every app client used to do by hand (via the
                // un-gated shim, exactly like the old code).
                let client = session.client();
                for d in 0..n as u32 {
                    let out = client.call(d, METHOD_PING, b"").expect("call");
                    assert_eq!(out, vec![0]);
                }
            }
            Mode::FanoutAll => {
                let report = session
                    .fanout(&FanoutCall::broadcast(METHOD_PING, Vec::new()))
                    .expect("fanout");
                report.require().expect("all domains answer");
            }
            Mode::FanoutThreshold => {
                let report = session
                    .fanout(
                        &FanoutCall::broadcast(METHOD_PING, Vec::new())
                            .quorum(QuorumPolicy::Threshold(n - 1)),
                    )
                    .expect("fanout");
                report.require().expect("quorum met");
            }
        }
        if round >= WARMUP_ROUNDS {
            latencies.push(started.elapsed().as_nanos() as u64);
        }
    }
    latencies.sort_unstable();
    let mean = Duration::from_nanos(latencies.iter().sum::<u64>() / latencies.len() as u64);
    Row {
        mode: mode.label(),
        domains: n,
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
        mean,
    }
}

fn main() {
    let mut rows = Vec::new();
    println!(
        "{:<32} {:>8} {:>12} {:>12} {:>12}",
        "mode", "domains", "p50", "p99", "mean"
    );
    for &n in DOMAIN_COUNTS {
        let mut deployment = launch(n);
        for mode in [Mode::SequentialLoop, Mode::FanoutAll, Mode::FanoutThreshold] {
            let row = run(&deployment, n, mode);
            println!(
                "{:<32} {:>8} {:>10.2?} {:>10.2?} {:>10.2?}",
                row.mode, row.domains, row.p50, row.p99, row.mean
            );
            rows.push(row);
        }
        deployment.shutdown();
    }
    for &n in DOMAIN_COUNTS {
        let find = |label: &str| rows.iter().find(|r| r.domains == n && r.mode == label);
        if let (Some(seq), Some(all), Some(thresh)) = (
            find(Mode::SequentialLoop.label()),
            find(Mode::FanoutAll.label()),
            find(Mode::FanoutThreshold.label()),
        ) {
            println!(
                "speedup @ n={}: fanout(All) {:.2}x, fanout(Threshold n-1) {:.2}x vs sequential (p50)",
                n,
                seq.p50.as_secs_f64() / all.p50.as_secs_f64(),
                seq.p50.as_secs_f64() / thresh.p50.as_secs_f64(),
            );
        }
    }
    let entries: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\"mode\": \"{}\", \"domains\": {}, \"rounds\": {}, \"base_delay_ms\": {}, \"slow_delay_ms\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"mean_us\": {:.1}}}",
                r.mode,
                r.domains,
                MEASURED_ROUNDS,
                BASE_DELAY.as_millis(),
                SLOW_DELAY.as_millis(),
                r.p50.as_secs_f64() * 1e6,
                r.p99.as_secs_f64() * 1e6,
                r.mean.as_secs_f64() * 1e6
            )
        })
        .collect();
    let json = format!("[\n{}\n]\n", entries.join(",\n"));
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench_results");
    std::fs::create_dir_all(&dir).expect("mkdir bench_results");
    let path = dir.join("fanout_call.json");
    std::fs::write(&path, json).expect("write results");
    println!("\nwrote {}", path.display());
}
