//! Cold-start cost of a durable log (ISSUE 8 acceptance): rebuilding the
//! signed commitment from segment checkpoints must be O(segments), not
//! O(entries).
//!
//! Every sealed segment ends with a checkpoint record carrying the
//! shard's right-edge subtree roots at that size, so
//! [`DurableStore::cold_snapshot`] answers "what root did this log have?"
//! by reading one trailer + one record per sealed segment and replaying
//! only the unsealed tail — while a full [`ShardedLog::open`] must scan
//! every byte and rehash every leaf to rebuild the in-memory proof tree.
//! Both are measured here over the same directories, and two claims are
//! **asserted**, not just reported:
//!
//! 1. at the larger size the checkpoint path beats full replay by at
//!    least [`MIN_SPEEDUP`]×;
//! 2. growing the log 4× grows the checkpoint path by far less than 4×
//!    (it is bounded by segment count and tail size, not entry count).
//!
//! Custom harness (`harness = false`), same shape as `sharded_append`;
//! results go to `bench_results/cold_start.json`.

use distrust_log::{DurableOptions, DurableStore, ShardedLog, StorageConfig};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Log sizes measured in **sealed segments**; the larger is 4× the
/// smaller. Seeding runs to an exact segment boundary plus one leaf, so
/// both logs carry an identical (tiny) unsealed tail and the measured
/// growth isolates the per-segment cost — a fixed entry count would leave
/// different-sized tails and measure tail scanning instead.
const SIZES: &[usize] = &[8, 32];
/// Entry payload: application-scale records, so segments fill realistically.
const LEAF_BYTES: usize = 1024;
/// Segment rotation threshold — 1 MiB ⇒ ~8 and ~32 sealed segments.
const SEGMENT_BYTES: u64 = 1 << 20;
/// Seeding batches fsync; durability of the seed phase is not under test.
const FSYNC_EVERY: u32 = 4096;
/// Timed repetitions per measurement (the minimum is reported).
const REPS: usize = 5;
/// Claim 1: checkpoint-path cold start must beat full replay by this
/// factor at the largest size.
const MIN_SPEEDUP: f64 = 5.0;
/// Claim 2: 4× the entries must cost the checkpoint path under this
/// growth factor (linear would be ~4×; segment-bounded is ~1×).
const MAX_COLD_GROWTH: f64 = 2.5;

struct Row {
    entries: usize,
    segments: usize,
    cold: Duration,
    replay: Duration,
}

fn opts(dir: &Path) -> DurableOptions {
    DurableOptions {
        dir: dir.to_path_buf(),
        segment_bytes: SEGMENT_BYTES,
        fsync_every: FSYNC_EVERY,
    }
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("distrust-coldstart-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Appends leaves through the ordinary durable path until `segments`
/// segments have sealed, plus one leaf into the fresh tail. Returns the
/// entry count and the live commitment.
fn seed(dir: &Path, segments: usize) -> (usize, [u8; 32]) {
    let storage = StorageConfig::Durable(opts(dir));
    let (log, _) = ShardedLog::open(1, &storage).expect("seed open");
    let mut leaf = vec![0u8; LEAF_BYTES];
    let mut entries = 0usize;
    // A new segment file appears only when the first post-seal append
    // lands, so `segments + 1` files means exactly `segments` are sealed.
    while segment_files(dir) < segments + 1 {
        leaf[..8].copy_from_slice(&(entries as u64).to_le_bytes());
        log.append(0, &leaf).expect("seed append");
        entries += 1;
    }
    log.sync().expect("seed sync");
    (entries, log.commitment())
}

fn segment_files(dir: &Path) -> usize {
    std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_str()
                    .is_some_and(|n| n.starts_with("shard-"))
            })
            .count()
        })
        .unwrap_or(0)
}

fn min_time(mut f: impl FnMut() -> [u8; 32], expect: [u8; 32], what: &str) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..REPS {
        let t = Instant::now();
        let got = f();
        let elapsed = t.elapsed();
        assert_eq!(got, expect, "{what} produced a different commitment");
        best = best.min(elapsed);
    }
    best
}

fn measure(segments: usize) -> Row {
    let dir = tempdir(&format!("{segments}"));
    let (entries, live) = seed(&dir, segments);

    // Checkpoint path: open positions the writers (last segment only),
    // cold_snapshot reads one seal per sealed segment + the tail.
    let cold = min_time(
        || {
            let store = DurableStore::open(opts(&dir), 1).expect("cold open");
            store.cold_snapshot().expect("cold snapshot").commitment()
        },
        live,
        "cold_snapshot",
    );

    // Full replay: scan every byte, rehash every leaf, rebuild the tree.
    let replay = min_time(
        || {
            let storage = StorageConfig::Durable(opts(&dir));
            let (log, _) = ShardedLog::open(1, &storage).expect("replay open");
            log.commitment()
        },
        live,
        "full replay",
    );

    let _ = std::fs::remove_dir_all(&dir);
    Row {
        entries,
        segments,
        cold,
        replay,
    }
}

fn main() {
    println!(
        "cold start: commitment from segment checkpoints vs full replay \
         ({LEAF_BYTES} B leaves, {} MiB segments, min of {REPS} runs)\n",
        SEGMENT_BYTES >> 20
    );
    println!(
        "{:>10} {:>9} {:>14} {:>14} {:>9}",
        "entries", "segments", "cold (ms)", "replay (ms)", "speedup"
    );
    let rows: Vec<Row> = SIZES.iter().map(|&n| measure(n)).collect();
    for r in &rows {
        println!(
            "{:>10} {:>9} {:>14.3} {:>14.3} {:>8.1}x",
            r.entries,
            r.segments,
            r.cold.as_secs_f64() * 1e3,
            r.replay.as_secs_f64() * 1e3,
            r.replay.as_secs_f64() / r.cold.as_secs_f64().max(f64::EPSILON),
        );
    }

    let small = &rows[0];
    let big = rows.last().unwrap();
    let speedup = big.replay.as_secs_f64() / big.cold.as_secs_f64().max(f64::EPSILON);
    let growth = big.cold.as_secs_f64() / small.cold.as_secs_f64().max(f64::EPSILON);
    let scale = big.entries as f64 / small.entries as f64;
    println!(
        "\ncold-start speedup at {} entries: {speedup:.1}x (floor {MIN_SPEEDUP}x); \
         cold cost growth for {scale:.0}x entries: {growth:.2}x (cap {MAX_COLD_GROWTH}x)",
        big.entries
    );
    assert!(
        speedup >= MIN_SPEEDUP,
        "checkpoint cold start must beat full replay by {MIN_SPEEDUP}x, got {speedup:.1}x \
         — the O(segments) path has regressed toward O(entries)"
    );
    assert!(
        growth <= MAX_COLD_GROWTH,
        "cold start grew {growth:.2}x for {scale:.0}x entries (cap {MAX_COLD_GROWTH}) \
         — cost is tracking entry count, not segment count"
    );

    let entries: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\"mode\": \"cold_start\", \"entries\": {}, \"leaf_bytes\": {}, \
                 \"segment_bytes\": {}, \"sealed_segments\": {}, \"cold_ms\": {:.3}, \
                 \"replay_ms\": {:.3}, \"speedup\": {:.2}}}",
                r.entries,
                LEAF_BYTES,
                SEGMENT_BYTES,
                r.segments,
                r.cold.as_secs_f64() * 1e3,
                r.replay.as_secs_f64() * 1e3,
                r.replay.as_secs_f64() / r.cold.as_secs_f64().max(f64::EPSILON),
            )
        })
        .collect();
    let json = format!("[\n{}\n]\n", entries.join(",\n"));
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench_results");
    std::fs::create_dir_all(&dir).expect("mkdir bench_results");
    let path = dir.join("cold_start.json");
    std::fs::write(&path, json).expect("write results");
    println!("wrote {}", path.display());
}
