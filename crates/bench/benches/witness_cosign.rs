//! Witness cosigning vs auditing everything yourself (ISSUE 9
//! acceptance): the thin client's trust-establishment cost.
//!
//! A client under the classic policy audits all `n` trust domains —
//! `n` socket round-trips, `n` signature chains, `n` attestation checks.
//! A client under [`TrustPolicy::witnessed`] verifies ONE aggregated
//! threshold-BLS signature over the same `n` checkpoint heads, because a
//! witness quorum already did the per-domain work. Both paths are
//! measured against the SAME live deployment at n = 3 / 8 / 16, and one
//! claim is **asserted**, not just reported: at n = 8 the cosigned-head
//! verification beats the full batched audit.
//!
//! Custom harness (`harness = false`), same shape as `cold_start`;
//! results go to `bench_results/witness_cosign.json`.

use distrust_apps::key_backup;
use distrust_core::Deployment;
use distrust_crypto::drbg::HmacDrbg;
use distrust_crypto::threshold;
use distrust_gossip::witness::{QuorumAggregator, Witness};
use distrust_log::checkpoint::CheckpointBody;
use std::time::{Duration, Instant};

/// Deployment sizes. The paper's deployments are single-digit; 16 shows
/// the gap widening — the cosigned path is O(1) in `n` (one pairing
/// check over a message that grows 80 bytes per domain).
const SIZES: &[usize] = &[3, 8, 16];
/// Timed repetitions per measurement (the minimum is reported).
const REPS: usize = 5;

struct Row {
    domains: usize,
    cosign_verify: Duration,
    full_audit: Duration,
}

fn min_time(reps: usize, mut f: impl FnMut() -> bool) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        assert!(f(), "measured operation must succeed");
        best = best.min(t.elapsed());
    }
    best
}

fn measure(n: usize) -> Row {
    let seed = format!("witness cosign bench {n}");
    let deployment = Deployment::launch(key_backup::app_spec(n), seed.as_bytes()).expect("launch");
    let keys: Vec<_> = deployment
        .descriptor
        .domains
        .iter()
        .map(|d| d.checkpoint_key)
        .collect();

    // The witness side (done once, off the thin client's critical path):
    // an operator audit collects every domain's signed head, a 2-of-3
    // quorum verifies and cosigns it.
    let mut operator = deployment.client(b"operator");
    let report = operator.audit(None);
    assert!(report.is_clean(), "{report:?}");
    let mut observed = operator.gossip_payload();
    observed.sort_by_key(|(d, _)| *d);
    assert_eq!(observed.len(), n);
    let heads: Vec<_> = observed.into_iter().map(|(_, cp)| cp).collect();
    let bodies: Vec<CheckpointBody> = heads.iter().map(|cp| cp.body.clone()).collect();
    let mut rng = HmacDrbg::new(seed.as_bytes(), b"quorum");
    let quorum = threshold::generate(2, 3, &mut rng).expect("keygen");
    let mut agg = QuorumAggregator::new(quorum.commitments.clone(), bodies);
    for share in quorum.shares.iter().take(2) {
        let mut witness = Witness::new(*share, keys.clone());
        assert!(agg.add(witness.observe_and_sign(&heads).expect("honest heads")));
    }
    let cosigned = agg.cosign().expect("aggregate");

    // Thin-client path: one aggregated-signature verification covers all
    // n domains (what Session::install_cosigned_head runs).
    let cosign_verify = min_time(REPS, || cosigned.verify(&quorum.public_key));

    // Classic path: a FRESH client audits all n domains itself. Fresh per
    // rep, so every measurement pays the genuine cold trust-establishment
    // cost (connections included — a real first contact pays them too).
    let full_audit = min_time(REPS, || {
        let mut client = deployment.client(b"fresh thin client");
        client.audit(None).is_clean()
    });

    Row {
        domains: n,
        cosign_verify,
        full_audit,
    }
}

fn main() {
    println!(
        "witness cosigning: one aggregated BLS verify vs auditing all n \
         domains (live deployments, min of {REPS} runs)\n"
    );
    println!(
        "{:>8} {:>18} {:>16} {:>9}",
        "domains", "cosign verify (ms)", "full audit (ms)", "speedup"
    );
    let rows: Vec<Row> = SIZES.iter().map(|&n| measure(n)).collect();
    for r in &rows {
        println!(
            "{:>8} {:>18.3} {:>16.3} {:>8.1}x",
            r.domains,
            r.cosign_verify.as_secs_f64() * 1e3,
            r.full_audit.as_secs_f64() * 1e3,
            r.full_audit.as_secs_f64() / r.cosign_verify.as_secs_f64().max(f64::EPSILON),
        );
    }

    let at8 = rows
        .iter()
        .find(|r| r.domains == 8)
        .expect("n = 8 is measured");
    assert!(
        at8.cosign_verify < at8.full_audit,
        "cosigned-head verification ({:?}) must beat the full {}-domain audit ({:?})",
        at8.cosign_verify,
        at8.domains,
        at8.full_audit
    );

    let entries: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\"mode\": \"witness_cosign\", \"domains\": {}, \"quorum\": \"2-of-3\", \
                 \"cosign_verify_ms\": {:.3}, \"full_audit_ms\": {:.3}, \"speedup\": {:.2}}}",
                r.domains,
                r.cosign_verify.as_secs_f64() * 1e3,
                r.full_audit.as_secs_f64() * 1e3,
                r.full_audit.as_secs_f64() / r.cosign_verify.as_secs_f64().max(f64::EPSILON),
            )
        })
        .collect();
    let json = format!("[\n{}\n]\n", entries.join(",\n"));
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench_results");
    std::fs::create_dir_all(&dir).expect("mkdir bench_results");
    let path = dir.join("witness_cosign.json");
    std::fs::write(&path, json).expect("write results");
    println!("wrote {}", path.display());
}
