//! Ablation D: decomposing the sandbox overhead — pure interpretation
//! slowdown (SHA-256 compiled to guest bytecode vs native, the analogue of
//! the Wasm-vs-native study the paper cites [39]), the guest↔host boundary
//! cost, and raw VM dispatch throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use distrust_sandbox::guests::{guest_sha256, hostcall_loop_module, sha256_module, CountingHost};
use distrust_sandbox::{Instance, Limits};

fn bench_sandbox(c: &mut Criterion) {
    // Interpretation slowdown: the same SHA-256 computation, native vs
    // in-guest. The ratio brackets what "run the application in a
    // software sandbox" costs at the interpreter end of the spectrum
    // (Wasm JITs land near 1.5x; interpreters orders of magnitude higher).
    let mut group = c.benchmark_group("sandbox_sha256");
    group.sample_size(10);
    for &len in &[64usize, 1024] {
        let msg = vec![0x61u8; len];
        group.bench_with_input(BenchmarkId::new("native", len), &msg, |b, msg| {
            b.iter(|| std::hint::black_box(distrust_crypto::sha256(msg)))
        });
        group.bench_with_input(BenchmarkId::new("guest", len), &msg, |b, msg| {
            let mut inst = Instance::new(sha256_module(), Limits::default()).unwrap();
            b.iter(|| std::hint::black_box(guest_sha256(&mut inst, msg).unwrap()))
        });
    }
    group.finish();

    // Host-call boundary: price of one guest→host→guest crossing.
    let mut group = c.benchmark_group("sandbox_boundary");
    group.sample_size(10);
    for &calls in &[100u64, 10_000] {
        group.bench_with_input(BenchmarkId::new("hostcalls", calls), &calls, |b, &calls| {
            let mut inst = Instance::new(hostcall_loop_module(), Limits::default()).unwrap();
            b.iter(|| {
                let mut host = CountingHost { calls: 0 };
                inst.invoke("run", &[calls], &mut host).unwrap();
                std::hint::black_box(host.calls)
            })
        });
    }
    group.finish();

    // Raw dispatch throughput: a tight arithmetic loop.
    let mut group = c.benchmark_group("sandbox_dispatch");
    group.sample_size(10);
    {
        use distrust_sandbox::{FuncBuilder, ModuleBuilder};
        let mut mb = ModuleBuilder::new(1, 1);
        let mut f = FuncBuilder::new(1, 1, 1);
        // sum 1..n
        f.constant(0)
            .lset(1)
            .label("loop")
            .lget(0)
            .jz("done")
            .lget(1)
            .lget(0)
            .add()
            .lset(1)
            .lget(0)
            .constant(1)
            .sub()
            .lset(0)
            .jmp("loop")
            .label("done")
            .lget(1)
            .ret();
        let idx = mb.function(f.build().unwrap());
        mb.export("sum", idx);
        let module = mb.build();
        group.bench_function("sum_loop_100k_iters", |b| {
            let mut inst = Instance::new(module.clone(), Limits::default()).unwrap();
            b.iter(|| {
                std::hint::black_box(
                    inst.invoke("sum", &[100_000], &mut distrust_sandbox::NoHost)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sandbox);
criterion_main!(benches);
