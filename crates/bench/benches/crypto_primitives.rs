//! Ablation F: costs of the cryptographic primitives underlying every
//! number in the evaluation — pairing, group scalar multiplication,
//! hash-to-curve, and BLS sign/verify.

use criterion::{criterion_group, criterion_main, Criterion};
use distrust_crypto::bls::SecretKey;
use distrust_crypto::drbg::HmacDrbg;
use distrust_crypto::fr::Fr;
use distrust_crypto::g1::{hash_to_g1, G1Projective};
use distrust_crypto::g2::G2Projective;
use distrust_crypto::pairing::pairing;

fn bench_primitives(c: &mut Criterion) {
    let mut rng = HmacDrbg::new(b"crypto bench", b"");
    let mut group = c.benchmark_group("crypto");
    group.sample_size(20);

    let scalar = Fr::random(&mut rng);
    let g1 = G1Projective::generator();
    group.bench_function("g1_scalar_mul", |b| {
        b.iter(|| std::hint::black_box(g1.mul_scalar(&scalar)))
    });

    let g2 = G2Projective::generator();
    group.bench_function("g2_scalar_mul", |b| {
        b.iter(|| std::hint::black_box(g2.mul_scalar(&scalar)))
    });

    let p = g1.mul_scalar(&scalar).to_affine();
    let q = g2.mul_scalar(&scalar).to_affine();
    group.bench_function("pairing", |b| {
        b.iter(|| std::hint::black_box(pairing(&p, &q)))
    });

    let mut counter = 0u64;
    group.bench_function("hash_to_g1", |b| {
        b.iter(|| {
            counter += 1;
            std::hint::black_box(hash_to_g1(&counter.to_le_bytes(), b"bench"))
        })
    });

    let sk = SecretKey::generate(&mut rng);
    let pk = sk.public_key();
    group.bench_function("bls_sign", |b| {
        b.iter(|| std::hint::black_box(sk.sign(b"bench message")))
    });

    let sig = sk.sign(b"bench message");
    group.bench_function("bls_verify", |b| {
        b.iter(|| std::hint::black_box(pk.verify(b"bench message", &sig)))
    });

    let blob = vec![0xabu8; 64 * 1024];
    group.bench_function("sha256_64KiB", |b| {
        b.iter(|| std::hint::black_box(distrust_crypto::sha256(&blob)))
    });

    group.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
