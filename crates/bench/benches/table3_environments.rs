//! Criterion version of Table 3: BLS threshold signature share production
//! under the three execution environments. The `table3` binary prints the
//! paper-shaped table; this bench gives confidence intervals.

use criterion::{criterion_group, criterion_main, Criterion};
use distrust_bench::{Environment, SigningBench};

fn bench_environments(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3");
    group.sample_size(20);
    for env in [
        Environment::Baseline,
        Environment::Sandbox,
        Environment::TeeSandbox,
        Environment::TeeTomorrow,
    ] {
        let mut bench = SigningBench::start(env).expect("start environment");
        let mut counter = 0u64;
        group.bench_function(env.label(), |b| {
            b.iter(|| {
                counter += 1;
                let message = format!("bench message {counter}");
                std::hint::black_box(bench.sign(message.as_bytes()))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_environments);
criterion_main!(benches);
