//! Audit throughput benchmark (ISSUE 3 acceptance): full audit rounds per
//! second at 100 / 1000 concurrent auditing clients, legacy per-step path
//! (`Attest` + `GetCheckpoint` round-trips, one fresh checkpoint signature
//! per client) vs. the batched path (`BatchAudit`: one round-trip served
//! from the host's shared per-epoch proof cache, verified client-side
//! through the auditor's verified-prefix cache).
//!
//! Custom harness (`harness = false`), same shape as `wire_concurrency`:
//! N connections held open against one `DirectHost`-served trust domain,
//! requests pipelined per worker so every connection has an audit in
//! flight. Each connection is an independent auditor with its own
//! [`Auditor`] state — client-side verification cost is inside the
//! measurement, exactly as it would be for real clients. Results are
//! printed as a table and written to `bench_results/audit_throughput.json`.

use distrust_core::abi::NoImports;
use distrust_core::framework::{EnclaveFramework, FrameworkConfig, FrameworkService};
use distrust_core::protocol::{Request, Response};
use distrust_core::server::DirectHost;
use distrust_core::SignedRelease;
use distrust_crypto::schnorr::{SigningKey, VerifyingKey};
use distrust_log::auditor::Auditor;
use distrust_log::checkpoint::log_id;
use distrust_log::StorageConfig;
use distrust_sandbox::guests::counter_module;
use distrust_sandbox::Limits;
use distrust_wire::codec::{Decode, Encode};
use distrust_wire::transport::{max_open_files, TcpTransport, Transport};
use std::net::SocketAddr;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const CLIENT_COUNTS: &[usize] = &[100, 1000];
const WORKERS: usize = 8;
const WARMUP_ROUNDS: usize = 1;
const MEASURED_ROUNDS: usize = 5;
/// Epochs (updates) installed before the measurement.
const EPOCHS: u64 = 4;

fn checkpoint_key() -> SigningKey {
    SigningKey::derive(b"audit bench", b"checkpoint")
}

/// One trust domain, audited to death: a real framework with `EPOCHS`
/// installed releases behind the event-loop host.
fn spawn_domain() -> DirectHost {
    let dev = SigningKey::derive(b"audit bench", b"developer");
    let mut fw = EnclaveFramework::open(
        FrameworkConfig {
            domain_index: 0,
            app_name: "audited".into(),
            developer_key: dev.verifying_key(),
            log_id: log_id(b"audit-bench", 0),
            limits: Limits::default(),
            log_shards: 1,
            storage: StorageConfig::Ephemeral,
        },
        None,
        checkpoint_key(),
        Box::new(NoImports),
    )
    .expect("ephemeral framework opens");
    for v in 1..=EPOCHS {
        let release = SignedRelease::create("audited", v, "", &counter_module(v), &dev);
        fw.apply_update(&release).expect("release applies");
    }
    DirectHost::spawn(FrameworkService::new(fw)).expect("spawn host")
}

/// One auditing connection: transport + this client's own audit state.
struct AuditorConn {
    transport: TcpTransport,
    auditor: Auditor,
    nonce_seq: u64,
}

impl AuditorConn {
    fn connect(addr: SocketAddr, key: VerifyingKey) -> Self {
        Self {
            transport: TcpTransport::connect(addr).expect("connect"),
            auditor: Auditor::new(vec![key]),
            nonce_seq: 0,
        }
    }

    fn nonce(&mut self) -> [u8; 32] {
        self.nonce_seq += 1;
        let mut n = [0u8; 32];
        n[..8].copy_from_slice(&self.nonce_seq.to_le_bytes());
        n
    }
}

/// One full audit round for every connection of a worker, pipelined:
/// send a step on all connections, then collect all responses, so the
/// host always has a queue to chew through. Returns per-connection
/// whole-audit latencies.
fn legacy_round(conns: &mut [AuditorConn]) -> Vec<u64> {
    let mut started = Vec::with_capacity(conns.len());
    // Step 1: attest.
    for c in conns.iter_mut() {
        started.push(Instant::now());
        let nonce = c.nonce();
        c.transport
            .send(&Request::Attest { nonce }.to_wire())
            .expect("send attest");
    }
    for c in conns.iter_mut() {
        let frame = c.transport.recv().expect("recv attest");
        let resp = Response::from_wire(&frame).expect("decode");
        assert!(
            matches!(resp, Response::Unattested(_)),
            "domain 0 attests plainly"
        );
    }
    // Step 2: checkpoint (the host signs one per request) + verification.
    for c in conns.iter_mut() {
        c.transport
            .send(&Request::GetCheckpoint.to_wire())
            .expect("send checkpoint");
    }
    let mut latencies = Vec::with_capacity(conns.len());
    for (c, started) in conns.iter_mut().zip(&started) {
        let frame = c.transport.recv().expect("recv checkpoint");
        let resp = Response::from_wire(&frame).expect("decode");
        let Response::Checkpoint(cp) = resp else {
            panic!("expected checkpoint");
        };
        // Steady state: no growth, so no GetConsistency round-trip; the
        // auditor still verifies the fresh signature every time.
        assert!(c.auditor.observe(0, cp, None).is_consistent());
        latencies.push(started.elapsed().as_nanos() as u64);
    }
    latencies
}

fn batched_round(conns: &mut [AuditorConn]) -> Vec<u64> {
    let mut started = Vec::with_capacity(conns.len());
    for (i, c) in conns.iter_mut().enumerate() {
        started.push(Instant::now());
        let nonce = c.nonce();
        let verified_size = c.auditor.latest(0).map(|cp| cp.body.size).unwrap_or(0);
        c.transport
            .send(
                &Request::BatchAudit {
                    request_id: i as u64 + 1,
                    nonce,
                    verified_size,
                }
                .to_wire(),
            )
            .expect("send batch audit");
    }
    let mut latencies = Vec::with_capacity(conns.len());
    for ((i, c), started) in conns.iter_mut().enumerate().zip(&started) {
        let frame = c.transport.recv().expect("recv batch audit");
        let resp = Response::from_wire(&frame).expect("decode");
        let Response::AuditBundle(bundle) = resp else {
            panic!("expected audit bundle");
        };
        assert_eq!(bundle.request_id, i as u64 + 1, "response matches request");
        assert!(c.auditor.observe_bundle(0, &bundle.bundle).is_consistent());
        latencies.push(started.elapsed().as_nanos() as u64);
    }
    latencies
}

struct Row {
    mode: &'static str,
    clients: usize,
    audits: usize,
    p50: Duration,
    p99: Duration,
    throughput: f64,
    sig_verifies_per_conn: u64,
    skips_per_conn: u64,
}

fn percentile(sorted: &[u64], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    Duration::from_nanos(sorted[idx])
}

fn run(batched: bool, clients: usize) -> Row {
    let mut host = spawn_domain();
    let addr = host.addr();
    let key = checkpoint_key().verifying_key();
    let barrier = Arc::new(Barrier::new(WORKERS));
    let measured_start = Arc::new(Barrier::new(WORKERS));
    let handles: Vec<_> = (0..WORKERS)
        .map(|w| {
            let per_worker = clients / WORKERS + usize::from(w < clients % WORKERS);
            let barrier = Arc::clone(&barrier);
            let measured_start = Arc::clone(&measured_start);
            std::thread::spawn(move || {
                let mut conns: Vec<AuditorConn> = (0..per_worker)
                    .map(|_| AuditorConn::connect(addr, key))
                    .collect();
                barrier.wait();
                // Warmup (first observation: full verification) happens
                // outside the measured window for both modes.
                for _ in 0..WARMUP_ROUNDS {
                    if batched {
                        batched_round(&mut conns);
                    } else {
                        legacy_round(&mut conns);
                    }
                }
                measured_start.wait();
                let started = Instant::now();
                let mut latencies = Vec::with_capacity(per_worker * MEASURED_ROUNDS);
                for _ in 0..MEASURED_ROUNDS {
                    let lat = if batched {
                        batched_round(&mut conns)
                    } else {
                        legacy_round(&mut conns)
                    };
                    latencies.extend(lat);
                }
                let measured_wall = started.elapsed();
                let (sigs, skips) = conns
                    .first()
                    .map(|c| {
                        let cache = c.auditor.prefix_cache(0).expect("domain 0");
                        (cache.signatures_verified(), cache.skipped())
                    })
                    .unwrap_or((0, 0));
                (latencies, measured_wall, sigs, skips)
            })
        })
        .collect();
    let mut latencies: Vec<u64> = Vec::new();
    let mut wall = Duration::ZERO;
    let mut sig_verifies_per_conn = 0;
    let mut skips_per_conn = 0;
    for h in handles {
        let (lat, measured_wall, sigs, skips) = h.join().expect("worker");
        latencies.extend(lat);
        // Workers start the measured phase together; the slowest one
        // defines the wall clock.
        wall = wall.max(measured_wall);
        sig_verifies_per_conn = sigs;
        skips_per_conn = skips;
    }
    host.shutdown();
    latencies.sort_unstable();
    Row {
        mode: if batched {
            "batched (BatchAudit)"
        } else {
            "legacy per-step"
        },
        clients,
        audits: latencies.len(),
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
        throughput: latencies.len() as f64 / wall.as_secs_f64(),
        sig_verifies_per_conn,
        skips_per_conn,
    }
}

fn main() {
    let fd_budget = max_open_files().map(|limit| limit.saturating_sub(200) / 2);
    let mut rows = Vec::new();
    println!(
        "{:<22} {:>8} {:>8} {:>12} {:>12} {:>10} {:>10} {:>8}",
        "mode", "clients", "audits", "p50", "p99", "audits/s", "sigs/conn", "skipped"
    );
    for &requested in CLIENT_COUNTS {
        let clients = match fd_budget {
            Some(budget) if budget < requested => {
                eprintln!("fd limit: scaling {requested} clients down to {budget}");
                budget
            }
            _ => requested,
        };
        if clients < WORKERS {
            eprintln!("fd limit too tight for {requested} clients; skipping");
            continue;
        }
        for batched in [false, true] {
            let row = run(batched, clients);
            println!(
                "{:<22} {:>8} {:>8} {:>10.2?} {:>10.2?} {:>10.0} {:>10} {:>8}",
                row.mode,
                row.clients,
                row.audits,
                row.p50,
                row.p99,
                row.throughput,
                row.sig_verifies_per_conn,
                row.skips_per_conn
            );
            rows.push(row);
        }
    }
    // Speedup summary per client count.
    for &clients in CLIENT_COUNTS {
        let legacy = rows
            .iter()
            .find(|r| r.clients == clients && r.mode.starts_with("legacy"));
        let batched = rows
            .iter()
            .find(|r| r.clients == clients && r.mode.starts_with("batched"));
        if let (Some(l), Some(b)) = (legacy, batched) {
            println!(
                "speedup @ {} clients: {:.2}x audit rounds/s",
                clients,
                b.throughput / l.throughput
            );
        }
    }
    let entries: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\"mode\": \"{}\", \"clients\": {}, \"audits\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"audits_per_s\": {:.0}, \"sig_verifies_per_conn\": {}, \"skipped_verifications_per_conn\": {}}}",
                r.mode,
                r.clients,
                r.audits,
                r.p50.as_secs_f64() * 1e6,
                r.p99.as_secs_f64() * 1e6,
                r.throughput,
                r.sig_verifies_per_conn,
                r.skips_per_conn
            )
        })
        .collect();
    let json = format!("[\n{}\n]\n", entries.join(",\n"));
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench_results");
    std::fs::create_dir_all(&dir).expect("mkdir bench_results");
    let path = dir.join("audit_throughput.json");
    std::fs::write(&path, json).expect("write results");
    println!("\nwrote {}", path.display());
}
