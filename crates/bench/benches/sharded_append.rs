//! Sharded-log append throughput (ISSUE 5 acceptance): 1 vs 4 vs 16
//! shards under concurrent appenders, plus the regression guard proving
//! `MerkleLog::root()` is no longer O(n) per call.
//!
//! Two claims are measured:
//!
//! 1. **Checkpointing cost no longer grows quadratically.** Every epoch
//!    the framework appends one leaf and signs the current root, so the
//!    old recompute-from-all-leaves `root()` made `n` epochs cost O(n²)
//!    hashes. With cached subtree levels the same loop is O(n log n);
//!    the bench appends 100k leaves calling `root()` after every append
//!    and **asserts** the second half is not disproportionately slower
//!    than the first (quadratic growth would make it ~3x; the cached
//!    implementation is ~1x).
//! 2. **Appends scale across shards.** `T` appender threads hammer a
//!    [`ShardedLog`]: with one shard they all serialize on one lock and
//!    one tree; with 4/16 shards each thread owns its slice of shards and
//!    appends proceed independently. Reported as appends/sec *and*
//!    per-append latency percentiles — on a multi-core box the throughput
//!    scales with shards (hashing parallelizes across trees); on the
//!    1-core CI box wall-clock throughput is pinned by the single core,
//!    and the win shows up where queueing theory says it must: the tail.
//!    A thread appending to its own shard never waits in line behind
//!    seven writers to one mutex, so p99/max append latency collapses.
//!
//! Custom harness (`harness = false`), same shape as `fanout_call`;
//! results are printed as a table and written to
//! `bench_results/sharded_append.json`.

use distrust_log::{MerkleLog, ShardedLog};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Leaves for the root-cost regression check.
const ROOT_CHECK_LEAVES: usize = 100_000;
/// Quadratic root recomputation makes the second 50k appends ~3x the
/// first 50k; the cached levels keep the ratio near 1. The assert allows
/// generous noise headroom while still failing a quadratic regression.
const MAX_SECOND_HALF_RATIO: f64 = 2.5;

/// Appender threads for the sharded throughput runs.
const THREADS: usize = 8;
/// Shard counts measured.
const SHARD_COUNTS: &[usize] = &[1, 4, 16];
/// Entry sizes measured: digest-scale entries (release manifests) and
/// payload-scale entries (apps logging real data), with the per-thread
/// append count scaled so each run stays in the seconds.
const WORKLOADS: &[(usize, usize)] = &[(64, 25_000), (16 * 1024, 2_000)];
/// How often each appender recomputes the commitment, modelling the
/// checkpoint read mixed into real append traffic.
const COMMIT_EVERY: usize = 1_000;

struct Row {
    leaf_size: usize,
    shards: usize,
    elapsed: Duration,
    appends_per_sec: f64,
    p50: Duration,
    p99: Duration,
    max: Duration,
}

fn percentile(sorted: &[u64], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    Duration::from_nanos(sorted[idx])
}

/// Appends 100k leaves calling `root()` every time, timing both halves.
fn root_cost_check() -> (Duration, Duration) {
    let mut log = MerkleLog::new();
    let leaf = [0x5au8; 40];
    let half = ROOT_CHECK_LEAVES / 2;
    let t0 = Instant::now();
    for _ in 0..half {
        log.append(&leaf);
        std::hint::black_box(log.root());
    }
    let first = t0.elapsed();
    let t1 = Instant::now();
    for _ in 0..half {
        log.append(&leaf);
        std::hint::black_box(log.root());
    }
    (first, t1.elapsed())
}

/// `THREADS` appenders over `shards` shards, identical total work per
/// configuration; returns the wall-clock for all appends to land plus
/// every individual append latency (lock wait + tree update), in nanos.
fn concurrent_append_run(
    shards: usize,
    leaf_size: usize,
    per_thread: usize,
) -> (Duration, Vec<u64>) {
    let log = Arc::new(ShardedLog::new(shards));
    let start = Instant::now();
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let log = Arc::clone(&log);
            std::thread::spawn(move || {
                // Each thread owns shard `t % shards`: disjoint trees for
                // multi-shard runs, full contention at one shard.
                let shard = (t % shards) as u32;
                let leaf = vec![t as u8; leaf_size];
                let mut latencies = Vec::with_capacity(per_thread);
                for i in 0..per_thread {
                    let t0 = Instant::now();
                    log.append(shard, &leaf).expect("shard exists");
                    latencies.push(t0.elapsed().as_nanos() as u64);
                    if i % COMMIT_EVERY == 0 {
                        std::hint::black_box(log.commitment());
                    }
                }
                latencies
            })
        })
        .collect();
    let mut latencies = Vec::with_capacity(THREADS * per_thread);
    for h in handles {
        latencies.extend(h.join().expect("appender"));
    }
    let elapsed = start.elapsed();
    assert_eq!(
        log.total_len(),
        (THREADS * per_thread) as u64,
        "every append landed"
    );
    latencies.sort_unstable();
    (elapsed, latencies)
}

fn main() {
    println!("== MerkleLog root() cost: 100k appends with a root per append ==");
    let (first, second) = root_cost_check();
    let ratio = second.as_secs_f64() / first.as_secs_f64().max(f64::EPSILON);
    println!(
        "first 50k: {:.1} ms   second 50k: {:.1} ms   ratio: {:.2}",
        first.as_secs_f64() * 1e3,
        second.as_secs_f64() * 1e3,
        ratio
    );
    assert!(
        ratio < MAX_SECOND_HALF_RATIO,
        "root() cost grew {ratio:.2}x from the first to the second 50k appends — \
         quadratic recomputation is back (cached subtree levels should hold this near 1x)"
    );

    let mut rows = Vec::new();
    // Warm-up run (thread pool, allocator) not recorded.
    let _ = concurrent_append_run(SHARD_COUNTS[0], WORKLOADS[0].0, WORKLOADS[0].1);
    for &(leaf_size, per_thread) in WORKLOADS {
        println!(
            "\n== ShardedLog append throughput: {THREADS} threads x {per_thread} appends of \
             {leaf_size} B, commitment every {COMMIT_EVERY} =="
        );
        for &shards in SHARD_COUNTS {
            let (elapsed, latencies) = concurrent_append_run(shards, leaf_size, per_thread);
            let total = (THREADS * per_thread) as f64;
            let appends_per_sec = total / elapsed.as_secs_f64();
            let (p50, p99, max) = (
                percentile(&latencies, 0.50),
                percentile(&latencies, 0.99),
                percentile(&latencies, 1.0),
            );
            println!(
                "{shards:>3} shard(s): {:>8.1} ms  {:>12.0} appends/s  p50 {:>7.2} us  p99 {:>8.2} us  max {:>9.2} us",
                elapsed.as_secs_f64() * 1e3,
                appends_per_sec,
                p50.as_secs_f64() * 1e6,
                p99.as_secs_f64() * 1e6,
                max.as_secs_f64() * 1e6,
            );
            rows.push(Row {
                leaf_size,
                shards,
                elapsed,
                appends_per_sec,
                p50,
                p99,
                max,
            });
        }
        let one = rows
            .iter()
            .find(|r| r.leaf_size == leaf_size && r.shards == 1);
        let best = rows
            .iter()
            .filter(|r| r.leaf_size == leaf_size && r.shards > 1)
            .max_by(|a, b| a.appends_per_sec.total_cmp(&b.appends_per_sec));
        if let (Some(one), Some(best)) = (one, best) {
            println!(
                "scaling vs single tree @ {leaf_size} B: {} shards {:.2}x throughput, \
                 p99 append {:.2}x lower (wall-clock scaling needs cores; on the 1-core CI \
                 box the queueing win shows once entries are big enough that a preempted \
                 lock holder stalls the whole single-tree write path)",
                best.shards,
                best.appends_per_sec / one.appends_per_sec,
                one.p99.as_secs_f64() / best.p99.as_secs_f64().max(f64::EPSILON),
            );
        }
    }

    let mut entries: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\"mode\": \"concurrent_append\", \"leaf_bytes\": {}, \"shards\": {}, \
                 \"threads\": {}, \"commit_every\": {}, \"elapsed_ms\": {:.1}, \
                 \"appends_per_sec\": {:.0}, \"p50_append_us\": {:.2}, \"p99_append_us\": {:.2}, \
                 \"max_append_us\": {:.2}}}",
                r.leaf_size,
                r.shards,
                THREADS,
                COMMIT_EVERY,
                r.elapsed.as_secs_f64() * 1e3,
                r.appends_per_sec,
                r.p50.as_secs_f64() * 1e6,
                r.p99.as_secs_f64() * 1e6,
                r.max.as_secs_f64() * 1e6,
            )
        })
        .collect();
    entries.push(format!(
        "  {{\"mode\": \"root_cost_check\", \"leaves\": {}, \"first_half_ms\": {:.1}, \
         \"second_half_ms\": {:.1}, \"ratio\": {:.3}, \"max_ratio\": {}}}",
        ROOT_CHECK_LEAVES,
        first.as_secs_f64() * 1e3,
        second.as_secs_f64() * 1e3,
        ratio,
        MAX_SECOND_HALF_RATIO
    ));
    let json = format!("[\n{}\n]\n", entries.join(",\n"));
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench_results");
    std::fs::create_dir_all(&dir).expect("mkdir bench_results");
    let path = dir.join("sharded_append.json");
    std::fs::write(&path, json).expect("write results");
    println!("\nwrote {}", path.display());
}
