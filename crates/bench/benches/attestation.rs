//! Ablation A: attestation costs — quote generation, quote verification,
//! and the full client audit as the number of trust domains grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use distrust_apps::analytics;
use distrust_core::Deployment;
use distrust_crypto::drbg::HmacDrbg;
use distrust_tee::vendor::{Vendor, VendorKind, VendorRoots};

fn bench_attestation(c: &mut Criterion) {
    // Micro: quote generation + verification per vendor.
    let mut group = c.benchmark_group("attest_micro");
    group.sample_size(10);
    for kind in VendorKind::ALL {
        let vendor = Vendor::new(kind, b"attest bench");
        let mut rng = HmacDrbg::new(b"attest bench rng", kind.name().as_bytes());
        let enclave = vendor.provision_device(&mut rng).launch([7; 32]);
        let roots = VendorRoots::new(vec![(kind, vendor.root_key())]);

        group.bench_function(BenchmarkId::new("quote_generate", kind.name()), |b| {
            b.iter(|| std::hint::black_box(enclave.quote(b"nonce and log head")))
        });
        let quote = enclave.quote(b"nonce and log head");
        group.bench_function(BenchmarkId::new("quote_verify", kind.name()), |b| {
            b.iter(|| std::hint::black_box(quote.verify(&roots, Some(&[7; 32]), None).is_ok()))
        });
    }
    group.finish();

    // Macro: the full client audit (quotes + checkpoints + consistency +
    // cross-check) against live deployments of n domains.
    let mut group = c.benchmark_group("audit_full");
    group.sample_size(10);
    for &n in &[2usize, 3, 5, 8] {
        let deployment = Deployment::launch(
            analytics::app_spec(n),
            format!("attest bench {n}").as_bytes(),
        )
        .expect("launch");
        let mut client = deployment.client(b"bench auditor");
        let digest = deployment.initial_app_digest;
        group.bench_with_input(BenchmarkId::new("domains", n), &n, |b, _| {
            b.iter(|| {
                let report = client.audit(Some(&digest));
                assert!(report.is_clean());
                std::hint::black_box(report)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_attestation);
criterion_main!(benches);
