//! Ablation C: threshold-signing costs as the committee grows — partial
//! signing, aggregation (Lagrange in the exponent), partial verification,
//! and group verification for (t, n) from (2,3) to (9,13).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use distrust_crypto::drbg::HmacDrbg;
use distrust_crypto::threshold::{self, PartialSignature};

fn bench_threshold(c: &mut Criterion) {
    let configs = [(2usize, 3usize), (3, 5), (5, 8), (7, 10), (9, 13)];
    let msg = b"scaling benchmark message";

    let mut group = c.benchmark_group("threshold");
    group.sample_size(10);
    for &(t, n) in &configs {
        let label = format!("t{t}_n{n}");
        let mut rng = HmacDrbg::new(b"threshold bench", label.as_bytes());
        let keys = threshold::generate(t, n, &mut rng).expect("keygen");
        let partials: Vec<PartialSignature> = keys.shares[..t]
            .iter()
            .map(|s| threshold::partial_sign(s, msg))
            .collect();

        group.bench_with_input(
            BenchmarkId::new("partial_sign", &label),
            &keys.shares[0],
            |b, share| b.iter(|| std::hint::black_box(threshold::partial_sign(share, msg))),
        );
        group.bench_with_input(BenchmarkId::new("aggregate", &label), &t, |b, &t| {
            b.iter(|| std::hint::black_box(threshold::aggregate(t, &partials).unwrap()))
        });
        group.bench_with_input(
            BenchmarkId::new("verify_partial", &label),
            &partials[0],
            |b, p| {
                b.iter(|| {
                    std::hint::black_box(threshold::verify_partial(&keys.commitments, msg, p))
                })
            },
        );
        let sig = threshold::aggregate(t, &partials).unwrap();
        group.bench_with_input(BenchmarkId::new("verify_group", &label), &sig, |b, sig| {
            b.iter(|| std::hint::black_box(keys.public_key.verify(msg, sig)))
        });
    }
    group.finish();

    // Keygen scaling (dealer + Feldman commitments).
    let mut group = c.benchmark_group("threshold_keygen");
    group.sample_size(10);
    for &(t, n) in &configs {
        let label = format!("t{t}_n{n}");
        group.bench_function(BenchmarkId::new("generate", &label), |b| {
            let mut rng = HmacDrbg::new(b"keygen bench", label.as_bytes());
            b.iter(|| std::hint::black_box(threshold::generate(t, n, &mut rng).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_threshold);
criterion_main!(benches);
