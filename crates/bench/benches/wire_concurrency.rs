//! Concurrency benchmark for the wire layer (ISSUE 2 acceptance): p50/p99
//! request latency at 100 / 1000 / 4000 concurrent connections, event-loop
//! server (fixed pool of 4 reactor threads + 1 accept thread) vs. the
//! thread-per-connection baseline (one OS thread per client).
//!
//! Custom harness (`harness = false`): criterion's mean-of-iterations shape
//! cannot express "open N sockets, keep them all live, report tail
//! latency". Requests are pipelined per worker — every connection has a
//! request in flight before any response is read — so the numbers include
//! real queueing, not just lone round-trips. Results are printed as a table
//! and appended to `bench_results/wire_concurrency.json`.

use distrust_wire::codec::{Decode, Encode};
use distrust_wire::rpc::{EventLoopRpcServer, RpcServer};
use distrust_wire::transport::{max_open_files, TcpTransport, Transport};
use std::net::SocketAddr;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const CLIENT_COUNTS: &[usize] = &[100, 1000, 4000];
const WORKERS: usize = 8;
const WARMUP_ROUNDS: usize = 1;
const MEASURED_ROUNDS: usize = 5;

fn handler(req: u64) -> Result<u64, String> {
    Ok(req.wrapping_mul(0x9e37_79b9) ^ 0x5bd1)
}

/// Either server, reduced to "an address to hammer and a way to stop".
enum Server {
    EventLoop(EventLoopRpcServer),
    ThreadPerConn(RpcServer),
}

impl Server {
    fn spawn(event_loop: bool) -> std::io::Result<Self> {
        let h = Arc::new(handler as fn(u64) -> Result<u64, String>);
        Ok(if event_loop {
            Self::EventLoop(EventLoopRpcServer::spawn::<u64, u64, _>(h)?)
        } else {
            Self::ThreadPerConn(RpcServer::spawn::<u64, u64, _>(h)?)
        })
    }

    fn addr(&self) -> SocketAddr {
        match self {
            Self::EventLoop(s) => s.local_addr(),
            Self::ThreadPerConn(s) => s.local_addr(),
        }
    }

    fn shutdown(&mut self) {
        match self {
            Self::EventLoop(s) => s.shutdown(),
            Self::ThreadPerConn(s) => s.shutdown(),
        }
    }

    fn label(event_loop: bool) -> &'static str {
        if event_loop {
            "event-loop (4 reactors)"
        } else {
            "thread-per-connection"
        }
    }
}

/// One worker: `conns` connections, pipelined send-all-then-recv-all
/// rounds, per-request latency in nanoseconds.
fn worker(
    addr: SocketAddr,
    conns: usize,
    barrier: Arc<Barrier>,
) -> std::thread::JoinHandle<Vec<u64>> {
    std::thread::spawn(move || {
        let mut transports: Vec<TcpTransport> = (0..conns)
            .map(|_| TcpTransport::connect(addr).expect("connect"))
            .collect();
        let mut latencies = Vec::with_capacity(conns * MEASURED_ROUNDS);
        let mut sent_at = vec![Instant::now(); conns];
        barrier.wait();
        for round in 0..WARMUP_ROUNDS + MEASURED_ROUNDS {
            for (i, t) in transports.iter_mut().enumerate() {
                let req = (round * conns + i) as u64;
                sent_at[i] = Instant::now();
                t.send(&req.to_wire()).expect("send");
            }
            for (i, t) in transports.iter_mut().enumerate() {
                let frame = t.recv().expect("recv");
                let elapsed = sent_at[i].elapsed();
                let (status, payload) = frame.split_first().expect("envelope");
                assert_eq!(*status, 0x00, "ok envelope");
                let resp = u64::from_wire(payload).expect("decode");
                let req = (round * conns + i) as u64;
                assert_eq!(resp, handler(req).unwrap());
                if round >= WARMUP_ROUNDS {
                    latencies.push(elapsed.as_nanos() as u64);
                }
            }
        }
        latencies
    })
}

struct Row {
    server: &'static str,
    clients: usize,
    requests: usize,
    p50: Duration,
    p99: Duration,
    throughput: f64,
}

fn percentile(sorted: &[u64], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    Duration::from_nanos(sorted[idx])
}

fn run(event_loop: bool, clients: usize) -> Row {
    let mut server = Server::spawn(event_loop).expect("spawn server");
    let addr = server.addr();
    let barrier = Arc::new(Barrier::new(WORKERS));
    let started = Instant::now();
    // Distribute the remainder so exactly `clients` connections open.
    let handles: Vec<_> = (0..WORKERS)
        .map(|w| {
            let per_worker = clients / WORKERS + usize::from(w < clients % WORKERS);
            worker(addr, per_worker, Arc::clone(&barrier))
        })
        .collect();
    let mut latencies: Vec<u64> = Vec::new();
    for h in handles {
        latencies.extend(h.join().expect("worker"));
    }
    let wall = started.elapsed();
    server.shutdown();
    latencies.sort_unstable();
    Row {
        server: Server::label(event_loop),
        clients,
        requests: latencies.len(),
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
        throughput: latencies.len() as f64 / wall.as_secs_f64(),
    }
}

fn main() {
    // `cargo bench` passes harness flags like `--bench`; nothing to parse.
    let fd_budget = max_open_files().map(|limit| limit.saturating_sub(200) / 2);
    let mut rows = Vec::new();
    println!(
        "{:<24} {:>8} {:>10} {:>12} {:>12} {:>12}",
        "server", "clients", "requests", "p50", "p99", "req/s"
    );
    for &requested in CLIENT_COUNTS {
        let clients = match fd_budget {
            Some(budget) if budget < requested => {
                eprintln!("fd limit: scaling {requested} clients down to {budget}");
                budget
            }
            _ => requested,
        };
        if clients < WORKERS {
            eprintln!("fd limit too tight for {requested} clients; skipping");
            continue;
        }
        for event_loop in [false, true] {
            let row = run(event_loop, clients);
            println!(
                "{:<24} {:>8} {:>10} {:>10.2?} {:>10.2?} {:>12.0}",
                row.server, row.clients, row.requests, row.p50, row.p99, row.throughput
            );
            rows.push(row);
        }
    }
    let entries: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\"server\": \"{}\", \"clients\": {}, \"requests\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"req_per_s\": {:.0}}}",
                r.server,
                r.clients,
                r.requests,
                r.p50.as_secs_f64() * 1e6,
                r.p99.as_secs_f64() * 1e6,
                r.throughput
            )
        })
        .collect();
    let json = format!("[\n{}\n]\n", entries.join(",\n"));
    // `cargo bench` runs with the package as CWD; anchor to the workspace
    // root so the results land next to table3.json either way.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench_results");
    std::fs::create_dir_all(&dir).expect("mkdir bench_results");
    let path = dir.join("wire_concurrency.json");
    std::fs::write(&path, json).expect("write results");
    println!("\nwrote {}", path.display());
}
