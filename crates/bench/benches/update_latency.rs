//! Ablation E: signed-update latency — verify developer signature, append
//! the digest to the log, record the notice, instantiate the sandbox —
//! as a function of module size and log history length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use distrust_core::abi::NoImports;
use distrust_core::framework::{EnclaveFramework, FrameworkConfig};
use distrust_core::manifest::SignedRelease;
use distrust_crypto::schnorr::SigningKey;
use distrust_log::StorageConfig;
use distrust_sandbox::{FuncBuilder, Instr, Limits, Module, ModuleBuilder};

/// Builds a module padded with `extra_funcs` dummy functions to vary the
/// code size realistically (more code = more bytes to hash + validate).
fn padded_module(version: u64, extra_funcs: usize) -> Module {
    let mut mb = ModuleBuilder::new(1, 1);
    let mut handle = FuncBuilder::new(3, 0, 1);
    handle
        .constant(distrust_core::abi::OUTBOX_ADDR)
        .constant(version)
        .store8(0)
        .constant(1)
        .ret();
    let idx = mb.function(handle.build().unwrap());
    mb.export(distrust_core::abi::HANDLE_EXPORT, idx);
    for i in 0..extra_funcs {
        let mut f = FuncBuilder::new(1, 1, 1);
        for _ in 0..32 {
            f.lget(0).constant(i as u64).add().lset(0);
        }
        f.lget(0).op(Instr::Dup).ret();
        mb.function(f.build().unwrap());
    }
    mb.build()
}

fn fresh_framework(dev: &SigningKey) -> EnclaveFramework {
    EnclaveFramework::open(
        FrameworkConfig {
            domain_index: 0,
            app_name: "bench-app".into(),
            developer_key: dev.verifying_key(),
            log_id: [9; 32],
            limits: Limits::default(),
            log_shards: 1,
            storage: StorageConfig::Ephemeral,
        },
        None,
        SigningKey::derive(b"update bench", b"checkpoint"),
        Box::new(NoImports),
    )
    .expect("ephemeral framework opens")
}

fn bench_updates(c: &mut Criterion) {
    let dev = SigningKey::derive(b"update bench", b"developer");

    // Update latency vs. module size.
    let mut group = c.benchmark_group("update_by_size");
    group.sample_size(10);
    for &extra in &[0usize, 32, 256] {
        let module = padded_module(1, extra);
        let size = distrust_wire::Encode::to_wire(&module).len();
        group.bench_with_input(BenchmarkId::new("bytes", size), &module, |b, module| {
            b.iter_batched(
                || {
                    let mut fw = fresh_framework(&dev);
                    let r1 = SignedRelease::create("bench-app", 1, "", &padded_module(1, 0), &dev);
                    fw.apply_update(&r1).expect("v1");
                    let r2 = SignedRelease::create("bench-app", 2, "", module, &dev);
                    (fw, r2)
                },
                |(mut fw, r2)| std::hint::black_box(fw.apply_update(&r2).expect("v2")),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();

    // Update latency vs. history length (log append cost growth).
    let mut group = c.benchmark_group("update_by_history");
    group.sample_size(10);
    for &history in &[1u64, 64, 512] {
        group.bench_with_input(
            BenchmarkId::new("prior_updates", history),
            &history,
            |b, &history| {
                b.iter_batched(
                    || {
                        let mut fw = fresh_framework(&dev);
                        for v in 1..=history {
                            let r = SignedRelease::create(
                                "bench-app",
                                v,
                                "",
                                &padded_module(v, 0),
                                &dev,
                            );
                            fw.apply_update(&r).expect("prior");
                        }
                        let next = SignedRelease::create(
                            "bench-app",
                            history + 1,
                            "",
                            &padded_module(history + 1, 0),
                            &dev,
                        );
                        (fw, next)
                    },
                    |(mut fw, next)| std::hint::black_box(fw.apply_update(&next).expect("next")),
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();

    // Signed-release verification alone (client-side cost).
    let mut group = c.benchmark_group("release_verify");
    group.sample_size(10);
    let release = SignedRelease::create("bench-app", 1, "", &padded_module(1, 32), &dev);
    let dev_pub = dev.verifying_key();
    group.bench_function("verify", |b| {
        b.iter(|| std::hint::black_box(release.verify(&dev_pub).expect("valid")))
    });
    group.finish();
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);
