//! Ablation B: the two append-only log designs — the paper's §4.1 hash
//! chain (O(1) append, O(n) audit) against the §4.2 CT-style Merkle log
//! (O(log n) proofs) — across log sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use distrust_log::{HashChain, MerkleLog};

fn build_chain(n: usize) -> HashChain {
    let mut chain = HashChain::new();
    for i in 0..n {
        chain.append(format!("digest-{i}").as_bytes());
    }
    chain
}

fn build_merkle(n: usize) -> MerkleLog {
    let mut log = MerkleLog::new();
    for i in 0..n {
        log.append(format!("digest-{i}").as_bytes());
    }
    log
}

fn bench_logs(c: &mut Criterion) {
    let sizes = [16usize, 256, 4096];

    let mut group = c.benchmark_group("log_append");
    group.sample_size(20);
    for &n in &sizes {
        group.bench_with_input(BenchmarkId::new("hashchain", n), &n, |b, &n| {
            let base = build_chain(n);
            b.iter(|| {
                let mut chain = base.clone();
                std::hint::black_box(chain.append(b"new digest"))
            })
        });
        group.bench_with_input(BenchmarkId::new("merkle", n), &n, |b, &n| {
            let base = build_merkle(n);
            b.iter(|| {
                let mut log = base.clone();
                log.append(b"new digest");
                std::hint::black_box(log.root())
            })
        });
    }
    group.finish();

    // Audit cost: hash chain full replay vs Merkle consistency proof.
    let mut group = c.benchmark_group("log_audit");
    group.sample_size(20);
    for &n in &sizes {
        group.bench_with_input(BenchmarkId::new("hashchain_replay", n), &n, |b, &n| {
            let chain = build_chain(n);
            let head = chain.head();
            b.iter(|| std::hint::black_box(HashChain::verify_replay(chain.leaves(), &head)))
        });
        group.bench_with_input(
            BenchmarkId::new("merkle_consistency_verify", n),
            &n,
            |b, &n| {
                let log = build_merkle(n);
                let old = n / 2;
                let proof = log.prove_consistency(old, n).expect("proof");
                let old_root = log.root_of_prefix(old);
                let new_root = log.root();
                b.iter(|| std::hint::black_box(proof.verify(&old_root, &new_root)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("merkle_inclusion_verify", n),
            &n,
            |b, &n| {
                let log = build_merkle(n);
                let proof = log.prove_inclusion(n / 2, n).expect("proof");
                let root = log.root();
                let leaf = format!("digest-{}", n / 2);
                b.iter(|| std::hint::black_box(proof.verify(leaf.as_bytes(), &root)))
            },
        );
    }
    group.finish();

    // Proof generation.
    let mut group = c.benchmark_group("log_prove");
    group.sample_size(20);
    for &n in &sizes {
        group.bench_with_input(BenchmarkId::new("merkle_consistency", n), &n, |b, &n| {
            let log = build_merkle(n);
            b.iter(|| std::hint::black_box(log.prove_consistency(n / 2, n)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_logs);
criterion_main!(benches);
