//! Regenerates **Table 3** of the paper: processing time for producing a
//! BLS threshold signature share under the three execution environments.
//!
//! ```sh
//! cargo run --release -p distrust-bench --bin table3
//! ```
//!
//! Absolute numbers differ from the paper (their baseline is libBLS C++ on
//! a c5.4xlarge; ours is a from-scratch Rust BLS12-381 on whatever this
//! machine is). What must reproduce is the *shape*: Baseline < Sandbox <
//! TEE+Sandbox, with sandbox interpretation contributing the bulk of the
//! overhead and the extra sockets a smaller additional cost. Results are
//! also written to `bench_results/table3.json`.

use distrust_bench::{Environment, SigningBench, Summary};
use std::time::Instant;

const WARMUP: usize = 20;
const ITERATIONS: usize = 200;

struct Row {
    label: &'static str,
    summary: Summary,
    paper_ms: f64,
    paper_increase: Option<f64>,
}

fn measure(env: Environment) -> Summary {
    let mut bench = SigningBench::start(env).expect("start environment");
    // Distinct message per iteration so hash-to-curve work is not reused.
    let mut samples = Vec::with_capacity(ITERATIONS);
    for i in 0..WARMUP + ITERATIONS {
        let message = format!("table3 message {i:06}");
        let start = Instant::now();
        let sig = bench.sign(message.as_bytes());
        let elapsed = start.elapsed();
        if i == 0 {
            assert!(
                bench.verify_output(message.as_bytes(), &sig),
                "environment produced a wrong signature"
            );
        }
        if i >= WARMUP {
            samples.push(elapsed);
        }
    }
    Summary::from_samples(samples)
}

fn main() {
    println!("Regenerating Table 3 ({ITERATIONS} iterations per environment)…\n");

    let baseline = measure(Environment::Baseline);
    let sandbox = measure(Environment::Sandbox);
    let tee = measure(Environment::TeeSandbox);
    let tomorrow = measure(Environment::TeeTomorrow);

    let rows = [
        Row {
            label: "Baseline",
            summary: baseline.clone(),
            paper_ms: 10.2,
            paper_increase: None,
        },
        Row {
            label: "Sandbox",
            summary: sandbox,
            paper_ms: 14.9,
            paper_increase: Some(46.1),
        },
        Row {
            label: "TEE + Sandbox",
            summary: tee,
            paper_ms: 15.8,
            paper_increase: Some(54.9),
        },
        Row {
            label: "TEE (tomorrow)",
            summary: tomorrow,
            paper_ms: f64::NAN, // §4.2 projection — no paper number
            paper_increase: None,
        },
    ];

    println!("Table 3: Processing time for producing a BLS threshold signature share");
    println!("{:-<88}", "");
    println!(
        "{:<16} {:>14} {:>10} {:>10} | {:>12} {:>14}",
        "Environment", "Measured", "Increase", "p95", "Paper", "Paper increase"
    );
    println!("{:-<88}", "");
    for row in &rows {
        let increase = if row.label == "Baseline" {
            "—".to_string()
        } else {
            format!("+{:.1}%", row.summary.increase_over(&baseline))
        };
        let paper_increase = match row.paper_increase {
            None => "—".to_string(),
            Some(p) => format!("+{p:.1}%"),
        };
        let paper_col = if row.paper_ms.is_nan() {
            "—".to_string()
        } else {
            format!("{:.1} ms", row.paper_ms)
        };
        println!(
            "{:<16} {:>11.3} ms {:>10} {:>7.3} ms | {:>12} {:>14}",
            row.label,
            row.summary.mean_ms(),
            increase,
            row.summary.p95.as_secs_f64() * 1e3,
            paper_col,
            paper_increase,
        );
    }
    println!("{:-<88}", "");

    // Shape assertions — the reproduction criterion from DESIGN.md.
    let sandbox_inc = rows[1].summary.increase_over(&baseline);
    let tee_inc = rows[2].summary.increase_over(&baseline);
    let tomorrow_inc = rows[3].summary.increase_over(&baseline);
    println!("\nshape check:");
    println!(
        "  sandbox adds overhead over baseline:        {} (+{:.1}%)",
        sandbox_inc > 0.0,
        sandbox_inc
    );
    println!(
        "  TEE+sandbox adds overhead over sandbox:     {} (+{:.1}% vs baseline)",
        tee_inc > sandbox_inc,
        tee_inc
    );
    println!(
        "  §4.2 hardware (no in-TEE socket) recovers:  {:.1}% of the TEE increment",
        if tee_inc > sandbox_inc {
            (tee_inc - tomorrow_inc) / (tee_inc - sandbox_inc) * 100.0
        } else {
            0.0
        }
    );

    // Emit machine-readable results for EXPERIMENTS.md. Formatted by hand:
    // every value is a number, a string without escapes, or null, so no
    // JSON library is needed (and none is available offline).
    fn json_f64(v: f64) -> String {
        if v.is_nan() {
            "null".to_string()
        } else {
            format!("{v:.6}")
        }
    }
    let row_objects: Vec<String> = rows
        .iter()
        .map(|r| {
            let increase_pct = if r.label == "Baseline" {
                "null".to_string()
            } else {
                json_f64(r.summary.increase_over(&baseline))
            };
            let paper_increase = match r.paper_increase {
                Some(p) => json_f64(p),
                None => "null".to_string(),
            };
            format!(
                concat!(
                    "    {{\n",
                    "      \"environment\": \"{}\",\n",
                    "      \"mean_ms\": {},\n",
                    "      \"median_ms\": {},\n",
                    "      \"p95_ms\": {},\n",
                    "      \"increase_pct\": {},\n",
                    "      \"paper_ms\": {},\n",
                    "      \"paper_increase_pct\": {}\n",
                    "    }}"
                ),
                r.label,
                json_f64(r.summary.mean_ms()),
                json_f64(r.summary.median.as_secs_f64() * 1e3),
                json_f64(r.summary.p95.as_secs_f64() * 1e3),
                increase_pct,
                json_f64(r.paper_ms),
                paper_increase,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"table3\",\n  \"iterations\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
        ITERATIONS,
        row_objects.join(",\n"),
    );
    std::fs::create_dir_all("bench_results").expect("mkdir bench_results");
    std::fs::write("bench_results/table3.json", json).expect("write results");
    println!("\nresults written to bench_results/table3.json");
}
