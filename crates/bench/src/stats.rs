//! Minimal latency statistics for the report binaries (criterion handles
//! the statistics for `cargo bench`; the `table3` binary prints a
//! paper-shaped table and wants plain numbers).

use std::time::Duration;

/// Summary statistics over a set of latency samples.
#[derive(Clone, Debug)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Median (p50).
    pub median: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// Minimum.
    pub min: Duration,
    /// Maximum.
    pub max: Duration,
}

impl Summary {
    /// Computes a summary; panics on empty input.
    pub fn from_samples(mut samples: Vec<Duration>) -> Self {
        assert!(!samples.is_empty(), "no samples");
        samples.sort_unstable();
        let count = samples.len();
        let total: Duration = samples.iter().sum();
        let pct = |p: f64| -> Duration {
            let idx = ((count as f64 - 1.0) * p).round() as usize;
            samples[idx]
        };
        Self {
            count,
            mean: total / count as u32,
            median: pct(0.50),
            p95: pct(0.95),
            min: samples[0],
            max: samples[count - 1],
        }
    }

    /// Mean in milliseconds (paper units).
    pub fn mean_ms(&self) -> f64 {
        self.mean.as_secs_f64() * 1e3
    }

    /// Percentage increase of this summary's mean over a baseline mean.
    pub fn increase_over(&self, baseline: &Summary) -> f64 {
        (self.mean.as_secs_f64() / baseline.mean.as_secs_f64() - 1.0) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_samples() {
        let samples = vec![
            Duration::from_millis(10),
            Duration::from_millis(20),
            Duration::from_millis(30),
            Duration::from_millis(40),
            Duration::from_millis(100),
        ];
        let s = Summary::from_samples(samples);
        assert_eq!(s.count, 5);
        assert_eq!(s.mean, Duration::from_millis(40));
        assert_eq!(s.median, Duration::from_millis(30));
        assert_eq!(s.min, Duration::from_millis(10));
        assert_eq!(s.max, Duration::from_millis(100));
    }

    #[test]
    fn increase_computation() {
        let base = Summary::from_samples(vec![Duration::from_millis(100); 3]);
        let slower = Summary::from_samples(vec![Duration::from_millis(146); 3]);
        let inc = slower.increase_over(&base);
        assert!((inc - 46.0).abs() < 0.5, "{inc}");
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_panics() {
        let _ = Summary::from_samples(vec![]);
    }
}
