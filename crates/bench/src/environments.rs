//! The three execution environments of Table 3.
//!
//! Each environment serves the identical workload — produce one BLS
//! threshold signature share for a client-supplied message — behind the
//! identical client interface (one framed TCP request/response), varying
//! only the execution substrate, exactly as in the paper's §5 setup.

use distrust_apps::threshold_signer::{signer_module, SignerHost};
use distrust_core::abi::{app_call, import_names};
use distrust_core::server::DirectHost;
use distrust_crypto::bls::Signature;
use distrust_crypto::threshold::{self, KeyShare};
use distrust_sandbox::{Instance, Limits};
use distrust_tee::host::{EnclaveClient, EnclaveHost};

/// Which Table 3 row an environment implements.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Environment {
    /// Native execution: no TEE, no sandbox.
    Baseline,
    /// Sandboxed execution (bytecode VM), no TEE.
    Sandbox,
    /// Sandboxed execution behind the simulated-TEE socket topology.
    TeeSandbox,
    /// §4.2 "deployment tomorrow": hardware that isolates the framework
    /// from the application directly, eliminating the in-TEE socket — the
    /// sandboxed app runs in-process behind the single proxy hop.
    TeeTomorrow,
}

impl Environment {
    /// Paper-facing row label.
    pub fn label(&self) -> &'static str {
        match self {
            Environment::Baseline => "Baseline",
            Environment::Sandbox => "Sandbox",
            Environment::TeeSandbox => "TEE + Sandbox",
            Environment::TeeTomorrow => "TEE (tomorrow)",
        }
    }
}

/// Keeps the server stack alive (RAII: hosts shut down on drop); the
/// fields are never read, only held.
#[allow(dead_code)]
enum Server {
    Direct(DirectHost),
    /// Outer proxy + inner sandbox-process host.
    Tee(EnclaveHost, DirectHost),
    /// §4.2 topology: enclave proxy with the sandbox in-process.
    TeeDirect(EnclaveHost),
}

/// A running signing service in one of the three environments, plus a
/// connected client.
pub struct SigningBench {
    environment: Environment,
    client: EnclaveClient,
    _server: Server,
    share: KeyShare,
}

fn native_service(share: KeyShare) -> impl FnMut(Vec<u8>) -> Vec<u8> + Send + 'static {
    move |message: Vec<u8>| {
        threshold::partial_sign(&share, &message)
            .value
            .to_bytes()
            .to_vec()
    }
}

fn sandbox_service(share: KeyShare) -> impl FnMut(Vec<u8>) -> Vec<u8> + Send + 'static {
    let module = signer_module();
    let names = import_names(&module);
    let mut instance = Instance::new(module, Limits::default()).expect("valid module");
    let mut host = SignerHost::new(share);
    move |message: Vec<u8>| {
        app_call(
            &mut instance,
            &names,
            &mut host,
            distrust_apps::threshold_signer::METHOD_SIGN,
            &message,
        )
        .expect("signing succeeds")
    }
}

impl SigningBench {
    /// Spins up the requested environment with a deterministic share.
    pub fn start(environment: Environment) -> std::io::Result<Self> {
        let mut rng = distrust_crypto::drbg::HmacDrbg::new(b"table3 bench", b"dealer");
        let keys = threshold::generate(3, 5, &mut rng).expect("keygen");
        let share = keys.shares[0];

        let (server, addr) = match environment {
            Environment::Baseline => {
                let host = DirectHost::spawn(native_service(share))?;
                let addr = host.addr();
                (Server::Direct(host), addr)
            }
            Environment::Sandbox => {
                let host = DirectHost::spawn(sandbox_service(share))?;
                let addr = host.addr();
                (Server::Direct(host), addr)
            }
            Environment::TeeSandbox => {
                // The sandboxed application runs as its own "process"
                // behind a socket (the framework ↔ app socket of §5)…
                let inner = DirectHost::spawn(sandbox_service(share))?;
                let inner_addr = inner.addr();
                // …and the enclave interior forwards to it, itself sitting
                // behind the host's vsock-like proxy (the second extra
                // socket).
                let mut upstream = EnclaveClient::connect(inner_addr)?;
                let outer = EnclaveHost::spawn(move |message: Vec<u8>| {
                    upstream
                        .exchange(&message)
                        .expect("sandbox process reachable")
                })?;
                let addr = outer.addr();
                (Server::Tee(outer, inner), addr)
            }
            Environment::TeeTomorrow => {
                // §4.2: "the hardware could instead isolate the framework
                // from the application binary directly" — no in-TEE
                // socket; the sandbox runs in the enclave interior.
                let host = EnclaveHost::spawn(sandbox_service(share))?;
                let addr = host.addr();
                (Server::TeeDirect(host), addr)
            }
        };
        let client = EnclaveClient::connect(addr)?;
        Ok(Self {
            environment,
            client,
            _server: server,
            share,
        })
    }

    /// The environment this bench runs.
    pub fn environment(&self) -> Environment {
        self.environment
    }

    /// One end-to-end signing request; returns the partial signature.
    pub fn sign(&mut self, message: &[u8]) -> Signature {
        let bytes = self.client.exchange(message).expect("exchange");
        let arr: [u8; 48] = bytes.as_slice().try_into().expect("48-byte signature");
        Signature::from_bytes(&arr).expect("valid signature point")
    }

    /// Checks an output against native signing (all three environments
    /// must produce bit-identical signatures).
    pub fn verify_output(&self, message: &[u8], signature: &Signature) -> bool {
        threshold::partial_sign(&self.share, message).value == *signature
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_environments_produce_identical_signatures() {
        let msg = b"cross-environment agreement";
        let mut sigs = Vec::new();
        for env in [
            Environment::Baseline,
            Environment::Sandbox,
            Environment::TeeSandbox,
            Environment::TeeTomorrow,
        ] {
            let mut bench = SigningBench::start(env).expect("start");
            let sig = bench.sign(msg);
            assert!(bench.verify_output(msg, &sig), "{env:?}");
            sigs.push(sig);
        }
        assert_eq!(sigs[0], sigs[1]);
        assert_eq!(sigs[1], sigs[2]);
        assert_eq!(sigs[2], sigs[3]);
    }

    #[test]
    fn repeated_requests_are_stable() {
        let mut bench = SigningBench::start(Environment::TeeSandbox).expect("start");
        let a = bench.sign(b"m1");
        let b = bench.sign(b"m2");
        let a2 = bench.sign(b"m1");
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }
}
