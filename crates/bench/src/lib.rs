//! # distrust-bench
//!
//! Shared harness for regenerating the paper's evaluation (Table 3) and
//! the ablation benchmarks listed in DESIGN.md §4.
//!
//! The heart of this crate is [`environments`]: the three execution
//! environments of Table 3, built so that the *only* difference between
//! rows is the mechanism the paper identifies —
//!
//! | row | topology |
//! |-----|----------|
//! | Baseline | client —socket→ native signer |
//! | Sandbox | client —socket→ sandboxed signer (in-process VM) |
//! | TEE + Sandbox | client —socket→ proxy —socket→ framework —socket→ sandboxed signer (two *additional* sockets, §5) |

pub mod environments;
pub mod stats;

pub use environments::{Environment, SigningBench};
pub use stats::Summary;
