//! Client/third-party auditing across trust domains.
//!
//! §3.3: "the client can check that the digests match across all n trust
//! domains, ensuring that if at least one trust domain is honest … the
//! client will receive a digest of the correct code."
//!
//! The auditor tracks the latest verified checkpoint per domain, verifies
//! that each new checkpoint extends the previous one (consistency), verifies
//! signatures, and cross-checks digest histories across domains. Outcomes
//! are explicit: [`AuditOutcome::Consistent`], or a [`Misbehavior`] value
//! carrying the strongest available evidence.
//!
//! Checkpoints can be ingested one at a time ([`Auditor::observe`], the
//! per-step path) or as a whole [`CheckpointBundle`]
//! ([`Auditor::observe_bundle`], the batched path): identical detection
//! semantics, but the batched path costs one round-trip and — thanks to
//! the per-domain [`VerifiedPrefixCache`] — never re-verifies signatures
//! or proofs at or below the already-verified prefix.

use crate::batch::{CheckpointBundle, VerifiedPrefixCache};
use crate::checkpoint::{EquivocationProof, SignedCheckpoint};
use crate::merkle::ConsistencyProof;
use crate::shard::ShardBundle;
use distrust_crypto::schnorr::VerifyingKey;
use distrust_crypto::sha256::Digest;
use std::collections::HashMap;

/// Most shards a [`ShardBundle`] may announce before the auditor rejects
/// it as malformed. The sharded-log design targets tens of shards (one
/// per append-heavy partition); 1024 leaves generous headroom while
/// keeping every `shard_count`-sized allocation in the audit path bounded
/// by a constant instead of by a wire-announced value.
pub const MAX_BUNDLE_SHARDS: usize = 1024;

/// Evidence of misbehavior discovered during an audit.
#[derive(Clone, Debug)]
pub enum Misbehavior {
    /// A domain signed two conflicting views of the same log prefix —
    /// transferable cryptographic proof against that domain.
    Equivocation {
        /// Index of the offending domain.
        domain: u32,
        /// The proof object third parties can verify.
        proof: EquivocationProof,
    },
    /// A checkpoint carried an invalid signature.
    BadSignature {
        /// Index of the offending domain.
        domain: u32,
        /// The rejected checkpoint.
        checkpoint: SignedCheckpoint,
    },
    /// A new checkpoint failed the consistency proof against the trusted
    /// prior checkpoint (history rewrite or truncation).
    InconsistentGrowth {
        /// Index of the offending domain.
        domain: u32,
        /// The previously trusted checkpoint.
        trusted: SignedCheckpoint,
        /// The checkpoint that failed to extend it.
        offered: SignedCheckpoint,
    },
    /// A checkpoint went backwards (smaller size than already verified).
    Rollback {
        /// Index of the offending domain.
        domain: u32,
        /// Previously verified size.
        trusted_size: u64,
        /// Offered (smaller) size.
        offered_size: u64,
    },
    /// Domains disagree about the digest history. Not attributable to a
    /// single domain without more evidence, but proves at least one of the
    /// quoted domains is lying (the paper's detection guarantee).
    CrossDomainDivergence {
        /// The conflicting signed checkpoints, by domain index.
        views: Vec<(u32, SignedCheckpoint)>,
    },
    /// A batched-audit bundle was structurally invalid (empty, descending
    /// sizes, step/checkpoint mismatch). Not transferable evidence by
    /// itself, but a served bundle a correct domain would never produce.
    MalformedBundle {
        /// Index of the offending domain.
        domain: u32,
        /// What was wrong with the bundle.
        reason: String,
    },
}

/// Result of feeding an audit round.
#[derive(Clone, Debug)]
pub enum AuditOutcome {
    /// Everything verified and all domains agree.
    Consistent,
    /// Evidence of misbehavior (strongest form available).
    Misbehavior(Box<Misbehavior>),
}

impl AuditOutcome {
    /// True when the audit found no problems.
    pub fn is_consistent(&self) -> bool {
        matches!(self, AuditOutcome::Consistent)
    }
}

/// Per-domain audit state: the log public key and the latest verified
/// checkpoint with all checkpoints ever accepted (for equivocation hunting).
struct DomainState {
    key: VerifyingKey,
    latest: Option<SignedCheckpoint>,
    /// All correctly signed checkpoints seen, by size — equivocation is
    /// detected by finding two different heads at one size.
    seen: HashMap<u64, SignedCheckpoint>,
    /// Highest fully verified prefix plus performed/skipped verification
    /// counters — what makes batched audits cheap on repeat.
    cache: VerifiedPrefixCache,
}

impl DomainState {
    /// Checkpoint-level prechecks shared by both batched ingest paths
    /// ([`Auditor::observe_bundle`] and [`Auditor::observe_shard_bundle`]
    /// — the sharded path layers per-shard verification on top, but the
    /// evidence hunts over the *signed checkpoints* are one piece of
    /// logic, maintained once). In order: signature verification skipping
    /// checkpoints byte-identical to already-verified ones; equivocation
    /// inside the batch (two correctly signed heads for one size are
    /// transferable proof); equivocation against everything previously
    /// seen; structural ascending sizes; and rollback below the verified
    /// prefix. Returns the first misbehavior found, `None` when clean.
    fn precheck_checkpoint_batch(
        &mut self,
        domain: u32,
        cps: &[&SignedCheckpoint],
    ) -> Option<Misbehavior> {
        // 1. Signatures, skipping checkpoints byte-identical to ones this
        //    auditor already verified (the common steady-state case).
        for cp in cps {
            let known = self
                .seen
                .get(&cp.body.size)
                .is_some_and(|prior| prior == *cp);
            if known {
                self.cache.note_skipped();
                continue;
            }
            if !cp.verify(&self.key) {
                return Some(Misbehavior::BadSignature {
                    domain,
                    checkpoint: (*cp).clone(),
                });
            }
            self.cache.note_signature();
        }
        // 2. Equivocation inside the batch.
        for (i, a) in cps.iter().enumerate() {
            // lint:allow(taint-alloc): `i` enumerates `cps` itself, so the slice start is bounded by the batch length by construction
            for b in &cps[i + 1..] {
                if a.body.size == b.body.size
                    && a.body.log_id == b.body.log_id
                    && a.body.head != b.body.head
                {
                    return Some(Misbehavior::Equivocation {
                        domain,
                        proof: EquivocationProof {
                            a: (*a).clone(),
                            b: (*b).clone(),
                        },
                    });
                }
            }
        }
        // 3. Equivocation against history.
        for cp in cps {
            if let Some(prior) = self.seen.get(&cp.body.size) {
                if prior.body.head != cp.body.head && prior.body.log_id == cp.body.log_id {
                    return Some(Misbehavior::Equivocation {
                        domain,
                        proof: EquivocationProof {
                            a: prior.clone(),
                            b: (*cp).clone(),
                        },
                    });
                }
            }
        }
        // 4. Structure: ascending sizes. Same-size entries reaching this
        //    point agree on the head (conflicts were flagged above) and
        //    are treated as duplicates by the chain walks.
        for w in cps.windows(2) {
            if w[1].body.size < w[0].body.size {
                return Some(Misbehavior::MalformedBundle {
                    domain,
                    reason: "checkpoint sizes descending".into(),
                });
            }
        }
        // 5. Rollback: no checkpoint may be older than the verified
        //    prefix — exactly what the per-step path flags when a served
        //    checkpoint goes backwards (a stale cached bundle, or a stale
        //    entry smuggled into an otherwise-fresh bundle).
        if let Some(trusted) = &self.latest {
            for cp in cps {
                if cp.body.size < trusted.body.size {
                    return Some(Misbehavior::Rollback {
                        domain,
                        trusted_size: trusted.body.size,
                        offered_size: cp.body.size,
                    });
                }
            }
        }
        None
    }
}

/// A stateful cross-domain log auditor.
pub struct Auditor {
    domains: Vec<DomainState>,
}

impl Auditor {
    /// Creates an auditor for `keys[i]` = domain `i`'s log key.
    pub fn new(keys: Vec<VerifyingKey>) -> Self {
        Self {
            domains: keys
                .into_iter()
                .map(|key| DomainState {
                    key,
                    latest: None,
                    seen: HashMap::new(),
                    cache: VerifiedPrefixCache::new(),
                })
                .collect(),
        }
    }

    /// Number of domains tracked.
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }

    /// The latest verified checkpoint for a domain.
    pub fn latest(&self, domain: u32) -> Option<&SignedCheckpoint> {
        self.domains.get(domain as usize)?.latest.as_ref()
    }

    /// Ingests one signed checkpoint from `domain`, with a consistency
    /// proof against the previously verified checkpoint when one exists
    /// (`proof` may be `None` for a first observation).
    pub fn observe(
        &mut self,
        domain: u32,
        checkpoint: SignedCheckpoint,
        proof: Option<&ConsistencyProof>,
    ) -> AuditOutcome {
        let Some(state) = self.domains.get_mut(domain as usize) else {
            return AuditOutcome::Misbehavior(Box::new(Misbehavior::BadSignature {
                domain,
                checkpoint,
            }));
        };
        // Verified-prefix fast path: a checkpoint byte-identical to the
        // latest verified one has nothing left to prove — no signature
        // re-verification, no proof.
        if state.latest.as_ref() == Some(&checkpoint) {
            state.cache.note_skipped();
            return AuditOutcome::Consistent;
        }
        if !checkpoint.verify(&state.key) {
            return AuditOutcome::Misbehavior(Box::new(Misbehavior::BadSignature {
                domain,
                checkpoint,
            }));
        }
        state.cache.note_signature();
        // Equivocation hunt: same size, different head, both signed.
        if let Some(prior) = state.seen.get(&checkpoint.body.size) {
            if prior.body.head != checkpoint.body.head
                && prior.body.log_id == checkpoint.body.log_id
            {
                let proof = EquivocationProof {
                    a: prior.clone(),
                    b: checkpoint.clone(),
                };
                return AuditOutcome::Misbehavior(Box::new(Misbehavior::Equivocation {
                    domain,
                    proof,
                }));
            }
        }
        if let Some(trusted) = &state.latest {
            if checkpoint.body.size < trusted.body.size {
                return AuditOutcome::Misbehavior(Box::new(Misbehavior::Rollback {
                    domain,
                    trusted_size: trusted.body.size,
                    offered_size: checkpoint.body.size,
                }));
            }
            if checkpoint.body.size == trusted.body.size {
                // Same size: heads must match (the equivocation check above
                // already caught the conflicting case for stored sizes).
                if checkpoint.body.head != trusted.body.head {
                    let proof = EquivocationProof {
                        a: trusted.clone(),
                        b: checkpoint.clone(),
                    };
                    return AuditOutcome::Misbehavior(Box::new(Misbehavior::Equivocation {
                        domain,
                        proof,
                    }));
                }
            } else {
                // Growth requires a valid consistency proof — except from
                // size 0: the empty tree is a prefix of every tree, so
                // growth from it is vacuously consistent (RFC 6962 defines
                // no proof for old_size = 0).
                let ok = trusted.body.size == 0
                    || match proof {
                        Some(p) => {
                            state.cache.note_consistency();
                            p.old_size == trusted.body.size
                                && p.new_size == checkpoint.body.size
                                && p.verify(&trusted.body.head, &checkpoint.body.head)
                        }
                        None => false,
                    };
                if !ok {
                    return AuditOutcome::Misbehavior(Box::new(Misbehavior::InconsistentGrowth {
                        domain,
                        trusted: trusted.clone(),
                        offered: checkpoint.clone(),
                    }));
                }
            }
        }
        state
            .cache
            .record(checkpoint.body.size, checkpoint.body.head);
        state.seen.insert(checkpoint.body.size, checkpoint.clone());
        state.latest = Some(checkpoint);
        AuditOutcome::Consistent
    }

    /// Ingests a whole [`CheckpointBundle`] from `domain` — the batched
    /// equivalent of calling [`Auditor::observe`] once per checkpoint with
    /// the pairwise consistency proofs, with identical accept/flag
    /// behaviour, but without re-verifying anything at or below the
    /// already-verified prefix (see [`VerifiedPrefixCache`]).
    ///
    /// Checks, in order: signatures on every checkpoint not already
    /// verified byte-for-byte; equivocation both *inside* the bundle and
    /// against all previously seen checkpoints (yielding a transferable
    /// [`Misbehavior::Equivocation`] proof, exactly as in the per-step
    /// path); structural validity (strictly ascending sizes); rollback of
    /// the freshest checkpoint below the trusted size; and one
    /// consistency-proof verification per size transition above the
    /// verified prefix.
    pub fn observe_bundle(&mut self, domain: u32, bundle: &CheckpointBundle) -> AuditOutcome {
        let misb = |m: Misbehavior| AuditOutcome::Misbehavior(Box::new(m));
        let Some(state) = self.domains.get_mut(domain as usize) else {
            return misb(Misbehavior::MalformedBundle {
                domain,
                reason: "unknown domain index".into(),
            });
        };
        let cps = &bundle.checkpoints;
        if cps.is_empty() {
            return misb(Misbehavior::MalformedBundle {
                domain,
                reason: "bundle carries no checkpoints".into(),
            });
        }
        // 1–5. The shared checkpoint-level prechecks: signatures (with
        //      the byte-identical skip), equivocation inside the bundle
        //      and against history, ascending sizes, and rollback below
        //      the verified prefix.
        let refs: Vec<&SignedCheckpoint> = cps.iter().collect();
        if let Some(m) = state.precheck_checkpoint_batch(domain, &refs) {
            return misb(m);
        }
        let last = cps.last().expect("non-empty");
        // 6. Chain verification above the verified prefix: one consistency
        //    step per size transition, in order.
        let mut cur: Option<SignedCheckpoint> = state.latest.clone();
        let mut next_step = 0usize;
        for cp in cps {
            let Some(prev) = &cur else {
                // First observation ever: nothing to link from.
                cur = Some(cp.clone());
                continue;
            };
            if cp.body.size == prev.body.size {
                // Exactly the verified prefix (the rollback sweep above
                // excluded anything older): the head was already
                // cross-checked through the equivocation hunt; never
                // re-verify.
                state.cache.note_skipped();
                continue;
            }
            if prev.body.size > 0 {
                let expanded = bundle.proof.step(next_step);
                next_step += 1;
                let ok = match expanded {
                    Some(p) => {
                        state.cache.note_consistency();
                        p.old_size == prev.body.size
                            && p.new_size == cp.body.size
                            && p.verify(&prev.body.head, &cp.body.head)
                    }
                    None => false,
                };
                if !ok {
                    return misb(Misbehavior::InconsistentGrowth {
                        domain,
                        trusted: prev.clone(),
                        offered: cp.clone(),
                    });
                }
            }
            cur = Some(cp.clone());
        }
        // 7. Commit.
        for cp in cps {
            state.seen.insert(cp.body.size, cp.clone());
        }
        state.cache.record(last.body.size, last.body.head);
        state.latest = Some(last.clone());
        AuditOutcome::Consistent
    }

    /// Ingests a sharded-log audit bundle from `domain` — the shard-aware
    /// analogue of [`Auditor::observe_bundle`], with the same checkpoint
    /// detection semantics (signatures skipped at or below the verified
    /// prefix, equivocation hunts inside the bundle and against history,
    /// rollback) plus the sharded-commitment checks:
    ///
    /// * every epoch's snapshot must reproduce its signed `(size, head)` —
    ///   `size = Σ shard sizes`, `head =` the shard-heads commitment;
    /// * each shard must evolve append-only across epochs, proven by that
    ///   shard's consistency run (one verification per grown transition
    ///   above the per-shard verified prefix; a shard going backwards is
    ///   flagged as [`Misbehavior::Rollback`] with that shard's sizes);
    /// * the verified prefix is tracked **per shard**
    ///   ([`VerifiedPrefixCache::shard_prefixes`]), so steady-state audits
    ///   of a sharded log verify nothing at all, and a grown log costs one
    ///   consistency check per shard that actually grew.
    pub fn observe_shard_bundle(&mut self, domain: u32, bundle: &ShardBundle) -> AuditOutcome {
        let misb = |m: Misbehavior| AuditOutcome::Misbehavior(Box::new(m));
        let malformed = |domain: u32, reason: &str| {
            AuditOutcome::Misbehavior(Box::new(Misbehavior::MalformedBundle {
                domain,
                reason: reason.into(),
            }))
        };
        let Some(state) = self.domains.get_mut(domain as usize) else {
            return malformed(domain, "unknown domain index");
        };
        let epochs = &bundle.epochs;
        if epochs.is_empty() {
            return malformed(domain, "bundle carries no epochs");
        }
        let shard_count = epochs[0].shards.shard_count();
        if shard_count == 0 {
            return malformed(domain, "epoch snapshot has no shards");
        }
        if shard_count > MAX_BUNDLE_SHARDS {
            return malformed(domain, "bundle shard count exceeds the audit limit");
        }
        // No-op after the guard above; keeps every allocation and index
        // below bounded by a constant rather than by wire input.
        let shard_count = shard_count.min(MAX_BUNDLE_SHARDS);
        if epochs.iter().any(|e| e.shards.shard_count() != shard_count) {
            return malformed(domain, "shard count varies across epochs");
        }
        if bundle.proof.runs.len() != shard_count {
            return malformed(domain, "proof runs do not match shard count");
        }
        // 0. Commitment binding: the snapshot must reproduce exactly the
        //    signed (size, head). A snapshot that does not is not evidence
        //    against the key — the signature may even be valid — but a
        //    correct domain never serves it.
        for e in epochs {
            if !e.well_formed() {
                return malformed(domain, "snapshot does not produce the signed (size, head)");
            }
        }
        // 1–5. The shared checkpoint-level prechecks over the epochs'
        //      signed checkpoints (identical logic to the single-tree
        //      bundle path, maintained once).
        let refs: Vec<&SignedCheckpoint> = epochs.iter().map(|e| &e.checkpoint).collect();
        if let Some(m) = state.precheck_checkpoint_batch(domain, &refs) {
            return misb(m);
        }
        // 6. Per-shard chain verification. The baseline is the cached
        //    per-shard prefix; lacking one (first observation, or a domain
        //    previously audited only through the single-tree path) the
        //    first epoch's snapshot is adoptable as-is exactly when it IS
        //    the already-trusted top-level state — otherwise growth from
        //    unknown shard states is unverifiable.
        let mut prev: Option<Vec<(u64, Digest)>> = match state.cache.shard_prefixes() {
            Some(p) if p.len() == shard_count => Some(p.to_vec()),
            Some(_) => return malformed(domain, "shard count changed across audits"),
            None => match &state.latest {
                None => None,
                Some(trusted) => {
                    let first = &epochs[0].checkpoint;
                    if first.body.size == trusted.body.size && first.body.head == trusted.body.head
                    {
                        None // adopted below by the first-observation arm
                    } else {
                        return misb(Misbehavior::InconsistentGrowth {
                            domain,
                            trusted: trusted.clone(),
                            offered: first.clone(),
                        });
                    }
                }
            },
        };
        let mut next_step = vec![0usize; shard_count];
        for e in epochs {
            let Some(prev_states) = &prev else {
                // First observation: adopt the snapshot without proof,
                // exactly as `observe` accepts its first checkpoint.
                prev = Some(
                    e.shards
                        .sizes
                        .iter()
                        .copied()
                        .zip(e.shards.heads.iter().copied())
                        .collect(),
                );
                continue;
            };
            let mut advanced = false;
            for s in 0..shard_count {
                let (ps, ph) = prev_states[s];
                let (ns, nh) = (e.shards.sizes[s], e.shards.heads[s]);
                if ns < ps {
                    return misb(Misbehavior::Rollback {
                        domain,
                        trusted_size: ps,
                        offered_size: ns,
                    });
                }
                if ns == ps {
                    if nh != ph {
                        // Same shard size, different head: a rewritten
                        // shard hiding under a grown sibling.
                        return misb(Misbehavior::InconsistentGrowth {
                            domain,
                            trusted: state.latest.clone().unwrap_or_else(|| e.checkpoint.clone()),
                            offered: e.checkpoint.clone(),
                        });
                    }
                    continue;
                }
                advanced = true;
                if ps == 0 {
                    // Growth from the empty shard is vacuously consistent.
                    continue;
                }
                let expanded = bundle.proof.step(s, next_step[s]);
                next_step[s] += 1;
                let ok = match expanded {
                    Some(p) => {
                        state.cache.note_consistency();
                        p.old_size == ps && p.new_size == ns && p.verify(&ph, &nh)
                    }
                    None => false,
                };
                if !ok {
                    return misb(Misbehavior::InconsistentGrowth {
                        domain,
                        trusted: state.latest.clone().unwrap_or_else(|| e.checkpoint.clone()),
                        offered: e.checkpoint.clone(),
                    });
                }
            }
            if !advanced {
                // A re-served epoch (every shard unchanged): nothing to
                // verify, mirroring the per-step duplicate handling.
                state.cache.note_skipped();
            }
            prev = Some(
                e.shards
                    .sizes
                    .iter()
                    .copied()
                    .zip(e.shards.heads.iter().copied())
                    .collect(),
            );
        }
        // 7. Commit.
        for e in epochs {
            state
                .seen
                .insert(e.checkpoint.body.size, e.checkpoint.clone());
        }
        let last = epochs.last().expect("non-empty");
        state
            .cache
            .record(last.checkpoint.body.size, last.checkpoint.body.head);
        state
            .cache
            .record_shards(&last.shards.sizes, &last.shards.heads);
        state.latest = Some(last.checkpoint.clone());
        AuditOutcome::Consistent
    }

    /// The verified-prefix cache for a domain: highest verified size and
    /// the performed/skipped verification counters.
    pub fn prefix_cache(&self, domain: u32) -> Option<&VerifiedPrefixCache> {
        self.domains.get(domain as usize).map(|d| &d.cache)
    }

    /// Ingests a checkpoint relayed by *another client* (gossip).
    ///
    /// A malicious domain can mount a split-view attack: show client A one
    /// history and client B another, each internally consistent. Neither
    /// client alone can detect it — but the two signed checkpoints
    /// together are an equivocation proof. Exchanging checkpoints
    /// out-of-band (exactly how Certificate Transparency closes the same
    /// gap) and feeding them here turns the split view into transferable
    /// evidence.
    ///
    /// Unlike [`Auditor::observe`], gossip makes no freshness or growth
    /// demands: the relaying client may legitimately be behind, so only
    /// signature validity and same-size-different-head conflicts matter.
    pub fn ingest_gossip(&mut self, domain: u32, checkpoint: SignedCheckpoint) -> AuditOutcome {
        let Some(state) = self.domains.get_mut(domain as usize) else {
            return AuditOutcome::Misbehavior(Box::new(Misbehavior::BadSignature {
                domain,
                checkpoint,
            }));
        };
        if !checkpoint.verify(&state.key) {
            return AuditOutcome::Misbehavior(Box::new(Misbehavior::BadSignature {
                domain,
                checkpoint,
            }));
        }
        if let Some(prior) = state.seen.get(&checkpoint.body.size) {
            if prior.body.head != checkpoint.body.head
                && prior.body.log_id == checkpoint.body.log_id
            {
                let proof = EquivocationProof {
                    a: prior.clone(),
                    b: checkpoint,
                };
                return AuditOutcome::Misbehavior(Box::new(Misbehavior::Equivocation {
                    domain,
                    proof,
                }));
            }
        } else {
            state.seen.insert(checkpoint.body.size, checkpoint);
        }
        AuditOutcome::Consistent
    }

    /// Exports the latest verified checkpoints for gossiping to peers.
    pub fn gossip_payload(&self) -> Vec<(u32, SignedCheckpoint)> {
        self.domains
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.latest.clone().map(|cp| (i as u32, cp)))
            .collect()
    }

    /// Cross-checks the verified checkpoints across all domains. The paper
    /// requires all `n` domains to report the *same* digest history; any
    /// divergence is flagged.
    ///
    /// Comparison is grouped by checkpoint size: every checkpoint each
    /// domain has presented is bucketed by its announced log size, and all
    /// checkpoints within a size bucket must share the same head. Domains
    /// lagging behind (no checkpoint at a given size) are not flagged —
    /// being behind is consistent; disagreeing at the same size is not.
    pub fn cross_check(&self) -> AuditOutcome {
        let mut views: Vec<(u32, &SignedCheckpoint)> = Vec::new();
        for (i, d) in self.domains.iter().enumerate() {
            if let Some(cp) = &d.latest {
                views.push((i as u32, cp));
            }
        }
        if views.len() < 2 {
            return AuditOutcome::Consistent;
        }
        // Compare at the minimum common size using each domain's stored
        // checkpoint for that size when available; otherwise compare heads
        // only between same-size domains.
        let mut by_size: HashMap<u64, Vec<(u32, &SignedCheckpoint)>> = HashMap::new();
        for (i, d) in self.domains.iter().enumerate() {
            for cp in d.seen.values() {
                by_size
                    .entry(cp.body.size)
                    .or_default()
                    .push((i as u32, cp));
            }
        }
        for (_, group) in by_size {
            if group.len() < 2 {
                continue;
            }
            let head0 = group[0].1.body.head;
            if group.iter().any(|(_, cp)| cp.body.head != head0) {
                return AuditOutcome::Misbehavior(Box::new(Misbehavior::CrossDomainDivergence {
                    views: group.into_iter().map(|(i, cp)| (i, cp.clone())).collect(),
                }));
            }
        }
        AuditOutcome::Consistent
    }
}

/// Convenience: checks that all domains report exactly the same digest for
/// the current code — the simple "do all the attested measurements match"
/// check from §4.1 (deployment without updates).
pub fn digests_match(digests: &[Digest]) -> bool {
    match digests.split_first() {
        None => true,
        Some((first, rest)) => rest.iter().all(|d| d == first),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{log_id, CheckpointBody};
    use crate::merkle::MerkleLog;
    use distrust_crypto::schnorr::SigningKey;

    struct Domain {
        sk: SigningKey,
        log: MerkleLog,
        lid: [u8; 32],
        time: u64,
    }

    impl Domain {
        fn new(i: u32) -> Self {
            Self {
                sk: SigningKey::derive(b"auditor tests", &i.to_le_bytes()),
                log: MerkleLog::new(),
                lid: log_id(b"dep", i),
                time: 0,
            }
        }

        fn checkpoint(&mut self) -> SignedCheckpoint {
            self.time += 1;
            SignedCheckpoint::sign(
                CheckpointBody {
                    log_id: self.lid,
                    size: self.log.len() as u64,
                    head: self.log.root(),
                    logical_time: self.time,
                },
                &self.sk,
            )
        }
    }

    fn auditor_for(domains: &[Domain]) -> Auditor {
        Auditor::new(domains.iter().map(|d| d.sk.verifying_key()).collect())
    }

    #[test]
    fn honest_growth_is_consistent() {
        let mut d = Domain::new(0);
        let mut auditor = auditor_for(std::slice::from_ref(&d));
        d.log.append(b"v1");
        let cp1 = d.checkpoint();
        assert!(auditor.observe(0, cp1, None).is_consistent());
        d.log.append(b"v2");
        let cp2 = d.checkpoint();
        let proof = d.log.prove_consistency(1, 2).unwrap();
        assert!(auditor.observe(0, cp2, Some(&proof)).is_consistent());
    }

    #[test]
    fn growth_without_proof_flagged() {
        let mut d = Domain::new(0);
        let mut auditor = auditor_for(std::slice::from_ref(&d));
        d.log.append(b"v1");
        let cp1 = d.checkpoint();
        auditor.observe(0, cp1, None);
        d.log.append(b"v2");
        let cp2 = d.checkpoint();
        match auditor.observe(0, cp2, None) {
            AuditOutcome::Misbehavior(m) => {
                assert!(matches!(*m, Misbehavior::InconsistentGrowth { .. }))
            }
            other => panic!("expected misbehavior, got {other:?}"),
        }
    }

    #[test]
    fn history_rewrite_flagged() {
        let mut d = Domain::new(0);
        let mut auditor = auditor_for(std::slice::from_ref(&d));
        d.log.append(b"v1");
        d.log.append(b"v2");
        let cp = d.checkpoint();
        let _ = auditor.observe(0, cp, None);
        // Rebuild the log with a different history of the same length + 1.
        let mut forged = MerkleLog::new();
        forged.append(b"evil-1");
        forged.append(b"evil-2");
        forged.append(b"evil-3");
        let forged_cp = SignedCheckpoint::sign(
            CheckpointBody {
                log_id: d.lid,
                size: 3,
                head: forged.root(),
                logical_time: 99,
            },
            &d.sk,
        );
        let bogus_proof = forged.prove_consistency(2, 3).unwrap();
        match auditor.observe(0, forged_cp, Some(&bogus_proof)) {
            AuditOutcome::Misbehavior(m) => {
                assert!(matches!(*m, Misbehavior::InconsistentGrowth { .. }))
            }
            other => panic!("expected misbehavior, got {other:?}"),
        }
    }

    #[test]
    fn rollback_flagged() {
        let mut d = Domain::new(0);
        let mut auditor = auditor_for(std::slice::from_ref(&d));
        d.log.append(b"v1");
        d.log.append(b"v2");
        let cp2 = d.checkpoint();
        auditor.observe(0, cp2, None);
        // Offer a checkpoint for size 1.
        let old = SignedCheckpoint::sign(
            CheckpointBody {
                log_id: d.lid,
                size: 1,
                head: d.log.root_of_prefix(1),
                logical_time: 100,
            },
            &d.sk,
        );
        match auditor.observe(0, old, None) {
            AuditOutcome::Misbehavior(m) => {
                assert!(matches!(*m, Misbehavior::Rollback { .. }))
            }
            other => panic!("expected rollback, got {other:?}"),
        }
    }

    #[test]
    fn equivocation_yields_transferable_proof() {
        let mut d = Domain::new(0);
        let mut auditor = auditor_for(std::slice::from_ref(&d));
        d.log.append(b"v1");
        let cp_honest = d.checkpoint();
        auditor.observe(0, cp_honest, None);
        // The domain signs a different head for the same size.
        let cp_fork = SignedCheckpoint::sign(
            CheckpointBody {
                log_id: d.lid,
                size: 1,
                head: [0xee; 32],
                logical_time: 50,
            },
            &d.sk,
        );
        match auditor.observe(0, cp_fork, None) {
            AuditOutcome::Misbehavior(m) => match *m {
                Misbehavior::Equivocation { domain, proof } => {
                    assert_eq!(domain, 0);
                    assert!(proof.verify(&d.sk.verifying_key()));
                }
                other => panic!("expected equivocation, got {other:?}"),
            },
            other => panic!("expected misbehavior, got {other:?}"),
        }
    }

    #[test]
    fn bad_signature_flagged() {
        let d = Domain::new(0);
        let stranger = SigningKey::derive(b"stranger", b"");
        let mut auditor = auditor_for(std::slice::from_ref(&d));
        let cp = SignedCheckpoint::sign(
            CheckpointBody {
                log_id: d.lid,
                size: 1,
                head: [1; 32],
                logical_time: 1,
            },
            &stranger,
        );
        match auditor.observe(0, cp, None) {
            AuditOutcome::Misbehavior(m) => {
                assert!(matches!(*m, Misbehavior::BadSignature { .. }))
            }
            other => panic!("expected bad signature, got {other:?}"),
        }
    }

    #[test]
    fn cross_domain_divergence_detected() {
        let mut d0 = Domain::new(0);
        let mut d1 = Domain::new(1);
        let mut auditor = Auditor::new(vec![d0.sk.verifying_key(), d1.sk.verifying_key()]);
        d0.log.append(b"v1");
        d1.log.append(b"v1-evil");
        let cp0 = d0.checkpoint();
        let cp1 = d1.checkpoint();
        assert!(auditor.observe(0, cp0, None).is_consistent());
        assert!(auditor.observe(1, cp1, None).is_consistent());
        match auditor.cross_check() {
            AuditOutcome::Misbehavior(m) => match *m {
                Misbehavior::CrossDomainDivergence { views } => {
                    assert_eq!(views.len(), 2);
                }
                other => panic!("expected divergence, got {other:?}"),
            },
            other => panic!("expected misbehavior, got {other:?}"),
        }
    }

    #[test]
    fn agreeing_domains_cross_check_clean() {
        let mut d0 = Domain::new(0);
        let mut d1 = Domain::new(1);
        let mut auditor = Auditor::new(vec![d0.sk.verifying_key(), d1.sk.verifying_key()]);
        for leaf in [b"v1".as_slice(), b"v2"] {
            d0.log.append(leaf);
            d1.log.append(leaf);
        }
        let cp0 = d0.checkpoint();
        let cp1 = d1.checkpoint();
        auditor.observe(0, cp0, None);
        auditor.observe(1, cp1, None);
        assert!(auditor.cross_check().is_consistent());
    }

    #[test]
    fn lagging_domain_not_flagged() {
        // Domain 1 has seen fewer updates but agrees on the shared prefix.
        let mut d0 = Domain::new(0);
        let mut d1 = Domain::new(1);
        let mut auditor = Auditor::new(vec![d0.sk.verifying_key(), d1.sk.verifying_key()]);
        d0.log.append(b"v1");
        d0.log.append(b"v2");
        d1.log.append(b"v1");
        let cp0 = d0.checkpoint();
        let cp1 = d1.checkpoint();
        auditor.observe(0, cp0, None);
        auditor.observe(1, cp1, None);
        // Sizes differ (2 vs 1) so no same-size comparison exists; clean.
        assert!(auditor.cross_check().is_consistent());
    }

    #[test]
    fn gossip_detects_split_view() {
        // A domain shows client A history "0xaa" and client B history
        // "0xbb" at the same size. Each client alone is satisfied; gossip
        // between them exposes the equivocation.
        let d = Domain::new(0);
        let make_cp = |head: [u8; 32]| {
            SignedCheckpoint::sign(
                CheckpointBody {
                    log_id: d.lid,
                    size: 3,
                    head,
                    logical_time: 3,
                },
                &d.sk,
            )
        };
        let mut auditor_a = auditor_for(std::slice::from_ref(&d));
        let mut auditor_b = auditor_for(std::slice::from_ref(&d));
        assert!(auditor_a
            .observe(0, make_cp([0xaa; 32]), None)
            .is_consistent());
        assert!(auditor_b
            .observe(0, make_cp([0xbb; 32]), None)
            .is_consistent());
        // Client B relays its view to client A.
        let payload = auditor_b.gossip_payload();
        assert_eq!(payload.len(), 1);
        match auditor_a.ingest_gossip(0, payload[0].1.clone()) {
            AuditOutcome::Misbehavior(m) => match *m {
                Misbehavior::Equivocation { proof, .. } => {
                    assert!(proof.verify(&d.sk.verifying_key()));
                }
                other => panic!("expected equivocation, got {other:?}"),
            },
            other => panic!("expected misbehavior, got {other:?}"),
        }
    }

    #[test]
    fn gossip_tolerates_lagging_peers() {
        // An older-but-consistent checkpoint from a peer is NOT flagged.
        let mut d = Domain::new(0);
        let mut auditor = auditor_for(std::slice::from_ref(&d));
        d.log.append(b"v1");
        let old_cp = d.checkpoint();
        d.log.append(b"v2");
        let new_cp = d.checkpoint();
        let proof = d.log.prove_consistency(1, 2).unwrap();
        assert!(auditor.observe(0, old_cp.clone(), None).is_consistent());
        assert!(auditor.observe(0, new_cp, Some(&proof)).is_consistent());
        // Peer is still at size 1 with the same head: fine.
        assert!(auditor.ingest_gossip(0, old_cp).is_consistent());
    }

    #[test]
    fn gossip_rejects_forged_checkpoints() {
        let d = Domain::new(0);
        let stranger = SigningKey::derive(b"stranger", b"");
        let mut auditor = auditor_for(std::slice::from_ref(&d));
        let forged = SignedCheckpoint::sign(
            CheckpointBody {
                log_id: d.lid,
                size: 1,
                head: [9; 32],
                logical_time: 1,
            },
            &stranger,
        );
        match auditor.ingest_gossip(0, forged) {
            AuditOutcome::Misbehavior(m) => {
                assert!(matches!(*m, Misbehavior::BadSignature { .. }))
            }
            other => panic!("expected bad signature, got {other:?}"),
        }
        // A forged checkpoint must not frame the domain: no equivocation
        // state was recorded.
        assert!(auditor.cross_check().is_consistent());
    }

    #[test]
    fn bundle_smuggling_stale_checkpoint_flagged_as_rollback() {
        use crate::batch::{CheckpointBundle, ProofBundle};
        // The per-step path flags any served checkpoint older than the
        // verified prefix as Rollback; a stale entry hidden inside an
        // otherwise-fresh bundle must be flagged identically.
        let mut d = Domain::new(0);
        let mut auditor = auditor_for(std::slice::from_ref(&d));
        d.log.append(b"v1");
        d.log.append(b"v2");
        let cp2 = d.checkpoint();
        assert!(auditor.observe(0, cp2.clone(), None).is_consistent());
        let stale = SignedCheckpoint::sign(
            CheckpointBody {
                log_id: d.lid,
                size: 1,
                head: d.log.root_of_prefix(1),
                logical_time: 50,
            },
            &d.sk,
        );
        let bundle = CheckpointBundle {
            checkpoints: vec![stale, cp2],
            proof: ProofBundle::default(),
        };
        match auditor.observe_bundle(0, &bundle) {
            AuditOutcome::Misbehavior(m) => assert!(matches!(
                *m,
                Misbehavior::Rollback {
                    trusted_size: 2,
                    offered_size: 1,
                    ..
                }
            )),
            other => panic!("expected rollback, got {other:?}"),
        }
    }

    #[test]
    fn bundle_with_duplicate_checkpoint_is_tolerated() {
        use crate::batch::{CheckpointBundle, ProofBundle};
        // A re-served checkpoint (same size, same head) is accepted by
        // the per-step path; a bundle containing the duplicate must be
        // too — only conflicting heads are evidence.
        let mut d = Domain::new(0);
        let mut auditor = auditor_for(std::slice::from_ref(&d));
        d.log.append(b"v1");
        let cp = d.checkpoint();
        let again = d.checkpoint(); // same size/head, fresh logical time
        let bundle = CheckpointBundle {
            checkpoints: vec![cp, again],
            proof: ProofBundle::default(),
        };
        assert!(auditor.observe_bundle(0, &bundle).is_consistent());
        assert_eq!(auditor.latest(0).unwrap().body.size, 1);
    }

    mod sharded {
        use super::*;
        use crate::shard::{ShardBundle, ShardEpoch, ShardSnapshot, ShardedLog};

        /// A sharded trust-domain mirror: shard log + per-epoch signed
        /// checkpoints over the shard-head commitment, shaped like the
        /// framework's shard-aware audit server side.
        struct ShardDomain {
            sk: SigningKey,
            log: ShardedLog,
            epochs: Vec<(SignedCheckpoint, ShardSnapshot)>,
            lid: [u8; 32],
            time: u64,
        }

        impl ShardDomain {
            fn new(shards: usize) -> Self {
                Self {
                    sk: SigningKey::derive(b"shard auditor tests", &(shards as u32).to_le_bytes()),
                    log: ShardedLog::new(shards),
                    epochs: Vec::new(),
                    lid: log_id(b"shard-dep", 0),
                    time: 0,
                }
            }

            fn append(&mut self, shard: u32, leaf: &[u8]) {
                self.log.append(shard, leaf).expect("shard exists");
                let snapshot = self.log.snapshot();
                self.time += 1;
                let cp = SignedCheckpoint::sign(
                    CheckpointBody {
                        log_id: self.lid,
                        size: snapshot.total(),
                        head: snapshot.commitment(),
                        logical_time: self.time,
                    },
                    &self.sk,
                );
                self.epochs.push((cp, snapshot));
            }

            /// Bundle for a client whose per-shard verified sizes are
            /// `baseline` (zeros = fresh client).
            fn bundle_from(&self, baseline: &[u64]) -> ShardBundle {
                let total: u64 = baseline.iter().sum();
                let included: Vec<&(SignedCheckpoint, ShardSnapshot)> = self
                    .epochs
                    .iter()
                    .filter(|(cp, _)| cp.body.size > total)
                    .collect();
                if included.is_empty() {
                    let (cp, snap) = self.epochs.last().expect("non-empty").clone();
                    return ShardBundle {
                        epochs: vec![ShardEpoch {
                            checkpoint: cp,
                            shards: snap,
                        }],
                        proof: self
                            .log
                            .prove_shard_runs(baseline, &[])
                            .expect("empty runs"),
                    };
                }
                let snaps: Vec<&ShardSnapshot> = included.iter().map(|(_, s)| s).collect();
                let proof = self
                    .log
                    .prove_shard_runs(baseline, &snaps)
                    .expect("honest runs");
                ShardBundle {
                    epochs: included
                        .into_iter()
                        .map(|(cp, s)| ShardEpoch {
                            checkpoint: cp.clone(),
                            shards: s.clone(),
                        })
                        .collect(),
                    proof,
                }
            }

            fn auditor(&self) -> Auditor {
                Auditor::new(vec![self.sk.verifying_key()])
            }
        }

        fn baseline_of(auditor: &Auditor) -> Vec<u64> {
            auditor
                .prefix_cache(0)
                .and_then(|c| c.shard_prefixes())
                .map(|p| p.iter().map(|(s, _)| *s).collect())
                .unwrap_or_default()
        }

        #[test]
        fn honest_sharded_growth_is_consistent() {
            let mut d = ShardDomain::new(3);
            d.append(0, b"a0");
            d.append(1, b"b0");
            let mut auditor = d.auditor();
            let bundle = d.bundle_from(&[0, 0, 0]);
            assert!(auditor.observe_shard_bundle(0, &bundle).is_consistent());
            assert_eq!(auditor.latest(0).unwrap().body.size, 2);
            let prefixes = auditor.prefix_cache(0).unwrap().shard_prefixes().unwrap();
            assert_eq!(
                prefixes.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
                vec![1, 1, 0]
            );

            // Growth touching two shards, linked from the cached baseline.
            d.append(0, b"a1");
            d.append(2, b"c0");
            let bundle = d.bundle_from(&baseline_of(&auditor));
            assert!(auditor.observe_shard_bundle(0, &bundle).is_consistent());
            assert_eq!(auditor.latest(0).unwrap().body.size, 4);

            // Steady state: the same head again verifies nothing.
            let cache = auditor.prefix_cache(0).unwrap();
            let (sigs, cons) = (cache.signatures_verified(), cache.consistency_verified());
            let bundle = d.bundle_from(&baseline_of(&auditor));
            assert!(auditor.observe_shard_bundle(0, &bundle).is_consistent());
            let cache = auditor.prefix_cache(0).unwrap();
            assert_eq!(cache.signatures_verified(), sigs);
            assert_eq!(cache.consistency_verified(), cons);
        }

        #[test]
        fn bundle_shard_count_above_limit_is_malformed() {
            // Regression for the shard-count bomb: `observe_shard_bundle`
            // used to allocate `vec![0usize; shard_count]` (and index
            // per-shard arrays) straight off the wire-announced count.
            // Anything above MAX_BUNDLE_SHARDS must be rejected as
            // malformed before any shard_count-sized work happens.
            let mut d = ShardDomain::new(2);
            d.append(0, b"a0");
            let mut auditor = d.auditor();
            let (cp, _) = d.epochs.last().expect("non-empty").clone();
            let oversized = ShardSnapshot {
                sizes: vec![0; MAX_BUNDLE_SHARDS + 1],
                heads: vec![MerkleLog::new().root(); MAX_BUNDLE_SHARDS + 1],
            };
            let bundle = ShardBundle {
                epochs: vec![ShardEpoch {
                    checkpoint: cp,
                    shards: oversized,
                }],
                proof: Default::default(),
            };
            match auditor.observe_shard_bundle(0, &bundle) {
                AuditOutcome::Misbehavior(m) => match *m {
                    Misbehavior::MalformedBundle { reason, .. } => {
                        assert!(reason.contains("audit limit"), "reason: {reason}")
                    }
                    other => panic!("expected malformed bundle, got {other:?}"),
                },
                other => panic!("expected misbehavior, got {other:?}"),
            }
        }

        #[test]
        fn snapshot_commitment_mismatch_is_malformed() {
            let mut d = ShardDomain::new(2);
            d.append(0, b"a0");
            let mut auditor = d.auditor();
            let mut bundle = d.bundle_from(&[0, 0]);
            // The served snapshot no longer reproduces the signed head.
            bundle.epochs[0].shards.heads[1][0] ^= 0xff;
            match auditor.observe_shard_bundle(0, &bundle) {
                AuditOutcome::Misbehavior(m) => {
                    assert!(matches!(*m, Misbehavior::MalformedBundle { .. }))
                }
                other => panic!("expected malformed, got {other:?}"),
            }
        }

        #[test]
        fn rewritten_shard_behind_grown_sibling_flagged() {
            // Shard 0 is rewritten at constant size while shard 1 grows:
            // the total grows, the commitment is correctly signed, but
            // shard 0's head changed without an append.
            let mut d = ShardDomain::new(2);
            d.append(0, b"a0");
            let mut auditor = d.auditor();
            assert!(auditor
                .observe_shard_bundle(0, &d.bundle_from(&[0, 0]))
                .is_consistent());

            let forged = ShardedLog::new(2);
            forged.append(0, b"EVIL").unwrap();
            forged.append(1, b"b0").unwrap();
            let snap = forged.snapshot();
            d.time += 1;
            let cp = SignedCheckpoint::sign(
                CheckpointBody {
                    log_id: d.lid,
                    size: snap.total(),
                    head: snap.commitment(),
                    logical_time: d.time,
                },
                &d.sk,
            );
            let bundle = ShardBundle {
                epochs: vec![ShardEpoch {
                    checkpoint: cp,
                    shards: snap,
                }],
                proof: forged.prove_shard_runs(&[1, 0], &[]).expect("empty runs"),
            };
            match auditor.observe_shard_bundle(0, &bundle) {
                AuditOutcome::Misbehavior(m) => {
                    assert!(matches!(*m, Misbehavior::InconsistentGrowth { .. }))
                }
                other => panic!("expected inconsistent growth, got {other:?}"),
            }
        }

        #[test]
        fn per_shard_rollback_flagged() {
            let mut d = ShardDomain::new(2);
            d.append(0, b"a0");
            d.append(0, b"a1");
            let mut auditor = d.auditor();
            assert!(auditor
                .observe_shard_bundle(0, &d.bundle_from(&[0, 0]))
                .is_consistent());
            // A snapshot where shard 0 shrank but shard 1 grew enough to
            // keep the total moving forward.
            let forged = ShardedLog::new(2);
            forged.append(0, b"a0").unwrap();
            forged.append(1, b"b0").unwrap();
            forged.append(1, b"b1").unwrap();
            let snap = forged.snapshot();
            d.time += 1;
            let cp = SignedCheckpoint::sign(
                CheckpointBody {
                    log_id: d.lid,
                    size: snap.total(),
                    head: snap.commitment(),
                    logical_time: d.time,
                },
                &d.sk,
            );
            let bundle = ShardBundle {
                epochs: vec![ShardEpoch {
                    checkpoint: cp,
                    shards: snap,
                }],
                proof: forged.prove_shard_runs(&[1, 0], &[]).expect("runs"),
            };
            match auditor.observe_shard_bundle(0, &bundle) {
                AuditOutcome::Misbehavior(m) => match *m {
                    Misbehavior::Rollback {
                        trusted_size,
                        offered_size,
                        ..
                    } => {
                        assert_eq!((trusted_size, offered_size), (2, 1));
                    }
                    other => panic!("expected rollback, got {other:?}"),
                },
                other => panic!("expected misbehavior, got {other:?}"),
            }
        }

        #[test]
        fn sharded_equivocation_yields_transferable_proof() {
            let mut d = ShardDomain::new(2);
            d.append(0, b"a0");
            let mut auditor = d.auditor();
            assert!(auditor
                .observe_shard_bundle(0, &d.bundle_from(&[0, 0]))
                .is_consistent());
            // A conflicting, correctly signed view at the same total size.
            let forked = ShardedLog::new(2);
            forked.append(1, b"other-shard").unwrap();
            let snap = forked.snapshot();
            let cp = SignedCheckpoint::sign(
                CheckpointBody {
                    log_id: d.lid,
                    size: snap.total(),
                    head: snap.commitment(),
                    logical_time: 99,
                },
                &d.sk,
            );
            let bundle = ShardBundle {
                epochs: vec![ShardEpoch {
                    checkpoint: cp,
                    shards: snap,
                }],
                proof: forked.prove_shard_runs(&[0, 0], &[]).expect("runs"),
            };
            match auditor.observe_shard_bundle(0, &bundle) {
                AuditOutcome::Misbehavior(m) => match *m {
                    Misbehavior::Equivocation { proof, .. } => {
                        assert!(proof.verify(&d.sk.verifying_key()));
                    }
                    other => panic!("expected equivocation, got {other:?}"),
                },
                other => panic!("expected misbehavior, got {other:?}"),
            }
        }

        #[test]
        fn missing_proof_step_rejected() {
            let mut d = ShardDomain::new(2);
            d.append(0, b"a0");
            let mut auditor = d.auditor();
            assert!(auditor
                .observe_shard_bundle(0, &d.bundle_from(&[0, 0]))
                .is_consistent());
            d.append(0, b"a1");
            let mut bundle = d.bundle_from(&baseline_of(&auditor));
            bundle.proof.runs[0].steps.clear();
            match auditor.observe_shard_bundle(0, &bundle) {
                AuditOutcome::Misbehavior(m) => {
                    assert!(matches!(*m, Misbehavior::InconsistentGrowth { .. }))
                }
                other => panic!("expected inconsistent growth, got {other:?}"),
            }
        }
    }

    #[test]
    fn digest_match_helper() {
        assert!(digests_match(&[]));
        assert!(digests_match(&[[1; 32]]));
        assert!(digests_match(&[[1; 32], [1; 32], [1; 32]]));
        assert!(!digests_match(&[[1; 32], [2; 32]]));
    }
}
