//! # distrust-log
//!
//! Append-only log substrate for the `distrust` workspace — the second of
//! the paper's two application-independent building blocks (§3.1): "The
//! append-only log should provide integrity: once an entry is added, it
//! cannot be altered or deleted."
//!
//! Two interchangeable log structures are provided:
//!
//! * [`hashchain::HashChain`] — the paper's §4.1 design (each TEE keeps a
//!   hash chain of code digests); O(1) append, O(n) audit.
//! * [`merkle::MerkleLog`] — an RFC 6962-style Merkle log with O(log n)
//!   inclusion and consistency proofs, the Certificate-Transparency-grade
//!   infrastructure §4.2 points to.
//!
//! On top of either, [`checkpoint`] provides signed tree heads and
//! transferable equivocation proofs, and [`auditor`] implements the client
//! logic: verify each domain's log growth and cross-check digest histories
//! across all `n` domains. [`batch`] amortises the audit hot path:
//! multi-checkpoint proof bundles with deduplicated nodes and a
//! verified-prefix cache so repeated audits never re-verify old history.
//! [`shard`] scales the write path: a [`shard::ShardedLog`] keeps `N`
//! independently locked Merkle shards under one top-level shard-head
//! commitment — byte-compatible with the single-tree format at one shard,
//! parallel append throughput beyond it. [`store`] puts durability under
//! all of it: a [`store::LogStore`] trait with an in-memory default and a
//! segment-file implementation ([`store::DurableStore`]) whose write-ahead
//! discipline and torn-tail recovery let a restarted domain resume the
//! identical commitment instead of silently re-signing fresh history.

pub mod auditor;
pub mod batch;
pub mod checkpoint;
pub mod hashchain;
pub mod merkle;
pub mod shard;
pub mod store;

pub use auditor::{digests_match, AuditOutcome, Auditor, Misbehavior};
pub use batch::{BundleStep, CheckpointBundle, ProofBundle, VerifiedPrefixCache};
pub use checkpoint::{log_id, CheckpointBody, EquivocationProof, SignedCheckpoint};
pub use hashchain::HashChain;
pub use merkle::{CompactRoot, ConsistencyProof, InclusionProof, MerkleLog};
pub use shard::{ShardBundle, ShardEpoch, ShardProofBundle, ShardSnapshot, ShardedLog};
pub use store::{
    AppendAck, DurableOptions, DurableStore, LogStore, MemStore, MetaRecord, NullStore, Recovered,
    RecoveredShard, StorageConfig, StoreError,
};
