//! The hash-chain append-only log of §4.1: "each TEE maintains an
//! append-only log of code digests … implemented at each TEE as a hash
//! chain".
//!
//! Entry `i` commits to the whole history: `H_i = SHA256(dst || H_{i-1} ||
//! leaf_i)`. The head digest is the log's compact commitment; auditors
//! replay entries to verify it. A hash chain has O(n) proofs — the Merkle
//! log in [`crate::merkle`] is the O(log n) alternative discussed in the
//! paper's "deployment tomorrow" section; benches compare the two
//! (Ablation B).

use distrust_crypto::sha256::{sha256_many, Digest};

/// Domain tag for chain link hashing.
const LINK_DST: &[u8] = b"distrust/hashchain/link/v1";
/// The head value of an empty chain.
const EMPTY_HEAD: &[u8] = b"distrust/hashchain/empty/v1";

/// An append-only hash chain over opaque leaf byte strings.
#[derive(Clone, Debug)]
pub struct HashChain {
    leaves: Vec<Vec<u8>>,
    heads: Vec<Digest>,
}

impl Default for HashChain {
    fn default() -> Self {
        Self::new()
    }
}

impl HashChain {
    /// Creates an empty chain.
    pub fn new() -> Self {
        Self {
            leaves: Vec::new(),
            heads: Vec::new(),
        }
    }

    /// The number of entries.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// True when no entries have been appended.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// The current head digest (commitment to the full history).
    pub fn head(&self) -> Digest {
        match self.heads.last() {
            Some(h) => *h,
            None => Self::empty_head(),
        }
    }

    /// Head digest of the empty chain.
    pub fn empty_head() -> Digest {
        sha256_many(&[EMPTY_HEAD])
    }

    /// Appends a leaf and returns the new head.
    pub fn append(&mut self, leaf: &[u8]) -> Digest {
        let prev = self.head();
        let head = Self::link(&prev, leaf);
        self.leaves.push(leaf.to_vec());
        self.heads.push(head);
        head
    }

    /// The chaining function, exposed so verifiers replay identically.
    pub fn link(prev: &Digest, leaf: &[u8]) -> Digest {
        sha256_many(&[LINK_DST, prev, leaf])
    }

    /// The head after entry `index` (0-based); `None` if out of range.
    pub fn head_at(&self, index: usize) -> Option<Digest> {
        self.heads.get(index).copied()
    }

    /// The leaf at `index`.
    pub fn leaf(&self, index: usize) -> Option<&[u8]> {
        self.leaves.get(index).map(|v| v.as_slice())
    }

    /// All leaves (an auditor downloads these to replay the chain).
    pub fn leaves(&self) -> &[Vec<u8>] {
        &self.leaves
    }

    /// Replays `leaves` and checks the resulting head. This is the full
    /// O(n) audit a client performs after downloading a domain's history.
    pub fn verify_replay(leaves: &[Vec<u8>], expected_head: &Digest) -> bool {
        let mut head = Self::empty_head();
        for leaf in leaves {
            head = Self::link(&head, leaf);
        }
        head == *expected_head
    }

    /// Checks that `new_leaves` extends a chain whose head was
    /// `trusted_head` after `trusted_len` entries, reaching `new_head`.
    /// This is the incremental audit: a client that already verified a
    /// prefix only replays the suffix.
    pub fn verify_extension(
        trusted_head: &Digest,
        new_leaves: &[Vec<u8>],
        new_head: &Digest,
    ) -> bool {
        let mut head = *trusted_head;
        for leaf in new_leaves {
            head = Self::link(&head, leaf);
        }
        head == *new_head
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_head_is_stable() {
        assert_eq!(HashChain::new().head(), HashChain::empty_head());
        assert_eq!(HashChain::empty_head(), HashChain::empty_head());
    }

    #[test]
    fn append_changes_head() {
        let mut chain = HashChain::new();
        let h0 = chain.head();
        let h1 = chain.append(b"v1 digest");
        let h2 = chain.append(b"v2 digest");
        assert_ne!(h0, h1);
        assert_ne!(h1, h2);
        assert_eq!(chain.len(), 2);
        assert_eq!(chain.head(), h2);
        assert_eq!(chain.head_at(0), Some(h1));
        assert_eq!(chain.head_at(1), Some(h2));
        assert_eq!(chain.head_at(2), None);
    }

    #[test]
    fn replay_verifies() {
        let mut chain = HashChain::new();
        for i in 0..10u32 {
            chain.append(&i.to_le_bytes());
        }
        assert!(HashChain::verify_replay(chain.leaves(), &chain.head()));
    }

    #[test]
    fn replay_detects_tampering() {
        let mut chain = HashChain::new();
        for i in 0..10u32 {
            chain.append(&i.to_le_bytes());
        }
        let head = chain.head();
        // Modify a historical entry.
        let mut tampered = chain.leaves().to_vec();
        tampered[3] = b"evil code digest".to_vec();
        assert!(!HashChain::verify_replay(&tampered, &head));
        // Delete an entry.
        let mut deleted = chain.leaves().to_vec();
        deleted.remove(5);
        assert!(!HashChain::verify_replay(&deleted, &head));
        // Reorder two entries.
        let mut reordered = chain.leaves().to_vec();
        reordered.swap(1, 2);
        assert!(!HashChain::verify_replay(&reordered, &head));
    }

    #[test]
    fn incremental_extension() {
        let mut chain = HashChain::new();
        for i in 0..5u32 {
            chain.append(&i.to_le_bytes());
        }
        let trusted = chain.head();
        let suffix: Vec<Vec<u8>> = (5..8u32).map(|i| i.to_le_bytes().to_vec()).collect();
        for leaf in &suffix {
            chain.append(leaf);
        }
        assert!(HashChain::verify_extension(
            &trusted,
            &suffix,
            &chain.head()
        ));
        // A forged suffix fails.
        let mut forged = suffix.clone();
        forged[0] = b"backdoored".to_vec();
        assert!(!HashChain::verify_extension(
            &trusted,
            &forged,
            &chain.head()
        ));
    }

    #[test]
    fn same_leaves_same_head() {
        let mut a = HashChain::new();
        let mut b = HashChain::new();
        for leaf in [b"x".as_slice(), b"y", b"z"] {
            a.append(leaf);
            b.append(leaf);
        }
        assert_eq!(a.head(), b.head());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn replay_round_trips(leaves in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..32), 0..20)) {
            let mut chain = HashChain::new();
            for leaf in &leaves {
                chain.append(leaf);
            }
            prop_assert!(HashChain::verify_replay(chain.leaves(), &chain.head()));
        }

        #[test]
        fn prefix_heads_chain_correctly(
            leaves in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..16), 1..12),
            split in 0usize..11,
        ) {
            prop_assume!(split < leaves.len());
            let mut chain = HashChain::new();
            for leaf in &leaves {
                chain.append(leaf);
            }
            let mid = chain.head_at(split).unwrap();
            let suffix = &chain.leaves()[split + 1..];
            prop_assert!(HashChain::verify_extension(
                &mid,
                suffix,
                &chain.head()
            ));
        }
    }
}
