//! Sharded append-only log with a top-level shard-head commitment.
//!
//! A single [`MerkleLog`] serializes every app's updates through one tree,
//! and checkpointing cost grows with total history. CT-style designs (the
//! paper's §4.2 lineage) scale writes by committing to many sub-logs under
//! one verifiable head: a [`ShardedLog`] keeps `N` independent Merkle
//! shards — appends routed by app id (or any key; the router is a plain
//! hash, so key-range splits slot in without changing the commitment) —
//! and a **top-level commitment tree** over the shard heads. A checkpoint
//! signs `(epoch_size, shard_heads_root)` and a per-shard inclusion proof
//! ([`ShardedLog::prove_shard_head`]) ties any shard head to the signed
//! commitment.
//!
//! **Wire compatibility** is a design invariant, not an accident: a
//! 1-shard commitment **is** the shard's Merkle root, byte for byte, so
//! a 1-shard [`ShardedLog`] produces byte-identical checkpoints,
//! consistency proofs, and audit bundles to the legacy single-tree path
//! — old auditors accept new 1-shard checkpoints and vice versa
//! (property-tested in `tests/sharded_log.rs`). A *multi*-shard
//! commitment is the Merkle root over domain-separated
//! [`shard_head_leaf`] digests (`H(0x02 ‖ size ‖ head)` — a prefix RFC
//! 6962 hashing can never produce), so the signed head binds exactly one
//! shard decomposition: no internal split of a single tree, and no
//! re-labelled sibling decomposition, hashes to the same commitment.
//!
//! For multi-shard logs the top-level root is *not* append-only (a shard
//! append rewrites interior heads), so epoch-to-epoch consistency is
//! proven per shard: a [`ShardBundle`] carries full per-epoch shard
//! snapshots plus a [`ShardProofBundle`] — one consistency run per shard,
//! all runs sharing one deduplicated node pool (the sharded analogue of
//! [`crate::batch::ProofBundle`]). Verifiers recompute each epoch's
//! commitment from its snapshot and walk every shard's run, tracking a
//! verified prefix per shard ([`crate::batch::VerifiedPrefixCache`]).
//!
//! Shards guard their trees with independent locks, so appends to
//! different shards proceed in parallel — the `sharded_append` bench
//! measures the scaling.

use crate::batch::BundleStep;
use crate::checkpoint::SignedCheckpoint;
use crate::merkle::{
    prove_inclusion_over_hashes, root_over_hashes, CompactRoot, ConsistencyProof, InclusionProof,
    MerkleLog,
};
use crate::store::{open_store, LogStore, MetaRecord, NullStore, StorageConfig, StoreError};
use distrust_crypto::sha256::Digest;
use distrust_wire::codec::{decode_seq, encode_seq, Decode, DecodeError, Encode};
use distrust_wire::sync::HealthyMutex;
use std::collections::HashMap;
use std::sync::{Arc, MutexGuard};

/// Domain-separated hash of one shard's `(size, head)` — the leaf of the
/// top-level commitment tree for multi-shard logs. The `0x02` prefix can
/// never collide with RFC 6962 hashing (leaves are `0x00`, interior nodes
/// `0x01`), and binding the size makes the committed decomposition
/// unique: without both, any internal split of a *single* tree would hash
/// to the same commitment as a genuine multi-shard snapshot (a shard head
/// IS a subtree root), letting a compromised domain re-present a legacy
/// checkpoint with a fabricated decomposition and hijack the per-shard
/// baselines an auditor adopts on re-link.
pub fn shard_head_leaf(size: u64, head: &Digest) -> Digest {
    distrust_crypto::sha256_many(&[&[0x02], &size.to_le_bytes(), head])
}

/// A point-in-time view of every shard: per-shard sizes and heads, in
/// shard order. This is what one signed checkpoint commits to.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Leaves per shard.
    pub sizes: Vec<u64>,
    /// Merkle root per shard (the empty-tree root for empty shards).
    pub heads: Vec<Digest>,
}

impl ShardSnapshot {
    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.sizes.len()
    }

    /// Total leaves across all shards — the `size` a checkpoint signs.
    pub fn total(&self) -> u64 {
        self.sizes.iter().sum()
    }

    /// The top-level commitment — the `head` a checkpoint signs. For one
    /// shard this is that shard's root, byte for byte (the wire
    /// compatibility invariant); for more it is the Merkle root over the
    /// domain-separated [`shard_head_leaf`] digests, so exactly one
    /// `(sizes, heads)` decomposition can produce a given commitment.
    pub fn commitment(&self) -> Digest {
        match self.heads.len() {
            1 => self.heads[0],
            _ => root_over_hashes(&self.commitment_leaves()),
        }
    }

    /// The top-level tree's leaf digests (multi-shard form).
    fn commitment_leaves(&self) -> Vec<Digest> {
        self.sizes
            .iter()
            .zip(&self.heads)
            .map(|(&size, head)| shard_head_leaf(size, head))
            .collect()
    }

    /// Inclusion proof tying shard `shard`'s `(size, head)` to this
    /// snapshot's commitment; verify with [`ShardSnapshot::verify_head`].
    pub fn prove_head(&self, shard: usize) -> Option<InclusionProof> {
        if self.heads.len() == 1 {
            prove_inclusion_over_hashes(&self.heads, shard)
        } else {
            prove_inclusion_over_hashes(&self.commitment_leaves(), shard)
        }
    }

    /// Verifies an inclusion proof from [`ShardSnapshot::prove_head`]:
    /// shard `(size, head)` is committed by `commitment` in a tree of
    /// `shard_count` shards.
    pub fn verify_head(
        shard_count: usize,
        size: u64,
        head: &Digest,
        proof: &InclusionProof,
        commitment: &Digest,
    ) -> bool {
        if shard_count == 1 {
            proof.verify_hash(head, commitment)
        } else {
            proof.verify_hash(&shard_head_leaf(size, head), commitment)
        }
    }
}

impl Encode for ShardSnapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_seq(&self.sizes, out);
        encode_seq(&self.heads, out);
    }
}

impl Decode for ShardSnapshot {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let sizes: Vec<u64> = decode_seq(input)?;
        let heads: Vec<Digest> = decode_seq(input)?;
        if sizes.len() != heads.len() {
            return Err(DecodeError::Invalid("shard snapshot sizes/heads mismatch"));
        }
        Ok(Self { sizes, heads })
    }
}

/// One audit epoch of a sharded log: the signed top-level checkpoint plus
/// the shard snapshot it commits to. [`ShardEpoch::well_formed`] checks
/// the binding; a served epoch failing it is a malformed bundle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardEpoch {
    /// The signed `(log_id, total_size, commitment, time)` checkpoint.
    pub checkpoint: SignedCheckpoint,
    /// The per-shard decomposition the checkpoint commits to.
    pub shards: ShardSnapshot,
}

impl ShardEpoch {
    /// True when the snapshot actually produces the signed `(size, head)`.
    pub fn well_formed(&self) -> bool {
        self.checkpoint.body.size == self.shards.total()
            && self.checkpoint.body.head == self.shards.commitment()
    }
}

impl Encode for ShardEpoch {
    fn encode(&self, out: &mut Vec<u8>) {
        self.checkpoint.encode(out);
        self.shards.encode(out);
    }
}

impl Decode for ShardEpoch {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Self {
            checkpoint: Decode::decode(input)?,
            shards: Decode::decode(input)?,
        })
    }
}

/// One shard's consistency run: the steps linking that shard's sizes
/// across the bundle's epochs, path entries indexing into the bundle's
/// shared node pool.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardRun {
    /// Consistency steps in transition order (old → new sizes ascending).
    pub steps: Vec<BundleStep>,
}

impl Encode for ShardRun {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_seq(&self.steps, out);
    }
}

impl Decode for ShardRun {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Self {
            steps: decode_seq(input)?,
        })
    }
}

/// Per-shard consistency runs sharing one deduplicated node pool — the
/// sharded analogue of [`crate::batch::ProofBundle`]. Adjacent steps of
/// one shard overlap exactly as in the single-tree case, and sibling
/// shards growing in lockstep share right-edge subtrees too, so one pool
/// across all runs is strictly smaller than independent proofs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardProofBundle {
    /// Deduplicated proof nodes referenced by every run.
    pub nodes: Vec<Digest>,
    /// One run per shard, shard-ordered.
    pub runs: Vec<ShardRun>,
}

impl Encode for ShardProofBundle {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_seq(&self.nodes, out);
        encode_seq(&self.runs, out);
    }
}

impl Decode for ShardProofBundle {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Self {
            nodes: decode_seq(input)?,
            runs: decode_seq(input)?,
        })
    }
}

impl ShardProofBundle {
    /// Expands step `i` of shard `shard` into a standalone proof. `None`
    /// for out-of-range indices or steps referencing nodes outside the
    /// pool (a malformed bundle).
    pub fn step(&self, shard: usize, i: usize) -> Option<ConsistencyProof> {
        let step = self.runs.get(shard)?.steps.get(i)?;
        let path = step
            .path
            .iter()
            .map(|&idx| self.nodes.get(idx as usize).copied())
            .collect::<Option<Vec<Digest>>>()?;
        Some(ConsistencyProof {
            old_size: step.old_size,
            new_size: step.new_size,
            path,
        })
    }
}

/// The sharded wire-facing audit object: epochs (ascending total size,
/// last freshest) plus the per-shard proof runs linking them — and, when
/// the verifier reported a prior verified epoch, linking that epoch's
/// shard states to the first included one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardBundle {
    /// Epochs in ascending total-size order.
    pub epochs: Vec<ShardEpoch>,
    /// Per-shard consistency runs covering every included transition.
    pub proof: ShardProofBundle,
}

impl Encode for ShardBundle {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_seq(&self.epochs, out);
        self.proof.encode(out);
    }
}

impl Decode for ShardBundle {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Self {
            epochs: decode_seq(input)?,
            proof: Decode::decode(input)?,
        })
    }
}

/// An append-only log split into `N` independently locked Merkle shards
/// under one top-level commitment. See the module docs for the design and
/// the 1-shard compatibility invariant.
pub struct ShardedLog {
    shards: Vec<HealthyMutex<MerkleLog>>,
    store: Arc<dyn LogStore>,
}

impl ShardedLog {
    /// Creates an ephemeral log with `shards` empty shards (at least 1) —
    /// today's in-memory behavior, the default for tests.
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "a sharded log needs at least one shard");
        Self {
            shards: (0..shards)
                .map(|_| HealthyMutex::new(MerkleLog::new()))
                .collect(),
            store: Arc::new(NullStore),
        }
    }

    /// Opens a log over the configured storage, recovering any persisted
    /// history. Returns the log plus the recovered framework meta records
    /// (signed checkpoints etc. — opaque to this layer).
    pub fn open(
        shards: usize,
        storage: &StorageConfig,
    ) -> Result<(Self, Vec<MetaRecord>), StoreError> {
        Self::with_store(shards, open_store(storage, shards)?)
    }

    /// Opens a log over an explicit store (injection point for tests that
    /// simulate restarts with a shared [`crate::store::MemStore`]).
    ///
    /// Runs the store's full recovery: every persisted leaf is replayed
    /// into the in-memory trees, and every recovered segment checkpoint is
    /// cross-checked against the replayed tree — a checkpoint that does
    /// not reproduce its own subtree roots means the store lied, and the
    /// open fails rather than serve a divergent history.
    pub fn with_store(
        shards: usize,
        store: Arc<dyn LogStore>,
    ) -> Result<(Self, Vec<MetaRecord>), StoreError> {
        assert!(shards >= 1, "a sharded log needs at least one shard");
        let recovered = store.recover()?;
        if recovered.shards.len() > shards {
            return Err(StoreError::ShardCountMismatch {
                store: recovered.shards.len(),
                configured: shards,
            });
        }
        let mut trees = Vec::with_capacity(shards);
        for shard in &recovered.shards {
            let mut tree = MerkleLog::new();
            for leaf in &shard.leaves {
                tree.append(leaf);
            }
            if let Some((size, edge)) = &shard.checkpoint {
                let seeded = CompactRoot::from_right_edge(*size, edge)
                    .ok_or(StoreError::Corrupt("recovered checkpoint edge shape"))?;
                if *size > tree.len() as u64 || seeded.root() != tree.root_of_prefix(*size as usize)
                {
                    return Err(StoreError::Corrupt("recovered checkpoint root mismatch"));
                }
            }
            trees.push(HealthyMutex::new(tree));
        }
        while trees.len() < shards {
            trees.push(HealthyMutex::new(MerkleLog::new()));
        }
        Ok((
            Self {
                shards: trees,
                store,
            },
            recovered.meta,
        ))
    }

    /// Forces all pending appends to durable storage. Checkpoint signing
    /// calls this first: a signed head must never outrun durable history,
    /// or an honest crash would look like equivocation.
    pub fn sync(&self) -> Result<(), StoreError> {
        self.store.sync()
    }

    /// Appends a record to the framework meta log (signed checkpoints and
    /// notices — opaque bytes to this layer), durably.
    pub fn append_meta(&self, kind: u8, payload: &[u8]) -> Result<(), StoreError> {
        self.store.append_meta(kind, payload)
    }

    /// Number of shards (fixed for the log's lifetime — resharding would
    /// invalidate signed commitments).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Routes a key (an app id, in the framework) to its shard. Stable
    /// across processes: the route is derived from the key's hash, never
    /// from insertion order.
    pub fn shard_for(&self, key: &[u8]) -> u32 {
        let digest = distrust_crypto::sha256_many(&[b"distrust/shard-route/v1", key]);
        let x = u64::from_le_bytes(digest[..8].try_into().expect("8 bytes"));
        (x % self.shards.len() as u64) as u32
    }

    /// Appends a leaf to one shard, returning its index *within that
    /// shard*. Appends to different shards run in parallel.
    ///
    /// Write-ahead order: the leaf reaches the store *before* the
    /// in-memory tree under the shard lock, so no acknowledged entry can
    /// be lost to a crash that the store survived. When the store signals
    /// a full segment, the shard's right-edge subtree roots are sealed in
    /// as a checkpoint (the O(segments) cold-start seed) and the segment
    /// rotates.
    pub fn append(&self, shard: u32, data: &[u8]) -> Result<u64, StoreError> {
        let mut guard = self
            .shards
            .get(shard as usize)
            .ok_or(StoreError::NoSuchShard(shard))?
            .lock_healthy();
        let index = guard.len() as u64;
        let ack = self.store.append(shard, index, data)?;
        guard.append(data);
        if ack.wants_checkpoint {
            self.store
                .checkpoint(shard, guard.len() as u64, &guard.right_edge())?;
        }
        Ok(index)
    }

    /// Routes by key, then appends; returns `(shard, index_in_shard)`.
    pub fn append_routed(&self, key: &[u8], data: &[u8]) -> Result<(u32, u64), StoreError> {
        let shard = self.shard_for(key);
        let index = self.append(shard, data)?;
        Ok((shard, index))
    }

    /// Leaves in one shard.
    pub fn shard_len(&self, shard: u32) -> Option<u64> {
        Some(self.shards.get(shard as usize)?.lock_healthy().len() as u64)
    }

    /// Total leaves across all shards.
    pub fn total_len(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock_healthy().len() as u64)
            .sum()
    }

    /// Locks one shard for direct reads (proof generation on the legacy
    /// 1-shard serving path). Hold briefly; appends to the shard block
    /// while the guard lives.
    pub fn lock_shard(&self, shard: usize) -> MutexGuard<'_, MerkleLog> {
        self.shards[shard].lock_healthy()
    }

    /// A coherent point-in-time snapshot of every shard. Locks shards in
    /// order; appends racing the snapshot land either wholly before or
    /// wholly after it per shard.
    pub fn snapshot(&self) -> ShardSnapshot {
        let guards: Vec<MutexGuard<'_, MerkleLog>> =
            self.shards.iter().map(|s| s.lock_healthy()).collect();
        ShardSnapshot {
            sizes: guards.iter().map(|g| g.len() as u64).collect(),
            heads: guards.iter().map(|g| g.root()).collect(),
        }
    }

    /// The current top-level commitment (the `head` a checkpoint signs).
    pub fn commitment(&self) -> Digest {
        self.snapshot().commitment()
    }

    /// Inclusion proof tying `shard`'s current `(size, head)` to the
    /// current commitment. Verify with [`ShardSnapshot::verify_head`].
    pub fn prove_shard_head(&self, shard: u32) -> Option<(u64, Digest, InclusionProof)> {
        let snapshot = self.snapshot();
        let size = *snapshot.sizes.get(shard as usize)?;
        let head = *snapshot.heads.get(shard as usize)?;
        let proof = snapshot.prove_head(shard as usize)?;
        Some((size, head, proof))
    }

    /// Consistency proof between two historical sizes of one shard.
    pub fn prove_shard_consistency(
        &self,
        shard: u32,
        old_size: u64,
        new_size: u64,
    ) -> Option<ConsistencyProof> {
        self.shards
            .get(shard as usize)?
            .lock_healthy()
            .prove_consistency(old_size as usize, new_size as usize)
    }

    /// The leaf data at `(shard, index)`.
    pub fn leaf(&self, shard: u32, index: u64) -> Option<Vec<u8>> {
        self.shards
            .get(shard as usize)?
            .lock_healthy()
            .leaf(index as usize)
            .map(|l| l.to_vec())
    }

    /// Leaves `[from, len)` of one shard. Served index-free via the
    /// tree's suffix borrow — out-of-range `from` is `None`, never a
    /// panic in the serving path.
    pub fn entries_from(&self, shard: u32, from: u64) -> Option<Vec<Vec<u8>>> {
        let guard = self.shards.get(shard as usize)?.lock_healthy();
        let suffix = guard.leaves_from(usize::try_from(from).ok()?)?;
        Some(suffix.to_vec())
    }

    /// All leaves from global offset `from`, shards concatenated in shard
    /// order. For one shard this is exactly the legacy `GetLogEntries`
    /// semantics; for many it is the canonical flattening the wire
    /// protocol documents. Only the leaves at or past `from` are copied —
    /// an incremental poll near the head costs O(returned), not O(log).
    pub fn all_entries_from(&self, from: u64) -> Option<Vec<Vec<u8>>> {
        let mut skip = usize::try_from(from).ok()?;
        let mut all = Vec::new();
        for shard in &self.shards {
            let guard = shard.lock_healthy();
            match guard.leaves_from(skip) {
                Some(suffix) => {
                    all.extend(suffix.iter().cloned());
                    skip = 0;
                }
                None => skip -= guard.len(),
            }
        }
        if skip > 0 {
            return None; // `from` beyond the total length
        }
        Some(all)
    }

    /// Builds the per-shard proof runs linking `baseline` (the verifier's
    /// per-shard verified sizes; zeros for a fresh verifier) through each
    /// epoch snapshot in `epochs`, deduplicating all shared nodes into one
    /// pool. `None` when any run is unprovable (a size above the current
    /// shard, or a decreasing transition — caller bugs, not peer input).
    pub fn prove_shard_runs(
        &self,
        baseline: &[u64],
        epochs: &[&ShardSnapshot],
    ) -> Option<ShardProofBundle> {
        let n = self.shards.len();
        if baseline.len() != n || epochs.iter().any(|e| e.sizes.len() != n) {
            return None;
        }
        let mut nodes: Vec<Digest> = Vec::new();
        let mut index: HashMap<Digest, u32> = HashMap::new();
        let mut pool = |d: &Digest| -> u32 {
            *index.entry(*d).or_insert_with(|| {
                nodes.push(*d);
                (nodes.len() - 1) as u32
            })
        };
        let mut runs = Vec::with_capacity(n);
        for (s, (shard, &base)) in self.shards.iter().zip(baseline).enumerate() {
            let mut steps = Vec::new();
            let mut prev = base;
            let guard = shard.lock_healthy();
            for epoch in epochs {
                let next = epoch.sizes[s];
                if next < prev {
                    return None;
                }
                if next > prev && prev > 0 {
                    let proof = guard.prove_consistency(prev as usize, next as usize)?;
                    steps.push(BundleStep {
                        old_size: proof.old_size,
                        new_size: proof.new_size,
                        path: proof.path.iter().map(&mut pool).collect(),
                    });
                }
                prev = next;
            }
            runs.push(ShardRun { steps });
        }
        Some(ShardProofBundle { nodes, runs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(shards: usize, leaves_per_shard: usize) -> ShardedLog {
        let log = ShardedLog::new(shards);
        for s in 0..shards as u32 {
            for i in 0..leaves_per_shard {
                log.append(s, format!("shard-{s}-leaf-{i}").as_bytes())
                    .unwrap();
            }
        }
        log
    }

    #[test]
    fn one_shard_commitment_is_the_merkle_root() {
        // The compatibility invariant: a 1-shard log's commitment equals
        // the plain MerkleLog root, byte for byte, at every size.
        let sharded = ShardedLog::new(1);
        let mut plain = MerkleLog::new();
        assert_eq!(sharded.commitment(), plain.root());
        for i in 0..9 {
            let leaf = format!("leaf-{i}");
            sharded.append(0, leaf.as_bytes()).unwrap();
            plain.append(leaf.as_bytes());
            assert_eq!(sharded.commitment(), plain.root(), "size {}", i + 1);
            assert_eq!(sharded.total_len(), plain.len() as u64);
        }
        // Consistency proofs agree too.
        assert_eq!(
            sharded.prove_shard_consistency(0, 3, 9),
            plain.prove_consistency(3, 9)
        );
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        let log = ShardedLog::new(4);
        for key in [b"analytics".as_slice(), b"key-backup", b"signer", b""] {
            let s = log.shard_for(key);
            assert!((s as usize) < 4);
            assert_eq!(s, log.shard_for(key), "route must be deterministic");
        }
        // A 1-shard log routes everything to shard 0.
        let one = ShardedLog::new(1);
        assert_eq!(one.shard_for(b"anything"), 0);
    }

    #[test]
    fn shard_heads_tie_to_commitment() {
        let log = filled(5, 3);
        let commitment = log.commitment();
        for s in 0..5u32 {
            let (size, head, proof) = log.prove_shard_head(s).unwrap();
            assert!(
                ShardSnapshot::verify_head(5, size, &head, &proof, &commitment),
                "shard {s}"
            );
            // A forged head or size does not verify.
            assert!(!ShardSnapshot::verify_head(
                5,
                size,
                &[0xee; 32],
                &proof,
                &commitment
            ));
            assert!(!ShardSnapshot::verify_head(
                5,
                size + 1,
                &head,
                &proof,
                &commitment
            ));
        }
        assert!(log.prove_shard_head(5).is_none());
        // The 1-shard proof degenerates to "the head is the commitment".
        let one = filled(1, 3);
        let (size, head, proof) = one.prove_shard_head(0).unwrap();
        assert_eq!(head, one.commitment());
        assert!(ShardSnapshot::verify_head(
            1,
            size,
            &head,
            &proof,
            &one.commitment()
        ));
    }

    #[test]
    fn commitment_is_domain_separated_from_tree_internals() {
        // A shard head IS a subtree root, so without domain separation a
        // single tree's root would double as a 2-shard commitment over
        // its own left/right subtree roots — letting a compromised domain
        // re-present a legacy signed checkpoint with a fabricated
        // decomposition. The 0x02-prefixed, size-binding leaves make
        // every such reinterpretation hash differently.
        let mut plain = MerkleLog::new();
        for i in 0..12 {
            plain.append(format!("leaf-{i}").as_bytes());
        }
        // The internal split of a 12-leaf RFC 6962 tree is [0..8) | [8..12).
        let fabricated = ShardSnapshot {
            sizes: vec![8, 4],
            heads: vec![plain.root_of_prefix(8), {
                // Root of the right subtree [8..12).
                let mut right = MerkleLog::new();
                for i in 8..12 {
                    right.append(format!("leaf-{i}").as_bytes());
                }
                right.root()
            }],
        };
        // Sanity: the raw (unseparated) fold over those heads WOULD
        // collide with the single-tree root — the attack this test pins.
        assert_eq!(root_over_hashes(&fabricated.heads), plain.root());
        // The real commitment does not.
        assert_ne!(fabricated.commitment(), plain.root());
        // And two decompositions differing only in size split do not
        // share a commitment even when heads coincide.
        let a = ShardSnapshot {
            sizes: vec![1, 2],
            heads: vec![[7; 32], [9; 32]],
        };
        let b = ShardSnapshot {
            sizes: vec![2, 1],
            heads: vec![[7; 32], [9; 32]],
        };
        assert_ne!(a.commitment(), b.commitment());
    }

    #[test]
    fn commitment_changes_with_any_shard() {
        let log = filled(4, 2);
        let before = log.commitment();
        log.append(3, b"new").unwrap();
        assert_ne!(log.commitment(), before);
    }

    #[test]
    fn snapshot_is_coherent() {
        let log = filled(3, 4);
        let snap = log.snapshot();
        assert_eq!(snap.total(), 12);
        assert_eq!(snap.commitment(), log.commitment());
        assert_eq!(snap.sizes, vec![4, 4, 4]);
        for (s, head) in snap.heads.iter().enumerate() {
            assert_eq!(*head, log.lock_shard(s).root());
        }
    }

    #[test]
    fn entries_concatenate_in_shard_order() {
        let log = ShardedLog::new(2);
        log.append(0, b"a0").unwrap();
        log.append(1, b"b0").unwrap();
        log.append(0, b"a1").unwrap();
        assert_eq!(
            log.all_entries_from(0).unwrap(),
            vec![b"a0".to_vec(), b"a1".to_vec(), b"b0".to_vec()]
        );
        assert_eq!(log.all_entries_from(2).unwrap(), vec![b"b0".to_vec()]);
        assert!(log.all_entries_from(4).is_none());
        assert_eq!(log.entries_from(1, 0).unwrap(), vec![b"b0".to_vec()]);
    }

    #[test]
    fn shard_runs_expand_to_valid_proofs() {
        let log = ShardedLog::new(3);
        // Epoch A.
        log.append(0, b"a0").unwrap();
        log.append(1, b"b0").unwrap();
        let epoch_a = log.snapshot();
        // Epoch B: shards 0 and 2 grow, shard 1 is untouched.
        log.append(0, b"a1").unwrap();
        log.append(2, b"c0").unwrap();
        let epoch_b = log.snapshot();

        let bundle = log
            .prove_shard_runs(&[0, 0, 0], &[&epoch_a, &epoch_b])
            .unwrap();
        // Shard 0: one provable transition (1 → 2); the 0 → 1 growth is
        // vacuous. Shard 1 and 2: no provable transitions at all.
        assert_eq!(bundle.runs.len(), 3);
        assert_eq!(bundle.runs[0].steps.len(), 1);
        assert!(bundle.runs[1].steps.is_empty());
        assert!(bundle.runs[2].steps.is_empty());
        let proof = bundle.step(0, 0).unwrap();
        assert_eq!((proof.old_size, proof.new_size), (1, 2));
        assert!(proof.verify(&epoch_a.heads[0], &epoch_b.heads[0]));
    }

    #[test]
    fn shard_runs_share_one_pool() {
        // Two shards growing in lockstep over many epochs: pooled nodes
        // must be fewer than the raw per-proof node total.
        let log = ShardedLog::new(2);
        for s in 0..2u32 {
            for i in 0..32 {
                log.append(s, format!("{s}-{i}").as_bytes()).unwrap();
            }
        }
        let mut snaps = Vec::new();
        for i in 32..40 {
            for s in 0..2u32 {
                log.append(s, format!("{s}-{i}").as_bytes()).unwrap();
            }
            snaps.push(log.snapshot());
        }
        let refs: Vec<&ShardSnapshot> = snaps.iter().collect();
        let bundle = log.prove_shard_runs(&[32, 32], &refs).unwrap();
        let raw: usize = bundle
            .runs
            .iter()
            .map(|r| r.steps.iter().map(|s| s.path.len()).sum::<usize>())
            .sum();
        assert!(
            bundle.nodes.len() < raw,
            "pool {} should be smaller than {raw} raw path nodes",
            bundle.nodes.len()
        );
    }

    #[test]
    fn wire_round_trips() {
        let log = filled(2, 3);
        let snap = log.snapshot();
        assert_eq!(ShardSnapshot::from_wire(&snap.to_wire()), Ok(snap.clone()));
        let bundle = log.prove_shard_runs(&[1, 1], &[&snap]).unwrap();
        assert_eq!(ShardProofBundle::from_wire(&bundle.to_wire()), Ok(bundle));
        // A snapshot whose sizes/heads lengths disagree must not decode.
        let mut bad = Vec::new();
        encode_seq(&[1u64, 2], &mut bad);
        encode_seq(&[[0u8; 32]], &mut bad);
        assert!(ShardSnapshot::from_wire(&bad).is_err());
    }

    #[test]
    fn malformed_run_indices_do_not_expand() {
        let log = filled(1, 4);
        let snap_old = {
            let log2 = filled(1, 2);
            log2.snapshot()
        };
        let snap = log.snapshot();
        let mut bundle = log.prove_shard_runs(&[2], &[&snap]).unwrap();
        let _ = snap_old;
        bundle.runs[0].steps[0].path[0] = 999;
        assert!(bundle.step(0, 0).is_none());
        assert!(bundle.step(1, 0).is_none());
    }

    #[test]
    fn parallel_appends_agree_with_serial() {
        // N threads appending to their own shards concurrently must yield
        // the same commitment as the same appends applied serially.
        let shards = 4usize;
        let per = 200usize;
        let concurrent = std::sync::Arc::new(ShardedLog::new(shards));
        let mut handles = Vec::new();
        for s in 0..shards as u32 {
            let log = std::sync::Arc::clone(&concurrent);
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    log.append(s, format!("shard-{s}-leaf-{i}").as_bytes())
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let serial = filled(shards, per);
        assert_eq!(concurrent.commitment(), serial.commitment());
        assert_eq!(concurrent.total_len(), (shards * per) as u64);
    }
}
