//! Signed log checkpoints ("signed tree heads" in CT terms).
//!
//! Each trust domain periodically signs `(log_id, size, head, logical_time)`
//! with its device key. Two correctly signed checkpoints for the same
//! `(log_id, size)` with different heads are a **publicly verifiable proof
//! of equivocation** — exactly the transferable evidence of misbehavior the
//! paper promises users (§1: "the user will obtain a publicly verifiable
//! proof of misbehavior").

use distrust_crypto::schnorr::{SchnorrSignature, SigningKey, VerifyingKey};
use distrust_crypto::sha256::Digest;
use distrust_wire::codec::{Decode, DecodeError, Encode};
use distrust_wire::wire_struct;

/// The body of a checkpoint (the bytes that get signed).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointBody {
    /// Identifies which log this checkpoint describes (e.g. a hash of the
    /// deployment id and domain index).
    pub log_id: [u8; 32],
    /// Number of entries covered.
    pub size: u64,
    /// Log head: hash-chain head or Merkle root, per deployment config.
    pub head: [u8; 32],
    /// Logical timestamp (monotonic counter, not wall clock — DESIGN.md §5).
    pub logical_time: u64,
}

wire_struct!(CheckpointBody {
    log_id: [u8; 32],
    size: u64,
    head: [u8; 32],
    logical_time: u64,
});

/// Domain tag so checkpoint signatures can never be confused with other
/// Schnorr signatures from the same key.
const CHECKPOINT_DST: &[u8] = b"distrust/checkpoint/v1";

impl CheckpointBody {
    /// The message that is actually signed.
    pub fn signing_bytes(&self) -> Vec<u8> {
        let mut out = CHECKPOINT_DST.to_vec();
        self.encode(&mut out);
        out
    }
}

/// A checkpoint with its signature.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignedCheckpoint {
    /// The signed body.
    pub body: CheckpointBody,
    /// Schnorr signature by the domain's log key.
    pub signature: SchnorrSignature,
}

impl Encode for SignedCheckpoint {
    fn encode(&self, out: &mut Vec<u8>) {
        self.body.encode(out);
        self.signature.to_bytes().encode(out);
    }
}

impl Decode for SignedCheckpoint {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let body = CheckpointBody::decode(input)?;
        let sig_bytes = <[u8; 80]>::decode(input)?;
        let signature = SchnorrSignature::from_bytes(&sig_bytes)
            .ok_or(DecodeError::Invalid("checkpoint signature"))?;
        Ok(Self { body, signature })
    }
}

impl SignedCheckpoint {
    /// Signs a checkpoint body.
    pub fn sign(body: CheckpointBody, key: &SigningKey) -> Self {
        let signature = key.sign(&body.signing_bytes());
        Self { body, signature }
    }

    /// Verifies the signature under the domain's log key.
    pub fn verify(&self, key: &VerifyingKey) -> bool {
        key.verify(&self.body.signing_bytes(), &self.signature)
    }
}

/// A publicly verifiable proof that one log key signed two conflicting
/// views of the same log prefix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EquivocationProof {
    /// First signed checkpoint.
    pub a: SignedCheckpoint,
    /// Second signed checkpoint, same `(log_id, size)`, different head.
    pub b: SignedCheckpoint,
}

impl Encode for EquivocationProof {
    fn encode(&self, out: &mut Vec<u8>) {
        self.a.encode(out);
        self.b.encode(out);
    }
}

impl Decode for EquivocationProof {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Self {
            a: SignedCheckpoint::decode(input)?,
            b: SignedCheckpoint::decode(input)?,
        })
    }
}

impl EquivocationProof {
    /// Checks the proof: both checkpoints verify under `key`, describe the
    /// same `(log_id, size)`, and disagree about the head. Anyone holding
    /// the domain's public key can run this — the proof is transferable.
    pub fn verify(&self, key: &VerifyingKey) -> bool {
        self.a.verify(key)
            && self.b.verify(key)
            && self.a.body.log_id == self.b.body.log_id
            && self.a.body.size == self.b.body.size
            && self.a.body.head != self.b.body.head
    }
}

/// Derives a log id from deployment identifiers.
pub fn log_id(deployment: &[u8], domain_index: u32) -> Digest {
    distrust_crypto::sha256_many(&[
        b"distrust/logid/v1",
        deployment,
        &domain_index.to_le_bytes(),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tag: &[u8]) -> SigningKey {
        SigningKey::derive(b"checkpoint tests", tag)
    }

    fn body(size: u64, head_byte: u8) -> CheckpointBody {
        CheckpointBody {
            log_id: log_id(b"deploy-1", 0),
            size,
            head: [head_byte; 32],
            logical_time: size,
        }
    }

    #[test]
    fn sign_verify_round_trip() {
        let sk = key(b"a");
        let cp = SignedCheckpoint::sign(body(5, 1), &sk);
        assert!(cp.verify(&sk.verifying_key()));
        assert!(!cp.verify(&key(b"b").verifying_key()));
    }

    #[test]
    fn tampered_body_rejected() {
        let sk = key(b"a");
        let mut cp = SignedCheckpoint::sign(body(5, 1), &sk);
        cp.body.size = 6;
        assert!(!cp.verify(&sk.verifying_key()));
    }

    #[test]
    fn wire_round_trip() {
        let sk = key(b"wire");
        let cp = SignedCheckpoint::sign(body(9, 3), &sk);
        let bytes = cp.to_wire();
        let back = SignedCheckpoint::from_wire(&bytes).unwrap();
        assert_eq!(back, cp);
        assert!(back.verify(&sk.verifying_key()));
    }

    #[test]
    fn equivocation_proof_detects_fork() {
        let sk = key(b"evil");
        let vk = sk.verifying_key();
        let cp_a = SignedCheckpoint::sign(body(7, 0xaa), &sk);
        let cp_b = SignedCheckpoint::sign(body(7, 0xbb), &sk);
        let proof = EquivocationProof { a: cp_a, b: cp_b };
        assert!(proof.verify(&vk));
        // Transferable: decode from wire and re-verify.
        let transported = EquivocationProof::from_wire(&proof.to_wire()).unwrap();
        assert!(transported.verify(&vk));
    }

    #[test]
    fn equivocation_proof_rejects_consistent_checkpoints() {
        let sk = key(b"honest");
        let vk = sk.verifying_key();
        // Same head: no equivocation.
        let proof = EquivocationProof {
            a: SignedCheckpoint::sign(body(7, 0xaa), &sk),
            b: SignedCheckpoint::sign(body(7, 0xaa), &sk),
        };
        assert!(!proof.verify(&vk));
        // Different sizes: growth, not equivocation.
        let proof = EquivocationProof {
            a: SignedCheckpoint::sign(body(7, 0xaa), &sk),
            b: SignedCheckpoint::sign(body(8, 0xbb), &sk),
        };
        assert!(!proof.verify(&vk));
    }

    #[test]
    fn equivocation_proof_requires_valid_signatures() {
        let sk = key(b"evil");
        let other = key(b"frame-job");
        // An attacker cannot frame `other` using signatures from `sk`.
        let proof = EquivocationProof {
            a: SignedCheckpoint::sign(body(7, 0xaa), &sk),
            b: SignedCheckpoint::sign(body(7, 0xbb), &sk),
        };
        assert!(!proof.verify(&other.verifying_key()));
    }

    #[test]
    fn log_ids_are_distinct() {
        assert_ne!(log_id(b"deploy-1", 0), log_id(b"deploy-1", 1));
        assert_ne!(log_id(b"deploy-1", 0), log_id(b"deploy-2", 0));
    }
}
