//! RFC 6962-style Merkle tree log with inclusion and consistency proofs.
//!
//! The paper's inspiration is Certificate Transparency (§1, §4.2): CT logs
//! are Merkle trees precisely because they give auditors O(log n) proofs
//! instead of full replays. This module is the "deployment tomorrow"
//! counterpart to [`crate::hashchain`]; Ablation B benchmarks the two
//! against each other.
//!
//! Hashing follows RFC 6962 §2.1: `leaf = H(0x00 || data)`,
//! `node = H(0x01 || left || right)`, split at the largest power of two
//! strictly less than `n`.

use distrust_crypto::sha256::{sha256_many, Digest};

/// Hash of the empty tree (RFC 6962: hash of the empty string).
pub fn empty_root() -> Digest {
    distrust_crypto::sha256(b"")
}

/// RFC 6962 leaf hash.
pub fn leaf_hash(data: &[u8]) -> Digest {
    sha256_many(&[&[0x00], data])
}

/// RFC 6962 interior node hash.
pub fn node_hash(left: &Digest, right: &Digest) -> Digest {
    sha256_many(&[&[0x01], left, right])
}

/// Largest power of two strictly less than `n` (n >= 2).
fn split_point(n: usize) -> usize {
    debug_assert!(n >= 2);
    let mut k = 1usize;
    while k * 2 < n {
        k *= 2;
    }
    k
}

/// Root of a Merkle tree whose **leaf hashes** are given directly (no
/// `0x00` leaf prefixing — the entries are already digests). This is the
/// commitment shape [`crate::shard::ShardedLog`] uses over its
/// (domain-separated) shard-head leaves: for a single entry the root *is*
/// that entry, which is what makes a 1-shard commitment byte-identical to
/// the plain per-shard Merkle root. Callers own domain separation: feed
/// digests that cannot collide with this tree's interior hashes (see
/// [`crate::shard::shard_head_leaf`]).
pub fn root_over_hashes(hashes: &[Digest]) -> Digest {
    match hashes.len() {
        0 => empty_root(),
        1 => hashes[0],
        n => {
            let k = split_point(n);
            node_hash(
                &root_over_hashes(&hashes[..k]),
                &root_over_hashes(&hashes[k..]),
            )
        }
    }
}

/// Inclusion proof for entry `index` in the tree committed by
/// [`root_over_hashes`]. Verify with [`InclusionProof::verify_hash`],
/// passing the entry digest as the leaf hash.
pub fn prove_inclusion_over_hashes(hashes: &[Digest], index: usize) -> Option<InclusionProof> {
    if index >= hashes.len() {
        return None;
    }
    fn path(hashes: &[Digest], index: usize, out: &mut Vec<Digest>) {
        let n = hashes.len();
        if n == 1 {
            return;
        }
        let k = split_point(n);
        if index < k {
            path(&hashes[..k], index, out);
            out.push(root_over_hashes(&hashes[k..]));
        } else {
            path(&hashes[k..], index - k, out);
            out.push(root_over_hashes(&hashes[..k]));
        }
    }
    let mut p = Vec::new();
    path(hashes, index, &mut p);
    Some(InclusionProof {
        index: index as u64,
        size: hashes.len() as u64,
        path: p,
    })
}

/// An append-only Merkle tree over opaque leaves.
///
/// Subtree hashes are cached incrementally: `levels[k][i]` is the root of
/// the complete subtree covering leaves `[i·2^k, (i+1)·2^k)`, maintained
/// as leaves arrive (amortised O(1) hash per append). [`MerkleLog::root`]
/// and [`MerkleLog::root_of_prefix`] fold the O(log n) cached subtrees on
/// the right edge instead of rehashing every leaf, and proof generation
/// reads sibling roots from the same cache — without the cache, every
/// `root()` call cost O(n) hashes and checkpointing grew quadratically
/// with history.
#[derive(Clone, Debug, Default)]
pub struct MerkleLog {
    leaves: Vec<Vec<u8>>,
    /// `levels[0]` holds the leaf hashes; `levels[k][i]` the root of the
    /// complete aligned subtree of `2^k` leaves starting at `i·2^k`.
    levels: Vec<Vec<Digest>>,
}

impl MerkleLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.levels.first().map_or(0, Vec::len)
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a leaf, returning its index.
    pub fn append(&mut self, data: &[u8]) -> usize {
        if self.levels.is_empty() {
            self.levels.push(Vec::new());
        }
        self.levels[0].push(leaf_hash(data));
        self.leaves.push(data.to_vec());
        // Complete any aligned subtrees the new leaf finishes.
        let mut k = 0;
        loop {
            let len = self.levels[k].len();
            if !len.is_multiple_of(2) {
                break;
            }
            let parent = node_hash(&self.levels[k][len - 2], &self.levels[k][len - 1]);
            if self.levels.len() == k + 1 {
                self.levels.push(Vec::new());
            }
            self.levels[k + 1].push(parent);
            k += 1;
        }
        self.leaves.len() - 1
    }

    /// The leaf data at `index`.
    pub fn leaf(&self, index: usize) -> Option<&[u8]> {
        self.leaves.get(index).map(|v| v.as_slice())
    }

    /// The leaves from `index` on — `None` past the end, the empty slice
    /// exactly at it. Borrowing the suffix keeps serving paths index-free:
    /// callers iterate a slice instead of asserting per-leaf range checks.
    pub fn leaves_from(&self, index: usize) -> Option<&[Vec<u8>]> {
        self.leaves.get(index..)
    }

    /// The right-edge subtree roots: the binary decomposition of the
    /// current size into complete aligned subtrees, highest first, read
    /// straight from the level cache. This O(log n) vector determines
    /// [`MerkleLog::root`] (fold with [`CompactRoot`]) and is what a
    /// durable store persists per checkpoint so a cold start can rebuild
    /// the head without replaying the whole shard.
    pub fn right_edge(&self) -> Vec<Digest> {
        let n = self.len();
        let mut edge = Vec::new();
        let mut start = 0usize;
        for k in (0..usize::BITS).rev() {
            if n & (1usize << k) != 0 {
                if let Some(h) = self.levels.get(k as usize).and_then(|l| l.get(start >> k)) {
                    edge.push(*h);
                }
                start += 1usize << k;
            }
        }
        edge
    }

    /// The current tree root.
    pub fn root(&self) -> Digest {
        self.root_of_prefix(self.len())
    }

    /// The root of the first `size` leaves (historical tree heads).
    pub fn root_of_prefix(&self, size: usize) -> Digest {
        assert!(size <= self.len(), "prefix larger than log");
        self.range_root(0, size)
    }

    /// Root of the subtree over leaves `[start, start + len)`, served from
    /// the level cache whenever the range is a complete aligned subtree
    /// (which every left branch of an RFC 6962 split is).
    fn range_root(&self, start: usize, len: usize) -> Digest {
        match len {
            0 => empty_root(),
            1 => self.levels[0][start],
            n => {
                if n.is_power_of_two() && start.is_multiple_of(n) {
                    let k = n.trailing_zeros() as usize;
                    if let Some(h) = self.levels.get(k).and_then(|l| l.get(start >> k)) {
                        return *h;
                    }
                }
                let k = split_point(n);
                node_hash(
                    &self.range_root(start, k),
                    &self.range_root(start + k, n - k),
                )
            }
        }
    }

    /// Inclusion proof for `index` in the tree of the first `size` leaves.
    pub fn prove_inclusion(&self, index: usize, size: usize) -> Option<InclusionProof> {
        if index >= size || size > self.len() {
            return None;
        }
        let mut path = Vec::new();
        self.inclusion_path(0, size, index, &mut path);
        Some(InclusionProof {
            index: index as u64,
            size: size as u64,
            path,
        })
    }

    fn inclusion_path(&self, start: usize, len: usize, index: usize, out: &mut Vec<Digest>) {
        if len == 1 {
            return;
        }
        let k = split_point(len);
        if index < k {
            self.inclusion_path(start, k, index, out);
            out.push(self.range_root(start + k, len - k));
        } else {
            self.inclusion_path(start + k, len - k, index - k, out);
            out.push(self.range_root(start, k));
        }
    }

    /// Consistency proof between the trees of the first `old_size` and
    /// `new_size` leaves (RFC 6962 §2.1.2 PROOF/SUBPROOF).
    pub fn prove_consistency(&self, old_size: usize, new_size: usize) -> Option<ConsistencyProof> {
        if old_size == 0 || old_size > new_size || new_size > self.len() {
            return None;
        }
        let mut path = Vec::new();
        self.subproof(0, new_size, old_size, true, &mut path);
        Some(ConsistencyProof {
            old_size: old_size as u64,
            new_size: new_size as u64,
            path,
        })
    }

    fn subproof(&self, start: usize, len: usize, m: usize, complete: bool, out: &mut Vec<Digest>) {
        if m == len {
            if !complete {
                out.push(self.range_root(start, len));
            }
            return;
        }
        let k = split_point(len);
        if m <= k {
            self.subproof(start, k, m, complete, out);
            out.push(self.range_root(start + k, len - k));
        } else {
            self.subproof(start + k, len - k, m - k, false, out);
            out.push(self.range_root(start, k));
        }
    }
}

/// A Merkle audit path proving one leaf is in a tree of a given size.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InclusionProof {
    /// Leaf index (0-based).
    pub index: u64,
    /// Tree size the proof targets.
    pub size: u64,
    /// Sibling hashes, leaf-to-root order.
    pub path: Vec<Digest>,
}

impl InclusionProof {
    /// Verifies the proof against `root` for leaf content `data`.
    pub fn verify(&self, data: &[u8], root: &Digest) -> bool {
        self.verify_hash(&leaf_hash(data), root)
    }

    /// Verifies with a precomputed leaf hash.
    pub fn verify_hash(&self, leaf: &Digest, root: &Digest) -> bool {
        if self.index >= self.size {
            return false;
        }
        let mut fn_ = self.index;
        let mut sn = self.size - 1;
        let mut acc = *leaf;
        for sibling in &self.path {
            if sn == 0 {
                return false;
            }
            if fn_ & 1 == 1 || fn_ == sn {
                acc = node_hash(sibling, &acc);
                if fn_ & 1 == 0 {
                    // Skip to the next level where fn_ is a right child or
                    // the subtree completes.
                    while fn_ & 1 == 0 && fn_ != 0 {
                        fn_ >>= 1;
                        sn >>= 1;
                    }
                    if fn_ == 0 {
                        // consumed all levels; remaining siblings invalid
                        // unless loop also ends here — handled by final check
                        fn_ = 0;
                    }
                }
            } else {
                acc = node_hash(&acc, sibling);
            }
            fn_ >>= 1;
            sn >>= 1;
        }
        sn == 0 && acc == *root
    }
}

/// A consistency proof between two tree sizes of the same log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConsistencyProof {
    /// The earlier (trusted) size.
    pub old_size: u64,
    /// The later size.
    pub new_size: u64,
    /// Proof nodes per RFC 6962.
    pub path: Vec<Digest>,
}

impl ConsistencyProof {
    /// Verifies that the tree of `new_size` with root `new_root` is an
    /// append-only extension of the tree of `old_size` with root
    /// `old_root` (RFC 6962 §2.1.4.2).
    pub fn verify(&self, old_root: &Digest, new_root: &Digest) -> bool {
        let (m, n) = (self.old_size, self.new_size);
        if m == 0 || m > n {
            return false;
        }
        if m == n {
            return self.path.is_empty() && old_root == new_root;
        }
        // If old_size is a power of two, the old root itself seeds the walk.
        let mut proof: Vec<Digest> = Vec::with_capacity(self.path.len() + 1);
        if m.is_power_of_two() {
            proof.push(*old_root);
        }
        proof.extend_from_slice(&self.path);
        if proof.is_empty() {
            return false;
        }
        let mut fn_ = m - 1;
        let mut sn = n - 1;
        while fn_ & 1 == 1 {
            fn_ >>= 1;
            sn >>= 1;
        }
        let mut iter = proof.iter();
        let first = iter.next().expect("nonempty");
        let mut fr = *first;
        let mut sr = *first;
        for c in iter {
            if sn == 0 {
                return false;
            }
            if fn_ & 1 == 1 || fn_ == sn {
                fr = node_hash(c, &fr);
                sr = node_hash(c, &sr);
                while fn_ != 0 && fn_ & 1 == 0 {
                    fn_ >>= 1;
                    sn >>= 1;
                }
            } else {
                sr = node_hash(&sr, c);
            }
            fn_ >>= 1;
            sn >>= 1;
        }
        fr == *old_root && sr == *new_root && sn == 0
    }
}

/// A constant-size accumulator for the root of a growing RFC 6962 tree:
/// the "peaks" of the binary decomposition of the leaf count, highest
/// first (exactly [`MerkleLog::right_edge`]). Seed it from a persisted
/// checkpoint, push the leaf hashes appended since, and fold the peaks
/// right-to-left for the current root — O(log n) state, no leaf storage.
/// This is the cold-start fast path: rebuild a shard head from a sealed
/// segment's checkpoint plus only the unsealed tail.
#[derive(Clone, Debug, Default)]
pub struct CompactRoot {
    /// `(height, subtree root)` peaks, heights strictly decreasing.
    peaks: Vec<(u32, Digest)>,
}

impl CompactRoot {
    /// An empty accumulator (size 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Seeds the accumulator at `size` leaves from a persisted right
    /// edge. `None` when the edge length does not match the size's binary
    /// decomposition — a corrupt or mismatched checkpoint.
    pub fn from_right_edge(size: u64, edge: &[Digest]) -> Option<Self> {
        if edge.len() != size.count_ones() as usize {
            return None;
        }
        let mut peaks = Vec::with_capacity(edge.len());
        let mut heights = (0..u64::BITS).rev().filter(|k| size & (1u64 << k) != 0);
        for root in edge {
            peaks.push((heights.next()?, *root));
        }
        Some(Self { peaks })
    }

    /// Number of leaves accumulated.
    pub fn size(&self) -> u64 {
        self.peaks.iter().map(|&(h, _)| 1u64 << h).sum()
    }

    /// Appends one leaf by its RFC 6962 leaf hash, merging completed
    /// subtrees (amortised O(1) hashes).
    pub fn push_leaf_hash(&mut self, leaf: Digest) {
        self.peaks.push((0, leaf));
        while let [.., (a, left), (b, right)] = self.peaks[..] {
            if a != b {
                break;
            }
            let parent = node_hash(&left, &right);
            self.peaks.truncate(self.peaks.len() - 2);
            self.peaks.push((a + 1, parent));
        }
    }

    /// Appends one leaf by content.
    pub fn push_leaf(&mut self, data: &[u8]) {
        self.push_leaf_hash(leaf_hash(data));
    }

    /// The current tree root (the empty-tree root at size 0), equal to
    /// [`MerkleLog::root`] over the same leaves.
    pub fn root(&self) -> Digest {
        let mut peaks = self.peaks.iter().rev();
        let Some(&(_, first)) = peaks.next() else {
            return empty_root();
        };
        peaks.fold(first, |acc, &(_, peak)| node_hash(&peak, &acc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn build(n: usize) -> MerkleLog {
        let mut log = MerkleLog::new();
        for i in 0..n {
            log.append(format!("leaf-{i}").as_bytes());
        }
        log
    }

    #[test]
    fn empty_and_singleton_roots() {
        let log = MerkleLog::new();
        assert_eq!(log.root(), empty_root());
        let mut log = MerkleLog::new();
        log.append(b"only");
        assert_eq!(log.root(), leaf_hash(b"only"));
    }

    #[test]
    fn two_leaf_root_is_node_hash() {
        let mut log = MerkleLog::new();
        log.append(b"a");
        log.append(b"b");
        assert_eq!(log.root(), node_hash(&leaf_hash(b"a"), &leaf_hash(b"b")));
    }

    #[test]
    fn three_leaf_root_structure() {
        // RFC 6962: MTH({a,b,c}) = H(0x01 || MTH({a,b}) || MTH({c}))
        let mut log = MerkleLog::new();
        log.append(b"a");
        log.append(b"b");
        log.append(b"c");
        let expect = node_hash(
            &node_hash(&leaf_hash(b"a"), &leaf_hash(b"b")),
            &leaf_hash(b"c"),
        );
        assert_eq!(log.root(), expect);
    }

    #[test]
    fn inclusion_proofs_verify() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 9, 16, 33] {
            let log = build(n);
            let root = log.root();
            for i in 0..n {
                let proof = log.prove_inclusion(i, n).unwrap();
                assert!(
                    proof.verify(format!("leaf-{i}").as_bytes(), &root),
                    "n={n} i={i}"
                );
            }
        }
    }

    #[test]
    fn inclusion_proof_rejects_wrong_leaf() {
        let log = build(10);
        let root = log.root();
        let proof = log.prove_inclusion(4, 10).unwrap();
        assert!(!proof.verify(b"leaf-5", &root));
        assert!(!proof.verify(b"evil", &root));
    }

    #[test]
    fn inclusion_proof_rejects_wrong_root() {
        let log = build(10);
        let proof = log.prove_inclusion(4, 10).unwrap();
        let mut bad_root = log.root();
        bad_root[0] ^= 1;
        assert!(!proof.verify(b"leaf-4", &bad_root));
    }

    #[test]
    fn inclusion_proof_rejects_tampered_path() {
        let log = build(16);
        let root = log.root();
        let mut proof = log.prove_inclusion(7, 16).unwrap();
        proof.path[1][3] ^= 0xff;
        assert!(!proof.verify(b"leaf-7", &root));
    }

    #[test]
    fn inclusion_at_historical_sizes() {
        let log = build(20);
        for size in [1usize, 3, 8, 13, 20] {
            let root = log.root_of_prefix(size);
            for i in 0..size {
                let proof = log.prove_inclusion(i, size).unwrap();
                assert!(proof.verify(format!("leaf-{i}").as_bytes(), &root));
            }
        }
    }

    #[test]
    fn consistency_proofs_verify() {
        let log = build(33);
        for old in [1usize, 2, 3, 4, 7, 8, 9, 16, 32, 33] {
            for new in [old, old + 1, 16, 32, 33] {
                if new < old || new > 33 {
                    continue;
                }
                let proof = log.prove_consistency(old, new).unwrap();
                let old_root = log.root_of_prefix(old);
                let new_root = log.root_of_prefix(new);
                assert!(
                    proof.verify(&old_root, &new_root),
                    "consistency {old}->{new}"
                );
            }
        }
    }

    #[test]
    fn consistency_rejects_forked_history() {
        // Build two logs sharing a 5-leaf prefix, then diverge.
        let mut honest = build(5);
        let mut forked = build(5);
        for i in 5..12 {
            honest.append(format!("leaf-{i}").as_bytes());
            forked.append(format!("evil-{i}").as_bytes());
        }
        let proof = forked.prove_consistency(5, 12).unwrap();
        let old_root = honest.root_of_prefix(5);
        // The fork's proof verifies against its own roots...
        assert!(proof.verify(&old_root, &forked.root()));
        // ...but cannot link the honest old root to the honest new root.
        assert!(!proof.verify(&old_root, &honest.root()));
        // And an honest proof cannot validate the forked head.
        let honest_proof = honest.prove_consistency(5, 12).unwrap();
        assert!(!honest_proof.verify(&old_root, &forked.root()));
    }

    #[test]
    fn consistency_rejects_rewritten_prefix() {
        let log = build(16);
        let mut rewritten = MerkleLog::new();
        rewritten.append(b"tampered-0");
        for i in 1..16 {
            rewritten.append(format!("leaf-{i}").as_bytes());
        }
        let proof = rewritten.prove_consistency(8, 16).unwrap();
        // Proof for the rewritten log cannot connect the honest old root.
        assert!(!proof.verify(&log.root_of_prefix(8), &rewritten.root()));
    }

    #[test]
    fn equal_size_consistency() {
        let log = build(6);
        let proof = log.prove_consistency(6, 6).unwrap();
        assert!(proof.path.is_empty());
        assert!(proof.verify(&log.root(), &log.root()));
        let mut other = log.root();
        other[5] ^= 3;
        assert!(!proof.verify(&log.root(), &other));
    }

    #[test]
    fn cached_roots_match_naive_recompute() {
        // The level cache must be an invisible optimisation: every root and
        // prefix root equals the from-scratch fold over the leaf hashes.
        let mut log = MerkleLog::new();
        for i in 0..70usize {
            log.append(format!("leaf-{i}").as_bytes());
            let naive: Vec<Digest> = (0..=i)
                .map(|j| leaf_hash(format!("leaf-{j}").as_bytes()))
                .collect();
            assert_eq!(log.root(), root_over_hashes(&naive), "size {}", i + 1);
            if i.is_multiple_of(13) {
                for size in [1, i.div_ceil(2), i + 1] {
                    assert_eq!(
                        log.root_of_prefix(size),
                        root_over_hashes(&naive[..size]),
                        "prefix {size} of {}",
                        i + 1
                    );
                }
            }
        }
    }

    #[test]
    fn root_over_hashes_shapes() {
        // Single entry: the root IS the entry (no leaf prefixing) — the
        // property 1-shard wire compatibility rests on.
        let a = [1u8; 32];
        let b = [2u8; 32];
        let c = [3u8; 32];
        assert_eq!(root_over_hashes(&[a]), a);
        assert_eq!(root_over_hashes(&[a, b]), node_hash(&a, &b));
        assert_eq!(
            root_over_hashes(&[a, b, c]),
            node_hash(&node_hash(&a, &b), &c)
        );
    }

    #[test]
    fn inclusion_over_hashes_verifies() {
        let heads: Vec<Digest> = (0..5u8).map(|i| [i; 32]).collect();
        let root = root_over_hashes(&heads);
        for (i, head) in heads.iter().enumerate() {
            let proof = prove_inclusion_over_hashes(&heads, i).unwrap();
            assert!(proof.verify_hash(head, &root), "entry {i}");
            assert!(!proof.verify_hash(&[0xee; 32], &root));
        }
        assert!(prove_inclusion_over_hashes(&heads, 5).is_none());
    }

    #[test]
    fn invalid_proof_requests() {
        let log = build(4);
        assert!(log.prove_inclusion(4, 4).is_none());
        assert!(log.prove_inclusion(0, 5).is_none());
        assert!(log.prove_consistency(0, 4).is_none());
        assert!(log.prove_consistency(3, 5).is_none());
    }

    #[test]
    fn right_edge_matches_binary_decomposition() {
        for n in [0usize, 1, 2, 3, 4, 5, 6, 7, 8, 13, 31, 32, 33, 70] {
            let log = build(n);
            let edge = log.right_edge();
            assert_eq!(edge.len(), n.count_ones() as usize, "size {n}");
            // Each peak is the root of its aligned complete subtree.
            let mut start = 0usize;
            for (peak, k) in edge
                .iter()
                .zip((0..usize::BITS).rev().filter(|k| n & (1 << k) != 0))
            {
                assert_eq!(*peak, log.range_root(start, 1 << k), "size {n} height {k}");
                start += 1 << k;
            }
        }
    }

    #[test]
    fn leaves_from_borrows_the_suffix() {
        let log = build(5);
        assert_eq!(log.leaves_from(0).unwrap().len(), 5);
        assert_eq!(
            log.leaves_from(3).unwrap(),
            &[b"leaf-3".to_vec(), b"leaf-4".to_vec()][..]
        );
        assert_eq!(log.leaves_from(5).unwrap(), &[] as &[Vec<u8>]);
        assert!(log.leaves_from(6).is_none());
    }

    #[test]
    fn compact_root_tracks_merkle_root() {
        let mut log = MerkleLog::new();
        let mut acc = CompactRoot::new();
        assert_eq!(acc.root(), empty_root());
        for i in 0..70usize {
            let leaf = format!("leaf-{i}");
            log.append(leaf.as_bytes());
            acc.push_leaf(leaf.as_bytes());
            assert_eq!(acc.root(), log.root(), "size {}", i + 1);
            assert_eq!(acc.size(), log.len() as u64);
        }
    }

    #[test]
    fn compact_root_seeds_from_right_edge() {
        for n in [1usize, 2, 3, 6, 13, 32, 57] {
            let log = build(n);
            let mut acc = CompactRoot::from_right_edge(n as u64, &log.right_edge()).unwrap();
            assert_eq!(acc.root(), log.root(), "seeded at {n}");
            // Growing the seeded accumulator tracks the grown log.
            let mut log = log;
            for i in n..n + 9 {
                let leaf = format!("leaf-{i}");
                log.append(leaf.as_bytes());
                acc.push_leaf(leaf.as_bytes());
                assert_eq!(acc.root(), log.root(), "grown to {}", i + 1);
            }
        }
        // A mismatched edge is rejected, not mis-folded.
        let log = build(6);
        assert!(CompactRoot::from_right_edge(7, &log.right_edge()).is_none());
        assert!(CompactRoot::from_right_edge(6, &log.right_edge()[1..]).is_none());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn inclusion_round_trips(n in 1usize..64, seed in any::<u64>()) {
            let log = build(n);
            let root = log.root();
            let i = (seed as usize) % n;
            let proof = log.prove_inclusion(i, n).unwrap();
            let leaf = format!("leaf-{i}");
            prop_assert!(proof.verify(leaf.as_bytes(), &root));
        }

        #[test]
        fn consistency_round_trips(old in 1usize..48, extra in 0usize..16) {
            let new = old + extra;
            let log = build(new);
            let proof = log.prove_consistency(old, new).unwrap();
            prop_assert!(proof.verify(
                &log.root_of_prefix(old),
                &log.root_of_prefix(new)
            ));
        }

        #[test]
        fn consistency_catches_mutation(old in 2usize..32, extra in 1usize..16) {
            let new = old + extra;
            let log = build(new);
            let mut proof = log.prove_consistency(old, new).unwrap();
            if !proof.path.is_empty() {
                proof.path[0][0] ^= 1;
                prop_assert!(!proof.verify(
                    &log.root_of_prefix(old),
                    &log.root_of_prefix(new)
                ));
            }
        }
    }
}
