//! Batched audit support: multi-checkpoint proof bundles and the
//! verified-prefix cache.
//!
//! The paper's scalability bottleneck (§5) is that every client audits
//! every trust domain independently: one attestation, one checkpoint
//! fetch, and one consistency proof per round, per domain, per client.
//! This module amortises the log half of that cost in two directions:
//!
//! * **Across checkpoints** — [`ProofBundle`] packs the consistency
//!   proofs linking a whole *range* of checkpoints into one object with
//!   every shared subtree hash stored once
//!   ([`MerkleLog::prove_consistency_range`]). A domain can hand one
//!   bundle to a client that is many epochs behind instead of answering
//!   one `GetConsistency` round-trip per epoch.
//! * **Across audit rounds** — [`VerifiedPrefixCache`] remembers the
//!   highest `(size, head)` a verifier has already checked, so repeated
//!   audits of an unchanged log verify nothing at all and audits of a
//!   grown log verify only the new suffix. The cache also counts the
//!   signature/consistency verifications it performed and skipped, which
//!   the property tests and benches use to prove the amortisation is
//!   real.
//!
//! [`CheckpointBundle`] is the wire-facing combination of the two: the
//! signed checkpoints for a range of epochs plus the [`ProofBundle`]
//! linking them, consumed by `Auditor::observe_bundle`.

use crate::checkpoint::SignedCheckpoint;
use crate::merkle::{ConsistencyProof, MerkleLog};
use distrust_crypto::sha256::Digest;
use distrust_wire::codec::{decode_seq, encode_seq, Decode, DecodeError, Encode};
use std::collections::HashMap;

/// One consistency step inside a [`ProofBundle`]: proves the tree of
/// `new_size` leaves extends the tree of `old_size` leaves. The path
/// holds indices into the bundle's shared node pool instead of raw
/// digests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BundleStep {
    /// The earlier (trusted) size.
    pub old_size: u64,
    /// The later size.
    pub new_size: u64,
    /// Indices into [`ProofBundle::nodes`], leaf-to-root order.
    pub path: Vec<u32>,
}

impl Encode for BundleStep {
    fn encode(&self, out: &mut Vec<u8>) {
        self.old_size.encode(out);
        self.new_size.encode(out);
        encode_seq(&self.path, out);
    }
}

impl Decode for BundleStep {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Self {
            old_size: Decode::decode(input)?,
            new_size: Decode::decode(input)?,
            path: decode_seq(input)?,
        })
    }
}

/// A compact multi-checkpoint consistency proof: pairwise RFC 6962
/// consistency proofs for a run of tree sizes, with the subtree hashes
/// shared between steps deduplicated into one node pool.
///
/// Adjacent consistency proofs of the same log overlap heavily (they walk
/// the same right-edge subtrees), so the pooled encoding is strictly
/// smaller than concatenating the individual proofs whenever the bundle
/// has more than one step.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProofBundle {
    /// Deduplicated proof nodes referenced by every step.
    pub nodes: Vec<Digest>,
    /// Consistency steps, in ascending size order.
    pub steps: Vec<BundleStep>,
}

impl Encode for ProofBundle {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_seq(&self.nodes, out);
        encode_seq(&self.steps, out);
    }
}

impl Decode for ProofBundle {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Self {
            nodes: decode_seq(input)?,
            steps: decode_seq(input)?,
        })
    }
}

impl ProofBundle {
    /// Builds a bundle from individual consistency proofs, deduplicating
    /// the shared nodes.
    pub fn from_proofs(proofs: &[ConsistencyProof]) -> Self {
        let mut nodes: Vec<Digest> = Vec::new();
        let mut index: HashMap<Digest, u32> = HashMap::new();
        let steps = proofs
            .iter()
            .map(|p| BundleStep {
                old_size: p.old_size,
                new_size: p.new_size,
                path: p
                    .path
                    .iter()
                    .map(|d| {
                        *index.entry(*d).or_insert_with(|| {
                            nodes.push(*d);
                            (nodes.len() - 1) as u32
                        })
                    })
                    .collect(),
            })
            .collect();
        Self { nodes, steps }
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the bundle proves nothing (a single-checkpoint bundle).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Expands step `i` back into a standalone [`ConsistencyProof`].
    /// Returns `None` for an out-of-range index or a step referencing a
    /// node outside the pool (a malformed bundle).
    pub fn step(&self, i: usize) -> Option<ConsistencyProof> {
        let step = self.steps.get(i)?;
        let path = step
            .path
            .iter()
            .map(|&idx| self.nodes.get(idx as usize).copied())
            .collect::<Option<Vec<Digest>>>()?;
        Some(ConsistencyProof {
            old_size: step.old_size,
            new_size: step.new_size,
            path,
        })
    }

    /// Total path entries across all steps (each one 4 bytes on the wire,
    /// vs. 32 for a raw digest) — the compactness measure the unit tests
    /// assert on.
    pub fn total_path_entries(&self) -> usize {
        self.steps.iter().map(|s| s.path.len()).sum()
    }
}

/// The wire-facing audit object: signed checkpoints for a range of
/// epochs (strictly ascending sizes, last entry freshest) plus the proof
/// bundle linking them — and, when the verifier reported a non-zero
/// verified prefix, linking that prefix to the first checkpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointBundle {
    /// Signed checkpoints in ascending size order.
    pub checkpoints: Vec<SignedCheckpoint>,
    /// Consistency steps covering every adjacent size transition.
    pub proof: ProofBundle,
}

impl Encode for CheckpointBundle {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_seq(&self.checkpoints, out);
        self.proof.encode(out);
    }
}

impl Decode for CheckpointBundle {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Self {
            checkpoints: decode_seq(input)?,
            proof: Decode::decode(input)?,
        })
    }
}

impl MerkleLog {
    /// Batched consistency-proof API: one [`ProofBundle`] covering the
    /// whole run of tree sizes, equivalent to (but smaller than) calling
    /// [`MerkleLog::prove_consistency`] for each adjacent pair.
    ///
    /// `sizes` must be strictly ascending, start at 1 or later, and end
    /// at or below the current log size; otherwise `None`.
    pub fn prove_consistency_range(&self, sizes: &[usize]) -> Option<ProofBundle> {
        let mut proofs = Vec::with_capacity(sizes.len().saturating_sub(1));
        for w in sizes.windows(2) {
            if w[0] >= w[1] {
                return None;
            }
            proofs.push(self.prove_consistency(w[0], w[1])?);
        }
        Some(ProofBundle::from_proofs(&proofs))
    }
}

/// Remembers the highest `(size, head)` a verifier has fully verified so
/// audit work never repeats below that prefix, and counts the crypto
/// operations performed vs. avoided.
///
/// The counters make amortisation *observable*: the batched-audit
/// property tests assert that no signature or consistency verification is
/// ever charged for data at or below the verified prefix, and the
/// `audit_throughput` bench reports the skip ratio.
#[derive(Clone, Debug, Default)]
pub struct VerifiedPrefixCache {
    verified: Option<(u64, Digest)>,
    /// Per-shard verified `(size, head)` for sharded logs; empty until the
    /// first shard-aware audit (legacy single-tree audits never touch it).
    shard_verified: Vec<(u64, Digest)>,
    signatures_verified: u64,
    consistency_verified: u64,
    skipped: u64,
}

impl VerifiedPrefixCache {
    /// An empty cache: nothing verified yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// The highest verified log size, or `None` before the first
    /// successful verification (note a size-0 checkpoint *is* a
    /// verification, distinct from `None`).
    pub fn verified_size(&self) -> Option<u64> {
        self.verified.map(|(s, _)| s)
    }

    /// The head at the verified size.
    pub fn verified_head(&self) -> Option<&Digest> {
        self.verified.as_ref().map(|(_, h)| h)
    }

    /// True when `size` falls at or below the verified prefix — i.e. the
    /// verifier has nothing new to check about it.
    pub fn covers(&self, size: u64) -> bool {
        self.verified.is_some_and(|(s, _)| size <= s)
    }

    /// Records a successful verification up to `(size, head)`. Never
    /// moves backwards.
    pub fn record(&mut self, size: u64, head: Digest) {
        match self.verified {
            Some((s, _)) if size < s => {}
            _ => self.verified = Some((size, head)),
        }
    }

    /// The per-shard verified prefixes, or `None` before the first
    /// shard-aware verification (a legacy single-tree history).
    pub fn shard_prefixes(&self) -> Option<&[(u64, Digest)]> {
        if self.shard_verified.is_empty() {
            None
        } else {
            Some(&self.shard_verified)
        }
    }

    /// Records the per-shard states of a fully verified epoch. The shard
    /// count is fixed by the first recording (a log cannot reshard under
    /// its signed commitments); recordings never move a shard backwards.
    pub fn record_shards(&mut self, sizes: &[u64], heads: &[Digest]) {
        debug_assert_eq!(sizes.len(), heads.len());
        if self.shard_verified.is_empty() {
            self.shard_verified = sizes.iter().copied().zip(heads.iter().copied()).collect();
            return;
        }
        if self.shard_verified.len() != sizes.len() {
            return;
        }
        for (slot, (size, head)) in self
            .shard_verified
            .iter_mut()
            .zip(sizes.iter().zip(heads.iter()))
        {
            if *size >= slot.0 {
                *slot = (*size, *head);
            }
        }
    }

    /// Counts one checkpoint-signature verification actually performed.
    pub fn note_signature(&mut self) {
        self.signatures_verified += 1;
    }

    /// Counts one consistency-proof verification actually performed.
    pub fn note_consistency(&mut self) {
        self.consistency_verified += 1;
    }

    /// Counts one verification avoided thanks to the cached prefix.
    pub fn note_skipped(&mut self) {
        self.skipped += 1;
    }

    /// Checkpoint-signature verifications performed so far.
    pub fn signatures_verified(&self) -> u64 {
        self.signatures_verified
    }

    /// Consistency-proof verifications performed so far.
    pub fn consistency_verified(&self) -> u64 {
        self.consistency_verified
    }

    /// Verifications avoided thanks to the cached prefix.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(n: usize) -> MerkleLog {
        let mut log = MerkleLog::new();
        for i in 0..n {
            log.append(format!("leaf-{i}").as_bytes());
        }
        log
    }

    #[test]
    fn range_proof_matches_pairwise_proofs() {
        let log = build(40);
        let sizes = [3usize, 8, 9, 17, 32, 40];
        let bundle = log.prove_consistency_range(&sizes).expect("bundle");
        assert_eq!(bundle.len(), sizes.len() - 1);
        for (i, w) in sizes.windows(2).enumerate() {
            let expanded = bundle.step(i).expect("step expands");
            let direct = log.prove_consistency(w[0], w[1]).expect("direct");
            assert_eq!(expanded, direct, "step {i}");
            assert!(expanded.verify(&log.root_of_prefix(w[0]), &log.root_of_prefix(w[1])));
        }
        // No step beyond the last.
        assert!(bundle.step(sizes.len() - 1).is_none());
    }

    #[test]
    fn range_proof_rejects_bad_ranges() {
        let log = build(10);
        assert!(log.prove_consistency_range(&[3, 3]).is_none());
        assert!(log.prove_consistency_range(&[5, 4]).is_none());
        assert!(log.prove_consistency_range(&[0, 4]).is_none());
        assert!(log.prove_consistency_range(&[4, 11]).is_none());
        // Trivial ranges prove nothing but are well-formed.
        assert!(log.prove_consistency_range(&[]).unwrap().is_empty());
        assert!(log.prove_consistency_range(&[7]).unwrap().is_empty());
    }

    #[test]
    fn bundle_deduplicates_shared_nodes() {
        // Many adjacent single-step growths over one log share most of
        // their right-edge subtree hashes.
        let log = build(64);
        let sizes: Vec<usize> = (33..=64).collect();
        let bundle = log.prove_consistency_range(&sizes).expect("bundle");
        let raw_nodes: usize = sizes
            .windows(2)
            .map(|w| log.prove_consistency(w[0], w[1]).unwrap().path.len())
            .sum();
        assert_eq!(bundle.total_path_entries(), raw_nodes);
        assert!(
            bundle.nodes.len() < raw_nodes,
            "pool {} should be smaller than {} raw path nodes",
            bundle.nodes.len(),
            raw_nodes
        );
    }

    #[test]
    fn bundle_wire_round_trip() {
        let log = build(20);
        let bundle = log.prove_consistency_range(&[2, 5, 11, 20]).unwrap();
        let back = ProofBundle::from_wire(&bundle.to_wire()).unwrap();
        assert_eq!(back, bundle);
    }

    #[test]
    fn malformed_step_index_does_not_expand() {
        let log = build(8);
        let mut bundle = log.prove_consistency_range(&[3, 8]).unwrap();
        bundle.steps[0].path[0] = 999; // out of pool
        assert!(bundle.step(0).is_none());
    }

    mod properties {
        use super::super::*;
        use crate::auditor::Auditor;
        use crate::checkpoint::{log_id, CheckpointBody};
        use proptest::prelude::*;

        /// A trust domain mirror: log + per-epoch signed checkpoints,
        /// shaped exactly like the framework's BatchAudit server side.
        struct Domain {
            sk: distrust_crypto::schnorr::SigningKey,
            log: MerkleLog,
            epochs: Vec<SignedCheckpoint>,
            lid: [u8; 32],
            time: u64,
        }

        impl Domain {
            fn new() -> Self {
                Self {
                    sk: distrust_crypto::schnorr::SigningKey::derive(b"batch props", b"domain"),
                    log: MerkleLog::new(),
                    epochs: Vec::new(),
                    lid: log_id(b"batch-props", 0),
                    time: 0,
                }
            }

            fn append(&mut self, leaf: &[u8]) {
                self.log.append(leaf);
                self.time += 1;
                self.epochs.push(SignedCheckpoint::sign(
                    CheckpointBody {
                        log_id: self.lid,
                        size: self.log.len() as u64,
                        head: self.log.root(),
                        logical_time: self.time,
                    },
                    &self.sk,
                ));
            }

            /// Server-shaped bundle for a client whose verified size is
            /// `verified` (mirrors the framework's bundle builder).
            fn bundle_for(&self, verified: u64) -> CheckpointBundle {
                let current = self.log.len() as u64;
                if verified >= current {
                    return CheckpointBundle {
                        checkpoints: vec![self.epochs.last().expect("non-empty").clone()],
                        proof: ProofBundle::default(),
                    };
                }
                let checkpoints: Vec<SignedCheckpoint> = self
                    .epochs
                    .iter()
                    .filter(|cp| cp.body.size > verified)
                    .cloned()
                    .collect();
                let mut sizes: Vec<usize> = Vec::new();
                if verified >= 1 {
                    sizes.push(verified as usize);
                }
                sizes.extend(checkpoints.iter().map(|cp| cp.body.size as usize));
                let proof = self
                    .log
                    .prove_consistency_range(&sizes)
                    .expect("honest range");
                CheckpointBundle { checkpoints, proof }
            }
        }

        /// Feeds the bundle to an auditor one checkpoint at a time with
        /// the matching pairwise proofs — the per-step path.
        fn feed_sequential(auditor: &mut Auditor, bundle: &CheckpointBundle) -> bool {
            let steps: Vec<ConsistencyProof> = (0..bundle.proof.len())
                .filter_map(|i| bundle.proof.step(i))
                .collect();
            for cp in &bundle.checkpoints {
                let trusted = auditor.latest(0).map(|c| c.body.size);
                let proof = trusted.and_then(|t| {
                    steps
                        .iter()
                        .find(|p| p.old_size == t && p.new_size == cp.body.size)
                });
                if !auditor.observe(0, cp.clone(), proof).is_consistent() {
                    return false;
                }
            }
            true
        }

        fn tamper(bundle: &mut CheckpointBundle, mode: u8, domain: &Domain) {
            match mode {
                1 => {
                    // Unsigned head mutation → bad signature.
                    bundle.checkpoints.last_mut().expect("non-empty").body.head[0] ^= 0xff;
                }
                2 => {
                    // Corrupt a shared proof node (when any).
                    if let Some(node) = bundle.proof.nodes.first_mut() {
                        node[0] ^= 0xff;
                    }
                }
                // Drop a proof step (when any).
                3 if !bundle.proof.steps.is_empty() => {
                    bundle.proof.steps.remove(0);
                }
                // Descending sizes (when ≥ 2 checkpoints).
                4 if bundle.checkpoints.len() >= 2 => {
                    bundle.checkpoints.reverse();
                }
                5 => {
                    // Correctly signed equivocation inside the bundle.
                    let last = bundle.checkpoints.last().expect("non-empty");
                    let mut body = last.body.clone();
                    body.head[0] ^= 0xff;
                    body.logical_time += 1;
                    bundle
                        .checkpoints
                        .push(SignedCheckpoint::sign(body, &domain.sk));
                }
                _ => {}
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            /// For random append/audit interleavings, batched verification
            /// accepts iff sequential verification accepts — including
            /// when the final bundle is tampered with — and a clean audit
            /// never performs a verification at or below the cached
            /// verified size.
            #[test]
            fn batched_accepts_iff_sequential_accepts(
                ops in proptest::collection::vec(0u8..4, 1..8),
                tamper_mode in 0u8..6,
            ) {
                let mut domain = Domain::new();
                domain.append(b"genesis epoch");
                let mut seq = Auditor::new(vec![domain.sk.verifying_key()]);
                let mut bat = Auditor::new(vec![domain.sk.verifying_key()]);
                let mut epoch = 0u64;

                for op in &ops {
                    if *op < 2 {
                        epoch += 1;
                        domain.append(format!("epoch {epoch}").as_bytes());
                        continue;
                    }
                    // Honest audit, both paths, from each auditor's own
                    // verified prefix.
                    let verified =
                        bat.latest(0).map(|cp| cp.body.size).unwrap_or(0);
                    let bundle = domain.bundle_for(verified);

                    let cache = bat.prefix_cache(0).expect("domain 0");
                    let sigs_before = cache.signatures_verified();
                    let cons_before = cache.consistency_verified();
                    let prev_verified = cache.verified_size();

                    let batched_ok = bat.observe_bundle(0, &bundle).is_consistent();
                    let sequential_ok = feed_sequential(&mut seq, &bundle);
                    prop_assert!(batched_ok, "honest bundle accepted (batched)");
                    prop_assert!(sequential_ok, "honest bundle accepted (sequential)");

                    // Amortisation invariant: work is proportional to NEW
                    // history only — zero when the log did not grow.
                    let cache = bat.prefix_cache(0).expect("domain 0");
                    let new_epochs = bundle
                        .checkpoints
                        .iter()
                        .filter(|cp| {
                            prev_verified.is_none_or(|v| cp.body.size > v)
                        })
                        .count() as u64;
                    prop_assert!(
                        cache.signatures_verified() - sigs_before <= new_epochs,
                        "signature verifications charged below the verified prefix"
                    );
                    prop_assert!(
                        cache.consistency_verified() - cons_before <= new_epochs,
                        "consistency verifications charged below the verified prefix"
                    );
                    if new_epochs == 0 {
                        prop_assert_eq!(cache.signatures_verified(), sigs_before);
                        prop_assert_eq!(cache.consistency_verified(), cons_before);
                    }
                }

                // Final, possibly tampered audit: acceptance must agree
                // between the two paths.
                let verified = bat.latest(0).map(|cp| cp.body.size).unwrap_or(0);
                let mut bundle = domain.bundle_for(verified);
                tamper(&mut bundle, tamper_mode, &domain);
                let batched_ok = bat.observe_bundle(0, &bundle).is_consistent();
                let sequential_ok = feed_sequential(&mut seq, &bundle);
                prop_assert_eq!(batched_ok, sequential_ok);
            }
        }
    }

    #[test]
    fn prefix_cache_tracks_monotonic_progress() {
        let mut cache = VerifiedPrefixCache::new();
        assert_eq!(cache.verified_size(), None);
        assert!(!cache.covers(0));
        cache.record(0, [0; 32]);
        assert!(cache.covers(0));
        cache.record(5, [1; 32]);
        assert_eq!(cache.verified_size(), Some(5));
        assert!(cache.covers(3));
        assert!(!cache.covers(6));
        // Never moves backwards.
        cache.record(2, [9; 32]);
        assert_eq!(cache.verified_size(), Some(5));
        assert_eq!(cache.verified_head(), Some(&[1; 32]));
    }
}
