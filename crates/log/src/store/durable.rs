//! Append-only segment files per shard, with torn-tail recovery and a
//! checkpoint-seeded cold-start path.
//!
//! File layout under one directory (one log per directory):
//!
//! ```text
//! shard-0000-seg-00000000.dlog    segment chain for shard 0
//! shard-0000-seg-00000001.dlog
//! shard-0001-seg-00000000.dlog    …per shard
//! meta.dlog                       framework meta log (signed artifacts)
//! ```
//!
//! Writes follow a write-ahead discipline: the caller hands a leaf to
//! [`DurableStore::append`] *before* inserting it into the in-memory
//! Merkle tree; the bytes reach the OS immediately and an `fsync` lands
//! every `fsync_every` appends (plus on demand via [`LogStore::sync`] —
//! which checkpoint signing always calls first, so signed history never
//! outruns durable history). When the active segment exceeds
//! `segment_bytes`, the append acks `wants_checkpoint` and the log layer
//! calls [`DurableStore::checkpoint`] with the shard's right-edge subtree
//! roots; the store writes the checkpoint record, a trailer pointing at
//! it, fsyncs, and rotates to a fresh segment.
//!
//! **Recovery** ([`LogStore::recover`]) scans every byte of every
//! segment, validates CRCs and leaf-index contiguity across the chain,
//! truncates the first torn/corrupt record and everything after it, and
//! returns the surviving leaves — the replayed tree then reports the
//! exact pre-crash commitment (or a clean prefix of it). **Cold start**
//! ([`DurableStore::cold_snapshot`]) instead trusts sealed trailers: it
//! reads one checkpoint per shard plus only the unsealed tail, rebuilding
//! every shard head in O(segments + tail) — the fast boot path the
//! `cold_start` bench measures. The blind spots of each path are
//! documented in `PERSISTENCE.md`.

use super::segment::{
    decode_checkpoint_payload, decode_record, decode_trailer, encode_checkpoint_payload,
    encode_leaf_payload, encode_meta_header, encode_record, encode_segment_header, encode_trailer,
    scan_meta, scan_segment, SegmentHeader, HEADER_LEN, REC_CHECKPOINT, REC_LEAF, TRAILER_LEN,
};
use super::{
    AppendAck, DurableOptions, LogStore, MetaRecord, Recovered, RecoveredShard, StoreError,
};
use crate::merkle::{leaf_hash, CompactRoot};
use crate::shard::ShardSnapshot;
use distrust_crypto::sha256::Digest;
use distrust_wire::sync::HealthyMutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

fn segment_path(dir: &Path, shard: u32, segment: u64) -> PathBuf {
    dir.join(format!("shard-{shard:04}-seg-{segment:08}.dlog"))
}

fn meta_path(dir: &Path) -> PathBuf {
    dir.join("meta.dlog")
}

/// Parses a segment filename into `(shard, segment_index)`; `None` for
/// files that are not ours (they are left untouched).
fn parse_segment_name(name: &str) -> Option<(u32, u64)> {
    let rest = name.strip_prefix("shard-")?;
    let (shard, rest) = rest.split_at_checked(4)?;
    let rest = rest.strip_prefix("-seg-")?;
    let (segment, rest) = rest.split_at_checked(8)?;
    if rest != ".dlog" {
        return None;
    }
    Some((shard.parse().ok()?, segment.parse().ok()?))
}

/// Makes a directory entry (new or truncated file) durable.
fn sync_dir(dir: &Path) -> Result<(), StoreError> {
    File::open(dir)?.sync_all()?;
    Ok(())
}

/// Per-shard write cursor. `file` is `None` between a seal and the next
/// append (the successor segment is created lazily).
struct ShardWriter {
    /// Open handle on the active (unsealed) segment.
    file: Option<File>,
    /// Index of the active segment, or of the next one when `file` is
    /// `None`.
    segment_index: u64,
    /// Shard leaf index at which the active segment starts.
    segment_start: u64,
    /// Bytes written to the active segment (header included).
    written: u64,
    /// Total leaves appended to this shard (durable + pending).
    entries: u64,
    /// Appends since the last fsync.
    pending: u32,
}

struct MetaWriter {
    file: Option<File>,
}

/// Segment-file implementation of [`LogStore`]. See the module docs for
/// the format and the recovery/cold-start split.
pub struct DurableStore {
    opts: DurableOptions,
    writers: Vec<HealthyMutex<ShardWriter>>,
    meta: HealthyMutex<MetaWriter>,
}

/// What the opener learned about one shard's last segment without reading
/// the whole chain.
struct TailPosition {
    segment_index: u64,
    segment_start: u64,
    written: u64,
    entries: u64,
    /// Open handle positioned for appends; `None` when the tail is sealed
    /// (or the shard has no segments yet).
    file: Option<File>,
}

impl DurableStore {
    /// Opens (creating if needed) the store under `opts.dir` for `shards`
    /// shards. Positions write cursors by examining only each shard's
    /// last segment; full validation and repair happen in
    /// [`LogStore::recover`], which `ShardedLog::with_store` always calls
    /// before the first append.
    pub fn open(opts: DurableOptions, shards: usize) -> Result<Self, StoreError> {
        let shards = shards.max(1);
        std::fs::create_dir_all(&opts.dir)?;
        let chains = list_segments(&opts.dir)?;
        if let Some(&max_shard) = chains.iter().map(|(shard, _)| shard).max() {
            if max_shard as usize >= shards {
                return Err(StoreError::ShardCountMismatch {
                    store: max_shard as usize + 1,
                    configured: shards,
                });
            }
        }
        let mut writers = Vec::with_capacity(shards);
        for shard in 0..shards as u32 {
            let segments: Vec<u64> = chains
                .iter()
                .filter(|(s, _)| *s == shard)
                .map(|(_, seg)| *seg)
                .collect();
            let tail = position_tail(&opts.dir, shard, &segments)?;
            writers.push(HealthyMutex::new(ShardWriter {
                file: tail.file,
                segment_index: tail.segment_index,
                segment_start: tail.segment_start,
                written: tail.written,
                entries: tail.entries,
                pending: 0,
            }));
        }
        Ok(Self {
            opts,
            writers,
            meta: HealthyMutex::new(MetaWriter { file: None }),
        })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.opts.dir
    }

    fn writer(&self, shard: u32) -> Result<&HealthyMutex<ShardWriter>, StoreError> {
        self.writers
            .get(shard as usize)
            .ok_or(StoreError::NoSuchShard(shard))
    }

    /// Opens (creating + writing the header if needed) the active segment
    /// for a writer that has none.
    fn ensure_active(&self, shard: u32, writer: &mut ShardWriter) -> Result<(), StoreError> {
        if writer.file.is_some() {
            return Ok(());
        }
        let path = segment_path(&self.opts.dir, shard, writer.segment_index);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let existing = file.metadata()?.len();
        if existing < HEADER_LEN as u64 {
            // Fresh (or header-torn) segment: write the header.
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            let header = encode_segment_header(&SegmentHeader {
                shard,
                segment_index: writer.segment_index,
                start_index: writer.segment_start,
            });
            file.write_all(&header)?;
            file.sync_data()?;
            sync_dir(&self.opts.dir)?;
            writer.written = HEADER_LEN as u64;
        } else {
            file.seek(SeekFrom::Start(existing))?;
            writer.written = existing;
        }
        writer.file = Some(file);
        Ok(())
    }

    /// Rebuilds every shard's `(size, head)` from sealed checkpoints plus
    /// only the unsealed tail — O(segments + tail), independent of total
    /// entry count. Trusts sealed trailers (their CRCs still guard every
    /// byte read); deep historical corruption is the full
    /// [`LogStore::recover`] scan's job.
    pub fn cold_snapshot(&self) -> Result<ShardSnapshot, StoreError> {
        let mut sizes = Vec::with_capacity(self.writers.len());
        let mut heads = Vec::with_capacity(self.writers.len());
        let chains = list_segments(&self.opts.dir)?;
        for shard in 0..self.writers.len() as u32 {
            let segments: Vec<u64> = chains
                .iter()
                .filter(|(s, _)| *s == shard)
                .map(|(_, seg)| *seg)
                .collect();
            let (size, root) = cold_shard_head(&self.opts.dir, shard, &segments)?;
            sizes.push(size);
            heads.push(root);
        }
        Ok(ShardSnapshot { sizes, heads })
    }
}

/// Sorted `(shard, segment)` pairs found in the directory.
fn list_segments(dir: &Path) -> Result<Vec<(u32, u64)>, StoreError> {
    let mut found = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some((shard, segment)) = entry.file_name().to_str().and_then(parse_segment_name) {
            found.push((shard, segment));
        }
    }
    found.sort_unstable();
    Ok(found)
}

/// Positions a shard's write cursor from its last segment only (see
/// [`DurableStore::open`]). `segments` is the shard's sorted segment
/// index list.
fn position_tail(dir: &Path, shard: u32, segments: &[u64]) -> Result<TailPosition, StoreError> {
    let Some(&last) = segments.last() else {
        return Ok(TailPosition {
            segment_index: 0,
            segment_start: 0,
            written: 0,
            entries: 0,
            file: None,
        });
    };
    let path = segment_path(dir, shard, last);
    let bytes = std::fs::read(&path)?;
    match scan_segment(&bytes) {
        Ok(scanned) if scanned.sealed => {
            // Sealed tail: the next append opens segment `last + 1`.
            let entries = scanned.header.start_index + scanned.leaves.len() as u64;
            Ok(TailPosition {
                segment_index: last + 1,
                segment_start: entries,
                written: 0,
                entries,
                file: None,
            })
        }
        Ok(scanned) => {
            // Unsealed tail: repair the torn suffix (if any) and append in
            // place.
            let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
            if scanned.torn {
                file.set_len(scanned.valid_len)?;
                file.sync_data()?;
            }
            file.seek(SeekFrom::Start(scanned.valid_len))?;
            Ok(TailPosition {
                segment_index: last,
                segment_start: scanned.header.start_index,
                written: scanned.valid_len,
                entries: scanned.header.start_index + scanned.leaves.len() as u64,
                file: Some(file),
            })
        }
        Err(_) => {
            // Torn header: the segment holds nothing durable. Rewrite it
            // from scratch at the position the previous chain implies;
            // recover() validates that chain in full.
            std::fs::remove_file(&path)?;
            let entries = previous_chain_entries(dir, shard, segments)?;
            Ok(TailPosition {
                segment_index: last,
                segment_start: entries,
                written: 0,
                entries,
                file: None,
            })
        }
    }
}

/// Entries covered by the chain *before* its last segment, derived from
/// the second-to-last segment's content (cheap: one file).
fn previous_chain_entries(dir: &Path, shard: u32, segments: &[u64]) -> Result<u64, StoreError> {
    let Some(&prev) = segments.len().checked_sub(2).and_then(|i| segments.get(i)) else {
        return Ok(0);
    };
    let bytes = std::fs::read(segment_path(dir, shard, prev))?;
    match scan_segment(&bytes) {
        Ok(s) => Ok(s.header.start_index + s.leaves.len() as u64),
        Err(_) => Ok(0),
    }
}

/// Reads the trailer + checkpoint of a sealed segment without scanning
/// its records. `None` when the file is not a cleanly sealed segment.
fn read_seal(path: &Path) -> Option<(u64, Vec<Digest>)> {
    let mut file = File::open(path).ok()?;
    let len = file.metadata().ok()?.len();
    let trailer_at = len.checked_sub(TRAILER_LEN as u64)?;
    let mut trailer = [0u8; TRAILER_LEN];
    file.seek(SeekFrom::Start(trailer_at)).ok()?;
    file.read_exact(&mut trailer).ok()?;
    let offset = decode_trailer(&trailer).ok()?;
    if offset >= trailer_at {
        return None;
    }
    file.seek(SeekFrom::Start(offset)).ok()?;
    let mut record = Vec::new();
    file.take(trailer_at - offset)
        .read_to_end(&mut record)
        .ok()?;
    let mut input = record.as_slice();
    match decode_record(&mut input) {
        Ok((REC_CHECKPOINT, payload)) if input.is_empty() => {
            decode_checkpoint_payload(payload).ok()
        }
        _ => None,
    }
}

/// One shard's `(size, root)` via the newest sealed checkpoint plus a
/// replay of only the segments after it.
fn cold_shard_head(dir: &Path, shard: u32, segments: &[u64]) -> Result<(u64, Digest), StoreError> {
    // Walk backwards to the newest cleanly sealed segment.
    let mut acc = CompactRoot::new();
    let mut replay_from = 0usize;
    for (i, &seg) in segments.iter().enumerate().rev() {
        if let Some((size, edge)) = read_seal(&segment_path(dir, shard, seg)) {
            let Some(seeded) = CompactRoot::from_right_edge(size, &edge) else {
                return Err(StoreError::Corrupt("sealed checkpoint edge shape"));
            };
            acc = seeded;
            replay_from = i + 1;
            break;
        }
    }
    // Replay the unsealed tail (usually zero or one segment).
    for &seg in segments.get(replay_from..).unwrap_or(&[]) {
        let bytes = std::fs::read(segment_path(dir, shard, seg))?;
        let Ok(scanned) = scan_segment(&bytes) else {
            continue; // torn header: nothing durable in this segment
        };
        if scanned.header.start_index != acc.size() {
            return Err(StoreError::Corrupt("segment chain gap on cold start"));
        }
        for leaf in &scanned.leaves {
            acc.push_leaf_hash(leaf_hash(leaf));
        }
    }
    Ok((acc.size(), acc.root()))
}

impl LogStore for DurableStore {
    fn append(&self, shard: u32, index: u64, leaf: &[u8]) -> Result<AppendAck, StoreError> {
        let mut writer = self.writer(shard)?.lock_healthy();
        if index != writer.entries {
            return Err(StoreError::IndexMismatch {
                shard,
                expected: writer.entries,
                got: index,
            });
        }
        self.ensure_active(shard, &mut writer)?;
        let mut buf = Vec::with_capacity(leaf.len() + 32);
        encode_record(REC_LEAF, &encode_leaf_payload(index, leaf), &mut buf);
        let file = writer
            .file
            .as_mut()
            .ok_or(StoreError::Corrupt("no active segment"))?;
        file.write_all(&buf)?;
        writer.written += buf.len() as u64;
        writer.entries += 1;
        writer.pending += 1;
        if writer.pending >= self.opts.fsync_every.max(1) {
            if let Some(file) = writer.file.as_mut() {
                file.sync_data()?;
            }
            writer.pending = 0;
        }
        Ok(AppendAck {
            wants_checkpoint: writer.written >= self.opts.segment_bytes,
        })
    }

    fn checkpoint(&self, shard: u32, size: u64, right_edge: &[Digest]) -> Result<(), StoreError> {
        let mut writer = self.writer(shard)?.lock_healthy();
        if size != writer.entries {
            return Err(StoreError::IndexMismatch {
                shard,
                expected: writer.entries,
                got: size,
            });
        }
        if writer.file.is_none() {
            // Nothing appended since the last seal; no segment to seal.
            return Ok(());
        }
        let offset = writer.written;
        let file = writer
            .file
            .as_mut()
            .ok_or(StoreError::Corrupt("no active segment"))?;
        let mut buf = Vec::new();
        encode_record(
            REC_CHECKPOINT,
            &encode_checkpoint_payload(size, right_edge),
            &mut buf,
        );
        buf.extend_from_slice(&encode_trailer(offset));
        file.write_all(&buf)?;
        file.sync_all()?;
        // Rotate: the next append opens a fresh segment.
        writer.file = None;
        writer.segment_index += 1;
        writer.segment_start = writer.entries;
        writer.written = 0;
        writer.pending = 0;
        Ok(())
    }

    fn sync(&self) -> Result<(), StoreError> {
        for writer in &self.writers {
            let mut writer = writer.lock_healthy();
            if writer.pending > 0 {
                if let Some(file) = writer.file.as_mut() {
                    file.sync_data()?;
                }
                writer.pending = 0;
            }
        }
        Ok(())
    }

    fn append_meta(&self, kind: u8, payload: &[u8]) -> Result<(), StoreError> {
        let mut meta = self.meta.lock_healthy();
        if meta.file.is_none() {
            let path = meta_path(&self.opts.dir);
            let mut file = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .open(&path)?;
            let bytes = {
                let mut bytes = Vec::new();
                file.read_to_end(&mut bytes)?;
                bytes
            };
            let scanned = scan_meta(&bytes);
            if scanned.valid_len == 0 {
                file.set_len(0)?;
                file.seek(SeekFrom::Start(0))?;
                file.write_all(&encode_meta_header())?;
            } else {
                if scanned.torn {
                    file.set_len(scanned.valid_len)?;
                }
                file.seek(SeekFrom::Start(scanned.valid_len))?;
            }
            sync_dir(&self.opts.dir)?;
            meta.file = Some(file);
        }
        let file = meta
            .file
            .as_mut()
            .ok_or(StoreError::Corrupt("no meta log"))?;
        let mut buf = Vec::new();
        encode_record(kind, payload, &mut buf);
        file.write_all(&buf)?;
        file.sync_data()?;
        Ok(())
    }

    fn recover(&self) -> Result<Recovered, StoreError> {
        let mut shards = Vec::with_capacity(self.writers.len());
        for shard in 0..self.writers.len() as u32 {
            // Hold the writer lock across the scan so appends cannot race
            // the repair, and reposition the cursor to the repaired state.
            let mut writer = self.writer(shard)?.lock_healthy();
            let recovered = recover_shard(&self.opts.dir, shard)?;
            writer.file = None;
            writer.entries = recovered.entries;
            writer.segment_index = recovered.next_segment;
            writer.segment_start = recovered.next_segment_start;
            writer.written = recovered.tail_written;
            writer.pending = 0;
            if let Some(path) = recovered.open_tail {
                let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
                file.seek(SeekFrom::Start(recovered.tail_written))?;
                writer.file = Some(file);
            }
            shards.push(recovered.shard);
        }
        let meta = {
            let mut guard = self.meta.lock_healthy();
            // Drop any cached handle: the scan below is the authority and
            // append_meta will reopen (and re-repair) on next use.
            guard.file = None;
            let path = meta_path(&self.opts.dir);
            match std::fs::read(&path) {
                Ok(bytes) => {
                    let scanned = scan_meta(&bytes);
                    if scanned.valid_len < bytes.len() as u64 {
                        let file = OpenOptions::new().write(true).open(&path)?;
                        file.set_len(scanned.valid_len)?;
                        file.sync_all()?;
                    }
                    scanned
                        .records
                        .into_iter()
                        .map(|(kind, payload)| MetaRecord { kind, payload })
                        .collect()
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
                Err(e) => return Err(e.into()),
            }
        };
        Ok(Recovered { shards, meta })
    }
}

/// Result of fully recovering one shard's chain.
struct ShardRecovery {
    shard: RecoveredShard,
    entries: u64,
    /// Index the *active* (next-to-write) segment should have.
    next_segment: u64,
    next_segment_start: u64,
    /// Bytes already in the active segment (0 when it must be created).
    tail_written: u64,
    /// Path of the unsealed tail to reopen for appends, when one exists.
    open_tail: Option<PathBuf>,
}

/// Scans one shard's full chain, repairing torn tails and deleting
/// everything after the first unrecoverable point. Every byte of every
/// segment is validated — this is the paranoid path; cold starts use
/// [`DurableStore::cold_snapshot`] instead.
fn recover_shard(dir: &Path, shard: u32) -> Result<ShardRecovery, StoreError> {
    let segments: Vec<u64> = list_segments(dir)?
        .into_iter()
        .filter(|(s, _)| *s == shard)
        .map(|(_, seg)| seg)
        .collect();
    let mut out = RecoveredShard::default();
    let mut entries = 0u64;
    let mut next_segment = 0u64;
    let mut next_segment_start = 0u64;
    let mut tail_written = 0u64;
    let mut open_tail = None;
    let mut stop = false;
    for (i, &seg) in segments.iter().enumerate() {
        let path = segment_path(dir, shard, seg);
        if stop || seg != next_segment {
            // Chain broken earlier (or an index gap): everything after
            // the break is unreachable history — delete it.
            out.torn = true;
            std::fs::remove_file(&path)?;
            continue;
        }
        let bytes = std::fs::read(&path)?;
        let scanned = match scan_segment(&bytes) {
            Ok(s) => s,
            Err(_) => {
                // Torn/corrupt header: nothing in this segment survives.
                out.torn = true;
                std::fs::remove_file(&path)?;
                stop = true;
                continue;
            }
        };
        if scanned.header.shard != shard
            || scanned.header.segment_index != seg
            || scanned.header.start_index != entries
        {
            // A valid header for the wrong position: treat as corruption.
            out.torn = true;
            std::fs::remove_file(&path)?;
            stop = true;
            continue;
        }
        if scanned.torn || scanned.valid_len < bytes.len() as u64 {
            let file = OpenOptions::new().write(true).open(&path)?;
            file.set_len(scanned.valid_len)?;
            file.sync_all()?;
            out.torn = true;
        }
        entries += scanned.leaves.len() as u64;
        out.leaves.extend(scanned.leaves);
        if let Some(cp) = scanned.checkpoint {
            out.checkpoint = Some(cp);
        }
        if scanned.sealed && !scanned.torn {
            next_segment = seg + 1;
            next_segment_start = entries;
            tail_written = 0;
            open_tail = None;
        } else {
            // Unsealed (or repaired) tail: append here; later segments
            // are orphans of a pre-crash rotation that never completed.
            next_segment = seg;
            next_segment_start = scanned.header.start_index;
            tail_written = scanned.valid_len;
            open_tail = Some(path);
            if i + 1 < segments.len() {
                stop = true;
            }
        }
    }
    sync_dir(dir)?;
    if open_tail.is_none() {
        next_segment_start = entries;
    }
    Ok(ShardRecovery {
        shard: out,
        entries,
        next_segment,
        next_segment_start,
        tail_written,
        open_tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merkle::MerkleLog;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "distrust-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn opts(dir: &Path, segment_bytes: u64) -> DurableOptions {
        DurableOptions {
            dir: dir.to_path_buf(),
            segment_bytes,
            fsync_every: 1,
        }
    }

    #[test]
    fn append_recover_round_trip() {
        let dir = tempdir("roundtrip");
        let store = DurableStore::open(opts(&dir, 1 << 20), 2).unwrap();
        assert!(store
            .recover()
            .unwrap()
            .shards
            .iter()
            .all(|s| s.leaves.is_empty()));
        for i in 0..5u64 {
            store.append(0, i, format!("a-{i}").as_bytes()).unwrap();
        }
        store.append(1, 0, b"b-0").unwrap();
        store.append_meta(9, b"meta-record").unwrap();
        drop(store);

        let store = DurableStore::open(opts(&dir, 1 << 20), 2).unwrap();
        let recovered = store.recover().unwrap();
        assert_eq!(recovered.shards[0].leaves.len(), 5);
        assert_eq!(recovered.shards[0].leaves[3], b"a-3");
        assert_eq!(recovered.shards[1].leaves, vec![b"b-0".to_vec()]);
        assert_eq!(
            recovered.meta,
            vec![MetaRecord {
                kind: 9,
                payload: b"meta-record".to_vec()
            }]
        );
        // The recovered store keeps appending where it left off.
        store.append(0, 5, b"a-5").unwrap();
        assert_eq!(store.recover().unwrap().shards[0].leaves.len(), 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_seals_and_cold_start_matches_replay() {
        let dir = tempdir("rotate");
        // Tiny segments force several rotations.
        let store = DurableStore::open(opts(&dir, 200), 1).unwrap();
        let mut mirror = MerkleLog::new();
        for i in 0..40u64 {
            let leaf = format!("leaf-{i:03}");
            let ack = store.append(0, i, leaf.as_bytes()).unwrap();
            mirror.append(leaf.as_bytes());
            if ack.wants_checkpoint {
                store.checkpoint(0, i + 1, &mirror.right_edge()).unwrap();
            }
        }
        let files = list_segments(&dir).unwrap();
        assert!(files.len() > 2, "expected several segments, got {files:?}");
        // Cold snapshot agrees with full replay.
        let cold = store.cold_snapshot().unwrap();
        assert_eq!(cold.sizes, vec![40]);
        assert_eq!(cold.heads, vec![mirror.root()]);
        drop(store);
        let store = DurableStore::open(opts(&dir, 200), 1).unwrap();
        let recovered = store.recover().unwrap();
        assert_eq!(recovered.shards[0].leaves.len(), 40);
        let mut replayed = MerkleLog::new();
        for leaf in &recovered.shards[0].leaves {
            replayed.append(leaf);
        }
        assert_eq!(replayed.root(), mirror.root());
        assert_eq!(store.cold_snapshot().unwrap().heads, vec![mirror.root()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_count_mismatch_is_refused() {
        let dir = tempdir("mismatch");
        let store = DurableStore::open(opts(&dir, 1 << 20), 4).unwrap();
        store.append(3, 0, b"x").unwrap();
        drop(store);
        assert!(matches!(
            DurableStore::open(opts(&dir, 1 << 20), 2),
            Err(StoreError::ShardCountMismatch {
                store: 4,
                configured: 2
            })
        ));
        // Growing the count is fine (new shards start empty).
        let store = DurableStore::open(opts(&dir, 1 << 20), 8).unwrap();
        let recovered = store.recover().unwrap();
        assert_eq!(recovered.shards[3].leaves, vec![b"x".to_vec()]);
        assert!(recovered.shards[7].leaves.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_on_open_and_recover() {
        let dir = tempdir("torn");
        let store = DurableStore::open(opts(&dir, 1 << 20), 1).unwrap();
        for i in 0..3u64 {
            store.append(0, i, format!("leaf-{i}").as_bytes()).unwrap();
        }
        drop(store);
        // Simulate a torn write: append garbage to the segment.
        let path = segment_path(&dir, 0, 0);
        let clean_len = std::fs::metadata(&path).unwrap().len();
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(&[0xDE, 0xAD, 0xBE]).unwrap();
        drop(file);
        let store = DurableStore::open(opts(&dir, 1 << 20), 1).unwrap();
        // Open already repaired the tail, so recovery sees a clean file
        // with every durable leaf intact and the garbage gone.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
        let recovered = store.recover().unwrap();
        assert_eq!(recovered.shards[0].leaves.len(), 3);
        assert!(!recovered.shards[0].torn, "open repairs the tail");
        // Appends continue cleanly after the repair.
        store.append(0, 3, b"leaf-3").unwrap();
        let recovered = store.recover().unwrap();
        assert_eq!(recovered.shards[0].leaves.len(), 4);
        assert!(!recovered.shards[0].torn, "repair is permanent");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn meta_log_survives_torn_tail() {
        let dir = tempdir("meta");
        let store = DurableStore::open(opts(&dir, 1 << 20), 1).unwrap();
        store.append_meta(1, b"first").unwrap();
        store.append_meta(2, b"second").unwrap();
        drop(store);
        let mut file = OpenOptions::new()
            .append(true)
            .open(meta_path(&dir))
            .unwrap();
        file.write_all(&[0x99; 5]).unwrap();
        drop(file);
        let store = DurableStore::open(opts(&dir, 1 << 20), 1).unwrap();
        let recovered = store.recover().unwrap();
        assert_eq!(recovered.meta.len(), 2);
        store.append_meta(3, b"third").unwrap();
        assert_eq!(store.recover().unwrap().meta.len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segment_name_parsing() {
        assert_eq!(
            parse_segment_name("shard-0001-seg-00000007.dlog"),
            Some((1, 7))
        );
        assert_eq!(parse_segment_name("shard-0001-seg-00000007.tmp"), None);
        assert_eq!(parse_segment_name("meta.dlog"), None);
        assert_eq!(parse_segment_name("shard-xxxx-seg-00000007.dlog"), None);
    }
}
