//! Durable storage under the log layer.
//!
//! A [`crate::shard::ShardedLog`] keeps its Merkle trees in memory for
//! proof generation, but every appended leaf also flows through a
//! [`LogStore`] *before* it is acknowledged into the tree — the
//! write-ahead discipline that makes a restart recoverable instead of a
//! silent history reset. Three implementations:
//!
//! * [`NullStore`] — no persistence, today's in-memory behavior and the
//!   default for `ShardedLog::new` (tests, benches, ephemeral domains);
//! * [`MemStore`] — retains appends in memory and can "recover" them,
//!   exercising the full recovery path without a filesystem;
//! * [`durable::DurableStore`] — append-only segment files per shard with
//!   CRC-framed records, batched fsync, checkpointed subtree roots, and
//!   torn-tail repair (see `PERSISTENCE.md`).
//!
//! The store also carries a small **meta log** for the framework layer:
//! signed genesis/epoch checkpoints and update notices, persisted so a
//! restarted domain *reuses* its pre-crash signatures instead of
//! re-signing — re-signing the same size with a fresh logical time would
//! make an honest domain look like it equivocated against itself.

pub mod durable;
pub mod segment;

pub use durable::DurableStore;

use distrust_crypto::sha256::Digest;
use distrust_wire::sync::HealthyMutex;
use std::path::PathBuf;
use std::sync::Arc;

/// Errors from the storage layer (including recovery).
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// On-disk state is unusable in a way truncation cannot repair.
    Corrupt(&'static str),
    /// An append or checkpoint named a shard the store does not have.
    NoSuchShard(u32),
    /// The store holds more shards than the log is configured for —
    /// opening it would silently drop committed history.
    ShardCountMismatch {
        /// Shards found in the store.
        store: usize,
        /// Shards the log was configured with.
        configured: usize,
    },
    /// The caller's leaf index disagrees with the store's append position
    /// (a log/store divergence — a bug, surfaced instead of masked).
    IndexMismatch {
        /// Shard the append targeted.
        shard: u32,
        /// Next index the store expects.
        expected: u64,
        /// Index the caller presented.
        got: u64,
    },
    /// Recovered signed checkpoints describe a longer log than the store
    /// recovered. Serving from the shorter log would equivocate against
    /// the domain's own signatures, so boot refuses instead.
    LostSignedHistory {
        /// Size the newest recovered signed checkpoint covers.
        signed: u64,
        /// Total leaves actually recovered.
        recovered: u64,
    },
}

impl core::fmt::Display for StoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "storage i/o error: {e}"),
            Self::Corrupt(what) => write!(f, "storage corrupt: {what}"),
            Self::NoSuchShard(s) => write!(f, "no shard {s} in store"),
            Self::ShardCountMismatch { store, configured } => write!(
                f,
                "store has {store} shards but the log is configured for {configured}"
            ),
            Self::IndexMismatch {
                shard,
                expected,
                got,
            } => write!(
                f,
                "shard {shard} append at index {got}, store expects {expected}"
            ),
            Self::LostSignedHistory { signed, recovered } => write!(
                f,
                "signed history covers {signed} entries but only {recovered} were recovered; \
                 refusing to serve a shorter log than this domain already signed"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Where a log keeps its durable state.
#[derive(Clone, Debug)]
pub enum StorageConfig {
    /// No persistence: a restart starts from an empty log (the pre-store
    /// behavior; fine for tests and throwaway deployments).
    Ephemeral,
    /// Append-only segment files under a directory.
    Durable(DurableOptions),
}

/// Tuning for [`DurableStore`].
#[derive(Clone, Debug)]
pub struct DurableOptions {
    /// Directory holding this log's segment and meta files (one log per
    /// directory).
    pub dir: PathBuf,
    /// Rotate (checkpoint + seal) a segment once it reaches this many
    /// bytes. Smaller segments mean cheaper cold starts and more
    /// checkpoint records; the default is 4 MiB.
    pub segment_bytes: u64,
    /// `fsync` after this many appends (per shard). `1` syncs every
    /// append; larger values batch — crash-safe for *signed* history
    /// either way, because checkpoint signing syncs first
    /// (`ShardedLog::sync`), but up to `fsync_every - 1` unsigned tail
    /// entries may be lost in a crash.
    pub fsync_every: u32,
}

impl DurableOptions {
    /// Durable storage under `dir` with conservative defaults: 4 MiB
    /// segments, fsync on every append.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            segment_bytes: 4 << 20,
            fsync_every: 1,
        }
    }
}

/// Result of one store append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendAck {
    /// The active segment is full: the caller should call
    /// [`LogStore::checkpoint`] with the shard's current right edge so
    /// the store can seal and rotate. Advisory — ignoring it only delays
    /// rotation.
    pub wants_checkpoint: bool,
}

/// One record from the meta log (framework-defined kinds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaRecord {
    /// Caller-defined record kind.
    pub kind: u8,
    /// Opaque payload.
    pub payload: Vec<u8>,
}

/// One shard's recovered state.
#[derive(Debug, Clone, Default)]
pub struct RecoveredShard {
    /// Leaf contents in append order.
    pub leaves: Vec<Vec<u8>>,
    /// The newest persisted checkpoint at or below the recovered length:
    /// `(size, right_edge)`. Callers may cross-check the replayed tree
    /// against it.
    pub checkpoint: Option<(u64, Vec<Digest>)>,
    /// True when a torn or corrupt tail was discarded during recovery.
    pub torn: bool,
}

/// Everything a store recovered at open.
#[derive(Debug, Clone, Default)]
pub struct Recovered {
    /// Per-shard state, shard-ordered. May be shorter than the configured
    /// shard count (missing shards recover empty).
    pub shards: Vec<RecoveredShard>,
    /// Meta records in append order.
    pub meta: Vec<MetaRecord>,
}

impl Recovered {
    /// Total recovered leaves across all shards.
    pub fn total_leaves(&self) -> u64 {
        self.shards.iter().map(|s| s.leaves.len() as u64).sum()
    }
}

/// The storage interface under [`crate::shard::ShardedLog`]. All methods
/// take `&self`: stores are shared behind an `Arc` and synchronize
/// internally (per-shard, so parallel shard appends stay parallel).
pub trait LogStore: Send + Sync {
    /// Persists one leaf (write-ahead: called *before* the leaf enters
    /// the in-memory tree). `index` is the leaf's index within `shard`
    /// and must equal the store's append position.
    fn append(&self, shard: u32, index: u64, leaf: &[u8]) -> Result<AppendAck, StoreError>;

    /// Persists a checkpoint of `shard` at `size` leaves with the tree's
    /// right-edge subtree roots, sealing and rotating the active segment.
    fn checkpoint(&self, shard: u32, size: u64, right_edge: &[Digest]) -> Result<(), StoreError>;

    /// Durability barrier: when this returns, every previously appended
    /// leaf and meta record survives a crash.
    fn sync(&self) -> Result<(), StoreError>;

    /// Appends one framework meta record (synced immediately — meta
    /// records are rare and carry signatures).
    fn append_meta(&self, kind: u8, payload: &[u8]) -> Result<(), StoreError>;

    /// Recovers persisted state, repairing torn tails. Called once by
    /// `ShardedLog::with_store` before any append.
    fn recover(&self) -> Result<Recovered, StoreError>;
}

/// Opens the store a [`StorageConfig`] describes.
pub fn open_store(config: &StorageConfig, shards: usize) -> Result<Arc<dyn LogStore>, StoreError> {
    match config {
        StorageConfig::Ephemeral => Ok(Arc::new(NullStore)),
        StorageConfig::Durable(opts) => Ok(Arc::new(DurableStore::open(opts.clone(), shards)?)),
    }
}

/// The no-op store: nothing persists, recovery finds nothing. This is the
/// default for `ShardedLog::new`, keeping ephemeral logs allocation-free
/// on the storage side.
pub struct NullStore;

impl LogStore for NullStore {
    fn append(&self, _shard: u32, _index: u64, _leaf: &[u8]) -> Result<AppendAck, StoreError> {
        Ok(AppendAck {
            wants_checkpoint: false,
        })
    }

    fn checkpoint(&self, _shard: u32, _size: u64, _edge: &[Digest]) -> Result<(), StoreError> {
        Ok(())
    }

    fn sync(&self) -> Result<(), StoreError> {
        Ok(())
    }

    fn append_meta(&self, _kind: u8, _payload: &[u8]) -> Result<(), StoreError> {
        Ok(())
    }

    fn recover(&self) -> Result<Recovered, StoreError> {
        Ok(Recovered::default())
    }
}

/// An in-memory store that *does* retain state: appends and meta records
/// accumulate and recover across `ShardedLog`/framework instances sharing
/// the same `Arc<MemStore>`. This exercises every recovery code path —
/// restart regressions, signed-history reuse — without touching a
/// filesystem, so such tests stay fast and parallel-safe.
pub struct MemStore {
    shards: Vec<HealthyMutex<Vec<Vec<u8>>>>,
    meta: HealthyMutex<Vec<MetaRecord>>,
}

impl MemStore {
    /// An empty retained store with `shards` shards.
    pub fn new(shards: usize) -> Self {
        Self {
            shards: (0..shards.max(1))
                .map(|_| HealthyMutex::new(Vec::new()))
                .collect(),
            meta: HealthyMutex::new(Vec::new()),
        }
    }
}

impl LogStore for MemStore {
    fn append(&self, shard: u32, index: u64, leaf: &[u8]) -> Result<AppendAck, StoreError> {
        let mut guard = self
            .shards
            .get(shard as usize)
            .ok_or(StoreError::NoSuchShard(shard))?
            .lock_healthy();
        if index != guard.len() as u64 {
            return Err(StoreError::IndexMismatch {
                shard,
                expected: guard.len() as u64,
                got: index,
            });
        }
        guard.push(leaf.to_vec());
        Ok(AppendAck {
            wants_checkpoint: false,
        })
    }

    fn checkpoint(&self, shard: u32, _size: u64, _edge: &[Digest]) -> Result<(), StoreError> {
        if (shard as usize) < self.shards.len() {
            Ok(())
        } else {
            Err(StoreError::NoSuchShard(shard))
        }
    }

    fn sync(&self) -> Result<(), StoreError> {
        Ok(())
    }

    fn append_meta(&self, kind: u8, payload: &[u8]) -> Result<(), StoreError> {
        self.meta.lock_healthy().push(MetaRecord {
            kind,
            payload: payload.to_vec(),
        });
        Ok(())
    }

    fn recover(&self) -> Result<Recovered, StoreError> {
        Ok(Recovered {
            shards: self
                .shards
                .iter()
                .map(|s| RecoveredShard {
                    leaves: s.lock_healthy().clone(),
                    checkpoint: None,
                    torn: false,
                })
                .collect(),
            meta: self.meta.lock_healthy().clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_store_recovers_nothing() {
        let store = NullStore;
        store.append(0, 0, b"leaf").unwrap();
        store.append_meta(1, b"meta").unwrap();
        let recovered = store.recover().unwrap();
        assert!(recovered.shards.is_empty() && recovered.meta.is_empty());
    }

    #[test]
    fn mem_store_retains_across_recover() {
        let store = MemStore::new(2);
        store.append(0, 0, b"a").unwrap();
        store.append(1, 0, b"b").unwrap();
        store.append(0, 1, b"c").unwrap();
        store.append_meta(7, b"sig").unwrap();
        let recovered = store.recover().unwrap();
        assert_eq!(
            recovered.shards[0].leaves,
            vec![b"a".to_vec(), b"c".to_vec()]
        );
        assert_eq!(recovered.shards[1].leaves, vec![b"b".to_vec()]);
        assert_eq!(
            recovered.meta,
            vec![MetaRecord {
                kind: 7,
                payload: b"sig".to_vec()
            }]
        );
        assert_eq!(recovered.total_leaves(), 3);
        // Misuse is an error, not a panic.
        assert!(matches!(
            store.append(0, 5, b"x"),
            Err(StoreError::IndexMismatch {
                expected: 2,
                got: 5,
                ..
            })
        ));
        assert!(matches!(
            store.append(9, 0, b"x"),
            Err(StoreError::NoSuchShard(9))
        ));
    }
}
