//! On-disk segment format: headers, length-prefixed CRC-framed records,
//! and sealed-segment trailers.
//!
//! Everything read back from disk is **untrusted input** — a crash can
//! tear a record mid-write and a flipped bit survives fsync — so every
//! decoder here is slice-based, allocation-capped, and total: corruption
//! yields an error (or a shorter valid prefix from [`scan_segment`]),
//! never a panic and never an allocation sized by an announced length.
//! The `decode_*`/`scan_*` names put these functions in scope for
//! `distrust-lint`'s panic-path and taint-alloc passes.
//!
//! Layout (little-endian throughout, like the wire codec):
//!
//! ```text
//! segment  := header record* trailer?
//! header   := magic[8] shard:u32 segment_index:u64 start_index:u64 crc:u32
//! record   := kind:u8 len:u32 payload[len] crc:u32        (crc over kind‖len‖payload)
//! trailer  := magic[8] checkpoint_offset:u64 crc:u32      (only on sealed segments)
//! ```
//!
//! Record kinds: [`REC_LEAF`] carries `index:u64 ‖ data`; [`REC_CHECKPOINT`]
//! carries `size:u64 ‖ count:u32 ‖ count × digest[32]` — the shard's
//! right-edge subtree roots at `size` total leaves (see
//! [`crate::merkle::CompactRoot`]). The meta log reuses the record framing
//! under its own header magic with caller-defined kinds.

use distrust_crypto::sha256::Digest;

/// Magic opening every shard segment file (the `1` is the format version).
pub const SEGMENT_MAGIC: [u8; 8] = *b"DTRLSEG1";
/// Magic opening the meta log file.
pub const META_MAGIC: [u8; 8] = *b"DTRLMET1";
/// Magic opening a sealed-segment trailer.
pub const TRAILER_MAGIC: [u8; 8] = *b"DTRLSEAL";

/// Record kind: one log leaf (`index:u64 ‖ data`).
pub const REC_LEAF: u8 = 1;
/// Record kind: a shard checkpoint (`size:u64 ‖ right-edge digests`).
pub const REC_CHECKPOINT: u8 = 2;

/// Bytes in a segment or meta header.
pub const HEADER_LEN: usize = 32;
/// Bytes in a sealed-segment trailer.
pub const TRAILER_LEN: usize = 20;
/// Framing overhead per record (kind + length + CRC).
pub const RECORD_OVERHEAD: usize = 9;
/// Most right-edge digests a checkpoint can carry (a 64-bit size has at
/// most 64 set bits); also the allocation cap when decoding one.
pub const MAX_RIGHT_EDGE: usize = 64;

/// Decoding errors for segment structures. During recovery every variant
/// means the same thing — "stop trusting the bytes here" — the variants
/// exist for tests and diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentError {
    /// Input ended before the structure was complete (a torn write).
    Truncated,
    /// Magic bytes did not match.
    BadMagic,
    /// CRC mismatch (bit rot or a torn write).
    BadCrc,
    /// Structurally valid but semantically inconsistent.
    Invalid(&'static str),
}

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the checksum
/// guarding every header, record, and trailer. Hand-rolled because the
/// workspace builds offline with no checksum crate baked in.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = !0u32;
    for &b in bytes {
        let idx = ((crc ^ b as u32) & 0xff) as usize;
        // The index is masked to 0..=255, but stay structurally in-bounds.
        crc = (crc >> 8) ^ TABLE.get(idx).copied().unwrap_or(0);
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// The identifying fields of a segment header. `start_index` is the shard
/// leaf index of the segment's first record — recovery checks contiguity
/// across the segment chain with it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentHeader {
    /// Shard this segment belongs to.
    pub shard: u32,
    /// Position of this segment in the shard's chain (0-based).
    pub segment_index: u64,
    /// Shard leaf index at which this segment starts.
    pub start_index: u64,
}

fn header_bytes(magic: &[u8; 8], header: &SegmentHeader) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN);
    out.extend_from_slice(magic);
    out.extend_from_slice(&header.shard.to_le_bytes());
    out.extend_from_slice(&header.segment_index.to_le_bytes());
    out.extend_from_slice(&header.start_index.to_le_bytes());
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Encodes a segment header ([`HEADER_LEN`] bytes).
pub fn encode_segment_header(header: &SegmentHeader) -> Vec<u8> {
    header_bytes(&SEGMENT_MAGIC, header)
}

/// Encodes the meta-log header ([`HEADER_LEN`] bytes).
pub fn encode_meta_header() -> Vec<u8> {
    header_bytes(
        &META_MAGIC,
        &SegmentHeader {
            shard: 0,
            segment_index: 0,
            start_index: 0,
        },
    )
}

fn read_u32(input: &[u8], at: usize) -> Result<u32, SegmentError> {
    let bytes = input
        .get(at..at + 4)
        .ok_or(SegmentError::Truncated)?
        .try_into()
        .map_err(|_| SegmentError::Truncated)?;
    Ok(u32::from_le_bytes(bytes))
}

fn read_u64(input: &[u8], at: usize) -> Result<u64, SegmentError> {
    let bytes = input
        .get(at..at + 8)
        .ok_or(SegmentError::Truncated)?
        .try_into()
        .map_err(|_| SegmentError::Truncated)?;
    Ok(u64::from_le_bytes(bytes))
}

fn decode_header(magic: &[u8; 8], input: &[u8]) -> Result<SegmentHeader, SegmentError> {
    let head = input.get(..HEADER_LEN).ok_or(SegmentError::Truncated)?;
    if head.get(..8) != Some(&magic[..]) {
        return Err(SegmentError::BadMagic);
    }
    let body = head.get(..HEADER_LEN - 4).ok_or(SegmentError::Truncated)?;
    if read_u32(head, HEADER_LEN - 4)? != crc32(body) {
        return Err(SegmentError::BadCrc);
    }
    Ok(SegmentHeader {
        shard: read_u32(head, 8)?,
        segment_index: read_u64(head, 12)?,
        start_index: read_u64(head, 20)?,
    })
}

/// Decodes and validates a segment header from the front of a file image.
pub fn decode_segment_header(input: &[u8]) -> Result<SegmentHeader, SegmentError> {
    decode_header(&SEGMENT_MAGIC, input)
}

/// Validates the meta-log header at the front of a file image.
pub fn decode_meta_header(input: &[u8]) -> Result<(), SegmentError> {
    decode_header(&META_MAGIC, input).map(|_| ())
}

/// Appends one framed record (`kind`, `payload`) to `out`.
pub fn encode_record(kind: u8, payload: &[u8], out: &mut Vec<u8>) {
    let start = out.len();
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out[start..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Decodes one record from the front of `input`, advancing it past the
/// record on success. The payload is borrowed — the announced length can
/// never drive an allocation, only a bounds-checked slice.
pub fn decode_record<'a>(input: &mut &'a [u8]) -> Result<(u8, &'a [u8]), SegmentError> {
    let kind = *input.first().ok_or(SegmentError::Truncated)?;
    let len = read_u32(input, 1)? as usize;
    let framed = input
        .get(
            ..RECORD_OVERHEAD
                .checked_add(len)
                .ok_or(SegmentError::Truncated)?,
        )
        .ok_or(SegmentError::Truncated)?;
    let body = framed.get(..5 + len).ok_or(SegmentError::Truncated)?;
    if read_u32(framed, 5 + len)? != crc32(body) {
        return Err(SegmentError::BadCrc);
    }
    let payload = body.get(5..).ok_or(SegmentError::Truncated)?;
    *input = input.get(framed.len()..).unwrap_or(&[]);
    Ok((kind, payload))
}

/// Encodes a [`REC_LEAF`] payload.
pub fn encode_leaf_payload(index: u64, data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + data.len());
    out.extend_from_slice(&index.to_le_bytes());
    out.extend_from_slice(data);
    out
}

/// Decodes a [`REC_LEAF`] payload into `(index, data)`.
pub fn decode_leaf_payload(payload: &[u8]) -> Result<(u64, &[u8]), SegmentError> {
    let index = read_u64(payload, 0)?;
    let data = payload.get(8..).ok_or(SegmentError::Truncated)?;
    Ok((index, data))
}

/// Encodes a [`REC_CHECKPOINT`] payload: the shard size and its right-edge
/// subtree roots (see [`crate::merkle::MerkleLog::right_edge`]).
pub fn encode_checkpoint_payload(size: u64, right_edge: &[Digest]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + 32 * right_edge.len());
    out.extend_from_slice(&size.to_le_bytes());
    out.extend_from_slice(&(right_edge.len() as u32).to_le_bytes());
    for digest in right_edge {
        out.extend_from_slice(digest);
    }
    out
}

/// Decodes a [`REC_CHECKPOINT`] payload. The digest count must equal the
/// size's set-bit count (the only edge shape a size admits) — which also
/// caps it at [`MAX_RIGHT_EDGE`] before any allocation happens.
pub fn decode_checkpoint_payload(payload: &[u8]) -> Result<(u64, Vec<Digest>), SegmentError> {
    let size = read_u64(payload, 0)?;
    let count = read_u32(payload, 8)? as usize;
    if count != size.count_ones() as usize || count > MAX_RIGHT_EDGE {
        return Err(SegmentError::Invalid("checkpoint edge shape"));
    }
    let mut edge = Vec::with_capacity(count.min(MAX_RIGHT_EDGE));
    let mut rest = payload.get(12..).ok_or(SegmentError::Truncated)?;
    for _ in 0..count.min(MAX_RIGHT_EDGE) {
        let digest: Digest = rest
            .get(..32)
            .ok_or(SegmentError::Truncated)?
            .try_into()
            .map_err(|_| SegmentError::Truncated)?;
        edge.push(digest);
        rest = rest.get(32..).unwrap_or(&[]);
    }
    if !rest.is_empty() {
        return Err(SegmentError::Invalid("checkpoint trailing bytes"));
    }
    Ok((size, edge))
}

/// Encodes a sealed-segment trailer pointing at the file offset of the
/// segment's final checkpoint record.
pub fn encode_trailer(checkpoint_offset: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(TRAILER_LEN);
    out.extend_from_slice(&TRAILER_MAGIC);
    out.extend_from_slice(&checkpoint_offset.to_le_bytes());
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decodes a trailer from exactly [`TRAILER_LEN`] bytes, returning the
/// checkpoint offset it points at.
pub fn decode_trailer(input: &[u8]) -> Result<u64, SegmentError> {
    if input.len() != TRAILER_LEN {
        return Err(SegmentError::Truncated);
    }
    if input.get(..8) != Some(TRAILER_MAGIC.as_slice()) {
        return Err(SegmentError::BadMagic);
    }
    let body = input
        .get(..TRAILER_LEN - 4)
        .ok_or(SegmentError::Truncated)?;
    if read_u32(input, TRAILER_LEN - 4)? != crc32(body) {
        return Err(SegmentError::BadCrc);
    }
    read_u64(input, 8)
}

/// Everything recoverable from one segment file image: the leaves (in
/// order), the last in-file checkpoint, how many bytes were valid, and
/// whether the scan stopped early (`torn`) or ended at a sealed trailer.
#[derive(Debug, Clone)]
pub struct ScannedSegment {
    /// The validated header.
    pub header: SegmentHeader,
    /// Leaf contents, contiguous from `header.start_index`.
    pub leaves: Vec<Vec<u8>>,
    /// The last valid checkpoint in the file: `(size, right_edge)`.
    pub checkpoint: Option<(u64, Vec<Digest>)>,
    /// Bytes from the start of the file that survived validation —
    /// truncate the file here to repair a torn tail.
    pub valid_len: u64,
    /// True when the file ends in a valid trailer (rotation completed).
    pub sealed: bool,
    /// True when invalid bytes followed `valid_len`.
    pub torn: bool,
}

/// Scans one segment file image, stopping at the first invalid byte. A bad
/// header fails the whole scan ([`Err`]); a bad record merely ends it
/// (`torn` set, earlier records kept). Leaf records must be contiguous
/// from `header.start_index` and checkpoints must describe exactly the
/// leaves scanned so far — violations end the scan at the offending
/// record, exactly like a CRC failure.
pub fn scan_segment(bytes: &[u8]) -> Result<ScannedSegment, SegmentError> {
    let header = decode_segment_header(bytes)?;
    let mut scanned = ScannedSegment {
        header,
        leaves: Vec::new(),
        checkpoint: None,
        valid_len: HEADER_LEN as u64,
        sealed: false,
        torn: false,
    };
    let mut rest = bytes.get(HEADER_LEN..).unwrap_or(&[]);
    let mut checkpoint_offset: Option<u64> = None;
    loop {
        if rest.is_empty() {
            return Ok(scanned);
        }
        // A sealed segment ends with a trailer pointing back at its final
        // checkpoint record; try that interpretation exactly at the end.
        if rest.len() == TRAILER_LEN {
            if let Ok(offset) = decode_trailer(rest) {
                if checkpoint_offset == Some(offset) {
                    scanned.valid_len = bytes.len() as u64;
                    scanned.sealed = true;
                    return Ok(scanned);
                }
            }
        }
        let record_offset = (bytes.len() - rest.len()) as u64;
        let mut cursor = rest;
        let parsed = decode_record(&mut cursor).and_then(|(kind, payload)| match kind {
            REC_LEAF => {
                let (index, data) = decode_leaf_payload(payload)?;
                if index != header.start_index + scanned.leaves.len() as u64 {
                    return Err(SegmentError::Invalid("leaf index gap"));
                }
                scanned.leaves.push(data.to_vec());
                Ok(())
            }
            REC_CHECKPOINT => {
                let (size, edge) = decode_checkpoint_payload(payload)?;
                if size != header.start_index + scanned.leaves.len() as u64 {
                    return Err(SegmentError::Invalid("checkpoint size mismatch"));
                }
                scanned.checkpoint = Some((size, edge));
                checkpoint_offset = Some(record_offset);
                Ok(())
            }
            _ => Err(SegmentError::Invalid("unknown record kind")),
        });
        match parsed {
            Ok(()) => {
                rest = cursor;
                scanned.valid_len = (bytes.len() - rest.len()) as u64;
            }
            Err(_) => {
                scanned.torn = true;
                return Ok(scanned);
            }
        }
    }
}

/// The valid prefix of a meta-log file image: records in order, the byte
/// length that survived validation, and whether a torn tail follows. A
/// missing or invalid header yields the empty result with `torn` set (the
/// file is rewritten from scratch), never an error.
#[derive(Debug, Clone, Default)]
pub struct ScannedMeta {
    /// `(kind, payload)` records in file order.
    pub records: Vec<(u8, Vec<u8>)>,
    /// Bytes from the start of the file that survived validation.
    pub valid_len: u64,
    /// True when invalid bytes followed `valid_len`.
    pub torn: bool,
}

/// Scans a meta-log file image, stopping at the first invalid byte.
pub fn scan_meta(bytes: &[u8]) -> ScannedMeta {
    let mut scanned = ScannedMeta::default();
    if decode_meta_header(bytes).is_err() {
        scanned.torn = !bytes.is_empty();
        return scanned;
    }
    scanned.valid_len = HEADER_LEN as u64;
    let mut rest = bytes.get(HEADER_LEN..).unwrap_or(&[]);
    while !rest.is_empty() {
        let mut cursor = rest;
        match decode_record(&mut cursor) {
            Ok((kind, payload)) => {
                scanned.records.push((kind, payload.to_vec()));
                rest = cursor;
                scanned.valid_len = (bytes.len() - rest.len()) as u64;
            }
            Err(_) => {
                scanned.torn = true;
                break;
            }
        }
    }
    scanned
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn header_round_trips_and_rejects_tampering() {
        let header = SegmentHeader {
            shard: 3,
            segment_index: 17,
            start_index: 4242,
        };
        let bytes = encode_segment_header(&header);
        assert_eq!(bytes.len(), HEADER_LEN);
        assert_eq!(decode_segment_header(&bytes), Ok(header));
        // Any flipped bit fails the CRC (or the magic).
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 1;
            assert!(decode_segment_header(&bad).is_err(), "byte {i}");
        }
        // Truncation at every length fails cleanly.
        for n in 0..bytes.len() {
            assert_eq!(
                decode_segment_header(&bytes[..n]),
                Err(SegmentError::Truncated)
            );
        }
        assert_eq!(
            decode_header(&META_MAGIC, &bytes),
            Err(SegmentError::BadMagic)
        );
    }

    #[test]
    fn record_round_trips_and_rejects_corruption() {
        let mut buf = Vec::new();
        encode_record(REC_LEAF, b"payload", &mut buf);
        let mut input = buf.as_slice();
        assert_eq!(
            decode_record(&mut input),
            Ok((REC_LEAF, b"payload".as_slice()))
        );
        assert!(input.is_empty());
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            let mut input = bad.as_slice();
            assert!(decode_record(&mut input).is_err(), "byte {i}");
        }
        for n in 0..buf.len() {
            let mut input = &buf[..n];
            assert_eq!(
                decode_record(&mut input),
                Err(SegmentError::Truncated),
                "len {n}"
            );
        }
    }

    #[test]
    fn record_length_bomb_is_truncation_not_allocation() {
        // A record announcing u32::MAX payload bytes in a short buffer
        // must fail bounds checks; nothing may allocate from the length.
        let mut bomb = vec![REC_LEAF];
        bomb.extend_from_slice(&u32::MAX.to_le_bytes());
        bomb.extend_from_slice(&[0xAA; 64]);
        let mut input = bomb.as_slice();
        assert_eq!(decode_record(&mut input), Err(SegmentError::Truncated));
    }

    #[test]
    fn checkpoint_payload_shape_is_enforced() {
        let edge = vec![[1u8; 32], [2u8; 32], [3u8; 32]];
        // size 7 has three set bits — matches.
        let payload = encode_checkpoint_payload(7, &edge);
        assert_eq!(decode_checkpoint_payload(&payload), Ok((7, edge.clone())));
        // size 8 has one set bit — a three-digest edge is rejected.
        let payload = encode_checkpoint_payload(8, &edge);
        assert_eq!(
            decode_checkpoint_payload(&payload),
            Err(SegmentError::Invalid("checkpoint edge shape"))
        );
        // An announced count larger than the bytes present cannot allocate.
        let mut bomb = 0xFFFF_FFFF_FFFF_FFFFu64.to_le_bytes().to_vec();
        bomb.extend_from_slice(&64u32.to_le_bytes());
        assert_eq!(
            decode_checkpoint_payload(&bomb),
            Err(SegmentError::Truncated)
        );
        // Trailing bytes after the digests are rejected.
        let mut padded = encode_checkpoint_payload(7, &edge);
        padded.push(0);
        assert!(decode_checkpoint_payload(&padded).is_err());
    }

    #[test]
    fn trailer_round_trips() {
        let bytes = encode_trailer(12345);
        assert_eq!(bytes.len(), TRAILER_LEN);
        assert_eq!(decode_trailer(&bytes), Ok(12345));
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 2;
            assert!(decode_trailer(&bad).is_err(), "byte {i}");
        }
        assert!(decode_trailer(&bytes[..TRAILER_LEN - 1]).is_err());
    }

    fn sample_segment(sealed: bool) -> Vec<u8> {
        let header = SegmentHeader {
            shard: 0,
            segment_index: 0,
            start_index: 0,
        };
        let mut bytes = encode_segment_header(&header);
        for i in 0..4u64 {
            encode_record(
                REC_LEAF,
                &encode_leaf_payload(i, format!("leaf-{i}").as_bytes()),
                &mut bytes,
            );
        }
        if sealed {
            let offset = bytes.len() as u64;
            let edge = {
                let mut log = crate::merkle::MerkleLog::new();
                for i in 0..4u64 {
                    log.append(format!("leaf-{i}").as_bytes());
                }
                log.right_edge()
            };
            encode_record(
                REC_CHECKPOINT,
                &encode_checkpoint_payload(4, &edge),
                &mut bytes,
            );
            bytes.extend_from_slice(&encode_trailer(offset));
        }
        bytes
    }

    #[test]
    fn scan_reads_back_leaves_and_seal() {
        let open = sample_segment(false);
        let scanned = scan_segment(&open).unwrap();
        assert_eq!(scanned.leaves.len(), 4);
        assert_eq!(scanned.leaves[2], b"leaf-2");
        assert!(!scanned.sealed && !scanned.torn);
        assert_eq!(scanned.valid_len, open.len() as u64);

        let sealed = sample_segment(true);
        let scanned = scan_segment(&sealed).unwrap();
        assert!(scanned.sealed && !scanned.torn);
        assert_eq!(scanned.checkpoint.as_ref().unwrap().0, 4);
        assert_eq!(scanned.valid_len, sealed.len() as u64);
    }

    #[test]
    fn scan_truncates_at_every_offset_without_panicking() {
        for sealed in [false, true] {
            let bytes = sample_segment(sealed);
            for n in 0..bytes.len() {
                let prefix = &bytes[..n];
                match scan_segment(prefix) {
                    Ok(s) => {
                        assert!(s.valid_len <= n as u64);
                        assert!(s.leaves.len() <= 4);
                    }
                    Err(_) => assert!(n < HEADER_LEN, "only a torn header may fail (n={n})"),
                }
            }
        }
    }

    #[test]
    fn scan_stops_at_bit_flips_keeping_the_prefix() {
        let bytes = sample_segment(true);
        for i in HEADER_LEN..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            let scanned = scan_segment(&bad).unwrap();
            // Whatever survives is a clean prefix of the original leaves.
            for (j, leaf) in scanned.leaves.iter().enumerate() {
                assert_eq!(leaf, format!("leaf-{j}").as_bytes(), "flip at {i}");
            }
            assert!(scanned.valid_len <= bytes.len() as u64);
        }
    }

    #[test]
    fn scan_rejects_index_gaps_and_alien_kinds() {
        let header = SegmentHeader {
            shard: 0,
            segment_index: 0,
            start_index: 10,
        };
        let mut bytes = encode_segment_header(&header);
        encode_record(REC_LEAF, &encode_leaf_payload(10, b"ok"), &mut bytes);
        let good_len = bytes.len() as u64;
        // A leaf skipping an index ends the scan even with a valid CRC.
        encode_record(REC_LEAF, &encode_leaf_payload(12, b"gap"), &mut bytes);
        let scanned = scan_segment(&bytes).unwrap();
        assert_eq!(scanned.leaves.len(), 1);
        assert_eq!(scanned.valid_len, good_len);
        assert!(scanned.torn);
        // Same for an unknown record kind.
        let mut bytes = encode_segment_header(&header);
        encode_record(0x77, b"???", &mut bytes);
        let scanned = scan_segment(&bytes).unwrap();
        assert!(scanned.torn && scanned.leaves.is_empty());
    }

    #[test]
    fn meta_scan_survives_any_prefix() {
        let mut bytes = encode_meta_header();
        encode_record(1, b"genesis", &mut bytes);
        encode_record(3, b"notice", &mut bytes);
        let full = scan_meta(&bytes);
        assert_eq!(full.records.len(), 2);
        assert!(!full.torn);
        for n in 0..bytes.len() {
            let scanned = scan_meta(&bytes[..n]);
            assert!(scanned.records.len() <= 2);
            assert!(scanned.valid_len <= n as u64);
        }
        // Garbage never panics and keeps nothing.
        let garbage = vec![0xEE; 100];
        let scanned = scan_meta(&garbage);
        assert!(scanned.records.is_empty() && scanned.torn);
    }
}
