//! Beta's decode driver: seeds both cross-crate length-bomb directions
//! (taint returned from alpha, taint passed into alpha) plus the guarded
//! twin that must stay silent.

use distrust_alpha::wire::announced_len;
use distrust_alpha::wire::reserve_bounded;
use distrust_alpha::wire::reserve_slots;
use distrust_alpha::wire::MAX_SLOTS;

/// Bomb 1: the announced count comes back from alpha and sizes an
/// allocation here.
pub fn ingest(input: &mut &[u8]) -> Vec<u64> {
    let n = announced_len(input);
    let out: Vec<u64> = Vec::with_capacity(n);
    out
}

/// Bomb 2: the raw count crosses into alpha, which allocates.
pub fn stash(input: &mut &[u8]) -> Vec<u64> {
    let n = announced_len(input);
    reserve_slots(n)
}

/// Guarded twin: the early return bounds `n`, so both the allocation here
/// and the capped helper in alpha stay silent.
pub fn ingest_bounded(input: &mut &[u8]) -> Result<Vec<u64>, WireError> {
    let n = announced_len(input);
    if n > MAX_SLOTS {
        return Err(WireError::TooBig);
    }
    let head: Vec<u64> = Vec::with_capacity(n);
    keep(head);
    Ok(reserve_bounded(n))
}
