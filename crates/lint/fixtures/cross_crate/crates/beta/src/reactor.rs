//! Beta's reactor surface: `pump` is an entry point that reaches alpha's
//! unbounded sleep (the seeded blocking chain), and `backward` closes the
//! seeded lock-order cycle against alpha's `forward`.

use distrust_alpha::sync::grab_ingress;
use distrust_alpha::sync::relay;

pub fn pump(queue: &Receiver) {
    relay(queue);
}

/// Acquires `egress`; alpha's `forward` calls this with `ingress` held.
pub fn grab_egress(state: &Shared) {
    let guard = state.egress.lock();
    stow(guard);
}

/// The inverted direction: `egress` held here while alpha's helper takes
/// `ingress`.
pub fn backward(state: &Shared) {
    let guard = state.egress.lock();
    grab_ingress(state);
    stow(guard);
}
