//! Alpha: the decode surface the beta crate drives. Exports an announced
//! length reader and two allocation helpers — one every caller must bound
//! (beta's raw call makes it the sink of a cross-crate length bomb), one
//! whose only caller guards first and which must stay silent.

pub const MAX_SLOTS: usize = 4096;
/// Seeded dead cap: nothing compares against it, nothing it sizes, no
/// other constant derives from it.
pub const MAX_DEAD_SLOTS: usize = 64;

/// Announced element count, straight off the wire.
pub fn announced_len(input: &mut &[u8]) -> usize {
    decode_len(input).unwrap_or(0)
}

/// Allocates whatever the caller asks for: safe only while every caller
/// bounds `slots` first.
pub fn reserve_slots(slots: usize) -> Vec<u64> {
    let out: Vec<u64> = Vec::with_capacity(slots);
    out
}

/// Twin of `reserve_slots` whose only caller guards `slots` before the
/// call, so the workspace fixpoint proves this allocation bounded.
pub fn reserve_bounded(slots: usize) -> Vec<u64> {
    let out: Vec<u64> = Vec::with_capacity(slots);
    out
}
