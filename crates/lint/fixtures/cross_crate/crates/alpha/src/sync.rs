//! Alpha's lock and relay helpers, driven cross-crate from beta: one half
//! of the seeded lock-order cycle and the tail of the seeded blocking
//! chain live here.

/// Acquires `ingress`; beta's `backward` calls this with `egress` held.
pub fn grab_ingress(state: &Shared) {
    let guard = state.ingress.lock();
    touch(guard);
}

/// One direction of the seeded cross-crate cycle: `ingress` held here
/// while beta's helper takes `egress`.
pub fn forward(state: &Shared) {
    let guard = state.ingress.lock();
    distrust_beta::reactor::grab_egress(state);
    touch(guard);
}

/// Reached from beta's `pump` reactor entry point.
pub fn relay(queue: &Receiver) {
    drain(queue);
}

fn drain(queue: &Receiver) {
    std::thread::sleep(REFILL_PAUSE);
}
