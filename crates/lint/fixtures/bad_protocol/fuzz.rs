//! Fixture fuzz suite: only `Request::A` is exercised, so the protocol
//! pass must flag the missing coverage for the other variants.

pub fn fuzz_request_round_trip() {
    let case = Request::A;
    exercise(case);
}
