//! Seeded violations for the protocol pass: `Request::C` reuses tag 1
//! (duplicate tag, and the tag decodes to `Request::B`), `Request::B` and
//! `Request::C` have no fuzz coverage, and `Sideband` implements Encode
//! with no Decode impl in this file.

pub enum Request {
    A,
    B,
    C,
}

impl Encode for Request {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Request::A => {
                0u8.encode(out);
            }
            Request::B => {
                1u8.encode(out);
            }
            Request::C => {
                1u8.encode(out);
            }
        }
    }
}

impl Decode for Request {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let tag = u8::decode(input)?;
        Ok(match tag {
            0 => Request::A,
            1 => Request::B,
            _ => return Err(DecodeError::BadTag),
        })
    }
}

pub struct Sideband;

impl Encode for Sideband {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(9);
    }
}
