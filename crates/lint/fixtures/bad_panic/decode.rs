//! Seeded violations for the panic pass: an `.unwrap()` on a serving
//! path and unchecked indexing inside a decode-path function.

pub fn serve_request(input: Option<Vec<u8>>) -> Vec<u8> {
    input.unwrap()
}

pub fn decode_header(bytes: &[u8]) -> u8 {
    bytes[0]
}
