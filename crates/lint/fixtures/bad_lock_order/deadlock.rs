//! Seeded violation: `forward` takes alpha then beta, `backward` takes
//! beta then alpha. The lock-order pass must report exactly one cycle.

pub fn forward(state: &Shared) {
    let a = state.alpha.lock();
    let b = state.beta.lock();
    use_both(a, b);
}

pub fn backward(state: &Shared) {
    let b = state.beta.lock();
    let a = state.alpha.lock();
    use_both(a, b);
}
