//! Seeded trust-boundary fixture: unverified signed objects reaching
//! state-changing sinks, plus a verify-first twin that must stay silent.
//! Exactly two findings.

pub fn adopt(&mut self, cp: &SignedCheckpoint) {
    self.heads.insert(cp.body.log_id, cp.body.head);
}

pub fn gate(&mut self, quote: Quote) {
    self.trust_level = quote.level;
}

pub fn adopt_checked(&mut self, cp: &SignedCheckpoint) {
    if !cp.verify(&self.key) {
        return;
    }
    self.heads.insert(cp.body.log_id, cp.body.head);
}
