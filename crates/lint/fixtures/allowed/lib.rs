//! Allowlist fixture: the `.unwrap()` below is a real finding, but the
//! marker suppresses it — the report must show one finding, allowed,
//! with zero denied.

pub fn startup(config: Option<Config>) -> Config {
    // lint:allow(panic): fixture — startup-time invariant, exercised by the allowlist self-test
    config.unwrap()
}
