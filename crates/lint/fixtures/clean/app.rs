//! Clean fixture: every pass runs over this file and must report nothing.
//!
//! It deliberately exercises each pass's happy path — consistent lock
//! order, typed error returns on the decode path, a reactor loop that
//! only uses timed receives, a wire-announced length capped against a
//! constant before allocation, and a signed object verified before it
//! touches state — so a regression that over-fires shows up here as a
//! non-empty report.

pub fn serve(state: &Shared) -> Result<u8, ServeError> {
    let a = state.alpha.lock();
    let b = state.beta.lock();
    combine(a, b)
}

pub fn audit(state: &Shared) -> Result<u8, ServeError> {
    let a = state.alpha.lock();
    let b = state.beta.lock();
    compare(a, b)
}

pub fn decode_header(bytes: &[u8]) -> Result<u8, ServeError> {
    match bytes.first() {
        Some(first) => Ok(*first),
        None => Err(ServeError::Truncated),
    }
}

pub fn reactor_loop(intake: &Receiver) {
    while let Ok(frame) = intake.recv_timeout(TICK) {
        dispatch(frame);
    }
}

fn dispatch(frame: Frame) {
    record(frame);
}

pub fn prepare_buffer(input: &mut &[u8]) -> Result<Vec<u8>, ServeError> {
    let len = decode_len(input)?;
    Ok(vec![0u8; len.min(READ_CHUNK)])
}

pub fn adopt_verified(&mut self, cp: &SignedCheckpoint) -> bool {
    if !cp.verify(&self.key) {
        return false;
    }
    self.heads.insert(cp.body.log_id, cp.body.head);
    true
}
