//! Seeded violation for the reactor-blocking pass: `pump` is a reactor
//! entry point and reaches an unbounded sleep through a helper.

pub fn pump(queue: &Receiver) {
    refill(queue);
}

fn refill(queue: &Receiver) {
    std::thread::sleep(PAUSE);
}
