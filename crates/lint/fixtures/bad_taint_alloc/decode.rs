//! Seeded taint-alloc fixture: wire-announced sizes reaching allocation,
//! loop-bound, and index sinks — one of them through an interprocedural
//! hop — plus one properly capped decoder that must stay silent. Exactly
//! four findings.

/// Helper: the announced count, one call away from the source so the
/// summary propagation (and the `returned by` chain hop) is exercised.
pub fn read_count(input: &mut &[u8]) -> usize {
    decode_len(input).unwrap_or(0)
}

pub fn decode_batch(input: &mut &[u8]) -> Result<Vec<Record>, WireError> {
    let count = read_count(input);
    let mut records = Vec::with_capacity(count);
    for _ in 0..count {
        records.push(Record::decode(input)?);
    }
    Ok(records)
}

pub fn decode_payload(input: &mut &[u8]) -> Result<Vec<u8>, WireError> {
    let len = decode_len(input)?;
    Ok(vec![0u8; len])
}

pub fn select_root(cp: &SignedCheckpoint, roots: &[u64]) -> u64 {
    let slot = cp.body.slot as usize;
    roots[slot]
}

pub fn decode_capped(input: &mut &[u8]) -> Result<Vec<u8>, WireError> {
    let len = decode_len(input)?;
    Ok(vec![0u8; len.min(MAX_FRAME)])
}
