//! Ratchet baseline: a checked-in `lint-baseline.json` of known findings
//! that `--baseline` tolerates, so a new pass can land strict without a
//! big-bang allowlist sweep — while any *growth* in the count still
//! fails CI.
//!
//! Entries are keyed by `(pass, file, message)` — deliberately **not** by
//! line number, so unrelated edits that shift a file do not invalidate
//! the baseline. Each entry carries a `count` (how many identical
//! findings are tolerated; extras are new and denied) and a mandatory
//! human `reason`. `--write-baseline` regenerates the file from the
//! current findings, preserving reasons for keys that survive.
//!
//! The parser is a minimal hand-rolled JSON reader (std only, like the
//! rest of this crate): objects, arrays, strings with the escapes our
//! writer emits, integers, booleans and null.

use crate::report::{json_str, Report};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One tolerated finding class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    pub pass: String,
    pub file: String,
    pub message: String,
    pub count: usize,
    pub reason: String,
}

#[derive(Debug, Clone, Default)]
pub struct Baseline {
    pub entries: Vec<Entry>,
}

/// Outcome of matching a report against a baseline.
#[derive(Debug, Default)]
pub struct BaselineDiff {
    pub matched: usize,
    /// Findings not covered (new, or beyond an entry's count).
    pub fresh: usize,
    /// Baseline entries (whole or partial counts) no longer observed.
    pub stale: Vec<(String, String, String, usize)>,
}

impl Baseline {
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let value = Json::parse(text)?;
        let mut out = Baseline::default();
        let Json::Object(top) = value else {
            return Err("baseline: top level must be an object".into());
        };
        let Some(Json::Array(entries)) = top.iter().find(|(k, _)| k == "entries").map(|(_, v)| v)
        else {
            return Err("baseline: missing `entries` array".into());
        };
        for e in entries {
            let Json::Object(fields) = e else {
                return Err("baseline: each entry must be an object".into());
            };
            let get_str = |name: &str| -> Result<String, String> {
                match fields.iter().find(|(k, _)| k == name).map(|(_, v)| v) {
                    Some(Json::String(s)) => Ok(s.clone()),
                    _ => Err(format!("baseline: entry missing string `{name}`")),
                }
            };
            let count = match fields.iter().find(|(k, _)| k == "count").map(|(_, v)| v) {
                Some(Json::Number(n)) if *n >= 1 => *n as usize,
                _ => return Err("baseline: entry needs a positive `count`".into()),
            };
            let entry = Entry {
                pass: get_str("pass")?,
                file: get_str("file")?,
                message: get_str("message")?,
                count,
                reason: get_str("reason")?,
            };
            if entry.reason.trim().is_empty() {
                return Err(format!(
                    "baseline: entry for {}:[{}] has an empty reason; every tolerated \
                     finding must be justified",
                    entry.file, entry.pass
                ));
            }
            out.entries.push(entry);
        }
        Ok(out)
    }

    /// Marks findings covered by this baseline (in the report's sorted
    /// deterministic order, greedily up to each entry's count) and
    /// returns the diff. Allowlisted findings never consume baseline
    /// budget.
    pub fn apply(&self, report: &mut Report) -> BaselineDiff {
        let mut budget: BTreeMap<(String, String, String), (usize, String)> = BTreeMap::new();
        for e in &self.entries {
            let slot = budget
                .entry((e.pass.clone(), e.file.clone(), e.message.clone()))
                .or_insert((0, e.reason.clone()));
            slot.0 += e.count;
        }
        let mut diff = BaselineDiff::default();
        for f in &mut report.findings {
            if f.allowed.is_some() {
                continue;
            }
            let key = (f.pass.clone(), f.file.clone(), f.message.clone());
            match budget.get_mut(&key) {
                Some((n, reason)) if *n > 0 => {
                    *n -= 1;
                    f.baselined = Some(reason.clone());
                    diff.matched += 1;
                }
                _ => diff.fresh += 1,
            }
        }
        for ((pass, file, message), (left, _)) in budget {
            if left > 0 {
                diff.stale.push((pass, file, message, left));
            }
        }
        diff
    }

    /// Serializes deterministically (entries sorted by key).
    pub fn render(&self) -> String {
        let mut entries = self.entries.clone();
        entries.sort_by(|a, b| (&a.pass, &a.file, &a.message).cmp(&(&b.pass, &b.file, &b.message)));
        let mut out = String::from("{\n  \"entries\": [\n");
        for (i, e) in entries.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"pass\": {}, \"file\": {}, \"message\": {}, \"count\": {}, \"reason\": {}}}",
                json_str(&e.pass),
                json_str(&e.file),
                json_str(&e.message),
                e.count,
                json_str(&e.reason)
            );
            out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Builds a baseline covering every unallowlisted finding in
    /// `report`, keeping reasons from `prior` where the key survives and
    /// stamping a TODO reason on genuinely new entries.
    pub fn regenerate(report: &Report, prior: &Baseline) -> Baseline {
        let reasons: BTreeMap<(&str, &str, &str), &str> = prior
            .entries
            .iter()
            .map(|e| {
                (
                    (e.pass.as_str(), e.file.as_str(), e.message.as_str()),
                    e.reason.as_str(),
                )
            })
            .collect();
        let mut counts: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        for f in &report.findings {
            if f.allowed.is_some() {
                continue;
            }
            *counts
                .entry((f.pass.clone(), f.file.clone(), f.message.clone()))
                .or_default() += 1;
        }
        Baseline {
            entries: counts
                .into_iter()
                .map(|((pass, file, message), count)| {
                    let reason = reasons
                        .get(&(pass.as_str(), file.as_str(), message.as_str()))
                        .map(|r| r.to_string())
                        .unwrap_or_else(|| "TODO: add rationale".to_string());
                    Entry {
                        pass,
                        file,
                        message,
                        count,
                        reason,
                    }
                })
                .collect(),
        }
    }

    /// Entries of `prior` whose `(pass, file, message)` key no longer
    /// appears in this baseline — the findings that got fixed between the
    /// two regenerations. `--write-baseline` lists them so a shrinking
    /// ratchet is visible in the log, not silent.
    pub fn dropped_from(&self, prior: &Baseline) -> Vec<Entry> {
        let kept: std::collections::BTreeSet<(&str, &str, &str)> = self
            .entries
            .iter()
            .map(|e| (e.pass.as_str(), e.file.as_str(), e.message.as_str()))
            .collect();
        prior
            .entries
            .iter()
            .filter(|e| !kept.contains(&(e.pass.as_str(), e.file.as_str(), e.message.as_str())))
            .cloned()
            .collect()
    }
}

/// Minimal JSON value for the baseline file.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Object(Vec<(String, Json)>),
    Array(Vec<Json>),
    String(String),
    Number(i64),
    Bool(bool),
    Null,
}

impl Json {
    fn parse(text: &str) -> Result<Json, String> {
        let chars: Vec<char> = text.chars().collect();
        let mut pos = 0usize;
        let v = parse_value(&chars, &mut pos)?;
        skip_ws(&chars, &mut pos);
        if pos != chars.len() {
            return Err(format!("baseline: trailing content at offset {pos}"));
        }
        Ok(v)
    }
}

fn skip_ws(chars: &[char], pos: &mut usize) {
    while chars.get(*pos).is_some_and(|c| c.is_whitespace()) {
        *pos += 1;
    }
}

fn expect(chars: &[char], pos: &mut usize, want: char) -> Result<(), String> {
    skip_ws(chars, pos);
    if chars.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "baseline: expected `{want}` at offset {pos}",
            pos = *pos
        ))
    }
}

fn parse_value(chars: &[char], pos: &mut usize) -> Result<Json, String> {
    skip_ws(chars, pos);
    match chars.get(*pos) {
        Some('{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(chars, pos);
            if chars.get(*pos) == Some(&'}') {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            loop {
                skip_ws(chars, pos);
                let key = parse_string(chars, pos)?;
                expect(chars, pos, ':')?;
                let value = parse_value(chars, pos)?;
                fields.push((key, value));
                skip_ws(chars, pos);
                match chars.get(*pos) {
                    Some(',') => *pos += 1,
                    Some('}') => {
                        *pos += 1;
                        return Ok(Json::Object(fields));
                    }
                    _ => return Err(format!("baseline: bad object at offset {}", *pos)),
                }
            }
        }
        Some('[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(chars, pos);
            if chars.get(*pos) == Some(&']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(chars, pos)?);
                skip_ws(chars, pos);
                match chars.get(*pos) {
                    Some(',') => *pos += 1,
                    Some(']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("baseline: bad array at offset {}", *pos)),
                }
            }
        }
        Some('"') => Ok(Json::String(parse_string(chars, pos)?)),
        Some('t') if chars[*pos..].starts_with(&['t', 'r', 'u', 'e']) => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some('f') if chars[*pos..].starts_with(&['f', 'a', 'l', 's', 'e']) => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some('n') if chars[*pos..].starts_with(&['n', 'u', 'l', 'l']) => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(c) if c.is_ascii_digit() || *c == '-' => {
            let start = *pos;
            if chars.get(*pos) == Some(&'-') {
                *pos += 1;
            }
            while chars.get(*pos).is_some_and(|c| c.is_ascii_digit()) {
                *pos += 1;
            }
            let text: String = chars[start..*pos].iter().collect();
            text.parse::<i64>()
                .map(Json::Number)
                .map_err(|_| format!("baseline: bad number `{text}`"))
        }
        _ => Err(format!("baseline: unexpected content at offset {}", *pos)),
    }
}

fn parse_string(chars: &[char], pos: &mut usize) -> Result<String, String> {
    if chars.get(*pos) != Some(&'"') {
        return Err(format!("baseline: expected string at offset {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = chars.get(*pos) {
        *pos += 1;
        match c {
            '"' => return Ok(out),
            '\\' => {
                let Some(&esc) = chars.get(*pos) else {
                    return Err("baseline: unterminated escape".into());
                };
                *pos += 1;
                match esc {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'u' => {
                        let hex: String = chars.get(*pos..*pos + 4).unwrap_or(&[]).iter().collect();
                        *pos += 4;
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|_| format!("baseline: bad \\u escape `{hex}`"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("baseline: unknown escape `\\{other}`")),
                }
            }
            other => out.push(other),
        }
    }
    Err("baseline: unterminated string".into())
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::report::Finding;

    fn finding(pass: &str, file: &str, message: &str) -> Finding {
        finding_at(pass, file, 10, message)
    }

    fn finding_at(pass: &str, file: &str, line: u32, message: &str) -> Finding {
        Finding::new(pass, file, line, message.to_string())
    }

    #[test]
    fn roundtrip_parse_render() {
        let b = Baseline {
            entries: vec![Entry {
                pass: "taint-alloc".into(),
                file: "crates/x/src/a.rs".into(),
                message: "tainted \"size\"".into(),
                count: 2,
                reason: "bounded by frame cap".into(),
            }],
        };
        let parsed = Baseline::parse(&b.render()).unwrap();
        assert_eq!(parsed.entries, b.entries);
    }

    #[test]
    fn apply_matches_up_to_count_and_flags_growth() {
        let b = Baseline {
            entries: vec![Entry {
                pass: "panic".into(),
                file: "f.rs".into(),
                message: "boom".into(),
                count: 1,
                reason: "legacy".into(),
            }],
        };
        let mut report = Report::default();
        report
            .findings
            .push(finding_at("panic", "f.rs", 10, "boom"));
        report
            .findings
            .push(finding_at("panic", "f.rs", 20, "boom"));
        report.finish();
        let diff = b.apply(&mut report);
        assert_eq!(diff.matched, 1);
        assert_eq!(diff.fresh, 1);
        assert_eq!(report.denied(), 1);
    }

    #[test]
    fn stale_entries_are_reported_not_fatal() {
        let b = Baseline {
            entries: vec![Entry {
                pass: "panic".into(),
                file: "gone.rs".into(),
                message: "boom".into(),
                count: 1,
                reason: "legacy".into(),
            }],
        };
        let mut report = Report::default();
        let diff = b.apply(&mut report);
        assert_eq!(diff.stale.len(), 1);
        assert_eq!(report.denied(), 0);
    }

    #[test]
    fn empty_reason_is_rejected() {
        let text =
            r#"{"entries":[{"pass":"panic","file":"f.rs","message":"m","count":1,"reason":"  "}]}"#;
        assert!(Baseline::parse(text).is_err());
    }

    #[test]
    fn regenerate_preserves_reasons_by_key() {
        let prior = Baseline {
            entries: vec![Entry {
                pass: "panic".into(),
                file: "f.rs".into(),
                message: "boom".into(),
                count: 5,
                reason: "known legacy site".into(),
            }],
        };
        let mut report = Report::default();
        report.findings.push(finding("panic", "f.rs", "boom"));
        report.findings.push(finding("blocking", "g.rs", "slow"));
        report.finish();
        let next = Baseline::regenerate(&report, &prior);
        let boom = next.entries.iter().find(|e| e.message == "boom").unwrap();
        assert_eq!(boom.reason, "known legacy site");
        assert_eq!(boom.count, 1);
        let slow = next.entries.iter().find(|e| e.message == "slow").unwrap();
        assert_eq!(slow.reason, "TODO: add rationale");
    }

    #[test]
    fn regenerate_reports_the_entries_it_drops() {
        let prior = Baseline {
            entries: vec![
                Entry {
                    pass: "panic".into(),
                    file: "f.rs".into(),
                    message: "boom".into(),
                    count: 1,
                    reason: "legacy".into(),
                },
                Entry {
                    pass: "blocking".into(),
                    file: "gone.rs".into(),
                    message: "slow".into(),
                    count: 2,
                    reason: "was waiting on a fix".into(),
                },
            ],
        };
        let mut report = Report::default();
        report.findings.push(finding("panic", "f.rs", "boom"));
        report.finish();
        let next = Baseline::regenerate(&report, &prior);
        let dropped = next.dropped_from(&prior);
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].file, "gone.rs");
    }
}
