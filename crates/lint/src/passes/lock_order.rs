//! Pass 1 — lock-order: builds the global lock-order graph from every
//! acquisition made while another guard is held (directly, or through a
//! workspace-resolved call — cross-crate included — whose callee acquires
//! locks), flags cycles, double acquisitions of the same lock, and locks
//! held across blocking calls.
//!
//! Call-derived self-edges (`shards -> shards` because `ShardedLog::append`
//! shares its name with `MerkleLog::append`) are suppressed: with
//! name-based resolution they are overwhelmingly aliasing artifacts. A
//! *direct* re-acquisition of the same named lock in one function still
//! fires.

use crate::facts::{blocking_call, LockId};
use crate::model::Model;
use crate::report::{Finding, Report};
use std::collections::{BTreeMap, BTreeSet};

pub const PASS: &str = "lock-order";

struct Edge {
    file: String,
    line: u32,
    why: String,
}

pub fn run(model: &Model, report: &mut Report) {
    let mut edges: BTreeMap<(LockId, LockId), Edge> = BTreeMap::new();

    for (fi, f) in model.fns.iter().enumerate() {
        for acq in &f.acquires {
            for (held, held_line) in &acq.held {
                if *held == acq.lock {
                    report.findings.push(Finding::new(
                        PASS,
                        &f.file,
                        acq.line,
                        format!(
                            "lock `{}` (held since line {}) is acquired again in `{}` — self-deadlock",
                            held, held_line, f.name
                        ),
                    ));
                } else {
                    edges
                        .entry((held.clone(), acq.lock.clone()))
                        .or_insert(Edge {
                            file: f.file.clone(),
                            line: acq.line,
                            why: format!(
                                "`{}` taken while `{}` held in `{}`",
                                acq.lock, held, f.name
                            ),
                        });
                }
            }
        }

        for call in &f.calls {
            if call.held.is_empty() {
                continue;
            }
            if let Some(kind) = blocking_call(call) {
                for (held, _) in &call.held {
                    report.findings.push(Finding::new(
                        PASS,
                        &f.file,
                        call.line,
                        format!(
                            "lock `{}` held across blocking call `{}` in `{}`",
                            held, kind, f.name
                        ),
                    ));
                }
                continue;
            }
            let callees = model.resolve_call(fi, call);
            if let Some(desc) = callees.iter().find_map(|&j| model.may_block(j)) {
                for (held, _) in &call.held {
                    report.findings.push(Finding::new(
                        PASS,
                        &f.file,
                        call.line,
                        format!(
                            "lock `{}` held across call to `{}`, which may block ({})",
                            held, call.name, desc
                        ),
                    ));
                }
            }
            for &j in &callees {
                for inner in model.locks_of(j) {
                    for (held, _) in &call.held {
                        if inner != held {
                            edges.entry((held.clone(), inner.clone())).or_insert(Edge {
                                file: f.file.clone(),
                                line: call.line,
                                why: format!(
                                    "`{}` may be acquired inside `{}` while `{}` held",
                                    inner, call.name, held
                                ),
                            });
                        }
                    }
                }
            }
        }
    }

    report_cycles(&edges, report);
}

fn report_cycles(edges: &BTreeMap<(LockId, LockId), Edge>, report: &mut Report) {
    let mut adj: BTreeMap<&LockId, Vec<&LockId>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().push(to);
    }
    let nodes: Vec<&LockId> = adj.keys().copied().collect();

    // Iterative DFS with colors; every back edge closes a cycle. One cycle
    // per distinct canonical rotation is reported — any cycle at all fails
    // the gate, so exhaustively enumerating them buys nothing.
    let mut color: BTreeMap<&LockId, u8> = BTreeMap::new();
    let mut seen: BTreeSet<Vec<LockId>> = BTreeSet::new();
    for &start in &nodes {
        if color.get(start).copied().unwrap_or(0) != 0 {
            continue;
        }
        let mut path: Vec<&LockId> = Vec::new();
        // (node, next child index)
        let mut stack: Vec<(&LockId, usize)> = vec![(start, 0)];
        color.insert(start, 1);
        path.push(start);
        while let Some((node, child)) = stack.last_mut() {
            let children = adj.get(*node).map(|v| v.as_slice()).unwrap_or(&[]);
            if *child < children.len() {
                let next = children[*child];
                *child += 1;
                match color.get(next).copied().unwrap_or(0) {
                    0 => {
                        color.insert(next, 1);
                        path.push(next);
                        stack.push((next, 0));
                    }
                    1 => {
                        let pos = path.iter().position(|n| *n == next).unwrap_or(0);
                        let cycle: Vec<LockId> = path[pos..].iter().map(|l| (*l).clone()).collect();
                        if seen.insert(canonical(&cycle)) {
                            emit_cycle(&cycle, edges, report);
                        }
                    }
                    _ => {}
                }
            } else {
                color.insert(*node, 2);
                path.pop();
                stack.pop();
            }
        }
    }
}

/// Rotates the cycle so its smallest lock comes first (dedup key).
fn canonical(cycle: &[LockId]) -> Vec<LockId> {
    let min = cycle
        .iter()
        .enumerate()
        .min_by_key(|(_, l)| *l)
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut out = Vec::with_capacity(cycle.len());
    out.extend_from_slice(&cycle[min..]);
    out.extend_from_slice(&cycle[..min]);
    out
}

fn emit_cycle(cycle: &[LockId], edges: &BTreeMap<(LockId, LockId), Edge>, report: &mut Report) {
    let cycle = canonical(cycle);
    let mut names: Vec<String> = cycle.iter().map(|l| format!("`{l}`")).collect();
    names.push(format!("`{}`", cycle[0]));
    let mut details = Vec::new();
    let mut anchor: Option<(&str, u32)> = None;
    for i in 0..cycle.len() {
        let from = &cycle[i];
        let to = &cycle[(i + 1) % cycle.len()];
        if let Some(e) = edges.get(&(from.clone(), to.clone())) {
            details.push(format!("{} at {}:{}", e.why, e.file, e.line));
            if anchor.is_none() {
                anchor = Some((&e.file, e.line));
            }
        }
    }
    let (file, line) = anchor.unwrap_or(("<unknown>", 0));
    report.findings.push(Finding::new(
        PASS,
        file,
        line,
        format!(
            "lock-order cycle: {} ({})",
            names.join(" -> "),
            details.join("; ")
        ),
    ));
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::scan::SourceFile;

    fn run_on(src: &str) -> Report {
        let file = SourceFile::parse("crates/x/src/demo.rs".into(), src);
        let model = Model::build(std::slice::from_ref(&file));
        let mut report = Report::default();
        run(&model, &mut report);
        report.finish();
        report
    }

    #[test]
    fn inversion_across_two_fns_is_a_cycle() {
        let report = run_on(
            "fn a() { let g = alpha.lock(); let h = beta.lock(); } \
             fn b() { let g = beta.lock(); let h = alpha.lock(); }",
        );
        assert!(report
            .findings
            .iter()
            .any(|f| f.message.contains("lock-order cycle")));
    }

    #[test]
    fn consistent_order_is_clean() {
        let report = run_on(
            "fn a() { let g = alpha.lock(); let h = beta.lock(); } \
             fn b() { let g = alpha.lock(); let h = beta.lock(); }",
        );
        assert_eq!(report.findings.len(), 0);
    }

    #[test]
    fn direct_double_lock_fires() {
        let report = run_on("fn a() { let g = alpha.lock(); let h = alpha.lock(); }");
        assert!(report
            .findings
            .iter()
            .any(|f| f.message.contains("self-deadlock")));
    }

    #[test]
    fn call_derived_self_edge_is_suppressed() {
        // `append` resolves to both the sharded wrapper and the inner
        // log's method; the wrapper's temporary guard must not create a
        // shards -> shards cycle.
        let report = run_on("fn append(log: &L) { shards.lock().append(data); } ");
        assert_eq!(report.findings.len(), 0);
    }

    #[test]
    fn blocking_while_held_fires() {
        let report = run_on("fn a() { let g = alpha.lock(); ch.recv(); }");
        assert!(report
            .findings
            .iter()
            .any(|f| f.message.contains("held across blocking call `recv`")));
    }

    #[test]
    fn transitive_blocking_while_held_fires() {
        let report = run_on(
            "fn a() { let g = alpha.lock(); helper(); } \
             fn helper() { std::thread::sleep(d); }",
        );
        assert!(report
            .findings
            .iter()
            .any(|f| f.message.contains("may block")));
    }
}
