//! Pass 5 — taint-alloc: attacker-shaped values (announced lengths,
//! decoded counts, unverified signed-object fields) reaching allocation,
//! index, and loop-bound sinks — the length-bomb class, caught statically.
//!
//! The heavy lifting lives in [`crate::dataflow`], built once per run
//! and shared with the cap-consistency pass; this pass scopes the
//! resulting sites to the server+client decode surface (`wire`, `log`,
//! `core`, `tee`, `gossip`) and renders each as one finding with a
//! deterministic source→sink chain, in the same spirit as the blocking
//! pass's call chains.

use crate::dataflow::Dataflow;
use crate::report::{Finding, Report};

pub const PASS: &str = "taint-alloc";

/// File scope policy: the repo default, or everything (fixtures).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaintScope {
    RepoDefault,
    AllFiles,
}

impl TaintScope {
    pub fn covers(&self, path: &str) -> bool {
        match self {
            TaintScope::AllFiles => true,
            TaintScope::RepoDefault => {
                path.starts_with("crates/wire/src/")
                    || path.starts_with("crates/log/src/")
                    || path.starts_with("crates/core/src/")
                    || path.starts_with("crates/tee/src/")
                    || path.starts_with("crates/gossip/src/")
            }
        }
    }
}

pub fn run(flow: &Dataflow, scope: TaintScope, report: &mut Report) {
    for site in &flow.sites {
        if !scope.covers(&site.file) {
            continue;
        }
        report.findings.push(Finding::new(
            PASS,
            &site.file,
            site.line,
            format!(
                "tainted size reaches {} in `{}`: {}",
                site.sink,
                site.fn_name,
                site.chain.join(" -> ")
            ),
        ));
    }
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::scan::SourceFile;

    fn run_on(path: &str, src: &str) -> Report {
        let file = SourceFile::parse(path.into(), src);
        let flow = Dataflow::build(std::slice::from_ref(&file));
        let mut report = Report::default();
        run(&flow, TaintScope::RepoDefault, &mut report);
        report.finish();
        report
    }

    #[test]
    fn decode_scope_covers_wire_but_not_apps() {
        let src = "fn decode_items(input: &mut &[u8]) { let n = decode_len(input); \
                   let v: Vec<u64> = Vec::with_capacity(n); }";
        assert_eq!(run_on("crates/wire/src/codec.rs", src).findings.len(), 1);
        assert_eq!(run_on("crates/apps/src/tool.rs", src).findings.len(), 0);
    }

    #[test]
    fn finding_carries_the_source_chain() {
        let src = "fn decode_items(input: &mut &[u8]) { let n = decode_len(input); \
                   let v: Vec<u64> = Vec::with_capacity(n); }";
        let report = run_on("crates/log/src/bundle.rs", src);
        assert!(report.findings[0].message.contains("announced length"));
        assert!(report.findings[0].message.contains("`Vec::with_capacity`"));
    }

    #[test]
    fn segment_codec_results_root_taint() {
        // A count read out of a segment checkpoint record must not size an
        // allocation without a bound check.
        let src = "fn rebuild(bytes: &[u8]) { let (size, _) = decode_checkpoint_payload(bytes); \
                   let v: Vec<u64> = Vec::with_capacity(size); }";
        let report = run_on("crates/log/src/store/durable.rs", src);
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0].message.contains("checkpoint payload"));
    }
}
