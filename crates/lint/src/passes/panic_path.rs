//! Pass 2 — panic-path: flags `unwrap`/`expect`/panic-family macros (and,
//! on decode paths, unchecked indexing) in server-side request-handling
//! code, where remote input must never abort a trust domain.
//!
//! Scope is repo-aware: all of `wire` and `tee`, the `core` server files
//! (`server.rs`, `framework.rs`, `protocol.rs`), and the decode-path
//! functions of `log`. Unchecked indexing is only checked in decode-path
//! functions (`decode*`, `from_wire*`, `peek_*`, `scan_*`, `take`,
//! `read_frame`, `feed`) — the byte-parsing layer where an attacker (or a
//! corrupted disk image) controls the offsets; elsewhere indexing over
//! self-owned state is the lock passes' problem, not this one's.

use crate::lexer::Tok;
use crate::report::{Finding, Report};
use crate::scan::SourceFile;

pub const PASS: &str = "panic";

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

const KEYWORDS: [&str; 10] = [
    "if", "else", "match", "return", "in", "as", "mut", "ref", "move", "break",
];

/// Which parts of a file the pass applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cover {
    /// Every non-test function.
    Full,
    /// Only decode-path functions.
    Decode,
    /// Not a server path; skip.
    Skip,
}

/// File scope policy: the repo default, or everything (fixtures).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicScope {
    RepoDefault,
    AllFiles,
}

impl PanicScope {
    pub fn coverage(&self, path: &str) -> Cover {
        match self {
            PanicScope::AllFiles => Cover::Full,
            PanicScope::RepoDefault => {
                if path.starts_with("crates/wire/src/")
                    || path.starts_with("crates/tee/src/")
                    || path.starts_with("crates/gossip/src/")
                    || path == "crates/core/src/server.rs"
                    || path == "crates/core/src/framework.rs"
                    || path == "crates/core/src/protocol.rs"
                    || path == "crates/core/src/witness.rs"
                {
                    Cover::Full
                } else if path.starts_with("crates/log/src/") {
                    Cover::Decode
                } else {
                    Cover::Skip
                }
            }
        }
    }
}

pub fn decode_fn(name: &str) -> bool {
    name.starts_with("decode")
        || name.starts_with("from_wire")
        || name.starts_with("peek_")
        || name.starts_with("scan_")
        || matches!(name, "take" | "read_frame" | "feed")
}

pub fn run(files: &[SourceFile], scope: PanicScope, report: &mut Report) {
    for file in files {
        let cover = scope.coverage(&file.path);
        if cover == Cover::Skip {
            continue;
        }
        for def in &file.fns {
            if def.in_test {
                continue;
            }
            let decode = decode_fn(&def.name);
            if cover == Cover::Decode && !decode {
                continue;
            }
            let (open, close) = def.body;
            let nested: Vec<(usize, usize)> = file
                .fns
                .iter()
                .filter(|g| g.body.0 > open && g.body.1 < close)
                .map(|g| g.body)
                .collect();
            let mut idx = open;
            while idx <= close {
                if let Some(&(_, nend)) = nested.iter().find(|(ns, _)| *ns == idx) {
                    idx = nend + 1;
                    continue;
                }
                check_token(file, def.name.as_str(), decode, idx, report);
                idx += 1;
            }
        }
    }
}

fn check_token(file: &SourceFile, fn_name: &str, decode: bool, idx: usize, report: &mut Report) {
    if let Some(name) = file.ident_at(idx) {
        if (name == "unwrap" || name == "expect")
            && idx > 0
            && file.punct_at(idx - 1, '.')
            && file.punct_at(idx + 1, '(')
        {
            report.findings.push(Finding::new(
                PASS,
                &file.path,
                file.line_at(idx),
                format!("`.{name}()` on a server path (in `{fn_name}`)"),
            ));
            return;
        }
        if PANIC_MACROS.contains(&name) && file.punct_at(idx + 1, '!') {
            report.findings.push(Finding::new(
                PASS,
                &file.path,
                file.line_at(idx),
                format!("`{name}!` on a server path (in `{fn_name}`)"),
            ));
        }
        return;
    }
    if decode && file.punct_at(idx, '[') && idx > 0 {
        let indexable = match file.tokens.get(idx - 1).map(|t| &t.tok) {
            Some(Tok::Ident(name)) => !KEYWORDS.contains(&name.as_str()),
            Some(Tok::Punct(')')) | Some(Tok::Punct(']')) => true,
            _ => false,
        };
        if indexable {
            report.findings.push(Finding::new(
                PASS,
                &file.path,
                file.line_at(idx),
                format!("unchecked indexing on a decode path (in `{fn_name}`)"),
            ));
        }
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    fn run_on(path: &str, src: &str) -> Report {
        let file = SourceFile::parse(path.into(), src);
        let mut report = Report::default();
        run(&[file], PanicScope::RepoDefault, &mut report);
        report.finish();
        report
    }

    #[test]
    fn unwrap_in_wire_fires_but_tests_are_exempt() {
        let src = "fn f(x: Option<u8>) { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn t(x: Option<u8>) { x.unwrap(); } }";
        let report = run_on("crates/wire/src/rpc.rs", src);
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0].message.contains("unwrap"));
    }

    #[test]
    fn log_scope_is_decode_paths_only() {
        let src =
            "fn prove(x: Option<u8>) { x.unwrap(); } fn decode(b: &[u8]) { b.expect(\"x\"); }";
        let report = run_on("crates/log/src/merkle.rs", src);
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0].message.contains("decode"));
    }

    #[test]
    fn indexing_flagged_only_on_decode_paths() {
        let src = "fn decode(b: &[u8]) { let x = b[0]; } fn serve(b: &[u8]) { let x = b[0]; }";
        let report = run_on("crates/wire/src/codec.rs", src);
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0].message.contains("indexing"));
    }

    #[test]
    fn segment_scanners_are_decode_paths() {
        // `scan_*` walks raw disk images; indexing there is as hostile as
        // in wire decoders.
        let src = "fn scan_segment(b: &[u8]) { let x = b[4]; }";
        let report = run_on("crates/log/src/store/segment.rs", src);
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0].message.contains("indexing"));
    }

    #[test]
    fn attributes_and_macro_brackets_are_not_indexing() {
        let src =
            "fn decode(b: &[u8]) { #[allow(dead_code)] let v = vec![0u8; 4]; let a: [u8; 2] = x; }";
        let report = run_on("crates/wire/src/codec.rs", src);
        assert_eq!(report.findings.len(), 0);
    }

    #[test]
    fn panic_macros_fire() {
        let report = run_on("crates/tee/src/host.rs", "fn f() { panic!(\"no\"); }");
        assert_eq!(report.findings.len(), 1);
    }

    #[test]
    fn out_of_scope_crates_are_silent() {
        let report = run_on(
            "crates/apps/src/lib.rs",
            "fn f(x: Option<u8>) { x.unwrap(); }",
        );
        assert_eq!(report.findings.len(), 0);
    }
}
