//! Pass 4 — reactor-blocking: flags blocking calls (untimed `recv`,
//! `sleep`, blocking `connect`/`accept`/`join`, whole-frame I/O) reachable
//! from reactor callback paths.
//!
//! Entry points are configured by function name: the reactor loop itself,
//! the per-connection pump/flush/adopt paths, and every `handle`/
//! `handle_impl` — the service callbacks that `wire::reactor` invokes on
//! its worker threads (the framework dispatcher runs there via
//! `DirectHost`). Reachability follows the workspace-wide resolved call
//! graph, crossing crate seams; edges into `*_timeout` functions are not
//! followed, because timed receives are the sanctioned bounded
//! alternative.

use crate::facts::blocking_call;
use crate::model::Model;
use crate::report::{Finding, Report};
use std::collections::BTreeMap;

pub const PASS: &str = "blocking";

/// Default entry set for this repository.
pub fn default_entries() -> Vec<String> {
    [
        "reactor_loop",
        "pump",
        "try_flush",
        "adopt",
        "envelope_service",
        "handle",
        "handle_impl",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

pub fn run(model: &Model, entries: &[String], report: &mut Report) {
    // BFS over the intra-crate call graph; `origin` doubles as the
    // visited set and records one deterministic call chain per function.
    let mut origin: BTreeMap<usize, String> = BTreeMap::new();
    let mut queue: Vec<usize> = Vec::new();
    for (i, f) in model.fns.iter().enumerate() {
        if entries.iter().any(|e| e == &f.name) {
            origin.insert(i, f.name.clone());
            queue.push(i);
        }
    }
    let mut at = 0usize;
    while at < queue.len() {
        let i = queue[at];
        at += 1;
        let chain = origin[&i].clone();
        for call in &model.fns[i].calls {
            for j in model.resolve_call(i, call) {
                if let std::collections::btree_map::Entry::Vacant(slot) = origin.entry(j) {
                    slot.insert(format!("{chain} -> {}", model.fns[j].name));
                    queue.push(j);
                }
            }
        }
    }

    for (&i, chain) in &origin {
        let f = &model.fns[i];
        for call in &f.calls {
            if let Some(kind) = blocking_call(call) {
                report.findings.push(Finding::new(
                    PASS,
                    &f.file,
                    call.line,
                    format!("blocking call `{kind}` on a reactor path ({chain})"),
                ));
            }
        }
    }
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::scan::SourceFile;

    fn run_on(src: &str) -> Report {
        let file = SourceFile::parse("crates/x/src/demo.rs".into(), src);
        let model = Model::build(std::slice::from_ref(&file));
        let mut report = Report::default();
        run(&model, &default_entries(), &mut report);
        report.finish();
        report
    }

    #[test]
    fn blocking_reached_through_helpers_fires_with_chain() {
        let report =
            run_on("fn reactor_loop() { helper(); } fn helper() { std::thread::sleep(d); }");
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0]
            .message
            .contains("reactor_loop -> helper"));
    }

    #[test]
    fn timed_receives_are_exempt() {
        let report = run_on(
            "fn reactor_loop() { intake.recv_timeout(d); } \
             fn recv_timeout(d: D) { std::thread::sleep(tiny); }",
        );
        assert_eq!(report.findings.len(), 0);
    }

    #[test]
    fn unreachable_blocking_is_silent() {
        let report = run_on("fn client_only() { sock.recv(); }");
        assert_eq!(report.findings.len(), 0);
    }
}
