//! Pass 3 — protocol-conformance: extracts the Request/Response tag
//! constants and encode/decode match arms from the protocol source,
//! verifies tag uniqueness and encode↔decode pairing for every tag, checks
//! that every `impl Encode` in the codec has a matching `impl Decode`, and
//! that every protocol variant appears in the fuzz suite — new wire
//! messages cannot ship without fuzz coverage.

use crate::lexer::Tok;
use crate::report::{Finding, Report};
use crate::scan::SourceFile;
use std::collections::BTreeMap;

pub const PASS: &str = "protocol";

/// What to analyze; paths are root-relative.
#[derive(Debug, Clone)]
pub struct ProtocolCfg {
    /// Files holding the tagged enums (encode/decode match arms).
    pub protocol_files: Vec<String>,
    /// Files whose literal `impl Encode/Decode for T` pairs must match.
    pub codec_files: Vec<String>,
    /// Fuzz suite that must mention every variant.
    pub fuzz_file: String,
    /// The tagged enum type names.
    pub types: Vec<String>,
}

impl ProtocolCfg {
    pub fn repo_default() -> ProtocolCfg {
        ProtocolCfg {
            protocol_files: vec!["crates/core/src/protocol.rs".into()],
            codec_files: vec![
                "crates/wire/src/codec.rs".into(),
                "crates/core/src/protocol.rs".into(),
            ],
            fuzz_file: "tests/protocol_fuzz.rs".into(),
            types: vec!["Request".into(), "Response".into()],
        }
    }
}

pub fn run(files: &[SourceFile], cfg: &ProtocolCfg, fuzz_text: Option<&str>, report: &mut Report) {
    for type_name in &cfg.types {
        for file in files
            .iter()
            .filter(|f| cfg.protocol_files.contains(&f.path))
        {
            check_type(file, type_name, cfg, fuzz_text, report);
        }
    }
    for file in files.iter().filter(|f| cfg.codec_files.contains(&f.path)) {
        check_impl_pairing(file, report);
    }
}

fn check_type(
    file: &SourceFile,
    type_name: &str,
    cfg: &ProtocolCfg,
    fuzz_text: Option<&str>,
    report: &mut Report,
) {
    let Some(enc_block) = impl_block(file, "Encode", type_name) else {
        return;
    };
    let Some(dec_block) = impl_block(file, "Decode", type_name) else {
        report.findings.push(Finding::new(
            PASS,
            &file.path,
            file.line_at(enc_block.0),
            format!("`{type_name}` implements Encode but has no Decode impl"),
        ));
        return;
    };

    // variant -> (tag, line of the encode arm)
    let encode = encode_arms(file, type_name, enc_block);
    // tag -> (variant, line of the decode arm)
    let decode = decode_arms(file, type_name, dec_block, report);

    // Tag uniqueness on the encode side.
    let mut by_tag: BTreeMap<u64, Vec<(&String, u32)>> = BTreeMap::new();
    for (v, (t, line)) in &encode {
        by_tag.entry(*t).or_default().push((v, *line));
    }
    for (tag, users) in &by_tag {
        if users.len() > 1 {
            let names: Vec<String> = users.iter().map(|(v, _)| format!("`{v}`")).collect();
            report.findings.push(Finding::new(
                PASS,
                &file.path,
                users[1].1,
                format!(
                    "tag {tag} is encoded by more than one {type_name} variant: {}",
                    names.join(", ")
                ),
            ));
        }
    }

    // Encode ↔ decode pairing.
    for (v, (t, line)) in &encode {
        match decode.get(t) {
            None => report.findings.push(Finding::new(
                PASS,
                &file.path,
                *line,
                format!("{type_name}::{v} encodes tag {t}, but no decode arm handles that tag"),
            )),
            Some((w, _)) if w != v => report.findings.push(Finding::new(
                PASS,
                &file.path,
                *line,
                format!(
                    "{type_name}::{v} encodes tag {t}, but that tag decodes to {type_name}::{w}"
                ),
            )),
            Some(_) => {}
        }
    }
    for (t, (v, line)) in &decode {
        if !encode.contains_key(v) {
            report.findings.push(Finding::new(
                PASS,
                &file.path,
                *line,
                format!("decode arm for tag {t} builds {type_name}::{v}, which has no encode arm"),
            ));
        }
    }

    // Fuzz coverage for every variant.
    let mut variants: BTreeMap<&String, u32> = BTreeMap::new();
    for (v, (_, line)) in &encode {
        variants.insert(v, *line);
    }
    for (v, line) in decode.values() {
        variants.entry(v).or_insert(*line);
    }
    match fuzz_text {
        Some(text) => {
            for (v, line) in variants {
                if !text.contains(&format!("{type_name}::{v}")) {
                    report.findings.push(Finding::new(
                        PASS,
                        &file.path,
                        line,
                        format!(
                            "{type_name}::{v} has no coverage in {} — new wire messages need fuzz cases",
                            cfg.fuzz_file
                        ),
                    ));
                }
            }
        }
        None => report.findings.push(Finding::new(
            PASS,
            &file.path,
            file.line_at(enc_block.0),
            format!("fuzz suite `{}` is missing or unreadable", cfg.fuzz_file),
        )),
    }
}

/// Finds `impl [<…>] Trait for Type { … }`, returning the body brace span.
fn impl_block(file: &SourceFile, trait_name: &str, type_name: &str) -> Option<(usize, usize)> {
    let mut i = 0usize;
    while i < file.tokens.len() {
        if file.ident_at(i) == Some("impl") {
            let mut j = i + 1;
            if file.punct_at(j, '<') {
                j = skip_generics(file, j);
            }
            if file.ident_at(j) == Some(trait_name)
                && file.ident_at(j + 1) == Some("for")
                && file.ident_at(j + 2) == Some(type_name)
            {
                let open = (j + 3..file.tokens.len()).find(|&k| file.punct_at(k, '{'))?;
                return Some((open, file.matching_close(open)));
            }
        }
        i += 1;
    }
    None
}

/// Token index just past a `<…>` generic parameter list starting at `open`.
fn skip_generics(file: &SourceFile, open: usize) -> usize {
    let mut depth = 0i64;
    let mut k = open;
    while k < file.tokens.len() {
        if file.punct_at(k, '<') {
            depth += 1;
        } else if file.punct_at(k, '>') {
            depth -= 1;
            if depth == 0 {
                return k + 1;
            }
        }
        k += 1;
    }
    k
}

/// `variant -> (tag, line)` from `TagNu8.encode(...)` inside match arms.
fn encode_arms(
    file: &SourceFile,
    type_name: &str,
    (open, close): (usize, usize),
) -> BTreeMap<String, (u64, u32)> {
    let mut out: BTreeMap<String, (u64, u32)> = BTreeMap::new();
    let mut current: Option<String> = None;
    for idx in open..=close {
        if file.ident_at(idx) == Some(type_name) && file.path_sep_at(idx + 1) {
            if let Some(v) = file.ident_at(idx + 2) {
                current = Some(v.to_string());
            }
        }
        if let Some(Tok::Number(n)) = file.tokens.get(idx).map(|t| &t.tok) {
            if let Some(tag) = n.strip_suffix("u8").and_then(|d| d.parse::<u64>().ok()) {
                if file.punct_at(idx + 1, '.') && file.ident_at(idx + 2) == Some("encode") {
                    if let Some(v) = &current {
                        out.entry(v.clone()).or_insert((tag, file.line_at(idx)));
                    }
                }
            }
        }
    }
    out
}

/// `tag -> (variant, line)` from `N => Type::Variant …` match arms.
fn decode_arms(
    file: &SourceFile,
    type_name: &str,
    (open, close): (usize, usize),
    report: &mut Report,
) -> BTreeMap<u64, (String, u32)> {
    let mut out: BTreeMap<u64, (String, u32)> = BTreeMap::new();
    for idx in open..=close {
        let Some(tag) = arm_tag(file, idx) else {
            continue;
        };
        // The arm body runs until the next numeric or `_` arm; the first
        // `Type::Variant` inside names what the tag decodes to.
        let mut k = idx + 3;
        while k <= close {
            if arm_tag(file, k).is_some()
                || (file.ident_at(k) == Some("_")
                    && file.punct_at(k + 1, '=')
                    && file.punct_at(k + 2, '>'))
            {
                break;
            }
            if file.ident_at(k) == Some(type_name) && file.path_sep_at(k + 1) {
                if let Some(v) = file.ident_at(k + 2) {
                    let line = file.line_at(idx);
                    if out.insert(tag, (v.to_string(), line)).is_some() {
                        report.findings.push(Finding::new(
                            PASS,
                            &file.path,
                            line,
                            format!("duplicate decode arm for tag {tag} in `{type_name}`"),
                        ));
                    }
                    break;
                }
            }
            k += 1;
        }
    }
    out
}

/// Is token `idx` a plain-integer match arm head (`N =>`)?
fn arm_tag(file: &SourceFile, idx: usize) -> Option<u64> {
    if let Some(Tok::Number(n)) = file.tokens.get(idx).map(|t| &t.tok) {
        if file.punct_at(idx + 1, '=') && file.punct_at(idx + 2, '>') {
            return n.parse::<u64>().ok();
        }
    }
    None
}

/// Every literal `impl Encode for T` must pair with `impl Decode for T`.
fn check_impl_pairing(file: &SourceFile, report: &mut Report) {
    let mut enc: BTreeMap<String, u32> = BTreeMap::new();
    let mut dec: BTreeMap<String, u32> = BTreeMap::new();
    let mut i = 0usize;
    while i < file.tokens.len() {
        if file.ident_at(i) == Some("impl") {
            let mut j = i + 1;
            if file.punct_at(j, '<') {
                j = skip_generics(file, j);
            }
            let which = match file.ident_at(j) {
                Some("Encode") => Some(true),
                Some("Decode") => Some(false),
                _ => None,
            };
            if let Some(is_enc) = which {
                if file.ident_at(j + 1) == Some("for") {
                    // Only literal named types participate; arrays, refs
                    // and macro-generated impls (with `$name`) are skipped.
                    if let Some(ty) = file.ident_at(j + 2) {
                        let line = file.line_at(i);
                        if is_enc {
                            enc.entry(ty.to_string()).or_insert(line);
                        } else {
                            dec.entry(ty.to_string()).or_insert(line);
                        }
                    }
                }
            }
        }
        i += 1;
    }
    for (ty, line) in &enc {
        if !dec.contains_key(ty) {
            report.findings.push(Finding::new(
                PASS,
                &file.path,
                *line,
                format!("`{ty}` implements Encode here but has no Decode impl in this file"),
            ));
        }
    }
    for (ty, line) in &dec {
        if !enc.contains_key(ty) {
            report.findings.push(Finding::new(
                PASS,
                &file.path,
                *line,
                format!("`{ty}` implements Decode here but has no Encode impl in this file"),
            ));
        }
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    const GOOD: &str = r#"
        pub enum Req { A, B }
        impl Encode for Req {
            fn encode(&self, out: &mut Vec<u8>) {
                match self {
                    Req::A => { 0u8.encode(out); }
                    Req::B => { 1u8.encode(out); }
                }
            }
        }
        impl Decode for Req {
            fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
                Ok(match tag {
                    0 => Req::A,
                    1 => Req::B,
                    _ => return Err(DecodeError::BadTag),
                })
            }
        }
    "#;

    fn run_on(src: &str, fuzz: Option<&str>) -> Report {
        let file = SourceFile::parse("proto.rs".into(), src);
        let cfg = ProtocolCfg {
            protocol_files: vec!["proto.rs".into()],
            codec_files: vec![],
            fuzz_file: "fuzz.rs".into(),
            types: vec!["Req".into()],
        };
        let mut report = Report::default();
        run(&[file], &cfg, fuzz, &mut report);
        report.finish();
        report
    }

    #[test]
    fn well_paired_fuzzed_enum_is_clean() {
        let report = run_on(GOOD, Some("Req::A Req::B"));
        assert_eq!(report.findings.len(), 0, "{:?}", report.findings);
    }

    #[test]
    fn missing_fuzz_coverage_fires() {
        let report = run_on(GOOD, Some("Req::A only"));
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0].message.contains("Req::B"));
    }

    #[test]
    fn duplicate_tag_fires() {
        let src = GOOD.replace("1u8.encode", "0u8.encode");
        let report = run_on(&src, Some("Req::A Req::B"));
        assert!(report
            .findings
            .iter()
            .any(|f| f.message.contains("more than one")));
    }

    #[test]
    fn missing_decode_arm_fires() {
        let src = GOOD.replace("1 => Req::B,", "");
        let report = run_on(&src, Some("Req::A Req::B"));
        assert!(report
            .findings
            .iter()
            .any(|f| f.message.contains("no decode arm handles")));
    }

    #[test]
    fn mismatched_pairing_fires() {
        let src = GOOD.replace("1 => Req::B,", "1 => Req::A,");
        let report = run_on(&src, Some("Req::A Req::B"));
        assert!(!report.findings.is_empty());
    }

    #[test]
    fn impl_pairing_checks_literal_types() {
        let src = "impl Encode for Lonely { } struct Lonely;";
        let file = SourceFile::parse("codec.rs".into(), src);
        let cfg = ProtocolCfg {
            protocol_files: vec![],
            codec_files: vec!["codec.rs".into()],
            fuzz_file: "fuzz.rs".into(),
            types: vec![],
        };
        let mut report = Report::default();
        run(&[file], &cfg, None, &mut report);
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0].message.contains("Lonely"));
    }
}
