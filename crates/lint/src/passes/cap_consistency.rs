//! Pass 7 — cap-consistency: the two directions the bound story can rot.
//!
//! * **Dead caps**: a `MAX_*`/`*_LEN` constant that nothing ever uses to
//!   bound or size a value — no `.min(…)`/`.clamp(…)` argument, no
//!   comparison (ordering or exact-length equality), no fixed-size
//!   buffer it sizes, and no other constant derived from it. A cap that
//!   bounds nothing is
//!   usually a cap someone *believed* was enforced; the belief is the
//!   bug. Aliveness is transitive through constant initializers:
//!   `MAX_BATCH = MAX_FRAME / 64` keeps `MAX_FRAME` alive as long as
//!   `MAX_BATCH` is.
//! * **Cap gaps**: a decode-path allocation sink sized by a function
//!   parameter that no caller caps, no dominating guard bounds, and no
//!   sanitizer clears — computed by [`crate::dataflow`]'s workspace-wide
//!   argument-taint fixpoint. These are allocation sites one new caller
//!   away from being a length bomb; either the function bounds its own
//!   input or every future caller must remember to.
//!
//! Dead-cap detection is name-scoped (constants *defined* in scoped
//! files) but use-scoped workspace-wide: a cap defined in `wire` and
//! enforced in `log` is alive. Test code neither defines nor keeps caps
//! alive — a cap only tests exercise is dead in production.

use crate::dataflow::Dataflow;
use crate::lexer::Tok;
use crate::report::{Finding, Report};
use crate::scan::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

pub const PASS: &str = "cap-consistency";

/// File scope policy: the decode-surface crates, or everything (fixtures).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapScope {
    RepoDefault,
    AllFiles,
}

impl CapScope {
    pub fn covers(&self, path: &str) -> bool {
        match self {
            CapScope::AllFiles => true,
            CapScope::RepoDefault => {
                path.starts_with("crates/wire/src/")
                    || path.starts_with("crates/log/src/")
                    || path.starts_with("crates/core/src/")
                    || path.starts_with("crates/gossip/src/")
            }
        }
    }
}

/// True for constant names this pass treats as bound caps.
fn cap_name(name: &str) -> bool {
    name.starts_with("MAX_") || name.ends_with("_LEN")
}

struct ConstDef {
    file: String,
    line: u32,
    /// Identifiers referenced by the initializer expression.
    init_refs: BTreeSet<String>,
}

pub fn run(files: &[SourceFile], flow: &Dataflow, scope: CapScope, report: &mut Report) {
    // -- cap gaps ---------------------------------------------------------
    for gap in &flow.cap_gaps {
        if !scope.covers(&gap.file) {
            continue;
        }
        report.findings.push(Finding::new(
            PASS,
            &gap.file,
            gap.line,
            format!(
                "decode-path allocation {} in `{}` is sized by parameter{} `{}` with no \
                 workspace-visible bound (no caller cap, no dominating guard, no sanitizer)",
                gap.sink,
                gap.fn_name,
                if gap.params.len() == 1 { "" } else { "s" },
                gap.params.join("`, `")
            ),
        ));
    }

    // -- dead caps --------------------------------------------------------
    let mut defs: BTreeMap<String, ConstDef> = BTreeMap::new();
    for file in files {
        for (name, def) in const_defs(file) {
            if cap_name(&name) && scope.covers(&file.path) {
                defs.entry(name).or_insert(def);
            }
        }
    }
    if defs.is_empty() {
        return;
    }

    let mut alive: BTreeSet<String> = BTreeSet::new();
    for file in files {
        collect_bounding_uses(file, &defs, &mut alive);
    }
    // Transitive aliveness through constant initializers: every constant
    // (cap-named or not) whose initializer mentions a cap keeps that cap
    // as alive as itself. Non-cap constants count as alive when they have
    // any non-test use at all — `FRAME_HEADER = MAX_SHARDS * 2 + 4` used
    // anywhere means `MAX_SHARDS` still governs real layout.
    let all_defs: BTreeMap<String, ConstDef> =
        files
            .iter()
            .flat_map(const_defs)
            .fold(BTreeMap::new(), |mut m, (name, def)| {
                m.entry(name).or_insert(def);
                m
            });
    let used: BTreeSet<String> = {
        let mut used = BTreeSet::new();
        for file in files {
            collect_plain_uses(file, &all_defs, &mut used);
        }
        used
    };
    let mut changed = true;
    while changed {
        changed = false;
        for (name, def) in &all_defs {
            let carrier_alive = if cap_name(name) {
                alive.contains(name)
            } else {
                used.contains(name)
            };
            if !carrier_alive {
                continue;
            }
            for referenced in &def.init_refs {
                if defs.contains_key(referenced) && alive.insert(referenced.clone()) {
                    changed = true;
                }
            }
        }
    }

    for (name, def) in &defs {
        if !alive.contains(name) {
            report.findings.push(Finding::new(
                PASS,
                &def.file,
                def.line,
                format!(
                    "bound constant `{name}` never bounds anything: no `.min`/`.clamp` use, \
                     no comparison against it, no buffer it sizes, and no live constant \
                     derives from it — either enforce it on a decode path or delete it"
                ),
            ));
        }
    }
}

/// Top-level `const NAME: … = …;` definitions in non-test code, with the
/// identifiers their initializers reference.
fn const_defs(file: &SourceFile) -> Vec<(String, ConstDef)> {
    let mut out = Vec::new();
    let mut k = 0;
    while k + 1 < file.tokens.len() {
        if file.ident_at(k) == Some("const") && !file.test_mask[k] {
            // Skip `const fn` and associated `const` generics.
            if let Some(name) = file.ident_at(k + 1) {
                if name != "fn" && name.chars().next().is_some_and(|c| c.is_uppercase()) {
                    let name = name.to_string();
                    let eq =
                        (k + 2..(k + 66).min(file.tokens.len())).find(|&i| file.punct_at(i, '='));
                    if let Some(eq) = eq {
                        let semi = (eq + 1..file.tokens.len())
                            .find(|&i| file.punct_at(i, ';'))
                            .unwrap_or(file.tokens.len());
                        let mut init_refs = BTreeSet::new();
                        for i in eq + 1..semi {
                            if let Some(Tok::Ident(id)) = file.tokens.get(i).map(|t| &t.tok) {
                                init_refs.insert(id.clone());
                            }
                        }
                        out.push((
                            name,
                            ConstDef {
                                file: file.path.clone(),
                                line: file.line_at(k),
                                init_refs,
                            },
                        ));
                        k = semi;
                        continue;
                    }
                }
            }
        }
        k += 1;
    }
    out
}

/// Marks caps used in a bounding position in `file`'s non-test code:
/// inside the arguments of a `.min(…)`/`.clamp(…)` call, adjacent to a
/// comparison (`<`, `>`, `<=`, `>=`, `==`, `!=` — an exact-length check
/// is a bound too), or sizing a fixed buffer (`[0u8; CAP]`,
/// `vec![0; CAP]`, `with_capacity(CAP)`) — a buffer the constant sizes
/// enforces the bound structurally.
fn collect_bounding_uses(
    file: &SourceFile,
    defs: &BTreeMap<String, ConstDef>,
    alive: &mut BTreeSet<String>,
) {
    for k in 0..file.tokens.len() {
        if file.test_mask[k] {
            continue;
        }
        // `.min(…)` / `.clamp(…)`: every cap inside the parens is a use.
        if let Some(name) = file.ident_at(k) {
            if (name == "min" || name == "clamp")
                && k > 0
                && file.punct_at(k - 1, '.')
                && file.punct_at(k + 1, '(')
            {
                let close = file.matching_close(k + 1);
                for a in k + 2..close {
                    if let Some(id) = file.ident_at(a) {
                        if defs.contains_key(id) {
                            alive.insert(id.to_string());
                        }
                    }
                }
            }
        }
        // Comparison adjacency: `x > CAP`, `CAP >= y`, `len != CAP`,
        // including the two-token `<=`/`>=`/`==`/`!=` forms the lexer
        // produces. A `->` return arrow and `=>` match arrow are not
        // comparisons, and generic brackets never abut a SCREAMING const
        // in this codebase.
        let Some(id) = file.ident_at(k) else { continue };
        if !defs.contains_key(id) {
            continue;
        }
        let before_cmp = k > 0
            && ((file.punct_at(k - 1, '<') && !(k > 1 && file.punct_at(k - 2, '<')))
                || (file.punct_at(k - 1, '>') && !(k > 1 && file.punct_at(k - 2, '-')))
                || (file.punct_at(k - 1, '=')
                    && k > 1
                    && (file.punct_at(k - 2, '<')
                        || file.punct_at(k - 2, '>')
                        || file.punct_at(k - 2, '=')
                        || file.punct_at(k - 2, '!'))));
        let after_cmp = file.punct_at(k + 1, '<')
            || file.punct_at(k + 1, '>')
            || (file.punct_at(k + 1, '=') && file.punct_at(k + 2, '='))
            || (file.punct_at(k + 1, '!') && file.punct_at(k + 2, '='));
        // Fixed-size buffer: `[0u8; CAP]` / `vec![0; CAP]` repeat counts,
        // `with_capacity(CAP)` preallocations.
        let repeat_count = k > 0 && file.punct_at(k - 1, ';') && file.punct_at(k + 1, ']');
        let prealloc = k > 1
            && file.punct_at(k - 1, '(')
            && matches!(
                file.ident_at(k - 2),
                Some("with_capacity") | Some("reserve") | Some("resize")
            );
        if before_cmp || after_cmp || repeat_count || prealloc {
            alive.insert(id.to_string());
        }
    }
}

/// Marks constants referenced anywhere outside their own definition in
/// non-test code (the aliveness carrier for non-cap constants).
fn collect_plain_uses(
    file: &SourceFile,
    defs: &BTreeMap<String, ConstDef>,
    used: &mut BTreeSet<String>,
) {
    for k in 0..file.tokens.len() {
        if file.test_mask[k] {
            continue;
        }
        let Some(id) = file.ident_at(k) else { continue };
        if !defs.contains_key(id) {
            continue;
        }
        // A reference, not the `const NAME` definition itself.
        if k > 0 && file.ident_at(k - 1) == Some("const") {
            continue;
        }
        used.insert(id.to_string());
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    fn run_on(sources: &[(&str, &str)]) -> Report {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(p, s)| SourceFile::parse(p.to_string(), s))
            .collect();
        let flow = Dataflow::build(&files);
        let mut report = Report::default();
        run(&files, &flow, CapScope::AllFiles, &mut report);
        report.finish();
        report
    }

    #[test]
    fn unused_cap_is_dead() {
        let report = run_on(&[(
            "crates/x/src/codec.rs",
            "pub const MAX_ORPHANS: usize = 64; \
             fn decode_all(input: &mut &[u8]) { let n = decode_len(input); }",
        )]);
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0].message.contains("`MAX_ORPHANS`"));
    }

    #[test]
    fn compared_and_min_capped_caps_are_alive() {
        let report = run_on(&[(
            "crates/x/src/codec.rs",
            "pub const MAX_ITEMS: usize = 64; pub const SEQ_PREALLOC_LEN: usize = 16; \
             fn check(n: usize) -> bool { n <= MAX_ITEMS } \
             fn cap(n: usize) -> usize { n.min(SEQ_PREALLOC_LEN) }",
        )]);
        assert_eq!(report.findings.len(), 0);
    }

    #[test]
    fn caps_kept_alive_through_derived_constants() {
        let report = run_on(&[(
            "crates/x/src/codec.rs",
            "pub const MAX_SHARDS: usize = 16; \
             pub const MAX_BATCH: usize = MAX_SHARDS * 4; \
             fn check(n: usize) -> bool { n < MAX_BATCH }",
        )]);
        assert_eq!(report.findings.len(), 0);
    }

    #[test]
    fn fixed_size_layout_constants_are_alive() {
        // Exact-length checks, array repeat counts, and preallocations all
        // enforce a cap structurally — the `TRAILER_LEN`/`SCRATCH_LEN`
        // pattern in the log store and reactor.
        let report = run_on(&[(
            "crates/x/src/layout.rs",
            "pub const TRAILER_LEN: usize = 20; \
             pub const SCRATCH_LEN: usize = 16 * 1024; \
             pub const MAX_TAG_LEN: usize = 4; \
             fn framed(buf: &[u8]) -> bool { buf.len() != TRAILER_LEN } \
             fn scratch() -> Vec<u8> { vec![0u8; SCRATCH_LEN] } \
             fn tag() -> Vec<u8> { Vec::with_capacity(MAX_TAG_LEN) }",
        )]);
        assert_eq!(report.findings.len(), 0);
    }

    #[test]
    fn test_only_uses_do_not_keep_a_cap_alive() {
        let report = run_on(&[(
            "crates/x/src/codec.rs",
            "pub const MAX_GHOSTS: usize = 8; \
             #[cfg(test)] mod tests { use super::*; \
             #[test] fn t() { assert!(3 < MAX_GHOSTS); } }",
        )]);
        assert_eq!(report.findings.len(), 1);
    }

    #[test]
    fn cross_crate_uses_keep_a_cap_alive() {
        let report = run_on(&[
            (
                "crates/wire/src/codec.rs",
                "pub const MAX_FRAME_LEN: usize = 65536;",
            ),
            (
                "crates/log/src/store.rs",
                "use distrust_wire::codec::MAX_FRAME_LEN;\n\
                 fn admit(n: usize) -> bool { n <= MAX_FRAME_LEN }",
            ),
        ]);
        assert_eq!(report.findings.len(), 0);
    }

    #[test]
    fn unbounded_decode_parameter_is_a_cap_gap_finding() {
        let report = run_on(&[(
            "crates/x/src/codec.rs",
            "pub fn decode_table(input: &mut &[u8], slots: usize) { \
             let v: Vec<u64> = Vec::with_capacity(slots); }",
        )]);
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0]
            .message
            .contains("sized by parameter `slots`"));
    }
}
