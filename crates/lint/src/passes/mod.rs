//! The seven repo-specific analysis passes.

pub mod blocking;
pub mod cap_consistency;
pub mod lock_order;
pub mod panic_path;
pub mod protocol;
pub mod taint_alloc;
pub mod trust_boundary;
