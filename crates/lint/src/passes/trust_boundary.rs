//! Pass 6 — trust-boundary: fields of a not-yet-verified signed object
//! (checkpoint, release, quote, bundle) flowing into a state-changing
//! sink — log appends, cache inserts, checkpoint adoption, session
//! gating — before a verification call dominates them.
//!
//! This is the paper's core client invariant made machine-checked:
//! nothing a domain says may change local state until its signature (or
//! attestation) has been verified. The pass is a linear, per-function
//! scan:
//!
//! * **tracked** — parameters and let-bindings whose type names a signed
//!   object (`SignedCheckpoint`, `SignedRelease`, `Quote`, `*Bundle*`),
//!   or that are bound from a `decode`/`from_wire` of one;
//! * **verified** — a `verify*` call, or one of the auditor entry points
//!   (`observe`, `observe_bundle`, `observe_shard_bundle`,
//!   `precheck_checkpoint_batch`, `ingest_gossip`), with the variable as
//!   receiver or argument, marks it verified from that token on;
//! * **sink** — a state-changing call (`append`, `insert`, `push`,
//!   `adopt`, `install`, `extend`, `record`, `apply`) whose receiver
//!   chain roots in stateful storage (`self`, or a variable bound from
//!   it), or a `self`-rooted field assignment, using the tracked
//!   variable while still unverified.
//!
//! Functions that *are* the verifier (named `verify*` or an auditor
//! entry point) are exempt: they are the trust gate itself.

use crate::dataflow::SIGNED_TYPES;
use crate::lexer::Tok;
use crate::report::{Finding, Report};
use crate::scan::SourceFile;
use std::collections::BTreeMap;

pub const PASS: &str = "trust-boundary";

/// Auditor entry points that constitute verification of their argument.
const VERIFIER_FNS: [&str; 5] = [
    "observe",
    "observe_bundle",
    "observe_shard_bundle",
    "precheck_checkpoint_batch",
    "ingest_gossip",
];

/// State-changing calls.
const SINK_FNS: [&str; 8] = [
    "append", "insert", "push", "adopt", "install", "extend", "record", "apply",
];

const KEYWORDS: [&str; 30] = [
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "let", "fn",
    "impl", "pub", "use", "mod", "struct", "enum", "trait", "where", "as", "in", "ref", "mut",
    "move", "dyn", "unsafe", "extern", "static", "const", "type",
];

/// File scope policy: the repo default, or everything (fixtures).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrustScope {
    RepoDefault,
    AllFiles,
}

impl TrustScope {
    pub fn covers(&self, path: &str) -> bool {
        match self {
            TrustScope::AllFiles => true,
            TrustScope::RepoDefault => {
                path.starts_with("crates/core/src/")
                    || path.starts_with("crates/log/src/")
                    || path.starts_with("crates/tee/src/")
            }
        }
    }
}

fn verifier_fn(name: &str) -> bool {
    name.starts_with("verify") || VERIFIER_FNS.contains(&name)
}

struct Tracked {
    ty: String,
    origin: String,
    verified: bool,
}

pub fn run(files: &[SourceFile], scope: TrustScope, report: &mut Report) {
    for file in files {
        if !scope.covers(&file.path) {
            continue;
        }
        for def in &file.fns {
            if def.in_test || verifier_fn(&def.name) {
                continue;
            }
            scan_fn(file, def, report);
        }
    }
}

fn scan_fn(file: &SourceFile, def: &crate::scan::FnDef, report: &mut Report) {
    let (open, close) = def.body;
    let mut tracked: BTreeMap<String, Tracked> = BTreeMap::new();
    let mut stateful: Vec<String> = vec!["self".to_string()];

    // Parameters typed with a signed object.
    for (name, ty) in signed_params(file, def) {
        tracked.insert(
            name.clone(),
            Tracked {
                ty,
                origin: format!("param of `{}` at {}:{}", def.name, file.path, def.line),
                verified: false,
            },
        );
    }

    let nested: Vec<(usize, usize)> = file
        .fns
        .iter()
        .filter(|g| g.body.0 > open && g.body.1 < close)
        .map(|g| g.body)
        .collect();

    let mut idx = open + 1;
    while idx < close {
        if let Some(&(_, nend)) = nested.iter().find(|(ns, _)| *ns == idx) {
            idx = nend + 1;
            continue;
        }

        // `let [mut] x = SignedType::decode(...)` / `let x: SignedType = …`
        // — a freshly decoded signed object starts unverified. A binding
        // whose initializer mentions `self` (or another stateful var)
        // extends the stateful set instead.
        if file.ident_at(idx) == Some("let") {
            track_let(
                file,
                idx,
                close,
                &mut tracked,
                &mut stateful,
                def,
                &file.path,
            );
        }

        if let Some(name) = file.ident_at(idx) {
            if file.punct_at(idx + 1, '(') && !KEYWORDS.contains(&name) {
                let cl = paren_close(file, idx + 1).unwrap_or(close);
                if verifier_fn(name) {
                    // Receiver and every argument become verified.
                    let recv = receiver_base(file, idx);
                    for (var, t) in tracked.iter_mut() {
                        let in_args = (idx + 2..cl).any(|k| file.ident_at(k) == Some(var.as_str()));
                        if recv.as_deref() == Some(var.as_str()) || in_args {
                            t.verified = true;
                        }
                    }
                } else if SINK_FNS.contains(&name) {
                    let recv = receiver_base(file, idx);
                    let recv_stateful = recv
                        .as_deref()
                        .is_some_and(|r| stateful.iter().any(|s| s == r));
                    if recv_stateful {
                        for (var, t) in &tracked {
                            if t.verified {
                                continue;
                            }
                            let used =
                                (idx + 2..cl).any(|k| file.ident_at(k) == Some(var.as_str()));
                            if used {
                                report.findings.push(Finding::new(
                                    PASS,
                                    &file.path,
                                    file.line_at(idx),
                                    format!(
                                        "unverified `{}` `{var}` ({}) reaches state-changing \
                                         `{name}` before any verify call (in `{}`)",
                                        t.ty, t.origin, def.name
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
        }

        // `self.field = …tracked…` — state assignment from an unverified
        // signed object.
        if file.punct_at(idx, '=')
            && !file.punct_at(idx + 1, '=')
            && !file.punct_at(idx + 1, '>')
            && !matches!(
                file.tokens.get(idx.saturating_sub(1)).map(|t| &t.tok),
                Some(Tok::Punct('='))
                    | Some(Tok::Punct('<'))
                    | Some(Tok::Punct('>'))
                    | Some(Tok::Punct('!'))
            )
        {
            if let Some((base, base_idx)) = assign_lhs_base(file, idx) {
                // Skip let-bindings: `let module = …` is a fresh local, not
                // a state write, even when the name is already stateful.
                let is_let = base_idx > 0
                    && matches!(file.ident_at(base_idx - 1), Some("let") | Some("mut"));
                if !is_let && stateful.iter().any(|s| s == &base) {
                    let d = file.depth[idx];
                    let term = (idx + 1..close)
                        .find(|&k| file.punct_at(k, ';') && file.depth[k] == d)
                        .unwrap_or(close);
                    for (var, t) in &tracked {
                        if t.verified {
                            continue;
                        }
                        let used = (idx + 1..term).any(|k| file.ident_at(k) == Some(var.as_str()));
                        if used {
                            report.findings.push(Finding::new(
                                PASS,
                                &file.path,
                                file.line_at(idx),
                                format!(
                                    "unverified `{}` `{var}` ({}) assigned into `{base}` state \
                                     before any verify call (in `{}`)",
                                    t.ty, t.origin, def.name
                                ),
                            ));
                        }
                    }
                }
            }
        }

        idx += 1;
    }
}

/// Signed-object parameters of `def`: (name, type).
fn signed_params(file: &SourceFile, def: &crate::scan::FnDef) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let Some(fn_kw) = (0..def.body.0)
        .rev()
        .find(|&k| file.ident_at(k) == Some("fn") && file.ident_at(k + 1) == Some(&def.name))
    else {
        return out;
    };
    let Some(sig_open) = (fn_kw + 2..def.body.0).find(|&k| file.punct_at(k, '(')) else {
        return out;
    };
    let Some(sig_close) = paren_close(file, sig_open) else {
        return out;
    };
    // Walk params: name is the ident directly before a top-level `:`.
    let mut depth = 0i64;
    let mut cur_name: Option<String> = None;
    for k in sig_open + 1..sig_close {
        match file.tokens.get(k).map(|t| &t.tok) {
            Some(Tok::Punct('(')) | Some(Tok::Punct('[')) | Some(Tok::Punct('<')) => depth += 1,
            Some(Tok::Punct(')')) | Some(Tok::Punct(']')) | Some(Tok::Punct('>')) => depth -= 1,
            Some(Tok::Punct(',')) if depth <= 0 => cur_name = None,
            Some(Tok::Punct(':')) if depth <= 0 => {}
            Some(Tok::Ident(name)) => {
                if depth <= 0 && file.punct_at(k + 1, ':') {
                    cur_name = Some(name.clone());
                } else if SIGNED_TYPES.contains(&name.as_str()) {
                    if let Some(p) = &cur_name {
                        out.push((p.clone(), name.clone()));
                        cur_name = None;
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Processes one `let` statement for tracked/stateful bookkeeping.
fn track_let(
    file: &SourceFile,
    let_idx: usize,
    close: usize,
    tracked: &mut BTreeMap<String, Tracked>,
    stateful: &mut Vec<String>,
    def: &crate::scan::FnDef,
    path: &str,
) {
    let d = file.depth[let_idx];
    // A preceding `>` is allowed here: between a `let` and its `=` it can
    // only close a generic annotation (`let x: Vec<u8> = …`), never a
    // comparison.
    let Some(eq) = (let_idx + 1..close).find(|&k| {
        file.punct_at(k, '=')
            && !file.punct_at(k + 1, '=')
            && !file.punct_at(k + 1, '>')
            && !matches!(
                file.tokens.get(k.saturating_sub(1)).map(|t| &t.tok),
                Some(Tok::Punct('=')) | Some(Tok::Punct('<')) | Some(Tok::Punct('!'))
            )
    }) else {
        return;
    };
    let term = (eq + 1..close)
        .find(|&k| file.punct_at(k, ';') && file.depth[k] == d)
        .unwrap_or(close);
    // Binding name: first plain ident after `let`/`mut` (destructuring
    // patterns fall back to their first lowercase ident — good enough for
    // the `let Some(x) = …` shapes this repo uses).
    let mut name: Option<String> = None;
    for k in let_idx + 1..eq {
        if let Some(n) = file.ident_at(k) {
            let lower = n
                .chars()
                .next()
                .is_some_and(|c| c.is_lowercase() || c == '_');
            if lower && n != "mut" && n != "ref" && !KEYWORDS.contains(&n) {
                name = Some(n.to_string());
                break;
            }
        }
    }
    let Some(name) = name else { return };

    // Signed type named in the annotation or the initializer?
    let signed_ty = (let_idx + 1..term).find_map(|k| {
        file.ident_at(k)
            .filter(|n| SIGNED_TYPES.contains(n))
            .map(|n| n.to_string())
    });
    let decoded = (eq + 1..term).any(|k| {
        matches!(file.ident_at(k), Some("decode") | Some("from_wire")) && file.punct_at(k + 1, '(')
    });
    if let Some(ty) = signed_ty {
        if decoded || (let_idx + 1..eq).any(|k| file.punct_at(k, ':')) {
            tracked.insert(
                name.clone(),
                Tracked {
                    ty,
                    origin: format!(
                        "decoded at {path}:{} in `{}`",
                        file.line_at(let_idx),
                        def.name
                    ),
                    verified: false,
                },
            );
            return;
        }
    }
    // Stateful propagation: `let state = self.domains.get_mut(…)` etc.
    let from_stateful = (eq + 1..term).any(|k| {
        file.ident_at(k)
            .is_some_and(|n| stateful.iter().any(|s| s == n))
    });
    if from_stateful && !stateful.contains(&name) {
        stateful.push(name);
    }
}

/// Receiver base of the call at `call_idx` (`self.cache.insert(…)` →
/// `self`; `map.insert(…)` → `map`; a free call has none).
fn receiver_base(file: &SourceFile, call_idx: usize) -> Option<String> {
    if call_idx == 0 || !file.punct_at(call_idx - 1, '.') {
        return None;
    }
    let mut j = call_idx - 2;
    loop {
        match file.tokens.get(j).map(|t| &t.tok)? {
            Tok::Punct(')') | Tok::Punct(']') => return None, // call/index receiver: give up
            Tok::Ident(name) => {
                if j >= 1 && file.punct_at(j - 1, '.') {
                    j -= 2;
                } else {
                    return Some(name.clone());
                }
            }
            _ => return None,
        }
    }
}

/// For `a.b.c = …`, the base ident `a` of the assignment target and its
/// token index.
fn assign_lhs_base(file: &SourceFile, eq_idx: usize) -> Option<(String, usize)> {
    let mut j = eq_idx.checked_sub(1)?;
    // Walk back over `ident (. ident)*`.
    let mut base = match file.tokens.get(j).map(|t| &t.tok)? {
        Tok::Ident(name) => name.clone(),
        _ => return None,
    };
    while j >= 2 && file.punct_at(j - 1, '.') {
        j -= 2;
        match file.tokens.get(j).map(|t| &t.tok)? {
            Tok::Ident(name) => base = name.clone(),
            _ => return None,
        }
    }
    Some((base, j))
}

fn paren_close(file: &SourceFile, open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for k in open..file.tokens.len() {
        if file.punct_at(k, '(') {
            depth += 1;
        } else if file.punct_at(k, ')') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

#[cfg(test)]
mod unit {
    use super::*;

    fn run_on(path: &str, src: &str) -> Report {
        let file = SourceFile::parse(path.into(), src);
        let mut report = Report::default();
        run(&[file], TrustScope::RepoDefault, &mut report);
        report.finish();
        report
    }

    #[test]
    fn unverified_insert_fires() {
        let report = run_on(
            "crates/core/src/cache.rs",
            "fn adopt_cp(&mut self, cp: &SignedCheckpoint) { self.cache.insert(cp.root, cp.body); }",
        );
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0].message.contains("SignedCheckpoint"));
    }

    #[test]
    fn verify_before_use_is_clean() {
        let report = run_on(
            "crates/core/src/cache.rs",
            "fn adopt_cp(&mut self, cp: &SignedCheckpoint) { cp.verify(&key)?; \
             self.cache.insert(cp.root, cp.body); }",
        );
        assert_eq!(report.findings.len(), 0);
    }

    #[test]
    fn local_collections_are_not_state() {
        let report = run_on(
            "crates/core/src/cache.rs",
            "fn collect(&mut self, cp: &SignedCheckpoint) { let mut v = Vec::new(); v.push(cp); }",
        );
        assert_eq!(report.findings.len(), 0);
    }

    #[test]
    fn stateful_propagates_through_bindings() {
        let report = run_on(
            "crates/log/src/auditor.rs",
            "fn track(&mut self, q: &Quote) { let state = self.domains.get_mut(0); \
             state.log.append(q.body); }",
        );
        assert_eq!(report.findings.len(), 1);
    }

    #[test]
    fn verifier_functions_are_exempt() {
        let report = run_on(
            "crates/log/src/auditor.rs",
            "fn observe(&mut self, cp: &SignedCheckpoint) { self.cache.insert(cp.root, 1); }",
        );
        assert_eq!(report.findings.len(), 0);
    }

    #[test]
    fn state_assignment_fires() {
        let report = run_on(
            "crates/core/src/session.rs",
            "fn gate(&mut self, q: Quote) { self.trust = q.level; }",
        );
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0]
            .message
            .contains("assigned into `self` state"));
    }

    #[test]
    fn out_of_scope_crates_are_silent() {
        let report = run_on(
            "crates/apps/src/tool.rs",
            "fn adopt_cp(&mut self, cp: &SignedCheckpoint) { self.cache.insert(cp.root, 1); }",
        );
        assert_eq!(report.findings.len(), 0);
    }
}
