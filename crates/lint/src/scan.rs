//! Source model: one lexed file with its allowlist comments, test-only
//! regions, and extracted function bodies.

use crate::lexer::{lex, Tok, Token};
use std::collections::BTreeMap;

/// One `// lint:allow(<pass>): <reason>` entry.
#[derive(Debug, Clone)]
pub struct Allow {
    pub pass: String,
    pub reason: String,
}

/// One function definition (free function or method) with a body.
#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    pub line: u32,
    /// Token indices of the opening and closing body braces, inclusive.
    pub body: (usize, usize),
    /// True when the function lives inside `#[cfg(test)]` or `mod tests`.
    pub in_test: bool,
    /// Type the enclosing `impl` block is for, when the fn is a method.
    pub owner: Option<String>,
    /// Flow-insensitive local variable types inferred from `let`
    /// annotations (`let x: Type = …`), constructor calls
    /// (`let x = Type::new(…)`) and struct literals (`let x = Type { … }`).
    pub locals: BTreeMap<String, String>,
}

/// A lexed source file plus everything the passes need to interpret it.
pub struct SourceFile {
    /// Root-relative path with forward slashes (stable across platforms).
    pub path: String,
    /// Crate the file belongs to (`wire`, `core`, …, `root` for `src/`).
    pub crate_name: String,
    pub tokens: Vec<Token>,
    /// Brace depth at each token (the `{` itself counts at the new depth).
    pub depth: Vec<u32>,
    /// Allow entries keyed by 1-based source line.
    pub allows: BTreeMap<u32, Vec<Allow>>,
    /// Per-token flag: true inside test-only code.
    pub test_mask: Vec<bool>,
    pub fns: Vec<FnDef>,
    /// `use` imports: local name (or `as` alias) → full path segments.
    pub imports: BTreeMap<String, Vec<String>>,
    /// Struct field types: struct name → field name → type tail ident
    /// (the first uppercase path segment of the field's declared type).
    pub structs: BTreeMap<String, BTreeMap<String, String>>,
}

impl SourceFile {
    pub fn parse(path: String, source: &str) -> SourceFile {
        let crate_name = crate_of(&path);
        let tokens = lex(source);
        let depth = depths(&tokens);
        let allows = parse_allows(source);
        let test_mask = test_mask(&tokens);
        let mut file = SourceFile {
            path,
            crate_name,
            tokens,
            depth,
            allows,
            test_mask,
            fns: Vec::new(),
            imports: BTreeMap::new(),
            structs: BTreeMap::new(),
        };
        file.imports = parse_imports(&file.tokens);
        file.structs = parse_structs(&file);
        file.fns = extract_fns(&file);
        let impls = impl_regions(&file);
        for def in &mut file.fns {
            def.owner = impls
                .iter()
                .find(|(_, open, close)| def.body.0 > *open && def.body.1 < *close)
                .map(|(ty, _, _)| ty.clone());
        }
        let locals: Vec<BTreeMap<String, String>> =
            file.fns.iter().map(|def| fn_locals(&file, def)).collect();
        for (def, l) in file.fns.iter_mut().zip(locals) {
            def.locals = l;
        }
        file
    }

    pub fn ident_at(&self, idx: usize) -> Option<&str> {
        match self.tokens.get(idx).map(|t| &t.tok) {
            Some(Tok::Ident(name)) => Some(name),
            _ => None,
        }
    }

    pub fn punct_at(&self, idx: usize, c: char) -> bool {
        matches!(self.tokens.get(idx).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
    }

    pub fn path_sep_at(&self, idx: usize) -> bool {
        matches!(self.tokens.get(idx).map(|t| &t.tok), Some(Tok::PathSep))
    }

    pub fn line_at(&self, idx: usize) -> u32 {
        self.tokens.get(idx).map(|t| t.line).unwrap_or(0)
    }

    /// Finds the matching `}` for the `{` at `open` (token index).
    pub fn matching_close(&self, open: usize) -> usize {
        let mut depth = 0i64;
        for (i, t) in self.tokens.iter().enumerate().skip(open) {
            match t.tok {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
        self.tokens.len().saturating_sub(1)
    }
}

fn crate_of(path: &str) -> String {
    let mut parts = path.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => name.to_string(),
        _ => "root".to_string(),
    }
}

fn depths(tokens: &[Token]) -> Vec<u32> {
    let mut depth = 0u32;
    tokens
        .iter()
        .map(|t| match t.tok {
            Tok::Punct('{') => {
                depth += 1;
                depth
            }
            Tok::Punct('}') => {
                let at = depth;
                depth = depth.saturating_sub(1);
                at
            }
            _ => depth,
        })
        .collect()
}

/// Parses `lint:allow(<pass>): <reason>` comments out of the raw text.
/// An entry applies to its own line and to the line directly below it.
fn parse_allows(source: &str) -> BTreeMap<u32, Vec<Allow>> {
    let mut out: BTreeMap<u32, Vec<Allow>> = BTreeMap::new();
    for (n, line) in source.lines().enumerate() {
        // Only honour a marker that directly follows a plain `//` comment
        // opener: doc comments (`///`, `//!`) and string literals that
        // merely *mention* the syntax stay inert.
        let Some(comment_at) = line.find("//") else {
            continue;
        };
        let comment = line[comment_at + 2..].trim_start();
        let Some(rest) = comment.strip_prefix("lint:allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let pass = rest[..close].trim().to_string();
        let after = &rest[close + 1..];
        let reason = after
            .strip_prefix(':')
            .map(|r| r.trim().to_string())
            .unwrap_or_default();
        out.entry(n as u32 + 1)
            .or_default()
            .push(Allow { pass, reason });
    }
    out
}

/// Marks tokens inside `#[cfg(test)]` items and `mod tests { … }` bodies.
fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some(end) = test_region_end(tokens, i) {
            for m in mask.iter_mut().take(end + 1).skip(i) {
                *m = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// If a test-only region starts at token `i`, returns its last token index.
fn test_region_end(tokens: &[Token], i: usize) -> Option<usize> {
    if is_ident(tokens, i, "mod") && is_ident(tokens, i + 1, "tests") {
        let open = find_punct(tokens, i + 2, '{')?;
        return Some(close_of(tokens, open));
    }
    // `#[cfg(test)]` (possibly `#[cfg(all(test, …))]`): the attribute plus
    // the item that follows it, skipping any further attributes.
    if !is_punct(tokens, i, '#') || !is_punct(tokens, i + 1, '[') {
        return None;
    }
    let attr_close = bracket_close(tokens, i + 1)?;
    if !is_ident(tokens, i + 2, "cfg") {
        return None;
    }
    let has_test = tokens[i..=attr_close]
        .iter()
        .any(|t| matches!(&t.tok, Tok::Ident(name) if name == "test"));
    if !has_test {
        return None;
    }
    let mut j = attr_close + 1;
    while is_punct(tokens, j, '#') && is_punct(tokens, j + 1, '[') {
        j = bracket_close(tokens, j + 1)? + 1;
    }
    // The guarded item runs to its body's closing brace, or to a `;` for
    // declarations like `use` re-exports.
    for (k, t) in tokens.iter().enumerate().skip(j) {
        match t.tok {
            Tok::Punct('{') => return Some(close_of(tokens, k)),
            Tok::Punct(';') => return Some(k),
            _ => {}
        }
    }
    Some(tokens.len() - 1)
}

fn is_ident(tokens: &[Token], i: usize, want: &str) -> bool {
    matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Ident(name)) if name == want)
}

fn is_punct(tokens: &[Token], i: usize, c: char) -> bool {
    matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

fn find_punct(tokens: &[Token], from: usize, c: char) -> Option<usize> {
    tokens[from..]
        .iter()
        .position(|t| matches!(&t.tok, Tok::Punct(p) if *p == c))
        .map(|off| from + off)
}

fn close_of(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    tokens.len().saturating_sub(1)
}

/// Matching `]` for the `[` at `open`.
fn bracket_close(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

fn extract_fns(file: &SourceFile) -> Vec<FnDef> {
    let tokens = &file.tokens;
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if is_ident(tokens, i, "fn") {
            if let Some(Tok::Ident(name)) = tokens.get(i + 1).map(|t| &t.tok) {
                // The body is the first `{` before any `;` (trait method
                // declarations have no body). Type positions between the
                // signature and the body contain no braces in this
                // codebase's dialect.
                let mut j = i + 2;
                let mut body = None;
                while j < tokens.len() {
                    match tokens[j].tok {
                        Tok::Punct('{') => {
                            body = Some((j, close_of(tokens, j)));
                            break;
                        }
                        Tok::Punct(';') => break,
                        _ => j += 1,
                    }
                }
                if let Some(body) = body {
                    fns.push(FnDef {
                        name: name.clone(),
                        line: tokens[i].line,
                        body,
                        in_test: file.test_mask[i],
                        owner: None,
                        locals: BTreeMap::new(),
                    });
                    // Continue scanning *inside* the body too: nested fns
                    // are rare but shouldn't be invisible.
                    i += 2;
                    continue;
                }
            }
        }
        i += 1;
    }
    fns
}

/// Collects every `use` declaration into `local name → path segments`.
fn parse_imports(tokens: &[Token]) -> BTreeMap<String, Vec<String>> {
    let mut out = BTreeMap::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if is_ident(tokens, i, "use") {
            let mut j = i + 1;
            parse_use_tree(tokens, &mut j, &mut Vec::new(), &mut out);
            i = j.max(i + 1);
        } else {
            i += 1;
        }
    }
    out
}

/// Parses one use-tree at `*j` (segments, `{…}` groups, `as` aliases,
/// globs), recording leaves into `out`. Stops before `;`, `,` or `}`.
fn parse_use_tree(
    tokens: &[Token],
    j: &mut usize,
    prefix: &mut Vec<String>,
    out: &mut BTreeMap<String, Vec<String>>,
) {
    let base_len = prefix.len();
    loop {
        match tokens.get(*j).map(|t| &t.tok) {
            Some(Tok::Ident(name)) if name == "as" => {
                if let Some(Tok::Ident(alias)) = tokens.get(*j + 1).map(|t| &t.tok) {
                    out.insert(alias.clone(), prefix.clone());
                    *j += 2;
                }
                break;
            }
            Some(Tok::Ident(name)) => {
                prefix.push(name.clone());
                *j += 1;
                if matches!(tokens.get(*j).map(|t| &t.tok), Some(Tok::PathSep)) {
                    *j += 1;
                    continue;
                }
                if is_ident(tokens, *j, "as") {
                    continue; // handled by the `as` arm next iteration
                }
                // Leaf: `use a::b::Name;` binds `Name`; `use a::b::{self}`
                // binds the enclosing segment `b`.
                let leaf = prefix.last().cloned().unwrap_or_default();
                if leaf == "self" {
                    let parent: Vec<String> = prefix[..prefix.len() - 1].to_vec();
                    if let Some(key) = parent.last().cloned() {
                        out.insert(key, parent);
                    }
                } else {
                    out.insert(leaf, prefix.clone());
                }
                break;
            }
            Some(Tok::Punct('{')) => {
                *j += 1;
                loop {
                    match tokens.get(*j).map(|t| &t.tok) {
                        Some(Tok::Punct('}')) => {
                            *j += 1;
                            break;
                        }
                        Some(Tok::Punct(',')) => *j += 1,
                        None => break,
                        _ => {
                            let before = *j;
                            parse_use_tree(tokens, j, &mut prefix.clone(), out);
                            if *j == before {
                                *j += 1; // never stall on unexpected tokens
                            }
                        }
                    }
                }
                break;
            }
            _ => break,
        }
    }
    prefix.truncate(base_len);
}

/// First uppercase-initial ident in `lo..hi` (the outermost type of an
/// annotation like `Arc<Mutex<T>>` — `Arc`), skipping path prefixes so
/// `wire::sync::HealthyMutex` yields `HealthyMutex`.
fn type_head(tokens: &[Token], lo: usize, hi: usize) -> Option<String> {
    let mut k = lo;
    while k < hi {
        if let Some(Tok::Ident(name)) = tokens.get(k).map(|t| &t.tok) {
            if matches!(tokens.get(k + 1).map(|t| &t.tok), Some(Tok::PathSep)) {
                k += 2;
                continue;
            }
            if name.chars().next().is_some_and(|c| c.is_uppercase()) {
                return Some(name.clone());
            }
        }
        k += 1;
    }
    None
}

/// Field types of every `struct Name { field: Type, … }` in the file.
fn parse_structs(file: &SourceFile) -> BTreeMap<String, BTreeMap<String, String>> {
    let tokens = &file.tokens;
    let mut out: BTreeMap<String, BTreeMap<String, String>> = BTreeMap::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !is_ident(tokens, i, "struct") {
            i += 1;
            continue;
        }
        let Some(Tok::Ident(name)) = tokens.get(i + 1).map(|t| &t.tok) else {
            i += 1;
            continue;
        };
        // Body is the first `{` before any `;` or `(` (tuple/unit structs
        // have no named fields).
        let mut j = i + 2;
        let mut open = None;
        while j < tokens.len() {
            match tokens[j].tok {
                Tok::Punct('{') => {
                    open = Some(j);
                    break;
                }
                Tok::Punct(';') | Tok::Punct('(') => break,
                _ => j += 1,
            }
        }
        let Some(open) = open else {
            i += 2;
            continue;
        };
        let close = close_of(tokens, open);
        let fields = out.entry(name.clone()).or_default();
        let mut k = open + 1;
        while k < close {
            // A field is `ident :` at the body's brace depth.
            let is_field = matches!(tokens.get(k).map(|t| &t.tok), Some(Tok::Ident(_)))
                && is_punct(tokens, k + 1, ':')
                && file.depth[k] == file.depth[open];
            if is_field {
                let field = match &tokens[k].tok {
                    Tok::Ident(n) => n.clone(),
                    _ => unreachable!(),
                };
                // The type runs to the next comma outside `<>`/`()`/`[]`.
                let mut depth = 0i64;
                let mut end = k + 2;
                while end < close {
                    match tokens.get(end).map(|t| &t.tok) {
                        Some(Tok::Punct('<')) | Some(Tok::Punct('(')) | Some(Tok::Punct('[')) => {
                            depth += 1
                        }
                        Some(Tok::Punct('>')) | Some(Tok::Punct(')')) | Some(Tok::Punct(']')) => {
                            depth -= 1
                        }
                        Some(Tok::Punct(',')) if depth <= 0 => break,
                        _ => {}
                    }
                    end += 1;
                }
                if let Some(ty) = type_head(tokens, k + 2, end) {
                    fields.insert(field, ty);
                }
                k = end + 1;
            } else {
                k += 1;
            }
        }
        i = close + 1;
    }
    out.retain(|_, fields| !fields.is_empty());
    out
}

/// `(owner type, body open, body close)` for every `impl` block: the type
/// after `for` when present (`impl Trait for Type`), else the type after
/// `impl` (skipping generics).
fn impl_regions(file: &SourceFile) -> Vec<(String, usize, usize)> {
    let tokens = &file.tokens;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !is_ident(tokens, i, "impl") {
            i += 1;
            continue;
        }
        let Some(open) = find_punct(tokens, i + 1, '{') else {
            i += 1;
            continue;
        };
        let close = close_of(tokens, open);
        let for_kw = (i + 1..open).find(|&k| is_ident(tokens, k, "for"));
        let ty_from = for_kw.map(|k| k + 1).unwrap_or_else(|| {
            // Skip `impl<…>` generics.
            if is_punct(tokens, i + 1, '<') {
                let mut depth = 0i64;
                let mut k = i + 1;
                while k < open {
                    if is_punct(tokens, k, '<') {
                        depth += 1;
                    } else if is_punct(tokens, k, '>') {
                        depth -= 1;
                        if depth == 0 {
                            return k + 1;
                        }
                    }
                    k += 1;
                }
                open
            } else {
                i + 1
            }
        });
        let ty_to = (ty_from..open)
            .find(|&k| is_ident(tokens, k, "where") || is_punct(tokens, k, '<'))
            .unwrap_or(open);
        if let Some(ty) = type_head(tokens, ty_from, ty_to.max(ty_from)) {
            out.push((ty, open, close));
        }
        i = open + 1; // impls aren't nested; fns inside are scanned anyway
    }
    out
}

/// Infers local variable types inside one fn body, flow-insensitively:
/// `let x: Type = …`, `let x = Type::ctor(…)`, `let x = Type { … }`.
fn fn_locals(file: &SourceFile, def: &FnDef) -> BTreeMap<String, String> {
    let tokens = &file.tokens;
    let (open, close) = def.body;
    let mut out = BTreeMap::new();
    let mut k = open + 1;
    while k < close {
        if !is_ident(tokens, k, "let") {
            k += 1;
            continue;
        }
        let mut j = k + 1;
        if is_ident(tokens, j, "mut") {
            j += 1;
        }
        let Some(Tok::Ident(var)) = tokens.get(j).map(|t| &t.tok) else {
            k += 1;
            continue;
        };
        let var = var.clone();
        if var
            .chars()
            .next()
            .is_some_and(|c| c.is_uppercase() || KEYWORD_LIKE.contains(&var.as_str()))
        {
            k += 1;
            continue;
        }
        let mut ty = None;
        if is_punct(tokens, j + 1, ':') {
            // Annotated: type runs to the `=` (or `;` for uninitialized).
            let end = (j + 2..close)
                .find(|&c| is_punct(tokens, c, '=') || is_punct(tokens, c, ';'))
                .unwrap_or(close);
            ty = type_head(tokens, j + 2, end);
        } else if is_punct(tokens, j + 1, '=') {
            // `let x = Type::ctor(…)` / `let x = Type { … }`.
            if let Some(Tok::Ident(head)) = tokens.get(j + 2).map(|t| &t.tok) {
                let upper = head.chars().next().is_some_and(|c| c.is_uppercase());
                let ctor = matches!(tokens.get(j + 3).map(|t| &t.tok), Some(Tok::PathSep));
                let literal = is_punct(tokens, j + 3, '{');
                if upper && (ctor || literal) {
                    ty = Some(head.clone());
                }
            }
        }
        if let Some(ty) = ty {
            out.entry(var).or_insert(ty);
        }
        k = j + 1;
    }
    out
}

const KEYWORD_LIKE: [&str; 4] = ["mut", "ref", "box", "move"];

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn allows_parse_with_reasons() {
        let src =
            "x\n// lint:allow(panic): bounded by construction\ny // lint:allow(lock-order):\n";
        let allows = parse_allows(src);
        assert_eq!(allows[&2][0].pass, "panic");
        assert_eq!(allows[&2][0].reason, "bounded by construction");
        assert_eq!(allows[&3][0].pass, "lock-order");
        assert_eq!(allows[&3][0].reason, "");
    }

    #[test]
    fn allow_marker_outside_comment_is_inert() {
        let src = "let s = \"lint:allow(panic): nope\";\n";
        assert!(parse_allows(src).is_empty());
    }

    #[test]
    fn test_regions_cover_cfg_and_mod_tests() {
        let src = "fn live() { a.lock(); }\n#[cfg(test)]\nmod tests {\n fn t() { b.lock(); }\n}\n";
        let file = SourceFile::parse("crates/x/src/lib.rs".into(), src);
        let live: Vec<_> = file.fns.iter().filter(|f| !f.in_test).collect();
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].name, "live");
        assert_eq!(file.fns.len(), 2);
    }

    #[test]
    fn crate_names_resolve() {
        assert_eq!(crate_of("crates/wire/src/rpc.rs"), "wire");
        assert_eq!(crate_of("src/lib.rs"), "root");
    }

    #[test]
    fn imports_resolve_groups_aliases_and_self() {
        let src = "use distrust_wire::codec::{decode_seq, encode_seq as enc};\n\
                   use distrust_core::checkpoint::{self, Checkpoint};\n\
                   use std::collections::*;\n";
        let file = SourceFile::parse("crates/log/src/lib.rs".into(), src);
        assert_eq!(
            file.imports["decode_seq"],
            vec!["distrust_wire", "codec", "decode_seq"]
        );
        assert_eq!(
            file.imports["enc"],
            vec!["distrust_wire", "codec", "encode_seq"]
        );
        assert_eq!(
            file.imports["checkpoint"],
            vec!["distrust_core", "checkpoint"]
        );
        assert_eq!(
            file.imports["Checkpoint"],
            vec!["distrust_core", "checkpoint", "Checkpoint"]
        );
        assert!(!file.imports.contains_key("*"));
    }

    #[test]
    fn methods_get_owners_and_struct_fields_resolve() {
        let src = "struct Store { inner: Arc<Mutex<Vec<u8>>>, count: usize }\n\
                   impl Store {\n fn push_one(&self) {}\n}\n\
                   impl Drop for Store {\n fn drop(&mut self) {}\n}\n\
                   fn free() {}\n";
        let file = SourceFile::parse("crates/log/src/lib.rs".into(), src);
        let by_name = |n: &str| file.fns.iter().find(|f| f.name == n).unwrap();
        assert_eq!(by_name("push_one").owner.as_deref(), Some("Store"));
        assert_eq!(by_name("drop").owner.as_deref(), Some("Store"));
        assert_eq!(by_name("free").owner, None);
        assert_eq!(file.structs["Store"]["inner"], "Arc");
        assert!(!file.structs["Store"].contains_key("count"));
    }

    #[test]
    fn locals_infer_from_annotations_ctors_and_literals() {
        let src = "fn f() {\n let a: DurableStore = make();\n \
                   let mut b = ShardedLog::open(p);\n \
                   let c = Config { root: r };\n \
                   let d = helper();\n let e = 7;\n}\n";
        let file = SourceFile::parse("crates/log/src/lib.rs".into(), src);
        let locals = &file.fns[0].locals;
        assert_eq!(locals["a"], "DurableStore");
        assert_eq!(locals["b"], "ShardedLog");
        assert_eq!(locals["c"], "Config");
        assert!(!locals.contains_key("d"));
        assert!(!locals.contains_key("e"));
    }
}
