//! Source model: one lexed file with its allowlist comments, test-only
//! regions, and extracted function bodies.

use crate::lexer::{lex, Tok, Token};
use std::collections::BTreeMap;

/// One `// lint:allow(<pass>): <reason>` entry.
#[derive(Debug, Clone)]
pub struct Allow {
    pub pass: String,
    pub reason: String,
}

/// One function definition (free function or method) with a body.
#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    pub line: u32,
    /// Token indices of the opening and closing body braces, inclusive.
    pub body: (usize, usize),
    /// True when the function lives inside `#[cfg(test)]` or `mod tests`.
    pub in_test: bool,
}

/// A lexed source file plus everything the passes need to interpret it.
pub struct SourceFile {
    /// Root-relative path with forward slashes (stable across platforms).
    pub path: String,
    /// Crate the file belongs to (`wire`, `core`, …, `root` for `src/`).
    pub crate_name: String,
    pub tokens: Vec<Token>,
    /// Brace depth at each token (the `{` itself counts at the new depth).
    pub depth: Vec<u32>,
    /// Allow entries keyed by 1-based source line.
    pub allows: BTreeMap<u32, Vec<Allow>>,
    /// Per-token flag: true inside test-only code.
    pub test_mask: Vec<bool>,
    pub fns: Vec<FnDef>,
}

impl SourceFile {
    pub fn parse(path: String, source: &str) -> SourceFile {
        let crate_name = crate_of(&path);
        let tokens = lex(source);
        let depth = depths(&tokens);
        let allows = parse_allows(source);
        let test_mask = test_mask(&tokens);
        let mut file = SourceFile {
            path,
            crate_name,
            tokens,
            depth,
            allows,
            test_mask,
            fns: Vec::new(),
        };
        file.fns = extract_fns(&file);
        file
    }

    pub fn ident_at(&self, idx: usize) -> Option<&str> {
        match self.tokens.get(idx).map(|t| &t.tok) {
            Some(Tok::Ident(name)) => Some(name),
            _ => None,
        }
    }

    pub fn punct_at(&self, idx: usize, c: char) -> bool {
        matches!(self.tokens.get(idx).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
    }

    pub fn line_at(&self, idx: usize) -> u32 {
        self.tokens.get(idx).map(|t| t.line).unwrap_or(0)
    }

    /// Finds the matching `}` for the `{` at `open` (token index).
    pub fn matching_close(&self, open: usize) -> usize {
        let mut depth = 0i64;
        for (i, t) in self.tokens.iter().enumerate().skip(open) {
            match t.tok {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
        self.tokens.len().saturating_sub(1)
    }
}

fn crate_of(path: &str) -> String {
    let mut parts = path.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => name.to_string(),
        _ => "root".to_string(),
    }
}

fn depths(tokens: &[Token]) -> Vec<u32> {
    let mut depth = 0u32;
    tokens
        .iter()
        .map(|t| match t.tok {
            Tok::Punct('{') => {
                depth += 1;
                depth
            }
            Tok::Punct('}') => {
                let at = depth;
                depth = depth.saturating_sub(1);
                at
            }
            _ => depth,
        })
        .collect()
}

/// Parses `lint:allow(<pass>): <reason>` comments out of the raw text.
/// An entry applies to its own line and to the line directly below it.
fn parse_allows(source: &str) -> BTreeMap<u32, Vec<Allow>> {
    let mut out: BTreeMap<u32, Vec<Allow>> = BTreeMap::new();
    for (n, line) in source.lines().enumerate() {
        // Only honour a marker that directly follows a plain `//` comment
        // opener: doc comments (`///`, `//!`) and string literals that
        // merely *mention* the syntax stay inert.
        let Some(comment_at) = line.find("//") else {
            continue;
        };
        let comment = line[comment_at + 2..].trim_start();
        let Some(rest) = comment.strip_prefix("lint:allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let pass = rest[..close].trim().to_string();
        let after = &rest[close + 1..];
        let reason = after
            .strip_prefix(':')
            .map(|r| r.trim().to_string())
            .unwrap_or_default();
        out.entry(n as u32 + 1)
            .or_default()
            .push(Allow { pass, reason });
    }
    out
}

/// Marks tokens inside `#[cfg(test)]` items and `mod tests { … }` bodies.
fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some(end) = test_region_end(tokens, i) {
            for m in mask.iter_mut().take(end + 1).skip(i) {
                *m = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// If a test-only region starts at token `i`, returns its last token index.
fn test_region_end(tokens: &[Token], i: usize) -> Option<usize> {
    if is_ident(tokens, i, "mod") && is_ident(tokens, i + 1, "tests") {
        let open = find_punct(tokens, i + 2, '{')?;
        return Some(close_of(tokens, open));
    }
    // `#[cfg(test)]` (possibly `#[cfg(all(test, …))]`): the attribute plus
    // the item that follows it, skipping any further attributes.
    if !is_punct(tokens, i, '#') || !is_punct(tokens, i + 1, '[') {
        return None;
    }
    let attr_close = bracket_close(tokens, i + 1)?;
    if !is_ident(tokens, i + 2, "cfg") {
        return None;
    }
    let has_test = tokens[i..=attr_close]
        .iter()
        .any(|t| matches!(&t.tok, Tok::Ident(name) if name == "test"));
    if !has_test {
        return None;
    }
    let mut j = attr_close + 1;
    while is_punct(tokens, j, '#') && is_punct(tokens, j + 1, '[') {
        j = bracket_close(tokens, j + 1)? + 1;
    }
    // The guarded item runs to its body's closing brace, or to a `;` for
    // declarations like `use` re-exports.
    for (k, t) in tokens.iter().enumerate().skip(j) {
        match t.tok {
            Tok::Punct('{') => return Some(close_of(tokens, k)),
            Tok::Punct(';') => return Some(k),
            _ => {}
        }
    }
    Some(tokens.len() - 1)
}

fn is_ident(tokens: &[Token], i: usize, want: &str) -> bool {
    matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Ident(name)) if name == want)
}

fn is_punct(tokens: &[Token], i: usize, c: char) -> bool {
    matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

fn find_punct(tokens: &[Token], from: usize, c: char) -> Option<usize> {
    tokens[from..]
        .iter()
        .position(|t| matches!(&t.tok, Tok::Punct(p) if *p == c))
        .map(|off| from + off)
}

fn close_of(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    tokens.len().saturating_sub(1)
}

/// Matching `]` for the `[` at `open`.
fn bracket_close(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

fn extract_fns(file: &SourceFile) -> Vec<FnDef> {
    let tokens = &file.tokens;
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if is_ident(tokens, i, "fn") {
            if let Some(Tok::Ident(name)) = tokens.get(i + 1).map(|t| &t.tok) {
                // The body is the first `{` before any `;` (trait method
                // declarations have no body). Type positions between the
                // signature and the body contain no braces in this
                // codebase's dialect.
                let mut j = i + 2;
                let mut body = None;
                while j < tokens.len() {
                    match tokens[j].tok {
                        Tok::Punct('{') => {
                            body = Some((j, close_of(tokens, j)));
                            break;
                        }
                        Tok::Punct(';') => break,
                        _ => j += 1,
                    }
                }
                if let Some(body) = body {
                    fns.push(FnDef {
                        name: name.clone(),
                        line: tokens[i].line,
                        body,
                        in_test: file.test_mask[i],
                    });
                    // Continue scanning *inside* the body too: nested fns
                    // are rare but shouldn't be invisible.
                    i += 2;
                    continue;
                }
            }
        }
        i += 1;
    }
    fns
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn allows_parse_with_reasons() {
        let src =
            "x\n// lint:allow(panic): bounded by construction\ny // lint:allow(lock-order):\n";
        let allows = parse_allows(src);
        assert_eq!(allows[&2][0].pass, "panic");
        assert_eq!(allows[&2][0].reason, "bounded by construction");
        assert_eq!(allows[&3][0].pass, "lock-order");
        assert_eq!(allows[&3][0].reason, "");
    }

    #[test]
    fn allow_marker_outside_comment_is_inert() {
        let src = "let s = \"lint:allow(panic): nope\";\n";
        assert!(parse_allows(src).is_empty());
    }

    #[test]
    fn test_regions_cover_cfg_and_mod_tests() {
        let src = "fn live() { a.lock(); }\n#[cfg(test)]\nmod tests {\n fn t() { b.lock(); }\n}\n";
        let file = SourceFile::parse("crates/x/src/lib.rs".into(), src);
        let live: Vec<_> = file.fns.iter().filter(|f| !f.in_test).collect();
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].name, "live");
        assert_eq!(file.fns.len(), 2);
    }

    #[test]
    fn crate_names_resolve() {
        assert_eq!(crate_of("crates/wire/src/rpc.rs"), "wire");
        assert_eq!(crate_of("src/lib.rs"), "root");
    }
}
