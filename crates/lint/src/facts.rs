//! Per-function facts: which named locks a function acquires, how long
//! each guard lives, and which calls (and potential blocking calls) happen
//! while a guard is held.
//!
//! Guard lifetimes are a lexical approximation of Rust's drop rules:
//!
//! * a let-bound guard (`let g = x.lock();`) lives to the end of its
//!   enclosing block, or to an explicit `drop(g)`;
//! * a temporary guard (`x.lock().do_thing()`) lives to the end of its
//!   statement — or, when the acquisition sits in a `for`/`while`/`if`/
//!   `match` header, to the end of that construct's body, matching the
//!   scrutinee-temporary extension that bites in real deadlocks.
//!
//! Lock identity is the receiver's trailing field/variable name with known
//! alias suffixes stripped (`conns_accept` and `conns_c` are clones of the
//! same `Arc<Mutex<…>>` as `conns`), qualified by file stem so unrelated
//! locks that happen to share a field name stay distinct.

use crate::lexer::Tok;
use crate::resolve::{Qual, Resolver};
use crate::scan::{FnDef, SourceFile};
use std::fmt;

/// Methods that acquire a guard. `.read()`/`.write()` count only with
/// empty argument lists, so `stream.read(&mut buf)` io calls stay inert.
const LOCK_METHODS: [&str; 4] = ["lock", "lock_healthy", "read", "write"];

/// Methods that pass the receiver through unchanged for naming purposes.
const TRANSPARENT: [&str; 14] = [
    "get",
    "get_mut",
    "iter",
    "iter_mut",
    "as_ref",
    "as_mut",
    "clone",
    "entry",
    "borrow",
    "borrow_mut",
    "expect",
    "unwrap",
    "ok_or",
    "ok_or_else",
];

/// Alias suffixes produced by `Arc` clones named for the thread that owns
/// them (`conns_accept`, `tx_c`, …); stripped to merge with the original.
const ALIAS_SUFFIXES: [&str; 9] = [
    "_accept", "_conn", "_c", "_i", "_e", "_t", "_tx", "_rx", "_2",
];

const KEYWORDS: [&str; 30] = [
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "let", "fn",
    "impl", "pub", "use", "mod", "struct", "enum", "trait", "where", "as", "in", "ref", "mut",
    "move", "dyn", "unsafe", "extern", "static", "const", "type",
];

/// Identity of one named lock: canonical receiver name + defining file.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockId {
    pub name: String,
    pub place: String,
}

impl fmt::Display for LockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.name, self.place)
    }
}

/// One lock acquisition, with the locks already held at that point.
#[derive(Debug, Clone)]
pub struct Acquire {
    pub lock: LockId,
    pub line: u32,
    pub held: Vec<(LockId, u32)>,
}

/// One call site, with the locks held while the call runs.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub name: String,
    pub line: u32,
    pub zero_args: bool,
    /// How the site names its callee (`Type::f`, `recv.f`, `a::b::f`, …).
    pub qual: Qual,
    pub held: Vec<(LockId, u32)>,
}

/// Everything the graph passes need to know about one function.
#[derive(Debug, Clone)]
pub struct FnFacts {
    pub name: String,
    pub file: String,
    pub crate_name: String,
    pub line: u32,
    pub acquires: Vec<Acquire>,
    pub calls: Vec<CallSite>,
}

/// Blocking classification by call name. `join` only counts with no
/// arguments (thread join), so `Vec::join(", ")` stays inert; names ending
/// in `_timeout` are the sanctioned bounded alternatives and never count.
pub fn blocking_call(call: &CallSite) -> Option<&'static str> {
    match call.name.as_str() {
        "sleep" => Some("sleep"),
        "connect" => Some("connect"),
        "accept" => Some("accept"),
        "recv" => Some("recv"),
        "read_frame" => Some("read_frame"),
        "write_frame" => Some("write_frame"),
        "join" if call.zero_args => Some("join"),
        _ => None,
    }
}

/// Extracts facts for every non-test function in `file`, in the
/// resolver's canonical order.
pub fn function_facts(file: &SourceFile, resolver: &Resolver) -> Vec<FnFacts> {
    let stem = file
        .path
        .rsplit('/')
        .next()
        .unwrap_or(&file.path)
        .trim_end_matches(".rs")
        .to_string();
    file.fns
        .iter()
        .filter(|f| !f.in_test)
        .map(|f| walk_fn(file, f, &stem, resolver))
        .collect()
}

struct Guard {
    lock: LockId,
    line: u32,
    /// Token index at which the guard stops being held.
    end: usize,
}

fn walk_fn(file: &SourceFile, def: &FnDef, stem: &str, resolver: &Resolver) -> FnFacts {
    let (open, close) = def.body;
    // Nested named fns are walked on their own; skip their token ranges.
    let nested: Vec<(usize, usize)> = file
        .fns
        .iter()
        .filter(|g| g.body.0 > open && g.body.1 < close)
        .map(|g| g.body)
        .collect();

    let mut guards: Vec<Guard> = Vec::new();
    let mut facts = FnFacts {
        name: def.name.clone(),
        file: file.path.clone(),
        crate_name: file.crate_name.clone(),
        line: def.line,
        acquires: Vec::new(),
        calls: Vec::new(),
    };

    let mut idx = open;
    while idx <= close {
        if let Some(&(_, nend)) = nested.iter().find(|(ns, _)| *ns == idx) {
            idx = nend + 1;
            continue;
        }
        guards.retain(|g| g.end > idx);

        if lock_method_at(file, idx).is_some() {
            let lock = receiver_lock(file, idx, stem);
            let held: Vec<(LockId, u32)> =
                guards.iter().map(|g| (g.lock.clone(), g.line)).collect();
            let line = file.line_at(idx);
            let end = guard_end(file, idx, close);
            facts.acquires.push(Acquire {
                lock: lock.clone(),
                line,
                held,
            });
            guards.push(Guard { lock, line, end });
            idx += 3; // past `( )`
            continue;
        }

        if let Some(name) = call_at(file, idx) {
            let held: Vec<(LockId, u32)> =
                guards.iter().map(|g| (g.lock.clone(), g.line)).collect();
            facts.calls.push(CallSite {
                name: name.to_string(),
                line: file.line_at(idx),
                zero_args: file.punct_at(idx + 2, ')'),
                qual: resolver.qualifier_at(file, def, idx),
                held,
            });
        }
        idx += 1;
    }
    facts
}

/// Is token `idx` the method name of a zero-argument lock acquisition?
fn lock_method_at(file: &SourceFile, idx: usize) -> Option<&str> {
    let name = file.ident_at(idx)?;
    if !LOCK_METHODS.contains(&name) {
        return None;
    }
    if idx == 0 || !file.punct_at(idx - 1, '.') {
        return None;
    }
    if !file.punct_at(idx + 1, '(') || !file.punct_at(idx + 2, ')') {
        return None;
    }
    Some(name)
}

/// Is token `idx` a plain call (`name(` or `.name(`), excluding keywords,
/// definitions, macros, and the lock methods handled above?
fn call_at(file: &SourceFile, idx: usize) -> Option<&str> {
    let name = file.ident_at(idx)?;
    if KEYWORDS.contains(&name) || name == "Self" || name == "self" {
        return None;
    }
    if !file.punct_at(idx + 1, '(') {
        return None;
    }
    if idx > 0 && file.ident_at(idx - 1) == Some("fn") {
        return None;
    }
    if lock_method_at(file, idx).is_some() {
        return None;
    }
    Some(name)
}

/// Resolves the receiver of the lock method at `idx` to a [`LockId`].
fn receiver_lock(file: &SourceFile, idx: usize, stem: &str) -> LockId {
    let name = receiver_base(file, idx.saturating_sub(2))
        .map(canonical)
        .unwrap_or_else(|| "<anon>".to_string());
    LockId {
        name,
        place: stem.to_string(),
    }
}

/// Walks backwards from `j` (the token before the `.` of the lock method)
/// to the identifier naming the lock, skipping `?`, index/call groups and
/// transparent adapter methods.
fn receiver_base(file: &SourceFile, mut j: usize) -> Option<String> {
    loop {
        match file.tokens.get(j).map(|t| &t.tok)? {
            Tok::Punct(')') => j = open_before(file, j, '(', ')')?.checked_sub(1)?,
            Tok::Punct(']') => j = open_before(file, j, '[', ']')?.checked_sub(1)?,
            Tok::Punct('?') | Tok::Punct('.') => j = j.checked_sub(1)?,
            Tok::Ident(name) => {
                if TRANSPARENT.contains(&name.as_str()) || name == "self" {
                    j = j.checked_sub(1)?;
                } else {
                    return Some(name.clone());
                }
            }
            _ => return None,
        }
    }
}

/// Matching opener for the closer at `close`, scanning backwards.
fn open_before(file: &SourceFile, close: usize, open_c: char, close_c: char) -> Option<usize> {
    let mut depth = 0i64;
    for k in (0..=close).rev() {
        if file.punct_at(k, close_c) {
            depth += 1;
        } else if file.punct_at(k, open_c) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Token index where the guard acquired at `idx` stops being held.
fn guard_end(file: &SourceFile, idx: usize, body_close: usize) -> usize {
    let depth = file.depth[idx];
    let stmt_start = stmt_start(file, idx);

    // Let-bound guard: `.lock()` terminates the initializer expression.
    if file.ident_at(stmt_start) == Some("let") && file.punct_at(idx + 3, ';') {
        let var = let_binding_name(file, stmt_start);
        let block_end = (idx + 3..=body_close)
            .find(|&k| file.punct_at(k, '}') && file.depth[k] == depth)
            .unwrap_or(body_close);
        if let Some(var) = var {
            if let Some(d) = explicit_drop(file, idx + 3, block_end, &var) {
                return d;
            }
        }
        return block_end;
    }

    // Temporary in a `for`/`while`/`if`/`match` header: the scrutinee
    // temporary lives through the construct's body.
    let header = (stmt_start..idx).any(|k| {
        matches!(
            file.ident_at(k),
            Some("for") | Some("while") | Some("if") | Some("match")
        ) && file.depth[k] == depth
    });
    if header {
        if let Some(open) =
            (idx..=body_close).find(|&k| file.punct_at(k, '{') && file.depth[k] == depth + 1)
        {
            return file.matching_close(open);
        }
    }

    // Plain temporary: to the end of the statement.
    (idx..=body_close)
        .find(|&k| file.punct_at(k, ';') && file.depth[k] == depth)
        .unwrap_or(body_close)
}

/// Nearest statement boundary at or before `idx` (token just after the
/// previous `;`, `{` or `}`).
fn stmt_start(file: &SourceFile, idx: usize) -> usize {
    (0..idx)
        .rev()
        .find(|&k| file.punct_at(k, ';') || file.punct_at(k, '{') || file.punct_at(k, '}'))
        .map(|k| k + 1)
        .unwrap_or(0)
}

/// The variable bound by a `let` statement starting at `let_idx`.
fn let_binding_name(file: &SourceFile, let_idx: usize) -> Option<String> {
    let mut k = let_idx + 1;
    if file.ident_at(k) == Some("mut") {
        k += 1;
    }
    file.ident_at(k).map(|s| s.to_string())
}

/// First `drop(var)` between `from` and `to`, returning its index.
fn explicit_drop(file: &SourceFile, from: usize, to: usize, var: &str) -> Option<usize> {
    (from..to).find(|&k| {
        file.ident_at(k) == Some("drop")
            && file.punct_at(k + 1, '(')
            && file.ident_at(k + 2) == Some(var)
            && file.punct_at(k + 3, ')')
    })
}

fn canonical(name: String) -> String {
    for suffix in ALIAS_SUFFIXES {
        if let Some(stripped) = name.strip_suffix(suffix) {
            if !stripped.is_empty() {
                return stripped.to_string();
            }
        }
    }
    name
}

#[cfg(test)]
mod unit {
    use super::*;

    fn facts(src: &str) -> Vec<FnFacts> {
        let file = SourceFile::parse("crates/x/src/demo.rs".into(), src);
        let resolver = Resolver::build(std::slice::from_ref(&file));
        function_facts(&file, &resolver)
    }

    #[test]
    fn let_bound_guard_spans_calls() {
        let f = facts("fn a() { let g = alpha.lock(); helper(); }");
        assert_eq!(f[0].acquires.len(), 1);
        assert_eq!(f[0].acquires[0].lock.to_string(), "alpha@demo");
        let call = f[0].calls.iter().find(|c| c.name == "helper").unwrap();
        assert_eq!(call.held.len(), 1);
    }

    #[test]
    fn temporary_guard_releases_at_statement_end() {
        let f = facts("fn a() { alpha.lock().poke(); helper(); }");
        let call = f[0].calls.iter().find(|c| c.name == "helper").unwrap();
        assert!(call.held.is_empty());
        let poke = f[0].calls.iter().find(|c| c.name == "poke").unwrap();
        assert_eq!(poke.held.len(), 1);
    }

    #[test]
    fn explicit_drop_ends_the_guard() {
        let f = facts("fn a() { let g = alpha.lock(); drop(g); beta.lock(); }");
        let beta = f[0]
            .acquires
            .iter()
            .find(|a| a.lock.name == "beta")
            .unwrap();
        assert!(beta.held.is_empty());
    }

    #[test]
    fn for_header_temporary_spans_the_body() {
        let f = facts("fn a() { for x in conns.lock().drain() { poke(x); } done(); }");
        let poke = f[0].calls.iter().find(|c| c.name == "poke").unwrap();
        assert_eq!(poke.held.len(), 1);
        let done = f[0].calls.iter().find(|c| c.name == "done").unwrap();
        assert!(done.held.is_empty());
    }

    #[test]
    fn receiver_names_skip_adapters_and_aliases() {
        let f = facts("fn a() { self.shards.get(i).expect(\"x\").lock(); conns_accept.lock(); }");
        assert_eq!(f[0].acquires[0].lock.name, "shards");
        assert_eq!(f[0].acquires[1].lock.name, "conns");
    }

    #[test]
    fn receiver_names_skip_fallible_adapters() {
        let f = facts(
            "fn a() -> Result<(), E> { self.shards.get(i).ok_or(E::Gone)?.lock(); \
             self.meta.as_ref().ok_or_else(|| E::Gone)?.lock(); Ok(()) }",
        );
        assert_eq!(f[0].acquires[0].lock.name, "shards");
        assert_eq!(f[0].acquires[1].lock.name, "meta");
    }

    #[test]
    fn io_read_with_args_is_not_an_acquisition() {
        let f = facts("fn a() { stream.read(&mut buf); state.read(); }");
        assert_eq!(f[0].acquires.len(), 1);
        assert_eq!(f[0].acquires[0].lock.name, "state");
    }

    #[test]
    fn join_blocking_requires_zero_args() {
        let f = facts("fn a() { parts.join(sep); handle.join(); }");
        let sites: Vec<_> = f[0].calls.iter().filter(|c| c.name == "join").collect();
        assert_eq!(blocking_call(sites[0]), None);
        assert_eq!(blocking_call(sites[1]), Some("join"));
    }
}
