//! Whole-workspace model: every function's facts plus the cross-crate
//! call graph, lock summaries, and may-block summaries derived from them.
//!
//! Calls resolve through [`crate::resolve::Resolver`], which follows
//! `use` imports and type qualifiers across crate seams. A few names are
//! deliberately opaque everywhere: `drop`, because an explicit
//! `drop(guard)` would otherwise union every `Drop` impl in the
//! workspace; `shutdown`, because `TcpStream::shutdown` on a served
//! socket would otherwise union every server's teardown method (which
//! joins accept threads — teardown runs in owner contexts, never on a
//! serving path); and anything ending in `_timeout`, because timed
//! receives are the sanctioned bounded alternative to the blocking calls
//! these passes hunt. `open` is opaque only when the callee type is
//! unknown: `ShardedLog::open` (or `store.open()` on an inferred
//! receiver) resolves to the real constructor, while `File::open` and
//! bare `open(…)` stay inert.

use crate::facts::{blocking_call, function_facts, FnFacts, LockId};
use crate::resolve::Resolver;
use crate::scan::SourceFile;
use std::collections::BTreeSet;

pub struct Model {
    pub fns: Vec<FnFacts>,
    resolver: Resolver,
    /// Per function: all locks acquired directly or via resolved calls.
    locks: Vec<BTreeSet<LockId>>,
    /// Per function: a sample description of a reachable blocking call,
    /// if any (`"sleep at crates/wire/src/reactor.rs:345"`).
    may_block: Vec<Option<String>>,
    /// Resolved call edges, and how many of them cross a crate boundary.
    pub call_edges: usize,
    pub cross_crate_edges: usize,
    /// Fixpoint sweeps performed by the lock and may-block summaries.
    pub fixpoint_iters: usize,
}

impl Model {
    pub fn build(files: &[SourceFile]) -> Model {
        let resolver = Resolver::build(files);
        let fns: Vec<FnFacts> = files
            .iter()
            .flat_map(|f| function_facts(f, &resolver))
            .collect();
        debug_assert_eq!(fns.len(), resolver.fn_count());
        let mut model = Model {
            locks: vec![BTreeSet::new(); fns.len()],
            may_block: vec![None; fns.len()],
            fns,
            resolver,
            call_edges: 0,
            cross_crate_edges: 0,
            fixpoint_iters: 0,
        };
        model.count_edges();
        model.compute_locks();
        model.compute_may_block();
        model
    }

    pub fn resolver(&self) -> &Resolver {
        &self.resolver
    }

    /// Callee candidates for the `call`-th site of function `caller`.
    pub fn resolve_call(&self, caller: usize, call: &crate::facts::CallSite) -> Vec<usize> {
        self.resolver.targets(caller, &call.name, &call.qual)
    }

    pub fn locks_of(&self, idx: usize) -> &BTreeSet<LockId> {
        &self.locks[idx]
    }

    pub fn may_block(&self, idx: usize) -> Option<&str> {
        self.may_block[idx].as_deref()
    }

    fn count_edges(&mut self) {
        for i in 0..self.fns.len() {
            for call in &self.fns[i].calls {
                for j in self.resolver.targets(i, &call.name, &call.qual) {
                    self.call_edges += 1;
                    if self.resolver.cross_crate(i, j) {
                        self.cross_crate_edges += 1;
                    }
                }
            }
        }
    }

    fn compute_locks(&mut self) {
        for (i, f) in self.fns.iter().enumerate() {
            for a in &f.acquires {
                self.locks[i].insert(a.lock.clone());
            }
        }
        // Fixpoint over resolved call edges.
        let mut changed = true;
        while changed {
            changed = false;
            self.fixpoint_iters += 1;
            for i in 0..self.fns.len() {
                let mut add: Vec<LockId> = Vec::new();
                for call in &self.fns[i].calls {
                    for j in self.resolver.targets(i, &call.name, &call.qual) {
                        for l in &self.locks[j] {
                            if !self.locks[i].contains(l) {
                                add.push(l.clone());
                            }
                        }
                    }
                }
                if !add.is_empty() {
                    changed = true;
                    self.locks[i].extend(add);
                }
            }
        }
    }

    fn compute_may_block(&mut self) {
        for (i, f) in self.fns.iter().enumerate() {
            for call in &f.calls {
                if let Some(kind) = blocking_call(call) {
                    self.may_block[i] = Some(format!("{kind} at {}:{}", f.file, call.line));
                    break;
                }
            }
        }
        let mut changed = true;
        while changed {
            changed = false;
            self.fixpoint_iters += 1;
            for i in 0..self.fns.len() {
                if self.may_block[i].is_some() {
                    continue;
                }
                let mut found: Option<String> = None;
                for call in &self.fns[i].calls {
                    for j in self.resolver.targets(i, &call.name, &call.qual) {
                        if let Some(desc) = &self.may_block[j] {
                            found = Some(format!("{} -> {}", call.name, desc));
                            break;
                        }
                    }
                    if found.is_some() {
                        break;
                    }
                }
                if found.is_some() {
                    self.may_block[i] = found;
                    changed = true;
                }
            }
        }
    }
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::scan::SourceFile;

    fn model(src: &str) -> Model {
        let file = SourceFile::parse("crates/x/src/demo.rs".into(), src);
        Model::build(std::slice::from_ref(&file))
    }

    #[test]
    fn lock_summaries_propagate_through_calls() {
        let m = model("fn outer() { inner(); } fn inner() { alpha.lock(); }");
        let outer = m.fns.iter().position(|f| f.name == "outer").unwrap();
        assert_eq!(m.locks_of(outer).len(), 1);
    }

    #[test]
    fn may_block_propagates_but_not_through_timeouts() {
        let m = model(
            "fn a() { b(); } fn b() { std::thread::sleep(d); } \
             fn c() { poll_timeout(); } fn poll_timeout() { std::thread::sleep(d); }",
        );
        let a = m.fns.iter().position(|f| f.name == "a").unwrap();
        let c = m.fns.iter().position(|f| f.name == "c").unwrap();
        assert!(m.may_block(a).is_some());
        assert!(m.may_block(c).is_none());
    }

    #[test]
    fn drop_is_opaque() {
        let m = model("fn a() { drop(g); } fn drop() { std::thread::sleep(d); }");
        let a = m.fns.iter().position(|f| f.name == "a").unwrap();
        assert!(m.may_block(a).is_none());
    }

    #[test]
    fn file_open_is_opaque_but_typed_open_resolves() {
        // `File::open` must not union a crate's `open` constructors; a
        // workspace type's `open` resolves through the owner table.
        let m = model(
            "fn writer() { let f = File::open(p); } \
             impl ShardedLog { fn open() -> ShardedLog { alpha.lock(); \
             std::thread::sleep(d); loop {} } } \
             fn booter() { let l = ShardedLog::open(); }",
        );
        let w = m.fns.iter().position(|f| f.name == "writer").unwrap();
        assert!(m.locks_of(w).is_empty());
        assert!(m.may_block(w).is_none());
        let b = m.fns.iter().position(|f| f.name == "booter").unwrap();
        assert_eq!(m.locks_of(b).len(), 1);
        assert!(m.may_block(b).is_some());
    }

    #[test]
    fn cross_crate_edges_are_counted() {
        let a = SourceFile::parse(
            "crates/wire/src/codec.rs".into(),
            "pub fn decode_seq() { alpha.lock(); }",
        );
        let b = SourceFile::parse(
            "crates/log/src/store.rs".into(),
            "use distrust_wire::codec::decode_seq;\nfn load() { decode_seq(); }",
        );
        let m = Model::build(&[a, b]);
        assert_eq!(m.call_edges, 1);
        assert_eq!(m.cross_crate_edges, 1);
        let load = m.fns.iter().position(|f| f.name == "load").unwrap();
        assert_eq!(m.locks_of(load).len(), 1);
    }
}
