//! Whole-repo model: every function's facts plus the intra-crate call
//! graph, lock summaries, and may-block summaries derived from them.
//!
//! Calls are resolved by simple name *within the defining crate* (the
//! lexer has no type information). A few names are deliberately opaque:
//! `drop`, because an explicit `drop(guard)` would otherwise union every
//! `Drop` impl in the crate; `shutdown`, because `TcpStream::shutdown` on
//! a served socket would otherwise union every server's teardown method
//! (which joins accept threads — teardown runs in owner contexts, never
//! on a serving path); `open`, because `File::open`/`OpenOptions::open`
//! would otherwise union every `open` constructor in a crate (which run
//! before any serving thread exists and whose lock summaries would
//! fabricate cycle edges at every file open); and anything ending in
//! `_timeout`, because timed receives are the sanctioned bounded
//! alternative to the blocking calls these passes hunt.

use crate::facts::{blocking_call, FnFacts, LockId};
use std::collections::{BTreeMap, BTreeSet};

pub struct Model {
    pub fns: Vec<FnFacts>,
    /// (crate, fn name) → indices into `fns`.
    by_name: BTreeMap<(String, String), Vec<usize>>,
    /// Per function: all locks acquired directly or via intra-crate calls.
    locks: Vec<BTreeSet<LockId>>,
    /// Per function: a sample description of a reachable blocking call,
    /// if any (`"sleep at crates/wire/src/reactor.rs:345"`).
    may_block: Vec<Option<String>>,
}

impl Model {
    pub fn build(fns: Vec<FnFacts>) -> Model {
        let mut by_name: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name
                .entry((f.crate_name.clone(), f.name.clone()))
                .or_default()
                .push(i);
        }
        let mut model = Model {
            locks: vec![BTreeSet::new(); fns.len()],
            may_block: vec![None; fns.len()],
            fns,
            by_name,
        };
        model.compute_locks();
        model.compute_may_block();
        model
    }

    /// Callee candidates for `name` as called from `caller_crate`.
    pub fn resolve(&self, caller_crate: &str, name: &str) -> &[usize] {
        if name == "drop" || name == "shutdown" || name == "open" || name.ends_with("_timeout") {
            return &[];
        }
        self.by_name
            .get(&(caller_crate.to_string(), name.to_string()))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    pub fn locks_of(&self, idx: usize) -> &BTreeSet<LockId> {
        &self.locks[idx]
    }

    pub fn may_block(&self, idx: usize) -> Option<&str> {
        self.may_block[idx].as_deref()
    }

    fn compute_locks(&mut self) {
        for (i, f) in self.fns.iter().enumerate() {
            for a in &f.acquires {
                self.locks[i].insert(a.lock.clone());
            }
        }
        // Fixpoint over intra-crate call edges.
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..self.fns.len() {
                let mut add: Vec<LockId> = Vec::new();
                for call in &self.fns[i].calls {
                    for &j in self.resolve(&self.fns[i].crate_name, &call.name) {
                        for l in &self.locks[j] {
                            if !self.locks[i].contains(l) {
                                add.push(l.clone());
                            }
                        }
                    }
                }
                if !add.is_empty() {
                    changed = true;
                    self.locks[i].extend(add);
                }
            }
        }
    }

    fn compute_may_block(&mut self) {
        for (i, f) in self.fns.iter().enumerate() {
            for call in &f.calls {
                if let Some(kind) = blocking_call(call) {
                    self.may_block[i] = Some(format!("{kind} at {}:{}", f.file, call.line));
                    break;
                }
            }
        }
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..self.fns.len() {
                if self.may_block[i].is_some() {
                    continue;
                }
                let mut found: Option<String> = None;
                for call in &self.fns[i].calls {
                    for &j in self.resolve(&self.fns[i].crate_name, &call.name) {
                        if let Some(desc) = &self.may_block[j] {
                            found = Some(format!("{} -> {}", call.name, desc));
                            break;
                        }
                    }
                    if found.is_some() {
                        break;
                    }
                }
                if found.is_some() {
                    self.may_block[i] = found;
                    changed = true;
                }
            }
        }
    }
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::facts::function_facts;
    use crate::scan::SourceFile;

    fn model(src: &str) -> Model {
        let file = SourceFile::parse("crates/x/src/demo.rs".into(), src);
        Model::build(function_facts(&file))
    }

    #[test]
    fn lock_summaries_propagate_through_calls() {
        let m = model("fn outer() { inner(); } fn inner() { alpha.lock(); }");
        let outer = m.fns.iter().position(|f| f.name == "outer").unwrap();
        assert_eq!(m.locks_of(outer).len(), 1);
    }

    #[test]
    fn may_block_propagates_but_not_through_timeouts() {
        let m = model(
            "fn a() { b(); } fn b() { std::thread::sleep(d); } \
             fn c() { poll_timeout(); } fn poll_timeout() { std::thread::sleep(d); }",
        );
        let a = m.fns.iter().position(|f| f.name == "a").unwrap();
        let c = m.fns.iter().position(|f| f.name == "c").unwrap();
        assert!(m.may_block(a).is_some());
        assert!(m.may_block(c).is_none());
    }

    #[test]
    fn drop_is_opaque() {
        let m = model("fn a() { drop(g); } fn drop() { std::thread::sleep(d); }");
        let a = m.fns.iter().position(|f| f.name == "a").unwrap();
        assert!(m.may_block(a).is_none());
    }

    #[test]
    fn open_is_opaque() {
        // `File::open` must not union the crate's own `open` constructor,
        // whose lock summary would fabricate edges at every file open.
        let m = model(
            "fn writer() { let f = File::open(p); } \
             fn open() { alpha.lock(); std::thread::sleep(d); }",
        );
        let w = m.fns.iter().position(|f| f.name == "writer").unwrap();
        assert!(m.locks_of(w).is_empty());
        assert!(m.may_block(w).is_none());
    }
}
