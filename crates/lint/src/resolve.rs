//! Workspace-wide call resolution: one canonical function table spanning
//! every crate, with `use`-import expansion, type-qualified paths, and
//! receiver-type inference from let bindings and struct fields.
//!
//! Function indices are canonical across the analyses: files in discovery
//! order, non-test definitions in source order. [`crate::facts`] and
//! [`crate::dataflow`] enumerate functions the same way, so one resolver
//! serves every pass.
//!
//! Resolution is deliberately name-based and over-approximate, but each
//! call form gets the most precise rule available:
//!
//! * `Type::method(…)` resolves through the workspace-wide owner table —
//!   `ShardedLog::open` finds the real constructor while `File::open`
//!   (no workspace `impl File`) stays opaque with no special case.
//! * `recv.method(…)` infers the receiver type from `let` annotations,
//!   constructor calls, struct literals, or (for `self.field.method(…)`)
//!   the owning struct's field declarations, then uses the owner table;
//!   unknown receivers fall back to same-crate name lookup.
//! * `path::to::f(…)` expands the head segment through the file's `use`
//!   imports, maps `distrust_<name>`/`crate`/`self`/`super` to a crate,
//!   and filters candidates by the module (file stem) when that helps.
//!   Paths into crates outside the workspace (`std::…`) resolve to
//!   nothing instead of unioning same-named local functions.
//! * Bare `f(…)` follows the file's imports (cross-crate when the import
//!   says so), else same-crate name lookup.
//!
//! `drop`, `shutdown`, and `*_timeout` stay opaque everywhere (see
//! [`crate::model`] for why). `open` is opaque unless a workspace type
//! owns it and the call names that type explicitly or via an inferred
//! receiver.

use crate::scan::{FnDef, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Qual {
    /// `name(…)` with no qualifier.
    Bare,
    /// `.name(…)` whose receiver type could not be inferred.
    Method,
    /// `.name(…)` on a receiver of the named type (incl. `self.name(…)`).
    Recv(String),
    /// `a::b::name(…)`: the path segments before the callee name.
    Path(Vec<String>),
}

/// Identity of one canonical function slot.
pub struct FnMeta {
    pub name: String,
    pub crate_name: String,
    pub file_idx: usize,
    /// File stem (`codec` for `crates/wire/src/codec.rs`): the module name
    /// used to narrow path-qualified lookups.
    pub stem: String,
    /// Type of the enclosing `impl` block, when the fn is a method.
    pub owner: Option<String>,
}

pub struct Resolver {
    metas: Vec<FnMeta>,
    /// (crate, fn name) → canonical indices.
    by_name: BTreeMap<(String, String), Vec<usize>>,
    /// (owner type, fn name) → canonical indices, workspace-wide.
    by_owner: BTreeMap<(String, String), Vec<usize>>,
    /// Crate directory names present in the scan (`wire`, `log`, …).
    crates: BTreeSet<String>,
    /// Per file: local name → full import path segments.
    imports: Vec<BTreeMap<String, Vec<String>>>,
    /// Crate → file stems, for recognizing intra-crate module paths.
    stems: BTreeMap<String, BTreeSet<String>>,
    /// Struct name → field → type head, merged across files.
    fields: BTreeMap<String, BTreeMap<String, String>>,
}

impl Resolver {
    pub fn build(files: &[SourceFile]) -> Resolver {
        let mut r = Resolver {
            metas: Vec::new(),
            by_name: BTreeMap::new(),
            by_owner: BTreeMap::new(),
            crates: BTreeSet::new(),
            imports: Vec::new(),
            stems: BTreeMap::new(),
            fields: BTreeMap::new(),
        };
        for (file_idx, file) in files.iter().enumerate() {
            let stem = file_stem(&file.path);
            r.crates.insert(file.crate_name.clone());
            r.imports.push(file.imports.clone());
            r.stems
                .entry(file.crate_name.clone())
                .or_default()
                .insert(stem.clone());
            for (name, fields) in &file.structs {
                r.fields
                    .entry(name.clone())
                    .or_default()
                    .extend(fields.clone());
            }
            for def in file.fns.iter().filter(|d| !d.in_test) {
                let i = r.metas.len();
                r.by_name
                    .entry((file.crate_name.clone(), def.name.clone()))
                    .or_default()
                    .push(i);
                if let Some(owner) = &def.owner {
                    r.by_owner
                        .entry((owner.clone(), def.name.clone()))
                        .or_default()
                        .push(i);
                }
                r.metas.push(FnMeta {
                    name: def.name.clone(),
                    crate_name: file.crate_name.clone(),
                    file_idx,
                    stem: stem.clone(),
                    owner: def.owner.clone(),
                });
            }
        }
        r
    }

    pub fn fn_count(&self) -> usize {
        self.metas.len()
    }

    pub fn meta(&self, idx: usize) -> &FnMeta {
        &self.metas[idx]
    }

    /// True when the edge `caller → callee` crosses a crate boundary.
    pub fn cross_crate(&self, caller: usize, callee: usize) -> bool {
        self.metas[caller].crate_name != self.metas[callee].crate_name
    }

    /// Declared type of `owner.field`, when the struct declaration is in
    /// the scanned set.
    pub fn field_type(&self, owner: &str, field: &str) -> Option<&str> {
        self.fields.get(owner)?.get(field).map(String::as_str)
    }

    /// Callee candidates for the call `name` with qualifier `qual`, as
    /// seen from canonical function `caller`.
    pub fn targets(&self, caller: usize, name: &str, qual: &Qual) -> Vec<usize> {
        if name == "drop" || name == "shutdown" || name.ends_with("_timeout") {
            return Vec::new();
        }
        let meta = &self.metas[caller];
        match qual {
            Qual::Recv(ty) => {
                let ty = if ty == "Self" {
                    match &meta.owner {
                        Some(o) => o.as_str(),
                        None => return Vec::new(),
                    }
                } else {
                    ty.as_str()
                };
                let owned = self.owned(ty, name);
                if !owned.is_empty() {
                    return owned;
                }
                if name == "open" {
                    return Vec::new();
                }
                self.named(&meta.crate_name, name, None)
            }
            Qual::Method | Qual::Bare if name == "open" => Vec::new(),
            Qual::Method => self.named(&meta.crate_name, name, None),
            Qual::Bare => match self.imports[meta.file_idx].get(name) {
                Some(path) => self.path_targets(meta, path.clone(), name),
                None => self.named(&meta.crate_name, name, None),
            },
            Qual::Path(segs) => {
                // Type-qualified: the segment before the fn name is a type.
                if let Some(last) = segs.last() {
                    if is_type_seg(last) {
                        let ty = if last == "Self" {
                            match &meta.owner {
                                Some(o) => o.as_str(),
                                None => return Vec::new(),
                            }
                        } else {
                            last.as_str()
                        };
                        return self.owned(ty, name);
                    }
                }
                // Module/crate path: expand the head through the file's
                // imports, then append the fn name as the final segment.
                let mut full = segs.clone();
                if let Some(head) = full.first() {
                    if let Some(exp) = self.imports[meta.file_idx].get(head) {
                        let mut e = exp.clone();
                        e.extend(full.drain(1..));
                        full = e;
                    }
                }
                full.push(name.to_string());
                self.path_targets(meta, full, name)
            }
        }
    }

    /// Resolution of a full path whose last segment is the fn name.
    fn path_targets(&self, meta: &FnMeta, full: Vec<String>, name: &str) -> Vec<usize> {
        // A type segment anywhere before the name wins (imports can expand
        // `Checkpoint` to `distrust_core::checkpoint::Checkpoint`).
        if full.len() >= 2 {
            let before = &full[full.len() - 2];
            if is_type_seg(before) {
                let ty = if before == "Self" {
                    match &meta.owner {
                        Some(o) => o.as_str(),
                        None => return Vec::new(),
                    }
                } else {
                    before.as_str()
                };
                return self.owned(ty, name);
            }
        }
        if name == "open" {
            return Vec::new();
        }
        let Some(head) = full.first() else {
            return Vec::new();
        };
        let target = if head == "crate" || head == "self" || head == "super" {
            Some(meta.crate_name.clone())
        } else if let Some(rest) = head.strip_prefix("distrust_") {
            self.crates.contains(rest).then(|| rest.to_string())
        } else if self.crates.contains(head.as_str()) {
            Some(head.clone())
        } else if self
            .stems
            .get(&meta.crate_name)
            .is_some_and(|s| s.contains(head.as_str()))
        {
            // Intra-crate module path: `codec::decode_seq(…)`.
            Some(meta.crate_name.clone())
        } else {
            None // std::…, external crates: opaque.
        };
        let Some(target) = target else {
            return Vec::new();
        };
        // The segment before the fn name narrows to one module when the
        // path spells one out.
        let hint = (full.len() >= 2)
            .then(|| full[full.len() - 2].as_str())
            .filter(|h| !matches!(*h, "crate" | "self" | "super") && !h.starts_with("distrust_"));
        self.named(&target, name, hint)
    }

    fn owned(&self, ty: &str, name: &str) -> Vec<usize> {
        self.by_owner
            .get(&(ty.to_string(), name.to_string()))
            .cloned()
            .unwrap_or_default()
    }

    /// Name lookup in one crate, narrowed to `hint`'s file stem when that
    /// leaves at least one candidate.
    fn named(&self, crate_name: &str, name: &str, hint: Option<&str>) -> Vec<usize> {
        let all = self
            .by_name
            .get(&(crate_name.to_string(), name.to_string()))
            .cloned()
            .unwrap_or_default();
        if let Some(hint) = hint {
            let narrowed: Vec<usize> = all
                .iter()
                .copied()
                .filter(|&i| self.metas[i].stem == hint)
                .collect();
            if !narrowed.is_empty() {
                return narrowed;
            }
        }
        all
    }

    /// Classifies the call whose name sits at token `idx` of `file`,
    /// inside `def`'s body.
    pub fn qualifier_at(&self, file: &SourceFile, def: &FnDef, idx: usize) -> Qual {
        if idx > 0 && file.path_sep_at(idx - 1) {
            let mut segs = Vec::new();
            let mut k = idx as i64 - 2;
            while k >= 0 {
                if let Some(name) = file.ident_at(k as usize) {
                    segs.push(name.to_string());
                    if k >= 2 && file.path_sep_at(k as usize - 1) {
                        k -= 2;
                        continue;
                    }
                }
                break;
            }
            segs.reverse();
            return Qual::Path(segs);
        }
        if idx > 0 && file.punct_at(idx - 1, '.') {
            if idx > 1 && file.punct_at(idx - 2, '.') {
                return Qual::Bare; // range end: `0..f(…)`.
            }
            if idx < 2 {
                return Qual::Method;
            }
            let j = idx - 2;
            return match file.ident_at(j) {
                Some("self") => match &def.owner {
                    Some(o) => Qual::Recv(o.clone()),
                    None => Qual::Method,
                },
                Some(x) => {
                    if j >= 2 && file.punct_at(j - 1, '.') && file.ident_at(j - 2) == Some("self") {
                        // `self.field.name(…)`: field type from the owner
                        // struct's declaration.
                        def.owner
                            .as_deref()
                            .and_then(|o| self.field_type(o, x))
                            .map(|ty| Qual::Recv(ty.to_string()))
                            .unwrap_or(Qual::Method)
                    } else if let Some(ty) = def.locals.get(x) {
                        Qual::Recv(ty.clone())
                    } else {
                        Qual::Method
                    }
                }
                None => Qual::Method,
            };
        }
        Qual::Bare
    }
}

fn file_stem(path: &str) -> String {
    path.rsplit('/')
        .next()
        .unwrap_or(path)
        .trim_end_matches(".rs")
        .to_string()
}

fn is_type_seg(seg: &str) -> bool {
    seg.chars().next().is_some_and(|c| c.is_uppercase())
}

#[cfg(test)]
mod unit {
    use super::*;

    fn workspace(files: &[(&str, &str)]) -> Vec<SourceFile> {
        files
            .iter()
            .map(|(p, s)| SourceFile::parse(p.to_string(), s))
            .collect()
    }

    fn idx_of(r: &Resolver, name: &str, crate_name: &str) -> usize {
        (0..r.fn_count())
            .find(|&i| r.meta(i).name == name && r.meta(i).crate_name == crate_name)
            .unwrap()
    }

    #[test]
    fn imported_bare_calls_cross_crates() {
        let files = workspace(&[
            (
                "crates/wire/src/codec.rs",
                "pub fn decode_seq(input: &mut &[u8]) {}",
            ),
            (
                "crates/log/src/store.rs",
                "use distrust_wire::codec::decode_seq;\n\
                 fn load(input: &mut &[u8]) { decode_seq(input); }",
            ),
        ]);
        let r = Resolver::build(&files);
        let caller = idx_of(&r, "load", "log");
        let callee = idx_of(&r, "decode_seq", "wire");
        assert_eq!(r.targets(caller, "decode_seq", &Qual::Bare), vec![callee]);
        assert!(r.cross_crate(caller, callee));
    }

    #[test]
    fn module_paths_resolve_and_std_paths_stay_opaque() {
        let files = workspace(&[
            ("crates/wire/src/codec.rs", "pub fn decode_seq() {}"),
            (
                "crates/wire/src/rpc.rs",
                "fn pump() { codec::decode_seq(); std::thread::sleep(d); \
                 distrust_wire::codec::decode_seq(); }",
            ),
        ]);
        let r = Resolver::build(&files);
        let caller = idx_of(&r, "pump", "wire");
        let callee = idx_of(&r, "decode_seq", "wire");
        let module = Qual::Path(vec!["codec".into()]);
        assert_eq!(r.targets(caller, "decode_seq", &module), vec![callee]);
        let full = Qual::Path(vec!["distrust_wire".into(), "codec".into()]);
        assert_eq!(r.targets(caller, "decode_seq", &full), vec![callee]);
        let std_path = Qual::Path(vec!["std".into(), "thread".into()]);
        assert!(r.targets(caller, "sleep", &std_path).is_empty());
    }

    #[test]
    fn type_qualified_open_resolves_but_file_open_stays_opaque() {
        let files = workspace(&[
            (
                "crates/log/src/sharded.rs",
                "impl ShardedLog { pub fn open(p: &Path) -> ShardedLog { todo!() } }",
            ),
            (
                "crates/log/src/boot.rs",
                "fn boot() { let l = ShardedLog::open(p); let f = File::open(p); open(); }",
            ),
        ]);
        let r = Resolver::build(&files);
        let caller = idx_of(&r, "boot", "log");
        let ctor = idx_of(&r, "open", "log");
        let typed = Qual::Path(vec!["ShardedLog".into()]);
        assert_eq!(r.targets(caller, "open", &typed), vec![ctor]);
        let file_ty = Qual::Path(vec!["File".into()]);
        assert!(r.targets(caller, "open", &file_ty).is_empty());
        assert!(r.targets(caller, "open", &Qual::Bare).is_empty());
        assert!(r.targets(caller, "open", &Qual::Method).is_empty());
    }

    #[test]
    fn inferred_receivers_use_the_owner_table() {
        let files = workspace(&[
            (
                "crates/log/src/store.rs",
                "struct Store { inner: Inner }\n\
                 impl Store { fn append(&self) {} fn reopen(&self) { self.helper(); } \
                 fn helper(&self) {} }\n\
                 impl Inner { fn append(&self) {} }",
            ),
            (
                "crates/core/src/server.rs",
                "struct Server { store: Store }\n\
                 impl Server {\n fn push(&self) { let s = Store::new(); s.append(); \
                 self.store.append(); }\n}",
            ),
        ]);
        let r = Resolver::build(&files);
        let caller = idx_of(&r, "push", "core");
        let append = idx_of(&r, "append", "log");
        // `let s = Store::new(); s.append()` → locals say Store.
        let recv = Qual::Recv("Store".into());
        assert_eq!(r.targets(caller, "append", &recv), vec![append]);
        // `self.helper()` resolves via the enclosing impl's owner.
        let reopen = idx_of(&r, "reopen", "log");
        let helper = idx_of(&r, "helper", "log");
        let own = Qual::Recv("Store".into());
        assert_eq!(r.targets(reopen, "helper", &own), vec![helper]);
        // Unknown receivers fall back to same-crate name lookup.
        let local_push = r.targets(caller, "push", &Qual::Method);
        assert_eq!(local_push, vec![caller]);
    }

    #[test]
    fn qualifiers_classify_call_shapes() {
        let files = workspace(&[(
            "crates/core/src/server.rs",
            "struct Server { store: Store }\n\
             impl Server {\n fn go(&self) { let s: Store = make();\n \
             s.append(); self.store.append(); self.tick(); x.poke(); \
             wire::codec::decode_seq(input); plain(); }\n}",
        )]);
        let r = Resolver::build(&files);
        let file = &files[0];
        let def = file.fns.iter().find(|d| d.name == "go").unwrap();
        let at = |name: &str| {
            (0..file.tokens.len())
                .find(|&k| file.ident_at(k) == Some(name) && file.punct_at(k + 1, '('))
                .unwrap()
        };
        let appends: Vec<usize> = (0..file.tokens.len())
            .filter(|&k| file.ident_at(k) == Some("append"))
            .collect();
        assert_eq!(
            r.qualifier_at(file, def, appends[0]),
            Qual::Recv("Store".into())
        );
        assert_eq!(
            r.qualifier_at(file, def, appends[1]),
            Qual::Recv("Store".into())
        );
        assert_eq!(
            r.qualifier_at(file, def, at("tick")),
            Qual::Recv("Server".into())
        );
        assert_eq!(r.qualifier_at(file, def, at("poke")), Qual::Method);
        assert_eq!(
            r.qualifier_at(file, def, at("decode_seq")),
            Qual::Path(vec!["wire".into(), "codec".into()])
        );
        assert_eq!(r.qualifier_at(file, def, at("plain")), Qual::Bare);
    }
}
