//! CLI for `distrust-lint`.
//!
//! ```text
//! cargo run -p distrust-lint -- --deny --baseline lint-baseline.json  # CI gate
//! cargo run -p distrust-lint -- --format json                        # machine-readable
//! cargo run -p distrust-lint -- --root ../elsewhere                  # another workspace
//! cargo run -p distrust-lint -- --write-baseline                     # regenerate ratchet
//! ```
//!
//! Exit codes: 0 clean (or findings without `--deny`), 1 denied findings
//! under `--deny` (unallowlisted and not tolerated by the baseline),
//! 2 usage or I/O error.

use distrust_lint::baseline::Baseline;
use distrust_lint::config::Config;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut stats = false;
    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    eprintln!("--format expects `json` or `text`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(path) => root = PathBuf::from(path),
                None => {
                    eprintln!("--root expects a path");
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match args.next() {
                Some(path) => baseline_path = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--baseline expects a path");
                    return ExitCode::from(2);
                }
            },
            "--write-baseline" => {
                write_baseline = Some(PathBuf::from("lint-baseline.json"));
            }
            "--stats" => stats = true,
            "--help" | "-h" => {
                println!(
                    "distrust-lint [--deny] [--format text|json] [--root PATH]\n\
                     \x20             [--baseline PATH] [--write-baseline] [--stats]\n\
                     Repo-aware static analysis: lock-order, panic-path, \
                     protocol-conformance, reactor-blocking, taint-alloc, \
                     trust-boundary, cap-consistency.\n\
                     --deny exits non-zero when denied findings remain; \
                     --baseline PATH tolerates known findings (the ratchet) \
                     but refuses any growth; --write-baseline regenerates \
                     lint-baseline.json under --root, preserving reasons and \
                     listing the stale entries it drops; --stats appends one \
                     line of analysis-size counters (functions, call edges, \
                     cross-crate edges, fixpoint iterations, wall time)."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }

    let cfg = Config::repo_default(root.clone());
    let (mut report, run_stats) = match distrust_lint::analyze_with_stats(&cfg) {
        Ok(out) => out,
        Err(err) => {
            eprintln!("distrust-lint: {err}");
            return ExitCode::from(2);
        }
    };

    if let Some(rel) = write_baseline {
        let path = root.join(rel);
        let prior = match std::fs::read_to_string(&path) {
            Ok(text) => match Baseline::parse(&text) {
                Ok(b) => b,
                Err(err) => {
                    eprintln!("distrust-lint: existing {}: {err}", path.display());
                    return ExitCode::from(2);
                }
            },
            Err(_) => Baseline::default(),
        };
        let next = Baseline::regenerate(&report, &prior);
        if let Err(err) = std::fs::write(&path, next.render()) {
            eprintln!("distrust-lint: writing {}: {err}", path.display());
            return ExitCode::from(2);
        }
        let dropped = next.dropped_from(&prior);
        println!(
            "distrust-lint: wrote {} entr{} to {} ({} stale entr{} dropped)",
            next.entries.len(),
            if next.entries.len() == 1 { "y" } else { "ies" },
            path.display(),
            dropped.len(),
            if dropped.len() == 1 { "y" } else { "ies" },
        );
        for e in &dropped {
            println!(
                "baseline dropped: {}: [{}] {} (was x{})",
                e.file, e.pass, e.message, e.count
            );
        }
        return ExitCode::SUCCESS;
    }

    let diff = match &baseline_path {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(err) => {
                    eprintln!("distrust-lint: reading {}: {err}", path.display());
                    return ExitCode::from(2);
                }
            };
            let baseline = match Baseline::parse(&text) {
                Ok(b) => b,
                Err(err) => {
                    eprintln!("distrust-lint: {}: {err}", path.display());
                    return ExitCode::from(2);
                }
            };
            Some(baseline.apply(&mut report))
        }
        None => None,
    };

    if json {
        print!("{}", report.render_json());
        if stats {
            // Keep stdout parseable as JSON; counters go to stderr.
            eprintln!("{}", run_stats.render());
        }
    } else {
        print!("{}", report.render_text());
        if let Some(diff) = &diff {
            println!(
                "baseline: {} matched, {} new, {} stale entr{}",
                diff.matched,
                diff.fresh,
                diff.stale.len(),
                if diff.stale.len() == 1 { "y" } else { "ies" }
            );
            for (pass, file, message, left) in &diff.stale {
                println!("baseline stale: {file}: [{pass}] {message} (x{left}) — fixed? run --write-baseline");
            }
        }
        if stats {
            println!("{}", run_stats.render());
        }
    }
    if deny && report.denied() > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
