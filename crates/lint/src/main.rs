//! CLI for `distrust-lint`.
//!
//! ```text
//! cargo run -p distrust-lint -- --deny                # CI gate
//! cargo run -p distrust-lint -- --format json         # machine-readable
//! cargo run -p distrust-lint -- --root ../elsewhere   # another workspace
//! ```
//!
//! Exit codes: 0 clean (or findings without `--deny`), 1 unallowlisted
//! findings under `--deny`, 2 usage or I/O error.

use distrust_lint::config::Config;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    eprintln!("--format expects `json` or `text`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(path) => root = PathBuf::from(path),
                None => {
                    eprintln!("--root expects a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "distrust-lint [--deny] [--format text|json] [--root PATH]\n\
                     Repo-aware static analysis: lock-order, panic-path, \
                     protocol-conformance, reactor-blocking.\n\
                     --deny exits non-zero when unallowlisted findings remain."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }

    let cfg = Config::repo_default(root);
    let report = match distrust_lint::analyze(&cfg) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("distrust-lint: {err}");
            return ExitCode::from(2);
        }
    };
    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if deny && report.unallowlisted() > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
