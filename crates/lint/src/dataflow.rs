//! Interprocedural taint dataflow over the lexed token stream and the
//! workspace-wide call graph: the substrate for the `taint-alloc` and
//! `cap-consistency` passes.
//!
//! The analysis is deliberately lexical and over-approximate, in the same
//! spirit as the other passes:
//!
//! * **Sources** root a taint chain: announced lengths (`decode_len`),
//!   wire-decoded values (`decode`/`from_wire`/`read_frame` results), the
//!   byte-slice parameters of decode entry points, and parameters typed
//!   with a not-yet-verified signed object (`SignedCheckpoint`, `Quote`,
//!   `ShardBundle`, …).
//! * **Propagation** is a linear union: a let-binding, arithmetic
//!   expression, field access or method chain carries the taint of every
//!   identifier it mentions, and `.len()` deliberately propagates —
//!   the length of an attacker-shaped collection is attacker-shaped
//!   (element-size amplification is exactly the PR 2 length-bomb class).
//!   Calls resolve through [`crate::resolve::Resolver`] — across crate
//!   seams, through `use` imports and type qualifiers — with a fixpoint
//!   param→return summary per callee, and a second fixpoint injects
//!   argument taint *into* callees context-insensitively: a length
//!   decoded in `wire` that sizes an allocation inside a `log` helper
//!   fires inside the helper, with the full multi-crate chain.
//! * **Bounds** ride along on a four-tier interval lattice ([`Bound`]):
//!   `Const` (capped by a compile-time constant) `<` `Mem` (an in-memory
//!   collection's `.len()`) `<` `Input` (a decoded scalar capped by an
//!   input length) `<` `Top` (unbounded). A dominating top-level
//!   early-return guard (`if len > CAP { return …; }`) lowers `len`'s
//!   bound below the guard without clearing its chain. Loop-bound and
//!   index sinks fire only at `Top` — a guard against the input length
//!   makes iteration consume input. Allocation sinks fire at `Input`
//!   too: `with_capacity(len)` multiplies by the element size, so an
//!   input-length bound does not prevent amplification (the PR 2 bomb
//!   sat right next to such a guard) — but not at `Mem`: allocating
//!   `buf.len() + k` duplicates memory the process already committed.
//! * **Sanitizers** clear a whole expression: a bounds-checked
//!   `try_into`, an explicit `.min(CONSTANT)` cap, or passage through a
//!   `verify*` call.
//!
//! Known blind spots (documented in LINTS.md): `match`-arm bindings are
//! not tracked, guards below the function's top statement level are
//! ignored, and a callee that arithmetically amplifies an argument
//! (`n * n`) keeps the argument's bound tier.

use crate::lexer::Tok;
use crate::resolve::Resolver;
use crate::scan::{FnDef, SourceFile};
use std::collections::BTreeMap;

/// Longest source→sink chain retained in a report line.
const MAX_CHAIN: usize = 6;
/// Fixpoint iteration cap (the lattice is finite; this is a backstop).
const MAX_ITERS: usize = 12;
/// Recursion fuel for evaluating call-argument subexpressions.
const MAX_FUEL: usize = 8;
/// Stand-in magnitude for named constants (`MAX_FOO`): the tier is what
/// matters; the value only orders joins within the `Const` tier.
const NAMED_CONST: u128 = u128::MAX;

/// Calls whose result is rooted attacker-shaped data, with the root text.
fn source_call(name: &str) -> Option<&'static str> {
    match name {
        "decode_len" => Some("announced length via `decode_len`"),
        "decode" => Some("wire-decoded value via `decode`"),
        "from_wire" => Some("wire-decoded value via `from_wire`"),
        "read_frame" => Some("wire frame via `read_frame`"),
        // Segment-codec entry points: a disk image is attacker-shaped
        // until its CRCs check out, and even then lengths/offsets it
        // announces must be bounds-checked before they size anything.
        "decode_segment_header" => Some("segment header via `decode_segment_header`"),
        "decode_record" => Some("segment record via `decode_record`"),
        "decode_leaf_payload" => Some("leaf payload via `decode_leaf_payload`"),
        "decode_checkpoint_payload" => Some("checkpoint payload via `decode_checkpoint_payload`"),
        "decode_trailer" => Some("sealed-trailer offset via `decode_trailer`"),
        "scan_segment" => Some("scanned segment via `scan_segment`"),
        "scan_meta" => Some("scanned meta log via `scan_meta`"),
        _ => None,
    }
}

/// Signed-object types whose fields are untrusted until verified.
pub const SIGNED_TYPES: [&str; 8] = [
    "SignedCheckpoint",
    "SignedRelease",
    "Quote",
    "CheckpointBundle",
    "ShardBundle",
    "ShardProofBundle",
    "AuditBundle",
    "ShardAuditBundle",
];

const KEYWORDS: [&str; 30] = [
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "let", "fn",
    "impl", "pub", "use", "mod", "struct", "enum", "trait", "where", "as", "in", "ref", "mut",
    "move", "dyn", "unsafe", "extern", "static", "const", "type",
];

/// Upper-bound tier of a tracked value. `Ord` follows lattice order:
/// `Const(_) < Mem < Input < Top`, and within `Const` the larger cap
/// wins a join (the weaker bound is the sound one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Bound {
    /// Capped by a compile-time constant (numeric literal or `MAX_*`).
    Const(u128),
    /// The length of an in-memory collection (`x.len()`): allocating
    /// that many bytes cannot exceed a constant multiple of memory the
    /// process has already committed, so it can never amplify.
    Mem,
    /// A *decoded scalar* capped by an input length (`if len >
    /// input.len() { return …; }`): iteration consuming input is fine,
    /// but sizing a `Vec<T>` with it still multiplies by `size_of::<T>`.
    Input,
    /// No workspace-visible bound.
    Top,
}

impl Default for Bound {
    fn default() -> Bound {
        Bound::Const(0)
    }
}

impl Bound {
    pub fn join(self, other: Bound) -> Bound {
        self.max(other)
    }

    /// True when an allocation sized by a value at this tier is safe:
    /// constant caps and in-memory lengths cannot amplify; `Input` and
    /// `Top` can.
    pub fn alloc_safe(self) -> bool {
        self <= Bound::Mem
    }
}

/// Taint lattice value: which parameters flow here (bitmask), the bound
/// tier, and, when the value is attacker-rooted, one deterministic source
/// chain (the lexicographically least seen, so reports never flap).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Taint {
    pub params: u64,
    pub chain: Option<Vec<String>>,
    pub bound: Bound,
}

impl Taint {
    fn rooted(desc: String) -> Taint {
        Taint {
            params: 0,
            chain: Some(vec![desc]),
            bound: Bound::Top,
        }
    }

    fn konst(value: u128) -> Taint {
        Taint {
            params: 0,
            chain: None,
            bound: Bound::Const(value),
        }
    }

    fn is_bottom(&self) -> bool {
        self.params == 0 && self.chain.is_none()
    }

    pub fn merge(&mut self, other: &Taint) {
        self.params |= other.params;
        self.bound = self.bound.join(other.bound);
        match (&self.chain, &other.chain) {
            (None, Some(_)) => self.chain = other.chain.clone(),
            (Some(a), Some(b)) if b < a => self.chain = other.chain.clone(),
            _ => {}
        }
    }
}

fn with_hop(chain: &[String], hop: String) -> Vec<String> {
    let mut out = chain.to_vec();
    if out.len() < MAX_CHAIN {
        out.push(hop);
    }
    out
}

/// A tainted value reaching an allocation/index/loop-bound sink.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Site {
    pub file: String,
    pub line: u32,
    pub fn_name: String,
    /// Human label of the sink, e.g. "`Vec::with_capacity`".
    pub sink: String,
    /// Deterministic source→sink chain, root first.
    pub chain: Vec<String>,
}

/// A decode-path allocation sink sized by a parameter with no
/// workspace-visible bound: no caller caps it, no guard dominates it, no
/// sanitizer clears it. Rendered by the `cap-consistency` pass.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CapGap {
    pub file: String,
    pub line: u32,
    pub fn_name: String,
    pub sink: String,
    /// Names of the unbounded non-`self` parameters that size the sink.
    pub params: Vec<String>,
}

struct FnInfo {
    name: String,
    file_idx: usize,
    body: (usize, usize),
    /// Parameter names in order (`self` included when present).
    params: Vec<String>,
    /// (param index, root description) for attacker-rooted parameters.
    seeds: Vec<(usize, String)>,
    /// The scanned definition, for receiver-type qualifier inference.
    def: FnDef,
}

/// One argument observed flowing into a resolved callee's parameter.
struct ArgRec {
    callee: usize,
    param: usize,
    taint: Taint,
    hop: String,
}

/// Per-parameter caller context: the joined taint over every observed
/// call site, and whether any call site was observed at all (a parameter
/// nobody calls stays `Top`-bounded).
struct Incoming {
    taint: Vec<Vec<Taint>>,
    seen: Vec<Vec<bool>>,
}

pub struct Dataflow {
    fns: Vec<FnInfo>,
    resolver: Resolver,
    summaries: Vec<Taint>,
    pub sites: Vec<Site>,
    pub cap_gaps: Vec<CapGap>,
    /// Fixpoint sweeps across the summary and argument-taint phases.
    pub fixpoint_iters: usize,
}

impl Dataflow {
    pub fn build(files: &[SourceFile]) -> Dataflow {
        let resolver = Resolver::build(files);
        let mut fns = Vec::new();
        for (file_idx, file) in files.iter().enumerate() {
            for def in &file.fns {
                if def.in_test {
                    continue;
                }
                fns.push(fn_info(file, file_idx, def));
            }
        }
        debug_assert_eq!(fns.len(), resolver.fn_count());
        let mut flow = Dataflow {
            summaries: vec![Taint::default(); fns.len()],
            fns,
            resolver,
            sites: Vec::new(),
            cap_gaps: Vec::new(),
            fixpoint_iters: 0,
        };

        // Phase 1 — param→return summaries, with no caller context: a
        // summary must describe the callee for *every* caller, so caller
        // chains are not allowed to pollute it.
        for _ in 0..MAX_ITERS {
            flow.fixpoint_iters += 1;
            let mut changed = false;
            for i in 0..flow.fns.len() {
                let ret = walk_fn(&flow, files, i, None, None, None);
                let mut next = flow.summaries[i].clone();
                next.merge(&ret);
                if next != flow.summaries[i] {
                    flow.summaries[i] = next;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Phase 2 — context-insensitive argument taint: join, over every
        // resolved call site, the taint each argument carries into its
        // parameter slot. Monotone on the same finite lattice.
        let mut incoming = Incoming {
            taint: flow
                .fns
                .iter()
                .map(|f| vec![Taint::default(); f.params.len()])
                .collect(),
            seen: flow
                .fns
                .iter()
                .map(|f| vec![false; f.params.len()])
                .collect(),
        };
        for _ in 0..MAX_ITERS {
            flow.fixpoint_iters += 1;
            let mut recs: Vec<ArgRec> = Vec::new();
            for i in 0..flow.fns.len() {
                walk_fn(&flow, files, i, Some(&incoming), None, Some(&mut recs));
            }
            let mut changed = false;
            for rec in recs {
                if !incoming.seen[rec.callee][rec.param] {
                    incoming.seen[rec.callee][rec.param] = true;
                    changed = true;
                }
                let mut t = rec.taint;
                t.params = 0; // caller-frame bits mean nothing in the callee
                if let Some(chain) = &t.chain {
                    t.chain = Some(with_hop(chain, rec.hop));
                }
                let slot = &mut incoming.taint[rec.callee][rec.param];
                let mut next = slot.clone();
                next.merge(&t);
                if next != *slot {
                    *slot = next;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Phase 3 — sites and cap gaps, with caller context seeded in.
        let mut sites = Vec::new();
        let mut gaps = Vec::new();
        for i in 0..flow.fns.len() {
            walk_fn(
                &flow,
                files,
                i,
                Some(&incoming),
                Some((&mut sites, &mut gaps)),
                None,
            );
        }
        sites.sort();
        sites.dedup();
        gaps.sort();
        gaps.dedup();
        flow.sites = sites;
        flow.cap_gaps = gaps;
        flow
    }
}

/// Extracts signature facts for one function definition.
fn fn_info(file: &SourceFile, file_idx: usize, def: &FnDef) -> FnInfo {
    let mut params = Vec::new();
    let mut seeds = Vec::new();
    if let Some((sig_open, sig_close)) = signature_parens(file, def) {
        for (lo, hi) in split_top_commas(file, sig_open + 1, sig_close.saturating_sub(1)) {
            let idx = params.len();
            let (name, ty_from) = param_name(file, lo, hi);
            let ty_has = |want: &dyn Fn(&str) -> bool| -> Option<String> {
                (ty_from..=hi)
                    .find_map(|k| file.ident_at(k).filter(|n| want(n)).map(|n| n.to_string()))
            };
            if let Some(ty) = ty_has(&|n: &str| SIGNED_TYPES.contains(&n)) {
                seeds.push((
                    idx,
                    format!(
                        "unverified `{ty}` (param `{name}` of `{}`) at {}:{}",
                        def.name, file.path, def.line
                    ),
                ));
            } else if crate::passes::panic_path::decode_fn(&def.name)
                && ty_has(&|n: &str| n == "u8").is_some()
            {
                seeds.push((
                    idx,
                    format!(
                        "wire bytes `{name}` of `{}` at {}:{}",
                        def.name, file.path, def.line
                    ),
                ));
            }
            params.push(name);
        }
    }
    FnInfo {
        name: def.name.clone(),
        file_idx,
        body: def.body,
        params,
        seeds,
        def: def.clone(),
    }
}

/// Token range of the parameter list's parentheses for `def`.
fn signature_parens(file: &SourceFile, def: &FnDef) -> Option<(usize, usize)> {
    // Find the `fn` keyword introducing this definition, nearest first.
    let fn_kw = (0..def.body.0)
        .rev()
        .find(|&k| file.ident_at(k) == Some("fn") && file.ident_at(k + 1) == Some(&def.name))?;
    let open = (fn_kw + 2..def.body.0).find(|&k| file.punct_at(k, '('))?;
    let mut depth = 0i64;
    for k in open..def.body.0 {
        if file.punct_at(k, '(') {
            depth += 1;
        } else if file.punct_at(k, ')') {
            depth -= 1;
            if depth == 0 {
                return Some((open, k));
            }
        }
    }
    None
}

/// Splits `lo..=hi` on commas at paren/bracket/brace depth 0. Braces
/// count too: a closure argument (`move || { f(a, b) }`) is one
/// argument, not however many commas its body happens to contain.
fn split_top_commas(file: &SourceFile, lo: usize, hi: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    if lo > hi {
        return out;
    }
    let mut depth = 0i64;
    let mut start = lo;
    for k in lo..=hi {
        match file.tokens.get(k).map(|t| &t.tok) {
            Some(Tok::Punct('(')) | Some(Tok::Punct('[')) | Some(Tok::Punct('{')) => depth += 1,
            Some(Tok::Punct(')')) | Some(Tok::Punct(']')) | Some(Tok::Punct('}')) => depth -= 1,
            Some(Tok::Punct(',')) if depth == 0 => {
                if start < k {
                    out.push((start, k - 1));
                }
                start = k + 1;
            }
            _ => {}
        }
    }
    if start <= hi {
        out.push((start, hi));
    }
    out
}

/// Name of the parameter in `lo..=hi`, and where its type tokens begin.
fn param_name(file: &SourceFile, lo: usize, hi: usize) -> (String, usize) {
    let mut k = lo;
    while k <= hi {
        match file.ident_at(k) {
            Some("mut") | Some("ref") => k += 1,
            Some("self") => return ("self".to_string(), hi + 1),
            Some(name) => {
                let name = name.to_string();
                let ty_from = (k + 1..=hi)
                    .find(|&c| file.punct_at(c, ':'))
                    .map(|c| c + 1)
                    .unwrap_or(hi + 1);
                return (name, ty_from);
            }
            None => k += 1,
        }
    }
    ("<pat>".to_string(), lo)
}

/// Walks one function body: returns the return-value taint and, when
/// requested, records tainted sink reaches (`sinks`) or argument flows
/// into resolved callees (`collect`).
fn walk_fn(
    flow: &Dataflow,
    files: &[SourceFile],
    fi: usize,
    incoming: Option<&Incoming>,
    mut sinks: Option<(&mut Vec<Site>, &mut Vec<CapGap>)>,
    mut collect: Option<&mut Vec<ArgRec>>,
) -> Taint {
    let info = &flow.fns[fi];
    let file = &files[info.file_idx];
    let (open, close) = info.body;
    let body_depth = file.depth[open];
    let nested: Vec<(usize, usize)> = file
        .fns
        .iter()
        .filter(|g| g.body.0 > open && g.body.1 < close)
        .map(|g| g.body)
        .collect();

    let mut env: BTreeMap<String, Taint> = BTreeMap::new();
    for (i, p) in info.params.iter().enumerate() {
        let mut t = Taint {
            params: 1u64 << i.min(63),
            chain: None,
            bound: Bound::Top,
        };
        if let Some(inc) = incoming {
            if inc.seen[fi][i] {
                let ctx = &inc.taint[fi][i];
                t.bound = ctx.bound;
                t.chain = ctx.chain.clone();
            }
        }
        env.insert(p.clone(), t);
    }
    for (i, desc) in &info.seeds {
        if let Some(t) = env.get_mut(&info.params[*i]) {
            t.merge(&Taint::rooted(desc.clone()));
        }
    }

    // Dominating early-return guards, applied once the walk passes the
    // guard block's closing brace: (apply_at, variable, inferred bound).
    let mut pending_guards: Vec<(usize, String, Bound)> = Vec::new();

    let mut ret = Taint::default();
    let mut last_semi = open;
    let mut idx = open + 1;
    while idx < close {
        if let Some(&(_, nend)) = nested.iter().find(|(ns, _)| *ns == idx) {
            idx = nend + 1;
            continue;
        }
        while let Some(pos) = pending_guards.iter().position(|(at, _, _)| *at <= idx) {
            let (_, var, bound) = pending_guards.remove(pos);
            if let Some(t) = env.get_mut(&var) {
                t.bound = t.bound.min(bound);
            }
        }
        if file.punct_at(idx, ';') && file.depth[idx] == body_depth {
            last_semi = idx;
        }

        // -- structure: bindings, guards, loops, returns ----------------
        if let Some(name) = file.ident_at(idx) {
            match name {
                "let" => {
                    let d = file.depth[idx];
                    if let Some(eq) = find_assign_eq(file, idx + 1, close) {
                        let term = (eq + 1..close)
                            .find(|&k| file.punct_at(k, ';') && file.depth[k] == d)
                            .unwrap_or(close);
                        let t = eval(flow, files, fi, &env, eq + 1, term - 1, MAX_FUEL);
                        // Strong update: a shadowing `let` replaces the
                        // prior taint, so `let n = n.min(CAP);` launders.
                        for b in pattern_binds(file, idx + 1, eq - 1) {
                            env.insert(b, t.clone());
                        }
                    }
                }
                "if" if file.depth[idx] == body_depth => {
                    // Top-level early-return guard: `if len > CAP { …
                    // return …; }` proves `len <= CAP` for the rest of
                    // the function body.
                    if let Some(gopen) = (idx + 1..close)
                        .find(|&k| file.punct_at(k, '{') && file.depth[k] == body_depth + 1)
                    {
                        let gclose = file.matching_close(gopen);
                        let has_return =
                            (gopen..gclose).any(|k| file.ident_at(k) == Some("return"));
                        if has_return && idx + 1 < gopen {
                            for (var, bound) in guard_bounds(file, idx + 1, gopen - 1) {
                                pending_guards.push((gclose, var, bound));
                            }
                        }
                    }
                }
                "for" => {
                    let d = file.depth[idx];
                    let in_kw = (idx + 1..close).find(|&k| file.ident_at(k) == Some("in"));
                    let body_open =
                        (idx + 1..close).find(|&k| file.punct_at(k, '{') && file.depth[k] == d + 1);
                    if let (Some(in_kw), Some(body_open)) = (in_kw, body_open) {
                        if in_kw < body_open {
                            let t = eval(flow, files, fi, &env, in_kw + 1, body_open - 1, MAX_FUEL);
                            let has_range = (in_kw + 1..body_open - 1)
                                .any(|k| file.punct_at(k, '.') && file.punct_at(k + 1, '.'));
                            if has_range && t.bound == Bound::Top {
                                if let (Some(chain), Some((sites, _))) = (&t.chain, sinks.as_mut())
                                {
                                    sites.push(Site {
                                        file: file.path.clone(),
                                        line: file.line_at(idx),
                                        fn_name: info.name.clone(),
                                        sink: "loop bound".to_string(),
                                        chain: chain.clone(),
                                    });
                                }
                            }
                            for b in pattern_binds(file, idx + 1, in_kw - 1) {
                                env.entry(b).or_default().merge(&t);
                            }
                        }
                    }
                }
                "return" => {
                    let d = file.depth[idx];
                    let term = (idx + 1..close)
                        .find(|&k| file.punct_at(k, ';') && file.depth[k] == d)
                        .unwrap_or(close);
                    if idx + 1 < term {
                        ret.merge(&eval(flow, files, fi, &env, idx + 1, term - 1, MAX_FUEL));
                    }
                }
                _ => {}
            }
        }

        // -- plain reassignment `x = expr` / `x += expr` ----------------
        if file.punct_at(idx, '=')
            && !file.punct_at(idx + 1, '=')
            && !matches!(
                file.tokens.get(idx.saturating_sub(1)).map(|t| &t.tok),
                Some(Tok::Punct('='))
                    | Some(Tok::Punct('<'))
                    | Some(Tok::Punct('>'))
                    | Some(Tok::Punct('!'))
            )
            && !file.punct_at(idx + 1, '>')
        {
            let (lhs_at, compound) = match file.tokens.get(idx.saturating_sub(1)).map(|t| &t.tok) {
                Some(Tok::Ident(_)) => (idx - 1, false),
                Some(Tok::Punct(op)) if "+-*/%&|^".contains(*op) => (idx.saturating_sub(2), true),
                _ => (usize::MAX, false),
            };
            if lhs_at != usize::MAX {
                if let Some(lhs) = file.ident_at(lhs_at) {
                    let is_field = lhs_at > 0 && file.punct_at(lhs_at - 1, '.');
                    let is_let = lhs_at > 0
                        && matches!(file.ident_at(lhs_at - 1), Some("let") | Some("mut"));
                    if !is_field && !is_let && !KEYWORDS.contains(&lhs) {
                        let d = file.depth[idx];
                        let term = (idx + 1..close)
                            .find(|&k| file.punct_at(k, ';') && file.depth[k] == d)
                            .unwrap_or(close);
                        if idx + 1 < term {
                            let t = eval(flow, files, fi, &env, idx + 1, term - 1, MAX_FUEL);
                            if compound {
                                // `x += expr` keeps the old value as an
                                // operand, so the prior taint survives.
                                env.entry(lhs.to_string()).or_default().merge(&t);
                            } else {
                                env.insert(lhs.to_string(), t);
                            }
                        }
                    }
                }
            }
        }

        // -- argument flow into resolved callees ------------------------
        if let Some(recs) = collect.as_deref_mut() {
            collect_args(flow, files, fi, &env, idx, recs);
        }

        // -- sinks ------------------------------------------------------
        if let Some((sites, gaps)) = sinks.as_mut() {
            check_sink(flow, files, fi, &env, idx, sites, gaps);
        }
        idx += 1;
    }

    // Trailing expression (implicit return).
    if last_semi + 1 < close {
        ret.merge(&eval(
            flow,
            files,
            fi,
            &env,
            last_semi + 1,
            close - 1,
            MAX_FUEL,
        ));
    }
    ret
}

/// Bounds proven by an early-return guard condition in `lo..=hi`:
/// `var > CAP`, `var >= CAP`, `CAP < var`, or `var > expr.len()`. An
/// `&&`-joined condition proves nothing (either conjunct alone can
/// trigger the return); `||`-joined disjuncts each prove their bound.
fn guard_bounds(file: &SourceFile, lo: usize, hi: usize) -> Vec<(String, Bound)> {
    let mut out = Vec::new();
    // `a && b { return }` only returns when *both* hold; neither bound is
    // proven for the fall-through path.
    if (lo..hi).any(|k| file.punct_at(k, '&') && file.punct_at(k + 1, '&')) {
        return out;
    }
    let mut start = lo;
    let mut k = lo;
    while k <= hi + 1 {
        let is_or = k < hi && file.punct_at(k, '|') && file.punct_at(k + 1, '|');
        if is_or || k > hi {
            if start < k {
                if let Some(pair) = disjunct_bound(file, start, (k - 1).min(hi)) {
                    out.push(pair);
                }
            }
            if is_or {
                k += 2;
                start = k;
                continue;
            }
            break;
        }
        k += 1;
    }
    out
}

/// The bound proven by one guard disjunct, if it has the shape
/// `var > rhs` / `var >= rhs` / `rhs < var` with a constant or
/// input-length `rhs`.
fn disjunct_bound(file: &SourceFile, lo: usize, hi: usize) -> Option<(String, Bound)> {
    // `var > rhs` (or `>=`).
    for k in lo..=hi {
        if file.punct_at(k, '>') && !file.punct_at(k + 1, '>') {
            let rhs_from = if file.punct_at(k + 1, '=') {
                k + 2
            } else {
                k + 1
            };
            // The lhs must be a single identifier spanning the disjunct.
            if k != lo + 1 {
                return None;
            }
            let var = file.ident_at(lo)?.to_string();
            return rhs_bound(file, rhs_from, hi).map(|b| (var, b));
        }
        if file.punct_at(k, '<') && !file.punct_at(k + 1, '<') && !file.punct_at(k + 1, '=') {
            // `rhs < var`: the rhs of `<` must be the single trailing
            // identifier.
            if k != hi - 1 {
                return None;
            }
            let var = file.ident_at(hi)?.to_string();
            return rhs_bound(file, lo, k - 1).map(|b| (var, b));
        }
    }
    None
}

/// Classifies a guard comparison's bounding side: a constant expression
/// yields `Const`, an `.len()` call on anything yields `Input`.
fn rhs_bound(file: &SourceFile, lo: usize, hi: usize) -> Option<Bound> {
    if lo > hi {
        return None;
    }
    let has_len_call = (lo..=hi).any(|k| {
        file.ident_at(k) == Some("len")
            && k > lo
            && file.punct_at(k - 1, '.')
            && file.punct_at(k + 1, '(')
    });
    if has_len_call {
        return Some(Bound::Input);
    }
    let mut value: Option<u128> = None;
    for k in lo..=hi {
        match file.tokens.get(k).map(|t| &t.tok) {
            Some(Tok::Number(raw)) => value = Some(value.unwrap_or(0).max(number_value(raw))),
            Some(Tok::Ident(name)) if screaming_const(name) => {
                value = Some(NAMED_CONST);
            }
            Some(Tok::Ident(_)) => return None, // variable bound: unknown
            _ => {}
        }
    }
    value.map(Bound::Const)
}

/// Numeric value of a literal token, tolerant of `_` separators and type
/// suffixes (`1024usize`); unparseable forms collapse to the sentinel.
fn number_value(raw: &str) -> u128 {
    let cleaned: String = raw.chars().filter(|c| *c != '_').collect();
    let digits: String = if let Some(hex) = cleaned.strip_prefix("0x") {
        return u128::from_str_radix(hex.trim_end_matches(|c: char| !c.is_ascii_hexdigit()), 16)
            .unwrap_or(NAMED_CONST);
    } else {
        cleaned.chars().take_while(|c| c.is_ascii_digit()).collect()
    };
    digits.parse().unwrap_or(NAMED_CONST)
}

/// `MAX_FOO`-style named constant: all uppercase/underscore/digit with at
/// least one letter.
fn screaming_const(name: &str) -> bool {
    name.chars()
        .all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit())
        && name.chars().any(|c| c.is_ascii_alphabetic())
}

/// First `=` that is a let-binding operator (not `==`, `=>`, `<=`, `!=`)
/// scanning from `from`. A preceding `>` is allowed: between a `let` and
/// its `=` it can only close a generic type annotation (`let x: Vec<u8>
/// = …`), never a comparison.
fn find_assign_eq(file: &SourceFile, from: usize, close: usize) -> Option<usize> {
    (from..close).find(|&k| {
        file.punct_at(k, '=')
            && !file.punct_at(k + 1, '=')
            && !file.punct_at(k + 1, '>')
            && !matches!(
                file.tokens.get(k.saturating_sub(1)).map(|t| &t.tok),
                Some(Tok::Punct('=')) | Some(Tok::Punct('<')) | Some(Tok::Punct('!'))
            )
    })
}

/// Lowercase identifiers bound by a pattern in `lo..=hi` (stops at a
/// type-annotation `:` at paren depth 0; skips path segments).
fn pattern_binds(file: &SourceFile, lo: usize, hi: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i64;
    let mut k = lo;
    while k <= hi {
        match file.tokens.get(k).map(|t| &t.tok) {
            Some(Tok::Punct('(')) | Some(Tok::Punct('[')) | Some(Tok::Punct('{')) => depth += 1,
            Some(Tok::Punct(')')) | Some(Tok::Punct(']')) | Some(Tok::Punct('}')) => depth -= 1,
            Some(Tok::Punct(':')) if depth == 0 => break, // type annotation
            Some(Tok::Punct(':')) => {}
            Some(Tok::PathSep) => {} // path segments handled below
            Some(Tok::Ident(name)) => {
                let lower = name
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_lowercase() || c == '_');
                let path_seg =
                    (k < hi && file.path_sep_at(k + 1)) || (k > lo && file.path_sep_at(k - 1));
                if lower && !path_seg && !KEYWORDS.contains(&name.as_str()) && name != "self" {
                    out.push(name.clone());
                }
            }
            _ => {}
        }
        k += 1;
    }
    out
}

/// True when `lo..=hi` passes through a recognized sanitizer: a
/// `try_into` conversion, a `.min(CONSTANT)` cap, or a `verify*` call.
fn sanitized(file: &SourceFile, lo: usize, hi: usize) -> bool {
    for k in lo..=hi {
        if let Some(name) = file.ident_at(k) {
            if name == "try_into" {
                return true;
            }
            if name.starts_with("verify") && file.punct_at(k + 1, '(') {
                return true;
            }
            if name == "min" && k > 0 && file.punct_at(k - 1, '.') && file.punct_at(k + 1, '(') {
                if let Some(cl) = match_close(file, k + 1, hi + 1) {
                    let constish = (k + 2..cl).all(|a| match file.tokens.get(a).map(|t| &t.tok) {
                        Some(Tok::Number(_)) => true,
                        Some(Tok::Ident(n)) => n
                            .chars()
                            .all(|c| c.is_uppercase() || c == '_' || c.is_ascii_digit()),
                        Some(Tok::PathSep) | Some(Tok::Punct('(')) | Some(Tok::Punct(')')) => true,
                        _ => false,
                    });
                    if k + 2 < cl && constish {
                        return true;
                    }
                }
            }
        }
    }
    false
}

/// Matching `)` for the `(` at `open`, bounded by `limit`.
fn match_close(file: &SourceFile, open: usize, limit: usize) -> Option<usize> {
    let mut depth = 0i64;
    for k in open..limit.min(file.tokens.len()) {
        if file.punct_at(k, '(') {
            depth += 1;
        } else if file.punct_at(k, ')') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Taint of the expression spanning tokens `lo..=hi`: the union of every
/// environment-tainted identifier, rooted source call, and resolved
/// callee summary in the range. Sanitizers clear the whole range.
fn eval(
    flow: &Dataflow,
    files: &[SourceFile],
    fi: usize,
    env: &BTreeMap<String, Taint>,
    lo: usize,
    hi: usize,
    fuel: usize,
) -> Taint {
    let info = &flow.fns[fi];
    let file = &files[info.file_idx];
    if lo > hi || fuel == 0 {
        return Taint::default();
    }
    if sanitized(file, lo, hi) {
        return Taint::default();
    }
    let mut out = Taint::default();
    let mut k = lo;
    while k <= hi {
        if let Some(Tok::Number(raw)) = file.tokens.get(k).map(|t| &t.tok) {
            out.merge(&Taint::konst(number_value(raw)));
            k += 1;
            continue;
        }
        let Some(name) = file.ident_at(k) else {
            k += 1;
            continue;
        };
        let is_call = file.punct_at(k + 1, '(') && !KEYWORDS.contains(&name);
        // A `.` directly before the ident marks a field/method name —
        // unless it is the second dot of a range (`0..n`), where the
        // ident is a real operand.
        let after_dot = k > 0 && file.punct_at(k - 1, '.') && !(k > 1 && file.punct_at(k - 2, '.'));
        let is_field = after_dot && !is_call;
        if is_field {
            k += 1;
            continue;
        }
        if is_call {
            let line = file.line_at(k);
            if let Some(desc) = source_call(name) {
                out.merge(&Taint::rooted(format!("{desc} at {}:{line}", file.path)));
            }
            let qual = flow.resolver.qualifier_at(file, &info.def, k);
            let callees = flow.resolver.targets(fi, name, &qual);
            if !callees.is_empty() {
                let close = match_close(file, k + 1, hi + 1).unwrap_or(hi);
                let args = split_top_commas(file, k + 2, close.saturating_sub(1));
                let is_method = k > 0 && file.punct_at(k - 1, '.');
                for &j in &callees {
                    let s = &flow.summaries[j];
                    if s.is_bottom() {
                        continue;
                    }
                    if let Some(chain) = &s.chain {
                        out.merge(&Taint {
                            params: 0,
                            chain: Some(with_hop(
                                chain,
                                format!("returned by `{name}` at {}:{line}", file.path),
                            )),
                            bound: s.bound,
                        });
                    }
                    // Param→return flow: evaluate only the flowing args.
                    let callee = &flow.fns[j];
                    let skip_self =
                        is_method && callee.params.first().map(String::as_str) == Some("self");
                    for p in 0..callee.params.len().min(63) {
                        if s.params & (1u64 << p) == 0 {
                            continue;
                        }
                        let a = if skip_self {
                            if p == 0 {
                                continue; // receiver handled by outer scan
                            }
                            p - 1
                        } else {
                            p
                        };
                        if let Some(&(alo, ahi)) = args.get(a) {
                            let t = eval(flow, files, fi, env, alo, ahi, fuel - 1);
                            if let Some(chain) = &t.chain {
                                let mut routed = t.clone();
                                routed.chain = Some(with_hop(
                                    chain,
                                    format!("through `{name}` at {}:{line}", file.path),
                                ));
                                out.merge(&routed);
                            } else {
                                out.merge(&t);
                            }
                        }
                    }
                }
                // Skip the argument range: flow through resolved callees
                // is governed by their summaries, not a blanket union.
                k = close + 1;
                continue;
            }
            // Unresolved call (std/external): fall through and union the
            // arguments conservatively.
            k += 1;
            continue;
        }
        if let Some(t) = env.get(name) {
            if is_len_of(file, k, hi) {
                // `x.len()` (possibly through fields / zero-arg methods):
                // the chain survives, but the magnitude is an in-memory
                // collection length — cap the bound at `Mem`.
                let mut capped = t.clone();
                capped.bound = capped.bound.min(Bound::Mem);
                out.merge(&capped);
            } else {
                out.merge(t);
            }
        } else if screaming_const(name) {
            out.merge(&Taint::konst(NAMED_CONST));
        }
        k += 1;
    }
    out
}

/// True when the identifier at `k` is the base of a postfix chain of
/// field accesses and zero-arg method calls ending in `.len()` — i.e.
/// the expression's value is the *length* of an in-memory collection
/// (`buf.len()`, `self.items.len()`, `rec.as_slice().len()`), not the
/// collection or a decoded scalar.
fn is_len_of(file: &SourceFile, k: usize, hi: usize) -> bool {
    let mut j = k + 1;
    loop {
        if j + 1 > hi || !file.punct_at(j, '.') || file.punct_at(j + 1, '.') {
            return false;
        }
        let Some(name) = file.ident_at(j + 1) else {
            return false;
        };
        if name == "len" && file.punct_at(j + 2, '(') && file.punct_at(j + 3, ')') {
            return true;
        }
        if file.punct_at(j + 2, '(') {
            // A method call: only zero-arg adapters keep the "same
            // collection" reading; anything with arguments transforms.
            if file.punct_at(j + 3, ')') {
                j += 4;
            } else {
                return false;
            }
        } else {
            j += 2; // plain field access
        }
    }
}

/// When token `idx` is a resolved call, records the taint each argument
/// carries into the callee's parameter slots.
fn collect_args(
    flow: &Dataflow,
    files: &[SourceFile],
    fi: usize,
    env: &BTreeMap<String, Taint>,
    idx: usize,
    recs: &mut Vec<ArgRec>,
) {
    let info = &flow.fns[fi];
    let file = &files[info.file_idx];
    let Some(name) = file.ident_at(idx) else {
        return;
    };
    if !file.punct_at(idx + 1, '(') || KEYWORDS.contains(&name) {
        return;
    }
    let qual = flow.resolver.qualifier_at(file, &info.def, idx);
    let callees = flow.resolver.targets(fi, name, &qual);
    if callees.is_empty() {
        return;
    }
    let Some(cl) = match_close(file, idx + 1, file.tokens.len()) else {
        return;
    };
    let args = split_top_commas(file, idx + 2, cl.saturating_sub(1));
    let is_method = idx > 0 && file.punct_at(idx - 1, '.');
    let line = file.line_at(idx);
    for &j in &callees {
        let callee = &flow.fns[j];
        let skip_self = is_method && callee.params.first().map(String::as_str) == Some("self");
        for p in 0..callee.params.len() {
            let a = if skip_self {
                if p == 0 {
                    continue;
                }
                p - 1
            } else {
                p
            };
            if let Some(&(alo, ahi)) = args.get(a) {
                let taint = eval(flow, files, fi, env, alo, ahi, MAX_FUEL);
                recs.push(ArgRec {
                    callee: j,
                    param: p,
                    taint,
                    hop: format!(
                        "passed into `{name}` as `{}` at {}:{line}",
                        callee.params[p], file.path
                    ),
                });
            }
        }
    }
}

/// Checks whether token `idx` is an allocation/index sink and records a
/// site (or, for unbounded decode-path parameters, a cap gap) when its
/// size expression warrants one.
fn check_sink(
    flow: &Dataflow,
    files: &[SourceFile],
    fi: usize,
    env: &BTreeMap<String, Taint>,
    idx: usize,
    sites: &mut Vec<Site>,
    gaps: &mut Vec<CapGap>,
) {
    let info = &flow.fns[fi];
    let file = &files[info.file_idx];
    // Allocation sinks fire at `Input` too: a guard against the input
    // length does not prevent element-size amplification. Index sinks
    // only fire unbounded.
    let mut push = |line: u32, sink: &str, alloc: bool, lo: usize, hi: usize| {
        if lo > hi {
            return;
        }
        let t = eval(flow, files, fi, env, lo, hi, MAX_FUEL);
        let fires = if alloc {
            !t.bound.alloc_safe()
        } else {
            t.bound == Bound::Top
        };
        if !fires {
            return;
        }
        if let Some(chain) = &t.chain {
            sites.push(Site {
                file: file.path.clone(),
                line,
                fn_name: info.name.clone(),
                sink: sink.to_string(),
                chain: chain.clone(),
            });
        } else if alloc && t.bound == Bound::Top && crate::passes::panic_path::decode_fn(&info.name)
        {
            // No attacker chain, but a decode-path allocation sized by a
            // parameter nothing in the workspace bounds.
            let self_mask = if info.params.first().map(String::as_str) == Some("self") {
                1u64
            } else {
                0
            };
            if t.params & !self_mask != 0 {
                let params: Vec<String> = info
                    .params
                    .iter()
                    .enumerate()
                    .filter(|(p, name)| {
                        *p < 64 && t.params & (1u64 << p) != 0 && name.as_str() != "self"
                    })
                    .map(|(_, name)| name.clone())
                    .collect();
                gaps.push(CapGap {
                    file: file.path.clone(),
                    line,
                    fn_name: info.name.clone(),
                    sink: sink.to_string(),
                    params,
                });
            }
        }
    };

    if let Some(name) = file.ident_at(idx) {
        let line = file.line_at(idx);
        match name {
            "with_capacity" if file.punct_at(idx + 1, '(') => {
                if let Some(cl) = match_close(file, idx + 1, file.tokens.len()) {
                    push(
                        line,
                        "`Vec::with_capacity`",
                        true,
                        idx + 2,
                        cl.saturating_sub(1),
                    );
                }
            }
            "reserve" | "reserve_exact"
                if idx > 0 && file.punct_at(idx - 1, '.') && file.punct_at(idx + 1, '(') =>
            {
                if let Some(cl) = match_close(file, idx + 1, file.tokens.len()) {
                    push(line, "`reserve`", true, idx + 2, cl.saturating_sub(1));
                }
            }
            "resize" if idx > 0 && file.punct_at(idx - 1, '.') && file.punct_at(idx + 1, '(') => {
                if let Some(cl) = match_close(file, idx + 1, file.tokens.len()) {
                    let args = split_top_commas(file, idx + 2, cl.saturating_sub(1));
                    if let Some(&(alo, ahi)) = args.first() {
                        push(line, "`resize` length", true, alo, ahi);
                    }
                }
            }
            "vec" if file.punct_at(idx + 1, '!') && file.punct_at(idx + 2, '[') => {
                if let Some(cl) = bracket_close(file, idx + 2) {
                    let mut depth = 0i64;
                    for k in idx + 3..cl {
                        match file.tokens.get(k).map(|t| &t.tok) {
                            Some(Tok::Punct('(')) | Some(Tok::Punct('[')) => depth += 1,
                            Some(Tok::Punct(')')) | Some(Tok::Punct(']')) => depth -= 1,
                            Some(Tok::Punct(';')) if depth == 0 => {
                                push(line, "`vec![_; n]` length", true, k + 1, cl - 1);
                                break;
                            }
                            _ => {}
                        }
                    }
                }
            }
            _ => {}
        }
        return;
    }

    // Slice indexing `base[expr]` with a tainted index expression.
    if file.punct_at(idx, '[') && idx > 0 {
        let indexable = match file.tokens.get(idx - 1).map(|t| &t.tok) {
            Some(Tok::Ident(name)) => !KEYWORDS.contains(&name.as_str()) && name != "vec",
            Some(Tok::Punct(')')) | Some(Tok::Punct(']')) => true,
            _ => false,
        };
        if indexable {
            if let Some(cl) = bracket_close(file, idx) {
                if idx + 1 < cl {
                    push(file.line_at(idx), "slice index", false, idx + 1, cl - 1);
                }
            }
        }
    }
}

/// Matching `]` for the `[` at `open`.
fn bracket_close(file: &SourceFile, open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for k in open..file.tokens.len() {
        if file.punct_at(k, '[') {
            depth += 1;
        } else if file.punct_at(k, ']') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

#[cfg(test)]
mod unit {
    use super::*;

    fn flow_of(sources: &[(&str, &str)]) -> Dataflow {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(p, s)| SourceFile::parse(p.to_string(), s))
            .collect();
        Dataflow::build(&files)
    }

    fn sites(path: &str, src: &str) -> Vec<Site> {
        flow_of(&[(path, src)]).sites
    }

    #[test]
    fn announced_length_reaches_with_capacity() {
        let s = sites(
            "crates/x/src/codec.rs",
            "fn decode_items(input: &mut &[u8]) { let len = decode_len(input); \
             let v: Vec<u8> = Vec::with_capacity(len); }",
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].sink, "`Vec::with_capacity`");
        assert!(s[0].chain[0].contains("announced length via `decode_len`"));
    }

    #[test]
    fn min_against_constant_sanitizes() {
        let s = sites(
            "crates/x/src/codec.rs",
            "fn decode_items(input: &mut &[u8]) { let len = decode_len(input); \
             let v: Vec<u8> = Vec::with_capacity(len.min(CHUNK)); }",
        );
        assert!(s.is_empty());
    }

    #[test]
    fn min_against_variable_does_not_sanitize() {
        let s = sites(
            "crates/x/src/codec.rs",
            "fn decode_items(input: &mut &[u8]) { let len = decode_len(input); let other = len; \
             let v: Vec<u8> = Vec::with_capacity(len.min(other)); }",
        );
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn taint_flows_through_intra_crate_summaries() {
        let s = sites(
            "crates/x/src/codec.rs",
            "fn read_len(input: &mut &[u8]) -> usize { decode_len(input) } \
             fn decode_seq(input: &mut &[u8]) { let n = read_len(input); \
             let v: Vec<u64> = Vec::with_capacity(n); }",
        );
        assert!(!s.is_empty());
        assert!(s
            .iter()
            .any(|x| x.chain.iter().any(|h| h.contains("returned by `read_len`"))));
    }

    #[test]
    fn signed_param_fields_root_taint() {
        let s = sites(
            "crates/x/src/auditor.rs",
            "fn observe_thing(&mut self, bundle: &ShardBundle) { \
             let shard_count = bundle.shards.shard_count(); \
             let v = vec![0usize; shard_count]; }",
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].sink, "`vec![_; n]` length");
        assert!(s[0].chain[0].contains("unverified `ShardBundle`"));
    }

    #[test]
    fn loop_bounds_and_indexing_fire() {
        let s = sites(
            "crates/x/src/codec.rs",
            "fn decode_all(input: &mut &[u8]) { let n = decode_len(input); \
             for _ in 0..n { step(); } let x = table[n]; }",
        );
        let sinks: Vec<&str> = s.iter().map(|x| x.sink.as_str()).collect();
        assert!(sinks.contains(&"loop bound"));
        assert!(sinks.contains(&"slice index"));
    }

    #[test]
    fn own_state_lengths_are_clean() {
        let s = sites(
            "crates/x/src/server.rs",
            "fn snapshot(&self) { let v: Vec<u8> = Vec::with_capacity(self.items.len() + 1); }",
        );
        assert!(s.is_empty());
    }

    #[test]
    fn clean_summary_does_not_leak_argument_taint() {
        // `cap` sanitizes; callers must not re-taint through the arg union.
        let s = sites(
            "crates/x/src/codec.rs",
            "fn cap(n: usize) -> usize { n.min(MAX) } \
             fn decode_items(input: &mut &[u8]) { let len = decode_len(input); \
             let v: Vec<u8> = Vec::with_capacity(cap(len)); }",
        );
        assert!(s.is_empty());
    }

    #[test]
    fn chains_are_deterministic_across_runs() {
        let src = "fn decode_pair(input: &mut &[u8]) { let a = decode_len(input); \
             let b = decode_len(input); let n = a + b; let v: Vec<u8> = Vec::with_capacity(n); }";
        let a = sites("crates/x/src/codec.rs", src);
        let b = sites("crates/x/src/codec.rs", src);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn input_length_guard_silences_loop_but_not_alloc() {
        // The PR 2 shape: `if len > input.len() { return Err }` bounds the
        // iteration (each step consumes input) but NOT the allocation
        // (`with_capacity` multiplies by the element size).
        let src = "fn decode_seq(input: &mut &[u8]) -> Result<(), E> { \
             let len = decode_len(input); \
             if len > input.len() { return Err(E::Overflow); } \
             for _ in 0..len { step(); } \
             let v: Vec<u64> = Vec::with_capacity(len); Ok(()) }";
        let s = sites("crates/x/src/codec.rs", src);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].sink, "`Vec::with_capacity`");
    }

    #[test]
    fn constant_guard_silences_allocation_too() {
        let src = "fn decode_seq(input: &mut &[u8]) -> Result<(), E> { \
             let len = decode_len(input); \
             if len > MAX_LEN { return Err(E::Overflow); } \
             for _ in 0..len { step(); } \
             let v: Vec<u64> = Vec::with_capacity(len); Ok(()) }";
        assert!(sites("crates/x/src/codec.rs", src).is_empty());
    }

    #[test]
    fn conjunction_guards_prove_nothing() {
        // `len > CAP && mode == Strict { return }` — a lenient mode falls
        // through with len unbounded.
        let src = "fn decode_seq(input: &mut &[u8]) -> Result<(), E> { \
             let len = decode_len(input); \
             if len > MAX_LEN && strict { return Err(E::Overflow); } \
             let v: Vec<u64> = Vec::with_capacity(len); Ok(()) }";
        assert_eq!(sites("crates/x/src/codec.rs", src).len(), 1);
    }

    #[test]
    fn guard_applies_only_below_its_block() {
        // The sink *inside* the early-return block sees the unbounded
        // value; only the fall-through path is bounded.
        let src = "fn decode_seq(input: &mut &[u8]) -> Result<(), E> { \
             let len = decode_len(input); \
             if len > MAX_LEN { let v: Vec<u64> = Vec::with_capacity(len); return Err(E::Big); } \
             Ok(()) }";
        assert_eq!(sites("crates/x/src/codec.rs", src).len(), 1);
    }

    #[test]
    fn argument_taint_fires_inside_the_callee() {
        let s = sites(
            "crates/x/src/codec.rs",
            "fn grow(n: usize) { let v: Vec<u8> = Vec::with_capacity(n); } \
             fn decode_items(input: &mut &[u8]) { let len = decode_len(input); grow(len); }",
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].fn_name, "grow");
        assert!(s[0]
            .chain
            .iter()
            .any(|h| h.contains("passed into `grow` as `n`")));
    }

    #[test]
    fn cross_crate_argument_taint_carries_the_full_chain() {
        let flow = flow_of(&[
            (
                "crates/log/src/table.rs",
                "pub fn grow_table(n: usize) { let v: Vec<u64> = Vec::with_capacity(n); }",
            ),
            (
                "crates/wire/src/codec.rs",
                "use distrust_log::table::grow_table;\n\
                 fn decode_items(input: &mut &[u8]) { let len = decode_len(input); \
                 grow_table(len); }",
            ),
        ]);
        assert_eq!(flow.sites.len(), 1);
        let site = &flow.sites[0];
        assert_eq!(site.file, "crates/log/src/table.rs");
        assert!(site.chain[0].contains("crates/wire/src/codec.rs"));
        assert!(site
            .chain
            .iter()
            .any(|h| h.contains("passed into `grow_table`")));
    }

    #[test]
    fn capped_callers_bound_the_callee_parameter() {
        // Every call site caps the argument, so the callee's internal
        // allocation is provably bounded: no site, no cap gap.
        let flow = flow_of(&[(
            "crates/x/src/codec.rs",
            "fn grow(n: usize) { let v: Vec<u8> = Vec::with_capacity(n); } \
             fn setup() { grow(16); } fn setup_big() { grow(MAX_BATCH); }",
        )]);
        assert!(flow.sites.is_empty());
        assert!(flow.cap_gaps.is_empty());
    }

    #[test]
    fn unbounded_decode_param_is_a_cap_gap() {
        // A decode-path allocation sized by a parameter with no caller
        // and no guard: not a taint site (no chain), but a cap gap.
        let flow = flow_of(&[(
            "crates/x/src/codec.rs",
            "pub fn decode_table(input: &mut &[u8], slots: usize) { \
             let v: Vec<u64> = Vec::with_capacity(slots); }",
        )]);
        assert_eq!(flow.cap_gaps.len(), 1);
        assert_eq!(flow.cap_gaps[0].fn_name, "decode_table");
        assert_eq!(flow.cap_gaps[0].params, vec!["slots".to_string()]);
    }

    #[test]
    fn guarded_decode_param_is_not_a_cap_gap() {
        let flow = flow_of(&[(
            "crates/x/src/codec.rs",
            "pub fn decode_table(input: &mut &[u8], slots: usize) { \
             if slots > MAX_SLOTS { return; } \
             let v: Vec<u64> = Vec::with_capacity(slots); }",
        )]);
        assert!(flow.cap_gaps.is_empty());
    }

    #[test]
    fn bound_lattice_joins_upward() {
        assert_eq!(Bound::Const(4).join(Bound::Const(1024)), Bound::Const(1024));
        assert_eq!(Bound::Const(u128::MAX).join(Bound::Mem), Bound::Mem);
        assert_eq!(Bound::Mem.join(Bound::Input), Bound::Input);
        assert_eq!(Bound::Input.join(Bound::Top), Bound::Top);
        assert_eq!(Bound::Top.join(Bound::Const(0)), Bound::Top);
    }

    #[test]
    fn collection_length_allocations_are_mem_bounded() {
        // `with_capacity(leaf.len() + 32)` duplicates memory already
        // committed — not an amplification, even when `leaf` itself is
        // attacker-shaped bytes passed across a crate seam.
        let flow = flow_of(&[
            (
                "crates/log/src/store.rs",
                "pub fn append_record(leaf: &[u8]) { \
                 let mut buf: Vec<u8> = Vec::with_capacity(leaf.len() + 32); \
                 buf.extend_from_slice(leaf); }",
            ),
            (
                "crates/wire/src/codec.rs",
                "use distrust_log::store::append_record;\n\
                 fn decode_items(input: &mut &[u8]) { let body = decode(input); \
                 append_record(body); }",
            ),
        ]);
        assert!(flow.sites.is_empty());
        assert!(flow.cap_gaps.is_empty());
    }

    #[test]
    fn closure_arguments_do_not_split_into_phantom_args() {
        // The commas inside a closure body must not be read as extra
        // call arguments mapping taint onto later parameters.
        let s = sites(
            "crates/x/src/host.rs",
            "fn serve(service: F, threads: usize) { \
             let v: Vec<u8> = Vec::with_capacity(threads); } \
             fn decode_boot(input: &mut &[u8]) { let cfg = decode(input); \
             serve(move || { handle(cfg, cfg) }, 4); }",
        );
        assert!(s.is_empty());
    }
}
