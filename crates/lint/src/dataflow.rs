//! Interprocedural taint dataflow over the lexed token stream and the
//! intra-crate call graph: the substrate for the `taint-alloc` pass.
//!
//! The analysis is deliberately lexical and over-approximate, in the same
//! spirit as the other passes:
//!
//! * **Sources** root a taint chain: announced lengths (`decode_len`),
//!   wire-decoded values (`decode`/`from_wire`/`read_frame` results), the
//!   byte-slice parameters of decode entry points, and parameters typed
//!   with a not-yet-verified signed object (`SignedCheckpoint`, `Quote`,
//!   `ShardBundle`, …).
//! * **Propagation** is a linear union: a let-binding, arithmetic
//!   expression, field access or method chain carries the taint of every
//!   identifier it mentions, and `.len()` deliberately propagates —
//!   the length of an attacker-shaped collection is attacker-shaped
//!   (element-size amplification is exactly the PR 2 length-bomb class).
//!   Calls that resolve intra-crate use a fixpoint param→return summary,
//!   so the chain survives through helpers like `decode_seq`.
//! * **Sanitizers** clear a whole expression: a bounds-checked
//!   `try_into`, an explicit `.min(CONSTANT)` cap, or passage through a
//!   `verify*` call. Plain `if len > MAX { return }` guards do **not**
//!   sanitize — the PR 2 bomb sat right next to such a guard; the
//!   analyzable fix is a structural `.min(CAP)` on the allocation size.
//!
//! Known blind spots (documented in LINTS.md): rooted taint entering a
//! callee through a parameter is not re-attributed to sinks inside the
//! callee (summaries propagate returns, not calling contexts), and
//! `match`-arm bindings are not tracked.

use crate::lexer::Tok;
use crate::scan::{FnDef, SourceFile};
use std::collections::BTreeMap;

/// Longest source→sink chain retained in a report line.
const MAX_CHAIN: usize = 6;
/// Fixpoint iteration cap (the lattice is finite; this is a backstop).
const MAX_ITERS: usize = 12;
/// Recursion fuel for evaluating call-argument subexpressions.
const MAX_FUEL: usize = 8;

/// Calls whose result is rooted attacker-shaped data, with the root text.
fn source_call(name: &str) -> Option<&'static str> {
    match name {
        "decode_len" => Some("announced length via `decode_len`"),
        "decode" => Some("wire-decoded value via `decode`"),
        "from_wire" => Some("wire-decoded value via `from_wire`"),
        "read_frame" => Some("wire frame via `read_frame`"),
        // Segment-codec entry points: a disk image is attacker-shaped
        // until its CRCs check out, and even then lengths/offsets it
        // announces must be bounds-checked before they size anything.
        "decode_segment_header" => Some("segment header via `decode_segment_header`"),
        "decode_record" => Some("segment record via `decode_record`"),
        "decode_leaf_payload" => Some("leaf payload via `decode_leaf_payload`"),
        "decode_checkpoint_payload" => Some("checkpoint payload via `decode_checkpoint_payload`"),
        "decode_trailer" => Some("sealed-trailer offset via `decode_trailer`"),
        "scan_segment" => Some("scanned segment via `scan_segment`"),
        "scan_meta" => Some("scanned meta log via `scan_meta`"),
        _ => None,
    }
}

/// Signed-object types whose fields are untrusted until verified.
pub const SIGNED_TYPES: [&str; 8] = [
    "SignedCheckpoint",
    "SignedRelease",
    "Quote",
    "CheckpointBundle",
    "ShardBundle",
    "ShardProofBundle",
    "AuditBundle",
    "ShardAuditBundle",
];

const KEYWORDS: [&str; 30] = [
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "let", "fn",
    "impl", "pub", "use", "mod", "struct", "enum", "trait", "where", "as", "in", "ref", "mut",
    "move", "dyn", "unsafe", "extern", "static", "const", "type",
];

/// Taint lattice value: which parameters flow here (bitmask) and, when the
/// value is attacker-rooted, one deterministic source chain (the
/// lexicographically least seen, so reports never flap between runs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Taint {
    pub params: u64,
    pub chain: Option<Vec<String>>,
}

impl Taint {
    fn rooted(desc: String) -> Taint {
        Taint {
            params: 0,
            chain: Some(vec![desc]),
        }
    }

    fn is_bottom(&self) -> bool {
        self.params == 0 && self.chain.is_none()
    }

    fn merge(&mut self, other: &Taint) {
        self.params |= other.params;
        match (&self.chain, &other.chain) {
            (None, Some(_)) => self.chain = other.chain.clone(),
            (Some(a), Some(b)) if b < a => self.chain = other.chain.clone(),
            _ => {}
        }
    }
}

fn with_hop(chain: &[String], hop: String) -> Vec<String> {
    let mut out = chain.to_vec();
    if out.len() < MAX_CHAIN {
        out.push(hop);
    }
    out
}

/// A tainted value reaching an allocation/index/loop-bound sink.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Site {
    pub file: String,
    pub line: u32,
    pub fn_name: String,
    /// Human label of the sink, e.g. "`Vec::with_capacity`".
    pub sink: String,
    /// Deterministic source→sink chain, root first.
    pub chain: Vec<String>,
}

struct FnInfo {
    name: String,
    crate_name: String,
    file_idx: usize,
    body: (usize, usize),
    /// Parameter names in order (`self` included when present).
    params: Vec<String>,
    /// (param index, root description) for attacker-rooted parameters.
    seeds: Vec<(usize, String)>,
}

pub struct Dataflow {
    fns: Vec<FnInfo>,
    by_name: BTreeMap<(String, String), Vec<usize>>,
    summaries: Vec<Taint>,
    pub sites: Vec<Site>,
}

impl Dataflow {
    pub fn build(files: &[SourceFile]) -> Dataflow {
        let mut fns = Vec::new();
        for (file_idx, file) in files.iter().enumerate() {
            for def in &file.fns {
                if def.in_test {
                    continue;
                }
                fns.push(fn_info(file, file_idx, def));
            }
        }
        let mut by_name: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name
                .entry((f.crate_name.clone(), f.name.clone()))
                .or_default()
                .push(i);
        }
        let mut flow = Dataflow {
            summaries: vec![Taint::default(); fns.len()],
            fns,
            by_name,
            sites: Vec::new(),
        };
        for _ in 0..MAX_ITERS {
            let mut changed = false;
            for i in 0..flow.fns.len() {
                let ret = walk_fn(&flow, files, i, None);
                let mut next = flow.summaries[i].clone();
                next.merge(&ret);
                if next != flow.summaries[i] {
                    flow.summaries[i] = next;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let mut sites = Vec::new();
        for i in 0..flow.fns.len() {
            walk_fn(&flow, files, i, Some(&mut sites));
        }
        sites.sort();
        sites.dedup();
        flow.sites = sites;
        flow
    }

    /// Callee candidates, intra-crate, with the model's opaque names.
    fn resolve(&self, caller_crate: &str, name: &str) -> &[usize] {
        if name == "drop" || name == "shutdown" || name.ends_with("_timeout") {
            return &[];
        }
        self.by_name
            .get(&(caller_crate.to_string(), name.to_string()))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }
}

/// Extracts signature facts for one function definition.
fn fn_info(file: &SourceFile, file_idx: usize, def: &FnDef) -> FnInfo {
    let mut params = Vec::new();
    let mut seeds = Vec::new();
    if let Some((sig_open, sig_close)) = signature_parens(file, def) {
        for (lo, hi) in split_top_commas(file, sig_open + 1, sig_close.saturating_sub(1)) {
            let idx = params.len();
            let (name, ty_from) = param_name(file, lo, hi);
            let ty_has = |want: &dyn Fn(&str) -> bool| -> Option<String> {
                (ty_from..=hi)
                    .find_map(|k| file.ident_at(k).filter(|n| want(n)).map(|n| n.to_string()))
            };
            if let Some(ty) = ty_has(&|n: &str| SIGNED_TYPES.contains(&n)) {
                seeds.push((
                    idx,
                    format!(
                        "unverified `{ty}` (param `{name}` of `{}`) at {}:{}",
                        def.name, file.path, def.line
                    ),
                ));
            } else if crate::passes::panic_path::decode_fn(&def.name)
                && ty_has(&|n: &str| n == "u8").is_some()
            {
                seeds.push((
                    idx,
                    format!(
                        "wire bytes `{name}` of `{}` at {}:{}",
                        def.name, file.path, def.line
                    ),
                ));
            }
            params.push(name);
        }
    }
    FnInfo {
        name: def.name.clone(),
        crate_name: file.crate_name.clone(),
        file_idx,
        body: def.body,
        params,
        seeds,
    }
}

/// Token range of the parameter list's parentheses for `def`.
fn signature_parens(file: &SourceFile, def: &FnDef) -> Option<(usize, usize)> {
    // Find the `fn` keyword introducing this definition, nearest first.
    let fn_kw = (0..def.body.0)
        .rev()
        .find(|&k| file.ident_at(k) == Some("fn") && file.ident_at(k + 1) == Some(&def.name))?;
    let open = (fn_kw + 2..def.body.0).find(|&k| file.punct_at(k, '('))?;
    let mut depth = 0i64;
    for k in open..def.body.0 {
        if file.punct_at(k, '(') {
            depth += 1;
        } else if file.punct_at(k, ')') {
            depth -= 1;
            if depth == 0 {
                return Some((open, k));
            }
        }
    }
    None
}

/// Splits `lo..=hi` on commas at paren/bracket depth 0.
fn split_top_commas(file: &SourceFile, lo: usize, hi: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    if lo > hi {
        return out;
    }
    let mut depth = 0i64;
    let mut start = lo;
    for k in lo..=hi {
        match file.tokens.get(k).map(|t| &t.tok) {
            Some(Tok::Punct('(')) | Some(Tok::Punct('[')) => depth += 1,
            Some(Tok::Punct(')')) | Some(Tok::Punct(']')) => depth -= 1,
            Some(Tok::Punct(',')) if depth == 0 => {
                if start < k {
                    out.push((start, k - 1));
                }
                start = k + 1;
            }
            _ => {}
        }
    }
    if start <= hi {
        out.push((start, hi));
    }
    out
}

/// Name of the parameter in `lo..=hi`, and where its type tokens begin.
fn param_name(file: &SourceFile, lo: usize, hi: usize) -> (String, usize) {
    let mut k = lo;
    while k <= hi {
        match file.ident_at(k) {
            Some("mut") | Some("ref") => k += 1,
            Some("self") => return ("self".to_string(), hi + 1),
            Some(name) => {
                let name = name.to_string();
                let ty_from = (k + 1..=hi)
                    .find(|&c| file.punct_at(c, ':'))
                    .map(|c| c + 1)
                    .unwrap_or(hi + 1);
                return (name, ty_from);
            }
            None => k += 1,
        }
    }
    ("<pat>".to_string(), lo)
}

/// Walks one function body: returns the return-value taint and, when
/// `sites` is provided, records tainted sink reaches.
fn walk_fn(
    flow: &Dataflow,
    files: &[SourceFile],
    fi: usize,
    mut sites: Option<&mut Vec<Site>>,
) -> Taint {
    let info = &flow.fns[fi];
    let file = &files[info.file_idx];
    let (open, close) = info.body;
    let body_depth = file.depth[open];
    let nested: Vec<(usize, usize)> = file
        .fns
        .iter()
        .filter(|g| g.body.0 > open && g.body.1 < close)
        .map(|g| g.body)
        .collect();

    let mut env: BTreeMap<String, Taint> = BTreeMap::new();
    for (i, p) in info.params.iter().enumerate() {
        env.insert(
            p.clone(),
            Taint {
                params: 1u64 << i.min(63),
                chain: None,
            },
        );
    }
    for (i, desc) in &info.seeds {
        if let Some(t) = env.get_mut(&info.params[*i]) {
            t.chain = Some(vec![desc.clone()]);
        }
    }

    let mut ret = Taint::default();
    let mut last_semi = open;
    let mut idx = open + 1;
    while idx < close {
        if let Some(&(_, nend)) = nested.iter().find(|(ns, _)| *ns == idx) {
            idx = nend + 1;
            continue;
        }
        if file.punct_at(idx, ';') && file.depth[idx] == body_depth {
            last_semi = idx;
        }

        // -- structure: bindings, loops, returns ------------------------
        if let Some(name) = file.ident_at(idx) {
            match name {
                "let" => {
                    let d = file.depth[idx];
                    if let Some(eq) = find_assign_eq(file, idx + 1, close) {
                        let term = (eq + 1..close)
                            .find(|&k| file.punct_at(k, ';') && file.depth[k] == d)
                            .unwrap_or(close);
                        let t = eval(flow, files, fi, &env, eq + 1, term - 1, MAX_FUEL);
                        // Strong update: a shadowing `let` replaces the
                        // prior taint, so `let n = n.min(CAP);` launders.
                        for b in pattern_binds(file, idx + 1, eq - 1) {
                            env.insert(b, t.clone());
                        }
                    }
                }
                "for" => {
                    let d = file.depth[idx];
                    let in_kw = (idx + 1..close).find(|&k| file.ident_at(k) == Some("in"));
                    let body_open =
                        (idx + 1..close).find(|&k| file.punct_at(k, '{') && file.depth[k] == d + 1);
                    if let (Some(in_kw), Some(body_open)) = (in_kw, body_open) {
                        if in_kw < body_open {
                            let t = eval(flow, files, fi, &env, in_kw + 1, body_open - 1, MAX_FUEL);
                            let has_range = (in_kw + 1..body_open - 1)
                                .any(|k| file.punct_at(k, '.') && file.punct_at(k + 1, '.'));
                            if has_range {
                                if let (Some(chain), Some(sites)) = (&t.chain, sites.as_deref_mut())
                                {
                                    sites.push(Site {
                                        file: file.path.clone(),
                                        line: file.line_at(idx),
                                        fn_name: info.name.clone(),
                                        sink: "loop bound".to_string(),
                                        chain: chain.clone(),
                                    });
                                }
                            }
                            for b in pattern_binds(file, idx + 1, in_kw - 1) {
                                env.entry(b).or_default().merge(&t);
                            }
                        }
                    }
                }
                "return" => {
                    let d = file.depth[idx];
                    let term = (idx + 1..close)
                        .find(|&k| file.punct_at(k, ';') && file.depth[k] == d)
                        .unwrap_or(close);
                    if idx + 1 < term {
                        ret.merge(&eval(flow, files, fi, &env, idx + 1, term - 1, MAX_FUEL));
                    }
                }
                _ => {}
            }
        }

        // -- plain reassignment `x = expr` / `x += expr` ----------------
        if file.punct_at(idx, '=')
            && !file.punct_at(idx + 1, '=')
            && !matches!(
                file.tokens.get(idx.saturating_sub(1)).map(|t| &t.tok),
                Some(Tok::Punct('='))
                    | Some(Tok::Punct('<'))
                    | Some(Tok::Punct('>'))
                    | Some(Tok::Punct('!'))
            )
            && !file.punct_at(idx + 1, '>')
        {
            let (lhs_at, compound) = match file.tokens.get(idx.saturating_sub(1)).map(|t| &t.tok) {
                Some(Tok::Ident(_)) => (idx - 1, false),
                Some(Tok::Punct(op)) if "+-*/%&|^".contains(*op) => (idx.saturating_sub(2), true),
                _ => (usize::MAX, false),
            };
            if lhs_at != usize::MAX {
                if let Some(lhs) = file.ident_at(lhs_at) {
                    let is_field = lhs_at > 0 && file.punct_at(lhs_at - 1, '.');
                    let is_let = lhs_at > 0
                        && matches!(file.ident_at(lhs_at - 1), Some("let") | Some("mut"));
                    if !is_field && !is_let && !KEYWORDS.contains(&lhs) {
                        let d = file.depth[idx];
                        let term = (idx + 1..close)
                            .find(|&k| file.punct_at(k, ';') && file.depth[k] == d)
                            .unwrap_or(close);
                        if idx + 1 < term {
                            let t = eval(flow, files, fi, &env, idx + 1, term - 1, MAX_FUEL);
                            if compound {
                                // `x += expr` keeps the old value as an
                                // operand, so the prior taint survives.
                                env.entry(lhs.to_string()).or_default().merge(&t);
                            } else {
                                env.insert(lhs.to_string(), t);
                            }
                        }
                    }
                }
            }
        }

        // -- sinks ------------------------------------------------------
        if let Some(sites) = sites.as_deref_mut() {
            check_sink(flow, files, fi, &env, idx, sites);
        }
        idx += 1;
    }

    // Trailing expression (implicit return).
    if last_semi + 1 < close {
        ret.merge(&eval(
            flow,
            files,
            fi,
            &env,
            last_semi + 1,
            close - 1,
            MAX_FUEL,
        ));
    }
    ret
}

/// First `=` that is a let-binding operator (not `==`, `=>`, `<=`, `!=`)
/// scanning from `from`. A preceding `>` is allowed: between a `let` and
/// its `=` it can only close a generic type annotation (`let x: Vec<u8>
/// = …`), never a comparison.
fn find_assign_eq(file: &SourceFile, from: usize, close: usize) -> Option<usize> {
    (from..close).find(|&k| {
        file.punct_at(k, '=')
            && !file.punct_at(k + 1, '=')
            && !file.punct_at(k + 1, '>')
            && !matches!(
                file.tokens.get(k.saturating_sub(1)).map(|t| &t.tok),
                Some(Tok::Punct('=')) | Some(Tok::Punct('<')) | Some(Tok::Punct('!'))
            )
    })
}

/// Lowercase identifiers bound by a pattern in `lo..=hi` (stops at a
/// type-annotation `:` at paren depth 0; skips path segments).
fn pattern_binds(file: &SourceFile, lo: usize, hi: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i64;
    let mut k = lo;
    while k <= hi {
        match file.tokens.get(k).map(|t| &t.tok) {
            Some(Tok::Punct('(')) | Some(Tok::Punct('[')) | Some(Tok::Punct('{')) => depth += 1,
            Some(Tok::Punct(')')) | Some(Tok::Punct(']')) | Some(Tok::Punct('}')) => depth -= 1,
            Some(Tok::Punct(':')) => {
                if file.punct_at(k + 1, ':') {
                    k += 2; // path `::` — skip, next ident is a segment
                    continue;
                }
                if depth == 0 {
                    break; // type annotation
                }
            }
            Some(Tok::Ident(name)) => {
                let lower = name
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_lowercase() || c == '_');
                let path_seg = k < hi && file.punct_at(k + 1, ':') && file.punct_at(k + 2, ':');
                if lower && !path_seg && !KEYWORDS.contains(&name.as_str()) && name != "self" {
                    out.push(name.clone());
                }
            }
            _ => {}
        }
        k += 1;
    }
    out
}

/// True when `lo..=hi` passes through a recognized sanitizer: a
/// `try_into` conversion, a `.min(CONSTANT)` cap, or a `verify*` call.
fn sanitized(file: &SourceFile, lo: usize, hi: usize) -> bool {
    for k in lo..=hi {
        if let Some(name) = file.ident_at(k) {
            if name == "try_into" {
                return true;
            }
            if name.starts_with("verify") && file.punct_at(k + 1, '(') {
                return true;
            }
            if name == "min" && k > 0 && file.punct_at(k - 1, '.') && file.punct_at(k + 1, '(') {
                if let Some(cl) = match_close(file, k + 1, hi + 1) {
                    let constish = (k + 2..cl).all(|a| match file.tokens.get(a).map(|t| &t.tok) {
                        Some(Tok::Number(_)) => true,
                        Some(Tok::Ident(n)) => n
                            .chars()
                            .all(|c| c.is_uppercase() || c == '_' || c.is_ascii_digit()),
                        Some(Tok::Punct(':')) | Some(Tok::Punct('(')) | Some(Tok::Punct(')')) => {
                            true
                        }
                        _ => false,
                    });
                    if k + 2 < cl && constish {
                        return true;
                    }
                }
            }
        }
    }
    false
}

/// Matching `)` for the `(` at `open`, bounded by `limit`.
fn match_close(file: &SourceFile, open: usize, limit: usize) -> Option<usize> {
    let mut depth = 0i64;
    for k in open..limit.min(file.tokens.len()) {
        if file.punct_at(k, '(') {
            depth += 1;
        } else if file.punct_at(k, ')') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Taint of the expression spanning tokens `lo..=hi`: the union of every
/// environment-tainted identifier, rooted source call, and resolved
/// callee summary in the range. Sanitizers clear the whole range.
fn eval(
    flow: &Dataflow,
    files: &[SourceFile],
    fi: usize,
    env: &BTreeMap<String, Taint>,
    lo: usize,
    hi: usize,
    fuel: usize,
) -> Taint {
    let info = &flow.fns[fi];
    let file = &files[info.file_idx];
    if lo > hi || fuel == 0 {
        return Taint::default();
    }
    if sanitized(file, lo, hi) {
        return Taint::default();
    }
    let mut out = Taint::default();
    let mut k = lo;
    while k <= hi {
        let Some(name) = file.ident_at(k) else {
            k += 1;
            continue;
        };
        let is_call = file.punct_at(k + 1, '(') && !KEYWORDS.contains(&name);
        // A `.` directly before the ident marks a field/method name —
        // unless it is the second dot of a range (`0..n`), where the
        // ident is a real operand.
        let after_dot = k > 0 && file.punct_at(k - 1, '.') && !(k > 1 && file.punct_at(k - 2, '.'));
        let is_field = after_dot && !is_call;
        if is_field {
            k += 1;
            continue;
        }
        if is_call {
            let line = file.line_at(k);
            if let Some(desc) = source_call(name) {
                out.merge(&Taint::rooted(format!("{desc} at {}:{line}", file.path)));
            }
            let callees = flow.resolve(&info.crate_name, name);
            if !callees.is_empty() {
                let close = match_close(file, k + 1, hi + 1).unwrap_or(hi);
                let args = split_top_commas(file, k + 2, close.saturating_sub(1));
                let is_method = k > 0 && file.punct_at(k - 1, '.');
                for &j in callees {
                    let s = &flow.summaries[j];
                    if s.is_bottom() {
                        continue;
                    }
                    if let Some(chain) = &s.chain {
                        let mut t = Taint {
                            params: 0,
                            chain: Some(with_hop(
                                chain,
                                format!("returned by `{name}` at {}:{line}", file.path),
                            )),
                        };
                        t.params = 0;
                        out.merge(&t);
                    }
                    // Param→return flow: evaluate only the flowing args.
                    let callee = &flow.fns[j];
                    let skip_self =
                        is_method && callee.params.first().map(String::as_str) == Some("self");
                    for p in 0..callee.params.len().min(63) {
                        if s.params & (1u64 << p) == 0 {
                            continue;
                        }
                        let a = if skip_self {
                            if p == 0 {
                                continue; // receiver handled by outer scan
                            }
                            p - 1
                        } else {
                            p
                        };
                        if let Some(&(alo, ahi)) = args.get(a) {
                            let t = eval(flow, files, fi, env, alo, ahi, fuel - 1);
                            if let Some(chain) = &t.chain {
                                let mut routed = t.clone();
                                routed.chain = Some(with_hop(
                                    chain,
                                    format!("through `{name}` at {}:{line}", file.path),
                                ));
                                out.merge(&routed);
                            } else {
                                out.merge(&t);
                            }
                        }
                    }
                }
                // Skip the argument range: flow through resolved callees
                // is governed by their summaries, not a blanket union.
                k = close + 1;
                continue;
            }
            // Unresolved call (std/cross-crate): fall through and union
            // the arguments conservatively.
            k += 1;
            continue;
        }
        if let Some(t) = env.get(name) {
            out.merge(t);
        }
        k += 1;
    }
    out
}

/// Checks whether token `idx` is an allocation/index sink and records a
/// site when its size expression carries rooted taint.
fn check_sink(
    flow: &Dataflow,
    files: &[SourceFile],
    fi: usize,
    env: &BTreeMap<String, Taint>,
    idx: usize,
    sites: &mut Vec<Site>,
) {
    let info = &flow.fns[fi];
    let file = &files[info.file_idx];
    let mut push = |line: u32, sink: &str, lo: usize, hi: usize| {
        if lo > hi {
            return;
        }
        let t = eval(flow, files, fi, env, lo, hi, MAX_FUEL);
        if let Some(chain) = t.chain {
            sites.push(Site {
                file: file.path.clone(),
                line,
                fn_name: info.name.clone(),
                sink: sink.to_string(),
                chain,
            });
        }
    };

    if let Some(name) = file.ident_at(idx) {
        let line = file.line_at(idx);
        match name {
            "with_capacity" if file.punct_at(idx + 1, '(') => {
                if let Some(cl) = match_close(file, idx + 1, file.tokens.len()) {
                    push(line, "`Vec::with_capacity`", idx + 2, cl.saturating_sub(1));
                }
            }
            "reserve" | "reserve_exact"
                if idx > 0 && file.punct_at(idx - 1, '.') && file.punct_at(idx + 1, '(') =>
            {
                if let Some(cl) = match_close(file, idx + 1, file.tokens.len()) {
                    push(line, "`reserve`", idx + 2, cl.saturating_sub(1));
                }
            }
            "resize" if idx > 0 && file.punct_at(idx - 1, '.') && file.punct_at(idx + 1, '(') => {
                if let Some(cl) = match_close(file, idx + 1, file.tokens.len()) {
                    let args = split_top_commas(file, idx + 2, cl.saturating_sub(1));
                    if let Some(&(alo, ahi)) = args.first() {
                        push(line, "`resize` length", alo, ahi);
                    }
                }
            }
            "vec" if file.punct_at(idx + 1, '!') && file.punct_at(idx + 2, '[') => {
                if let Some(cl) = bracket_close(file, idx + 2) {
                    let mut depth = 0i64;
                    for k in idx + 3..cl {
                        match file.tokens.get(k).map(|t| &t.tok) {
                            Some(Tok::Punct('(')) | Some(Tok::Punct('[')) => depth += 1,
                            Some(Tok::Punct(')')) | Some(Tok::Punct(']')) => depth -= 1,
                            Some(Tok::Punct(';')) if depth == 0 => {
                                push(line, "`vec![_; n]` length", k + 1, cl - 1);
                                break;
                            }
                            _ => {}
                        }
                    }
                }
            }
            _ => {}
        }
        return;
    }

    // Slice indexing `base[expr]` with a tainted index expression.
    if file.punct_at(idx, '[') && idx > 0 {
        let indexable = match file.tokens.get(idx - 1).map(|t| &t.tok) {
            Some(Tok::Ident(name)) => !KEYWORDS.contains(&name.as_str()) && name != "vec",
            Some(Tok::Punct(')')) | Some(Tok::Punct(']')) => true,
            _ => false,
        };
        if indexable {
            if let Some(cl) = bracket_close(file, idx) {
                if idx + 1 < cl {
                    push(file.line_at(idx), "slice index", idx + 1, cl - 1);
                }
            }
        }
    }
}

/// Matching `]` for the `[` at `open`.
fn bracket_close(file: &SourceFile, open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for k in open..file.tokens.len() {
        if file.punct_at(k, '[') {
            depth += 1;
        } else if file.punct_at(k, ']') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

#[cfg(test)]
mod unit {
    use super::*;

    fn sites(path: &str, src: &str) -> Vec<Site> {
        let file = SourceFile::parse(path.into(), src);
        Dataflow::build(&[file]).sites
    }

    #[test]
    fn announced_length_reaches_with_capacity() {
        let s = sites(
            "crates/x/src/codec.rs",
            "fn decode_items(input: &mut &[u8]) { let len = decode_len(input); \
             let v: Vec<u8> = Vec::with_capacity(len); }",
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].sink, "`Vec::with_capacity`");
        assert!(s[0].chain[0].contains("announced length via `decode_len`"));
    }

    #[test]
    fn min_against_constant_sanitizes() {
        let s = sites(
            "crates/x/src/codec.rs",
            "fn decode_items(input: &mut &[u8]) { let len = decode_len(input); \
             let v: Vec<u8> = Vec::with_capacity(len.min(CHUNK)); }",
        );
        assert!(s.is_empty());
    }

    #[test]
    fn min_against_variable_does_not_sanitize() {
        let s = sites(
            "crates/x/src/codec.rs",
            "fn decode_items(input: &mut &[u8]) { let len = decode_len(input); let other = len; \
             let v: Vec<u8> = Vec::with_capacity(len.min(other)); }",
        );
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn taint_flows_through_intra_crate_summaries() {
        let s = sites(
            "crates/x/src/codec.rs",
            "fn read_len(input: &mut &[u8]) -> usize { decode_len(input) } \
             fn decode_seq(input: &mut &[u8]) { let n = read_len(input); \
             let v: Vec<u64> = Vec::with_capacity(n); }",
        );
        assert_eq!(s.len(), 1);
        assert!(s[0]
            .chain
            .iter()
            .any(|h| h.contains("returned by `read_len`")));
    }

    #[test]
    fn signed_param_fields_root_taint() {
        let s = sites(
            "crates/x/src/auditor.rs",
            "fn observe_thing(&mut self, bundle: &ShardBundle) { \
             let shard_count = bundle.shards.shard_count(); \
             let v = vec![0usize; shard_count]; }",
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].sink, "`vec![_; n]` length");
        assert!(s[0].chain[0].contains("unverified `ShardBundle`"));
    }

    #[test]
    fn loop_bounds_and_indexing_fire() {
        let s = sites(
            "crates/x/src/codec.rs",
            "fn decode_all(input: &mut &[u8]) { let n = decode_len(input); \
             for _ in 0..n { step(); } let x = table[n]; }",
        );
        let sinks: Vec<&str> = s.iter().map(|x| x.sink.as_str()).collect();
        assert!(sinks.contains(&"loop bound"));
        assert!(sinks.contains(&"slice index"));
    }

    #[test]
    fn own_state_lengths_are_clean() {
        let s = sites(
            "crates/x/src/server.rs",
            "fn snapshot(&self) { let v: Vec<u8> = Vec::with_capacity(self.items.len() + 1); }",
        );
        assert!(s.is_empty());
    }

    #[test]
    fn clean_summary_does_not_leak_argument_taint() {
        // `cap` sanitizes; callers must not re-taint through the arg union.
        let s = sites(
            "crates/x/src/codec.rs",
            "fn cap(n: usize) -> usize { n.min(MAX) } \
             fn decode_items(input: &mut &[u8]) { let len = decode_len(input); \
             let v: Vec<u8> = Vec::with_capacity(cap(len)); }",
        );
        assert!(s.is_empty());
    }

    #[test]
    fn chains_are_deterministic_across_runs() {
        let src = "fn decode_pair(input: &mut &[u8]) { let a = decode_len(input); \
             let b = decode_len(input); let n = a + b; let v: Vec<u8> = Vec::with_capacity(n); }";
        let a = sites("crates/x/src/codec.rs", src);
        let b = sites("crates/x/src/codec.rs", src);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
    }
}
