//! Analysis configuration: which files to scan and how each pass scopes
//! itself. The binary always runs the repo default; fixture tests build
//! custom configs pointed at snippet directories.

use crate::passes::blocking;
use crate::passes::cap_consistency::CapScope;
use crate::passes::panic_path::PanicScope;
use crate::passes::protocol::ProtocolCfg;
use crate::passes::taint_alloc::TaintScope;
use crate::passes::trust_boundary::TrustScope;
use std::path::PathBuf;

#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root the scan is relative to.
    pub root: PathBuf,
    pub panic_scope: PanicScope,
    /// File scope for the taint-alloc dataflow pass.
    pub taint_scope: TaintScope,
    /// File scope for the trust-boundary pass.
    pub trust_scope: TrustScope,
    /// File scope for the cap-consistency pass.
    pub cap_scope: CapScope,
    /// Function names treated as reactor callback entry points.
    pub reactor_entries: Vec<String>,
    /// Protocol-conformance configuration; `None` skips the pass.
    pub protocol: Option<ProtocolCfg>,
}

impl Config {
    /// The configuration used on this repository.
    pub fn repo_default(root: PathBuf) -> Config {
        Config {
            root,
            panic_scope: PanicScope::RepoDefault,
            taint_scope: TaintScope::RepoDefault,
            trust_scope: TrustScope::RepoDefault,
            cap_scope: CapScope::RepoDefault,
            reactor_entries: blocking::default_entries(),
            protocol: Some(ProtocolCfg::repo_default()),
        }
    }

    /// Fixture configuration: every file is in scope for the per-file
    /// passes, the protocol pass is off unless the fixture provides files.
    pub fn fixture(root: PathBuf) -> Config {
        Config {
            root,
            panic_scope: PanicScope::AllFiles,
            taint_scope: TaintScope::AllFiles,
            trust_scope: TrustScope::AllFiles,
            cap_scope: CapScope::AllFiles,
            reactor_entries: blocking::default_entries(),
            protocol: None,
        }
    }
}
