//! Findings, allowlist application, and deterministic rendering.

use crate::scan::SourceFile;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Pass keys accepted in `lint:allow(<key>)` entries.
pub const PASS_KEYS: [&str; 7] = [
    "lock-order",
    "panic",
    "protocol",
    "blocking",
    "taint-alloc",
    "trust-boundary",
    "cap-consistency",
];

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub pass: String,
    pub message: String,
    /// The allow reason, when an allowlist entry covers this finding.
    pub allowed: Option<String>,
    /// The baseline reason, when a `lint-baseline.json` entry covers it.
    pub baselined: Option<String>,
}

impl Finding {
    pub fn new(pass: &str, file: &str, line: u32, message: String) -> Finding {
        Finding {
            file: normalize_path(file),
            line,
            pass: pass.to_string(),
            message,
            allowed: None,
            baselined: None,
        }
    }
}

/// Normalizes a finding path to a relative, `/`-separated form so
/// `--root .` and `--root $(pwd)` render byte-identical reports.
pub fn normalize_path(path: &str) -> String {
    let slashed = path.replace('\\', "/");
    let mut out = slashed.as_str();
    while let Some(rest) = out.strip_prefix("./") {
        out = rest;
    }
    out.to_string()
}

#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
}

impl Report {
    /// Applies allowlist comments: a finding is allowed when the same line
    /// or the line above carries `lint:allow(<its pass>)` *with a reason*.
    /// Entries with empty reasons or unknown pass keys become findings of
    /// their own (pass `allowlist`) and never suppress anything.
    pub fn apply_allows(&mut self, files: &[SourceFile]) {
        let allows: BTreeMap<&str, &SourceFile> =
            files.iter().map(|f| (f.path.as_str(), f)).collect();
        for finding in &mut self.findings {
            let Some(file) = allows.get(finding.file.as_str()) else {
                continue;
            };
            for line in [finding.line, finding.line.saturating_sub(1)] {
                if let Some(entries) = file.allows.get(&line) {
                    for e in entries {
                        if e.pass == finding.pass && !e.reason.is_empty() {
                            finding.allowed = Some(e.reason.clone());
                        }
                    }
                }
            }
        }
        for file in files {
            for (&line, entries) in &file.allows {
                for e in entries {
                    if !PASS_KEYS.contains(&e.pass.as_str()) {
                        self.findings.push(Finding::new(
                            "allowlist",
                            &file.path,
                            line,
                            format!("unknown pass `{}` in lint:allow entry", e.pass),
                        ));
                    } else if e.reason.is_empty() {
                        self.findings.push(Finding::new(
                            "allowlist",
                            &file.path,
                            line,
                            format!(
                                "lint:allow({}) entry has no reason; every allowance must be justified",
                                e.pass
                            ),
                        ));
                    }
                }
            }
        }
    }

    /// Final deterministic ordering; call once after all passes ran.
    pub fn finish(&mut self) {
        self.findings.sort();
        self.findings.dedup();
    }

    pub fn unallowlisted(&self) -> usize {
        self.findings.iter().filter(|f| f.allowed.is_none()).count()
    }

    /// Findings neither allowlisted in code nor tolerated by a baseline —
    /// what `--deny` gates on.
    pub fn denied(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.allowed.is_none() && f.baselined.is_none())
            .count()
    }

    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            match (&f.allowed, &f.baselined) {
                (Some(reason), _) => {
                    let _ = writeln!(
                        out,
                        "{}:{}: [{}] {} (allowed: {})",
                        f.file, f.line, f.pass, f.message, reason
                    );
                }
                (None, Some(reason)) => {
                    let _ = writeln!(
                        out,
                        "{}:{}: [{}] {} (baselined: {})",
                        f.file, f.line, f.pass, f.message, reason
                    );
                }
                (None, None) => {
                    let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.pass, f.message);
                }
            }
        }
        let denied = self.denied();
        let _ = writeln!(
            out,
            "distrust-lint: {} finding(s), {} allowlisted, {} baselined, {} denied",
            self.findings.len(),
            self.findings.iter().filter(|f| f.allowed.is_some()).count(),
            self.findings
                .iter()
                .filter(|f| f.baselined.is_some())
                .count(),
            denied
        );
        out
    }

    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"file\":{},\"line\":{},\"pass\":{},\"message\":{}",
                json_str(&f.file),
                f.line,
                json_str(&f.pass),
                json_str(&f.message)
            );
            match &f.allowed {
                Some(reason) => {
                    let _ = write!(out, ",\"allowed\":true,\"reason\":{}", json_str(reason));
                }
                None => out.push_str(",\"allowed\":false"),
            }
            match &f.baselined {
                Some(reason) => {
                    let _ = write!(
                        out,
                        ",\"baselined\":true,\"baseline_reason\":{}}}",
                        json_str(reason)
                    );
                }
                None => out.push_str(",\"baselined\":false}"),
            }
        }
        let _ = write!(
            out,
            "],\"total\":{},\"denied\":{}}}",
            self.findings.len(),
            self.denied()
        );
        out.push('\n');
        out
    }
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn allow_with_reason_suppresses_same_and_next_line() {
        let src = "// lint:allow(panic): fine here\nfn f() {}\n";
        let file = SourceFile::parse("crates/x/src/a.rs".into(), src);
        let mut report = Report::default();
        report
            .findings
            .push(Finding::new("panic", "crates/x/src/a.rs", 2, "boom".into()));
        report.apply_allows(&[file]);
        assert!(report.findings[0].allowed.is_some());
        assert_eq!(report.unallowlisted(), 0);
    }

    #[test]
    fn empty_reason_does_not_suppress_and_is_itself_a_finding() {
        let src = "// lint:allow(panic):\nfn f() {}\n";
        let file = SourceFile::parse("crates/x/src/a.rs".into(), src);
        let mut report = Report::default();
        report
            .findings
            .push(Finding::new("panic", "crates/x/src/a.rs", 2, "boom".into()));
        report.apply_allows(&[file]);
        report.finish();
        assert_eq!(report.unallowlisted(), 2);
        assert!(report.findings.iter().any(|f| f.pass == "allowlist"));
    }

    #[test]
    fn json_escapes_quotes_and_newlines() {
        assert_eq!(json_str("a\"b\nc"), "\"a\\\"b\\nc\"");
    }
}
