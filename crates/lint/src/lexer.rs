//! Minimal Rust lexer: just enough to tell code apart from comments,
//! strings, char literals and lifetimes, and to hand the passes a
//! line-numbered token stream.
//!
//! This is deliberately not a full grammar. Comment nesting, raw strings,
//! byte strings and the char-vs-lifetime ambiguity are handled exactly,
//! because getting those wrong would make every downstream pattern match
//! dishonest; everything else (operator gluing, keyword tables) is left to
//! the scanner.

/// One lexical token. String/char contents are dropped — no pass needs
/// them, and dropping them means a `".lock()"` inside a string literal can
/// never masquerade as a lock acquisition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword. Raw identifiers keep their `r#` prefix so
    /// `r#fn`/`r#match` can never collide with the keyword tables the
    /// scanner and passes match on (a stripped `r#fn` would conjure a
    /// phantom function definition out of a field name).
    Ident(String),
    /// Numeric literal, verbatim (`0u8`, `0x1f`, `1_000`, `2.5`).
    Number(String),
    /// Any string literal: plain, raw, byte, raw byte.
    Str,
    /// Any char or byte-char literal.
    Char,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// A path separator `::`, lexed as one token so path-qualified calls
    /// (`wire::codec::decode_seq`, `Type::method`) can be matched without
    /// every downstream pass re-implementing `:`-adjacency logic.
    PathSep,
    /// A single punctuation character.
    Punct(char),
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// Lexes `src` into a token stream, discarding comments.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        if c == '\n' {
            self.line += 1;
        }
        self.pos += 1;
        Some(c)
    }

    fn emit(&mut self, tok: Tok, line: u32) {
        self.out.push(Token { tok, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                while self.peek(0).is_some_and(|c| c != '\n') {
                    self.bump();
                }
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment();
            } else if c == '"' {
                self.plain_string();
                self.emit(Tok::Str, line);
            } else if c == 'r' && matches!(self.peek(1), Some('"') | Some('#')) {
                self.raw_prefixed(line);
            } else if c == 'b' && matches!(self.peek(1), Some('"') | Some('\'') | Some('r')) {
                self.byte_prefixed(line);
            } else if c == '\'' {
                self.quote(line);
            } else if c.is_ascii_digit() {
                self.number(line);
            } else if c == '_' || c.is_alphabetic() {
                self.ident(line);
            } else if c == ':' && self.peek(1) == Some(':') {
                self.bump();
                self.bump();
                self.emit(Tok::PathSep, line);
            } else {
                self.bump();
                self.emit(Tok::Punct(c), line);
            }
        }
        self.out
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => return,
            }
        }
    }

    fn plain_string(&mut self) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => return,
                _ => {}
            }
        }
    }

    /// `r"…"`, `r#"…"#`, or a raw identifier `r#name`.
    fn raw_prefixed(&mut self, line: u32) {
        let mut hashes = 0usize;
        while self.peek(1 + hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(1 + hashes) == Some('"') {
            self.bump(); // r
            for _ in 0..hashes {
                self.bump();
            }
            self.raw_string_body(hashes);
            self.emit(Tok::Str, line);
        } else if hashes == 1 && self.peek(2).is_some_and(|c| c == '_' || c.is_alphabetic()) {
            // Raw identifier: keep the `r#` prefix so the name can never
            // be mistaken for the bare keyword downstream.
            self.bump(); // r
            self.bump(); // #
            let mut text = String::from("r#");
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.emit(Tok::Ident(text), line);
        } else {
            // `r` followed by `#` that opens no raw string and no raw
            // identifier (`r##x`, attribute-adjacent `r#[...]`): plain
            // ident `r`, the `#` re-lexed as punctuation.
            self.ident(line);
        }
    }

    fn raw_string_body(&mut self, hashes: usize) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut matched = 0usize;
                while matched < hashes && self.peek(0) == Some('#') {
                    self.bump();
                    matched += 1;
                }
                if matched == hashes {
                    return;
                }
            }
        }
    }

    /// `b"…"`, `b'…'`, `br"…"`, `br#"…"#`.
    fn byte_prefixed(&mut self, line: u32) {
        match self.peek(1) {
            Some('"') => {
                self.bump();
                self.plain_string();
                self.emit(Tok::Str, line);
            }
            Some('\'') => {
                self.bump();
                self.bump();
                self.char_body();
                self.emit(Tok::Char, line);
            }
            Some('r') => {
                let mut hashes = 0usize;
                while self.peek(2 + hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(2 + hashes) == Some('"') {
                    self.bump();
                    self.bump();
                    for _ in 0..hashes {
                        self.bump();
                    }
                    self.raw_string_body(hashes);
                    self.emit(Tok::Str, line);
                } else {
                    self.ident(line);
                }
            }
            _ => self.ident(line),
        }
    }

    /// Consumes the rest of a char literal after its opening quote.
    fn char_body(&mut self) {
        if self.peek(0) == Some('\\') {
            self.bump();
            self.bump();
        } else {
            self.bump();
        }
        // Escapes like \x41 and \u{…} leave extra chars before the close.
        while let Some(c) = self.peek(0) {
            self.bump();
            if c == '\'' {
                return;
            }
        }
    }

    /// Disambiguates `'a'` (char) from `'a` / `'static` (lifetime).
    fn quote(&mut self, line: u32) {
        let next = self.peek(1);
        if next == Some('\\') {
            self.bump();
            self.char_body();
            self.emit(Tok::Char, line);
            return;
        }
        if next.is_some_and(|c| c == '_' || c.is_alphanumeric()) {
            // Scan the identifier run; a closing quote right after means a
            // single-char literal, otherwise it is a lifetime.
            let mut len = 1usize;
            while self
                .peek(1 + len)
                .is_some_and(|c| c == '_' || c.is_alphanumeric())
            {
                len += 1;
            }
            if self.peek(1 + len) == Some('\'') {
                for _ in 0..len + 2 {
                    self.bump();
                }
                self.emit(Tok::Char, line);
            } else {
                for _ in 0..len + 1 {
                    self.bump();
                }
                self.emit(Tok::Lifetime, line);
            }
            return;
        }
        if self.peek(2) == Some('\'') {
            // A punctuation char literal like '(' or ' '.
            self.bump();
            self.bump();
            self.bump();
            self.emit(Tok::Char, line);
            return;
        }
        self.bump();
        self.emit(Tok::Punct('\''), line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            let in_number = c.is_alphanumeric()
                || c == '_'
                || (c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()));
            if in_number {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.emit(Tok::Number(text), line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.emit(Tok::Ident(text), line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn comments_and_strings_are_opaque() {
        let toks = kinds("a // x.lock()\n/* y.lock() /* nested */ */ \".lock()\" b");
        assert_eq!(
            toks,
            vec![Tok::Ident("a".into()), Tok::Str, Tok::Ident("b".into())]
        );
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let toks = kinds(r##"r#"no.lock()"# r#match br"x" b"y""##);
        assert_eq!(
            toks,
            vec![Tok::Str, Tok::Ident("r#match".into()), Tok::Str, Tok::Str]
        );
    }

    #[test]
    fn raw_idents_keep_their_prefix_and_never_read_as_keywords() {
        let toks = kinds("let r#fn = 1; r#type r#struct");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("let".into()),
                Tok::Ident("r#fn".into()),
                Tok::Punct('='),
                Tok::Number("1".into()),
                Tok::Punct(';'),
                Tok::Ident("r#type".into()),
                Tok::Ident("r#struct".into()),
            ]
        );
    }

    #[test]
    fn raw_idents_adjacent_to_raw_strings_do_not_merge() {
        // A raw ident directly before a raw string must not consume the
        // string opener as part of its own `r#` scan, and a raw string
        // directly before a raw ident must terminate exactly at its `"#`.
        let toks = kinds(r##"r#type r#"body"# r#fn"##);
        assert_eq!(
            toks,
            vec![
                Tok::Ident("r#type".into()),
                Tok::Str,
                Tok::Ident("r#fn".into()),
            ]
        );
    }

    #[test]
    fn lone_r_before_hash_is_not_a_raw_prefix() {
        // `r ## x` (macro-ish token soup) must not be swallowed as one
        // ident; the lexer falls back to `r` + punctuation.
        let toks = kinds("r##x");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("r".into()),
                Tok::Punct('#'),
                Tok::Punct('#'),
                Tok::Ident("x".into()),
            ]
        );
    }

    #[test]
    fn chars_versus_lifetimes() {
        let toks = kinds("'a' 'static '_ '\\n' b'z'");
        assert_eq!(
            toks,
            vec![
                Tok::Char,
                Tok::Lifetime,
                Tok::Lifetime,
                Tok::Char,
                Tok::Char
            ]
        );
    }

    #[test]
    fn path_separators_are_one_token() {
        let toks = kinds("a::b x: T y");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("a".into()),
                Tok::PathSep,
                Tok::Ident("b".into()),
                Tok::Ident("x".into()),
                Tok::Punct(':'),
                Tok::Ident("T".into()),
                Tok::Ident("y".into()),
            ]
        );
    }

    #[test]
    fn numbers_keep_suffixes() {
        let toks = kinds("0u8 0x1f 1_000 2.5");
        assert_eq!(
            toks,
            vec![
                Tok::Number("0u8".into()),
                Tok::Number("0x1f".into()),
                Tok::Number("1_000".into()),
                Tok::Number("2.5".into()),
            ]
        );
    }

    #[test]
    fn lines_track_through_multiline_constructs() {
        let toks = lex("a\n/* c\nc */\nb \"s\ns\" d");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 4); // b
        assert_eq!(toks[2].line, 4); // the string starts on line 4
        assert_eq!(toks[3].line, 5); // d, after the embedded newline
    }
}
