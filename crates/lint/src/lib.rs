//! `distrust-lint`: repo-aware static analysis for the distrust workspace.
//!
//! Seven passes over a hand-rolled token stream (no registry
//! dependencies, std only), sharing one workspace-wide call graph that
//! resolves `use` imports and type qualifiers across crate seams (see
//! [`resolve`]):
//!
//! 1. **lock-order** — global lock-order graph over named lock fields;
//!    flags cycles, double acquisitions, and locks held across blocking
//!    calls.
//! 2. **panic** — `unwrap`/`expect`/panic-family macros and (on decode
//!    paths) unchecked indexing in server-side request-handling code.
//! 3. **protocol** — Request/Response tag uniqueness, encode↔decode
//!    pairing, codec impl pairing, and fuzz-suite coverage for every
//!    variant.
//! 4. **blocking** — blocking calls reachable from reactor callback paths.
//! 5. **taint-alloc** — interprocedural taint dataflow: wire-announced
//!    lengths and unverified signed-object fields reaching allocation,
//!    index, and loop-bound sinks (the length-bomb class), with a
//!    deterministic source→sink chain per finding — across crate seams,
//!    with argument taint injected into callees.
//! 6. **trust-boundary** — unverified signed-object fields flowing into
//!    state-changing sinks before a verification call dominates them.
//! 7. **cap-consistency** — `MAX_*`/`*_LEN` constants that bound nothing
//!    (dead caps) and decode-path allocations sized by parameters no
//!    caller, guard, or sanitizer bounds (cap gaps).
//!
//! Findings are suppressed only by `// lint:allow(<pass>): <reason>` on
//! the same or preceding line (reason mandatory), or tolerated by a
//! checked-in ratchet baseline (`lint-baseline.json`, reasons also
//! mandatory) that refuses any growth in the count. See LINTS.md at the
//! workspace root for the full contract.

pub mod baseline;
pub mod config;
pub mod dataflow;
pub mod facts;
pub mod lexer;
pub mod model;
pub mod passes;
pub mod report;
pub mod resolve;
pub mod scan;

use config::Config;
use dataflow::Dataflow;
use model::Model;
use report::Report;
use scan::SourceFile;
use std::io;
use std::path::{Path, PathBuf};

/// Analysis-size counters for one run, for CI step summaries and the
/// wall-time regression gate.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// Non-test function definitions across the workspace.
    pub functions: usize,
    /// Resolved call edges, and how many of them cross a crate seam.
    pub call_edges: usize,
    pub cross_crate_edges: usize,
    /// Fixpoint sweeps across the model and dataflow engines.
    pub fixpoint_iters: usize,
    /// Wall time of the analysis (excluding process startup).
    pub wall_ms: u128,
}

impl Stats {
    pub fn render(&self) -> String {
        format!(
            "stats: {} functions, {} call edges ({} cross-crate), {} fixpoint iterations, {} ms",
            self.functions,
            self.call_edges,
            self.cross_crate_edges,
            self.fixpoint_iters,
            self.wall_ms
        )
    }
}

/// Runs every pass under `cfg` and returns the finished report.
pub fn analyze(cfg: &Config) -> io::Result<Report> {
    analyze_with_stats(cfg).map(|(report, _)| report)
}

/// As [`analyze`], also returning the run's size counters.
pub fn analyze_with_stats(cfg: &Config) -> io::Result<(Report, Stats)> {
    let start = std::time::Instant::now();
    let paths = discover(&cfg.root)?;
    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let source = std::fs::read_to_string(cfg.root.join(&path))?;
        files.push(SourceFile::parse(path, &source));
    }

    let model = Model::build(&files);
    let flow = Dataflow::build(&files);
    let mut report = Report::default();
    passes::lock_order::run(&model, &mut report);
    passes::blocking::run(&model, &cfg.reactor_entries, &mut report);
    passes::panic_path::run(&files, cfg.panic_scope, &mut report);
    passes::taint_alloc::run(&flow, cfg.taint_scope, &mut report);
    passes::trust_boundary::run(&files, cfg.trust_scope, &mut report);
    passes::cap_consistency::run(&files, &flow, cfg.cap_scope, &mut report);
    if let Some(proto) = &cfg.protocol {
        let fuzz = std::fs::read_to_string(cfg.root.join(&proto.fuzz_file)).ok();
        passes::protocol::run(&files, proto, fuzz.as_deref(), &mut report);
    }
    report.apply_allows(&files);
    report.finish();
    let stats = Stats {
        functions: model.fns.len(),
        call_edges: model.call_edges,
        cross_crate_edges: model.cross_crate_edges,
        fixpoint_iters: model.fixpoint_iters + flow.fixpoint_iters,
        wall_ms: start.elapsed().as_millis(),
    };
    Ok((report, stats))
}

/// Collects the root-relative paths of every source file to scan, sorted
/// for determinism. A workspace root scans `crates/*/src` plus `src/`;
/// any other root (fixture directories) scans all `.rs` files under it.
fn discover(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    if root.join("crates").is_dir() {
        let mut crates: Vec<PathBuf> = std::fs::read_dir(root.join("crates"))?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crates.sort();
        for krate in crates {
            let src = krate.join("src");
            if src.is_dir() {
                walk(root, &src, &mut out)?;
            }
        }
        let src = root.join("src");
        if src.is_dir() {
            walk(root, &src, &mut out)?;
        }
    } else {
        walk(root, root, &mut out)?;
    }
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name == "fixtures" {
                continue;
            }
            walk(root, &path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
    Ok(())
}
