//! Fixture-based self-tests for `distrust-lint`.
//!
//! Each seeded fixture under `fixtures/` must make exactly its own pass
//! fire; the clean fixture and the live repository must produce zero
//! unallowlisted findings; and the report must be byte-for-byte
//! deterministic across runs. The binary-level tests pin the CI contract:
//! `--deny` exits non-zero on a seeded violation and zero on clean code.

use distrust_lint::config::Config;
use distrust_lint::passes::protocol::ProtocolCfg;
use distrust_lint::report::Report;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .canonicalize()
        .expect("workspace root")
}

fn analyze_fixture(name: &str) -> Report {
    distrust_lint::analyze(&Config::fixture(fixture_root(name))).expect("fixture scan")
}

#[test]
fn clean_fixture_reports_nothing() {
    let report = analyze_fixture("clean");
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn lock_order_fixture_fires() {
    let report = analyze_fixture("bad_lock_order");
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.pass, "lock-order");
    assert!(f.message.contains("lock-order cycle"), "{}", f.message);
    assert!(f.message.contains("alpha"), "{}", f.message);
    assert!(f.message.contains("beta"), "{}", f.message);
    assert_eq!(report.unallowlisted(), 1);
}

#[test]
fn panic_fixture_fires_on_unwrap_and_decode_indexing() {
    let report = analyze_fixture("bad_panic");
    assert_eq!(report.findings.len(), 2, "{:?}", report.findings);
    assert!(report.findings.iter().all(|f| f.pass == "panic"));
    assert!(report
        .findings
        .iter()
        .any(|f| f.message.contains("`.unwrap()`") && f.message.contains("serve_request")));
    assert!(report
        .findings
        .iter()
        .any(|f| f.message.contains("unchecked indexing") && f.message.contains("decode_header")));
}

#[test]
fn blocking_fixture_fires_with_call_chain() {
    let report = analyze_fixture("bad_blocking");
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.pass, "blocking");
    assert!(f.message.contains("`sleep`"), "{}", f.message);
    assert!(f.message.contains("pump -> refill"), "{}", f.message);
}

#[test]
fn protocol_fixture_fires_on_every_seeded_defect() {
    let mut cfg = Config::fixture(fixture_root("bad_protocol"));
    cfg.protocol = Some(ProtocolCfg {
        protocol_files: vec!["protocol.rs".into()],
        codec_files: vec!["protocol.rs".into()],
        fuzz_file: "fuzz.rs".into(),
        types: vec!["Request".into()],
    });
    let report = distrust_lint::analyze(&cfg).expect("fixture scan");
    assert!(
        report.findings.iter().all(|f| f.pass == "protocol"),
        "{:?}",
        report.findings
    );
    let has = |needle: &str| report.findings.iter().any(|f| f.message.contains(needle));
    assert!(has("tag 1 is encoded by more than one Request variant"));
    assert!(has(
        "Request::C encodes tag 1, but that tag decodes to Request::B"
    ));
    assert!(has("Request::B has no coverage in fuzz.rs"));
    assert!(has("Request::C has no coverage in fuzz.rs"));
    assert!(has(
        "`Sideband` implements Encode here but has no Decode impl"
    ));
}

#[test]
fn taint_alloc_fixture_fires_exactly() {
    let report = analyze_fixture("bad_taint_alloc");
    assert_eq!(report.findings.len(), 4, "{:?}", report.findings);
    assert!(report.findings.iter().all(|f| f.pass == "taint-alloc"));
    let has = |needle: &str| report.findings.iter().any(|f| f.message.contains(needle));
    // Allocation sink, reached through an interprocedural summary hop.
    assert!(has("`Vec::with_capacity` in `decode_batch`"));
    assert!(has("-> returned by `read_count`"));
    assert!(has("loop bound in `decode_batch`"));
    // Direct source-to-sink.
    assert!(has("`vec![_; n]` length in `decode_payload`"));
    // Unverified signed-object field used as an index.
    assert!(has("slice index in `select_root`"));
    assert!(has(
        "unverified `SignedCheckpoint` (param `cp` of `select_root`)"
    ));
    // The capped decoder stays silent.
    assert!(!has("decode_capped"), "{:?}", report.findings);
}

#[test]
fn trust_boundary_fixture_fires_exactly() {
    let report = analyze_fixture("bad_trust_boundary");
    assert_eq!(report.findings.len(), 2, "{:?}", report.findings);
    assert!(report.findings.iter().all(|f| f.pass == "trust-boundary"));
    let has = |needle: &str| report.findings.iter().any(|f| f.message.contains(needle));
    assert!(has(
        "unverified `SignedCheckpoint` `cp` (param of `adopt` at cache.rs:5) \
         reaches state-changing `insert`"
    ));
    assert!(has("unverified `Quote` `quote`"));
    assert!(has("assigned into `self` state"));
    // The verify-first twin stays silent.
    assert!(!has("adopt_checked"), "{:?}", report.findings);
}

#[test]
fn cross_crate_fixture_fires_each_seeded_defect_exactly() {
    let report = analyze_fixture("cross_crate");
    let count = |pass: &str| report.findings.iter().filter(|f| f.pass == pass).count();
    assert_eq!(count("taint-alloc"), 2, "{:?}", report.findings);
    assert_eq!(count("lock-order"), 1, "{:?}", report.findings);
    assert_eq!(count("blocking"), 1, "{:?}", report.findings);
    assert_eq!(count("cap-consistency"), 1, "{:?}", report.findings);
    assert_eq!(report.findings.len(), 5, "{:?}", report.findings);

    let has = |needle: &str| report.findings.iter().any(|f| f.message.contains(needle));
    // Bomb 1: taint returned out of alpha sizes an allocation in beta; the
    // chain names both sides of the seam.
    assert!(has(
        "`Vec::with_capacity` in `ingest`: announced length via `decode_len` \
         at crates/alpha/src/wire.rs"
    ));
    assert!(has(
        "-> returned by `announced_len` at crates/beta/src/ingest.rs"
    ));
    // Bomb 2: beta's raw count crosses into alpha, which allocates; the
    // chain records the injection site in beta.
    assert!(has("`Vec::with_capacity` in `reserve_slots`"));
    assert!(has(
        "passed into `reserve_slots` as `slots` at crates/beta/src/ingest.rs"
    ));
    // The guarded twin and its capped helper stay silent.
    assert!(!has("ingest_bounded"), "{:?}", report.findings);
    assert!(!has("reserve_bounded"), "{:?}", report.findings);
    // Cross-crate lock cycle and blocking chain carry both crates.
    assert!(has(
        "lock-order cycle: `egress@reactor` -> `ingress@sync` -> `egress@reactor`"
    ));
    assert!(has("pump -> relay -> drain"));
    // The dead cap fires; the live guard cap does not.
    assert!(has("`MAX_DEAD_SLOTS`"));
    assert!(!has("`MAX_SLOTS`"), "{:?}", report.findings);
}

#[test]
fn cross_crate_report_is_identical_regardless_of_scan_order() {
    // The canonical function index space is discovery-order-dependent, but
    // rendered findings must not be: parse the fixture's crates in both
    // orders and demand byte-identical text and JSON reports.
    use distrust_lint::dataflow::Dataflow;
    use distrust_lint::model::Model;
    use distrust_lint::passes;
    use distrust_lint::scan::SourceFile;

    let render = |reversed: bool| {
        let mut paths = [
            "crates/alpha/src/sync.rs",
            "crates/alpha/src/wire.rs",
            "crates/beta/src/ingest.rs",
            "crates/beta/src/reactor.rs",
        ];
        if reversed {
            paths.reverse();
        }
        let root = fixture_root("cross_crate");
        let files: Vec<SourceFile> = paths
            .iter()
            .map(|p| {
                let src = std::fs::read_to_string(root.join(p)).expect("fixture file");
                SourceFile::parse(p.to_string(), &src)
            })
            .collect();
        let model = Model::build(&files);
        let flow = Dataflow::build(&files);
        let mut report = Report::default();
        passes::lock_order::run(&model, &mut report);
        passes::blocking::run(&model, &passes::blocking::default_entries(), &mut report);
        passes::taint_alloc::run(
            &flow,
            distrust_lint::passes::taint_alloc::TaintScope::AllFiles,
            &mut report,
        );
        passes::cap_consistency::run(
            &files,
            &flow,
            distrust_lint::passes::cap_consistency::CapScope::AllFiles,
            &mut report,
        );
        report.apply_allows(&files);
        report.finish();
        (report.render_text(), report.render_json())
    };
    let (text_fwd, json_fwd) = render(false);
    let (text_rev, json_rev) = render(true);
    assert!(text_fwd.contains("finding"), "{text_fwd}");
    assert_eq!(text_fwd, text_rev);
    assert_eq!(json_fwd, json_rev);
}

#[test]
fn allowlist_suppresses_with_a_reason() {
    let report = analyze_fixture("allowed");
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.pass, "panic");
    let reason = f.allowed.as_deref().expect("finding must be allowlisted");
    assert!(reason.contains("startup-time invariant"), "{reason}");
    assert_eq!(report.unallowlisted(), 0);
}

#[test]
fn live_repo_has_zero_unallowlisted_findings() {
    let report = distrust_lint::analyze(&Config::repo_default(repo_root())).expect("repo scan");
    let denied: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.allowed.is_none())
        .collect();
    assert!(denied.is_empty(), "unallowlisted findings: {denied:?}");
    for f in &report.findings {
        let reason = f.allowed.as_deref().unwrap_or("");
        assert!(
            !reason.trim().is_empty(),
            "allowlist entry without a reason at {}:{}",
            f.file,
            f.line
        );
    }
}

#[test]
fn report_is_byte_identical_across_runs() {
    let cfg = Config::repo_default(repo_root());
    let first = distrust_lint::analyze(&cfg).expect("repo scan");
    let second = distrust_lint::analyze(&cfg).expect("repo scan");
    assert_eq!(first.render_text(), second.render_text());
    assert_eq!(first.render_json(), second.render_json());
}

#[test]
fn reports_are_byte_identical_across_root_spellings() {
    // `--root .` (run from the workspace root) and `--root <absolute>`
    // must render byte-identical reports, or the checked-in baseline
    // would only match from one invocation directory.
    let bin = env!("CARGO_BIN_EXE_distrust-lint");
    let root = repo_root();
    let via_dot = Command::new(bin)
        .args(["--format", "json", "--root", "."])
        .current_dir(&root)
        .output()
        .expect("run lint binary");
    let via_abs = Command::new(bin)
        .args(["--format", "json", "--root"])
        .arg(&root)
        .current_dir(&root)
        .output()
        .expect("run lint binary");
    assert!(via_dot.status.success() && via_abs.status.success());
    assert!(!via_dot.stdout.is_empty());
    assert_eq!(via_dot.stdout, via_abs.stdout);
}

#[test]
fn live_repo_is_clean_under_deny_with_checked_in_baseline() {
    // The exact CI gate: the committed baseline must parse, and the live
    // tree must produce zero denied findings under it.
    let bin = env!("CARGO_BIN_EXE_distrust-lint");
    let out = Command::new(bin)
        .args(["--deny", "--baseline", "lint-baseline.json", "--root", "."])
        .current_dir(repo_root())
        .output()
        .expect("run lint binary");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn baseline_ratchet_tolerates_known_findings_and_rejects_growth() {
    // Self-test of the ratchet loop on a scratch workspace shaped like
    // the repo (so the binary's repo-default scopes cover it): seed a
    // taint-alloc violation, write a baseline, and check that the same
    // findings pass under it while an empty baseline still fails.
    let bin = env!("CARGO_BIN_EXE_distrust-lint");
    let scratch =
        std::env::temp_dir().join(format!("distrust-lint-ratchet-{}", std::process::id()));
    let src_dir = scratch.join("crates").join("wire").join("src");
    std::fs::create_dir_all(&src_dir).expect("scratch tree");
    std::fs::copy(
        fixture_root("bad_taint_alloc").join("decode.rs"),
        src_dir.join("decode.rs"),
    )
    .expect("seed violation");

    // Without any baseline the seeded violations are denied.
    let bare = Command::new(bin)
        .args(["--deny", "--root"])
        .arg(&scratch)
        .output()
        .expect("run lint binary");
    assert_eq!(bare.status.code(), Some(1), "{:?}", bare);

    // --write-baseline captures them...
    let write = Command::new(bin)
        .args(["--write-baseline", "--root"])
        .arg(&scratch)
        .output()
        .expect("run lint binary");
    assert_eq!(write.status.code(), Some(0), "{:?}", write);
    let baseline_path = scratch.join("lint-baseline.json");
    assert!(baseline_path.is_file());

    // ...and the identical tree now passes the deny gate under it.
    let ratcheted = Command::new(bin)
        .args(["--deny", "--baseline"])
        .arg(&baseline_path)
        .args(["--root"])
        .arg(&scratch)
        .output()
        .expect("run lint binary");
    assert_eq!(
        ratcheted.status.code(),
        Some(0),
        "stdout: {}",
        String::from_utf8_lossy(&ratcheted.stdout)
    );

    // An empty baseline rejects the same findings: the ratchet refuses
    // growth rather than grandfathering whatever currently fires.
    let empty_path = scratch.join("empty-baseline.json");
    std::fs::write(&empty_path, "{\n  \"entries\": [\n  ]\n}\n").expect("empty baseline");
    let refused = Command::new(bin)
        .args(["--deny", "--baseline"])
        .arg(&empty_path)
        .args(["--root"])
        .arg(&scratch)
        .output()
        .expect("run lint binary");
    assert_eq!(refused.status.code(), Some(1), "{:?}", refused);

    std::fs::remove_dir_all(&scratch).ok();
}

#[test]
fn deny_gate_fails_on_a_seeded_violation_and_passes_on_clean() {
    let bin = env!("CARGO_BIN_EXE_distrust-lint");
    // Under the binary's repo-default config the lock-order pass (which has
    // no path scoping) still fires on the seeded inversion.
    let bad = Command::new(bin)
        .args(["--deny", "--root"])
        .arg(fixture_root("bad_lock_order"))
        .output()
        .expect("run lint binary");
    assert_eq!(bad.status.code(), Some(1), "{:?}", bad);

    let clean = Command::new(bin)
        .args(["--deny", "--format", "json", "--root"])
        .arg(fixture_root("clean"))
        .output()
        .expect("run lint binary");
    assert_eq!(clean.status.code(), Some(0), "{:?}", clean);
    let stdout = String::from_utf8(clean.stdout).expect("utf8 json");
    assert!(stdout.contains("\"denied\":0"), "{stdout}");
}
